// Command reseedgw fronts several reseedd replicas as one service. It
// routes solve-shaped requests by their circuit cache key over a
// consistent-hash ring — each replica stays warm for its shard of the
// circuit universe — probes replica health in the background, and
// retries a failed request against the key's next-preferred replica, so
// one crashed replica never surfaces a transport error for retryable
// work.
//
// Usage:
//
//	reseedgw -addr :8350 -replicas http://127.0.0.1:8351,http://127.0.0.1:8352
//
// Endpoints:
//
//	GET    /healthz        gateway liveness + live-replica count
//	POST   /v1/solve       routed by circuit key, retried on failover
//	POST   /v1/batch       routed by the first request's key
//	POST   /v1/jobs        routed like /v1/solve
//	GET    /v1/jobs        merged job lists of every replica
//	GET    /v1/jobs/{id}   fanned out; first replica that knows the job
//	DELETE /v1/jobs/{id}   likewise
//	GET    /v1/route       placement debug: ?circuit=NAME -> preference list
//	GET    /metrics        gateway counters + per-replica liveness
//	GET    /v1/traces      stitched cross-process traces (docs/OBSERVABILITY.md)
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8350", "listen address (host:port; port 0 picks a free port)")
		replicas  = flag.String("replicas", "", "comma-separated base URLs of the reseedd replicas (required)")
		interval  = flag.Duration("probe-interval", 2*time.Second, "replica health probe cadence")
		pprofAddr = flag.String("pprof", "",
			"serve net/http/pprof on this address (empty = profiling disabled)")
	)
	flag.Parse()
	log.SetPrefix("reseedgw: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	var members []string
	for _, rep := range strings.Split(*replicas, ",") {
		if rep = strings.TrimRight(strings.TrimSpace(rep), "/"); rep != "" {
			members = append(members, rep)
		}
	}
	if len(members) == 0 {
		log.Fatal("no replicas: pass -replicas http://host:port,...")
	}

	ring := cluster.NewRing(members)
	health := cluster.NewHealth(ring.Replicas(), nil, *interval)
	health.Start()
	defer health.Close()
	gw := cluster.NewGateway(ring, health, &http.Client{})

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() { log.Print(http.Serve(pln, obs.PprofHandler())) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fronting %d replicas on http://%s", ring.Len(), ln.Addr())
	log.Fatal(http.Serve(ln, gw.Handler()))
}
