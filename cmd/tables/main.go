// Command tables regenerates the paper's evaluation artifacts: Table 1
// (reseeding solutions vs the GATSBY baseline), Table 2 (set covering
// anatomy) and Figure 2 (the reseedings-vs-test-length trade-off).
//
// Usage:
//
//	tables                 # Table 1+2 on the small/medium circuits, Figure 2
//	tables -all            # the paper's full circuit list (takes many minutes)
//	tables -table 1        # just Table 1
//	tables -figure 2       # just Figure 2
//	tables -circuits s420,s1238 -cycles 128
//	tables -all -solve-budget 5s   # anytime: cap each exact covering solve
//
// All circuits run on one shared reseeding Engine, so Figure 2 reuses the
// s1238 ATPG preparation from the table run. SIGINT/SIGTERM cancel the
// run: the tables are rendered for every circuit completed so far (an
// exact covering solve interrupted mid-search contributes its best-so-far
// solution with Optimal = false) instead of dying without output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	reseeding "repro"
	"repro/internal/experiments"
)

// fastCircuits keeps the default invocation to a couple of minutes.
var fastCircuits = []string{"c499", "c880", "s420", "s641", "s820", "s838", "s953", "s1238", "s1423"}

func main() {
	var (
		all      = flag.Bool("all", false, "run the paper's full Table 1 circuit list (slow)")
		circuits = flag.String("circuits", "", "comma-separated circuit list (overrides -all)")
		table    = flag.Int("table", 0, "render only this table (1 or 2)")
		figure   = flag.Int("figure", 0, "render only this figure (2)")
		cycles   = flag.Int("cycles", 64, "candidate evolution length T")
		seed     = flag.Int64("seed", 1, "random seed")
		noGatsby = flag.Bool("nogatsby", false, "skip the GA baseline columns")
		jobs     = flag.Int("j", 0, "worker goroutines for fault simulation, matrix construction and the covering solve (0 = all processors)")
		budget   = flag.Duration("solve-budget", 0, "wall-clock budget per exact covering solve; truncated solves keep the best cover found (0 = none)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.Config{
		Cycles:      *cycles,
		Seed:        *seed,
		WithGatsby:  !*noGatsby,
		Parallelism: *jobs,
		SolveBudget: *budget,
		Context:     ctx,
		Engine:      reseeding.NewEngine(reseeding.EngineOptions{Parallelism: *jobs}),
	}
	switch {
	case *circuits != "":
		cfg.Circuits = strings.Split(*circuits, ",")
	case *all:
		cfg.Circuits = experiments.Table1Circuits()
	default:
		cfg.Circuits = fastCircuits
	}

	wantTables := *figure == 0
	wantFigure := *table == 0 && (*figure == 2 || *figure == 0)
	interrupted := false

	if wantTables {
		start := time.Now()
		var results []*experiments.CircuitResult
		for _, name := range cfg.Circuits {
			t0 := time.Now()
			cr, err := experiments.RunCircuit(name, cfg)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					interrupted = true
					fmt.Fprintf(os.Stderr, "  %-8s interrupted — rendering the %d completed circuits\n",
						name, len(results))
					break
				}
				fail(err)
			}
			results = append(results, cr)
			fmt.Fprintf(os.Stderr, "  %-8s done in %6.1fs (|F|=%d, |ATPGTS|=%d)\n",
				name, time.Since(t0).Seconds(), cr.Faults, cr.Patterns)
		}
		fmt.Fprintf(os.Stderr, "flow complete in %.1fs\n\n", time.Since(start).Seconds())

		if len(results) > 0 {
			if *table == 0 || *table == 1 {
				if err := experiments.WriteTable1(os.Stdout, results, cfg.WithGatsby); err != nil {
					fail(err)
				}
				fmt.Println()
			}
			if *table == 0 || *table == 2 {
				if err := experiments.WriteTable2(os.Stdout, results); err != nil {
					fail(err)
				}
				fmt.Println()
			}
		}
		if interrupted {
			fmt.Println("(interrupted: tables cover the circuits completed before cancellation;")
			fmt.Println(" solves cut off mid-search report their best-so-far cover, optimal=false)")
			os.Exit(130)
		}
	}

	if wantFigure {
		points, err := experiments.Figure2(cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "tables: figure 2 interrupted")
				os.Exit(130)
			}
			fail(err)
		}
		if err := experiments.WriteFigure2(os.Stdout, points); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
