// Command benchgen emits the synthetic benchmark circuits as .bench
// netlists, and generates/solves the Balas–Ho set-covering corpus behind
// the exact solver's bound benchmarks.
//
// Circuit usage:
//
//	benchgen -list
//	benchgen -circuit s1238            # sequential form
//	benchgen -circuit s1238 -scan      # full-scan combinational view
//
// Set-covering usage:
//
//	benchgen -cover -rows 80 -cols 50 -density 0.45 -cseed 7      # one instance to stdout
//	benchgen -cover -costs uniform -maxcost 100 ...               # weighted cost class
//	benchgen -cover-corpus -out internal/setcover/corpus          # regenerate the committed corpus + golden.json
//	benchgen -cover-bench -out BENCH_bounds.json                  # run the bounds harness (counting vs Lagrangian)
//
// See docs/CORPUS.md for the corpus tiers and how to read the harness
// output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/setcover"
	"repro/internal/setcover/corpus"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark circuit name")
		scan    = flag.Bool("scan", false, "emit the full-scan combinational view")
		list    = flag.Bool("list", false, "list available circuits with their profiles")

		cover       = flag.Bool("cover", false, "emit one Balas-Ho set-covering instance (.scp) to stdout")
		coverCorpus = flag.Bool("cover-corpus", false, "regenerate the committed corpus instances and golden.json under -out")
		coverBench  = flag.Bool("cover-bench", false, "run the corpus bounds harness and write BENCH_bounds.json to -out")
		out         = flag.String("out", "", "output path: corpus package dir for -cover-corpus, JSON file for -cover-bench")
		rows        = flag.Int("rows", 80, "-cover: number of covering rows (sets)")
		cols        = flag.Int("cols", 50, "-cover: number of columns to cover (elements)")
		density     = flag.Float64("density", 0.3, "-cover: target incidence density in (0,1]")
		costs       = flag.String("costs", "unit", "-cover: cost class: unit or uniform")
		maxCost     = flag.Int("maxcost", 0, "-cover: inclusive cost ceiling for -costs uniform (0 = 100)")
		cseed       = flag.Int64("cseed", 1, "-cover: generator seed")
		openBudget  = flag.Int64("open-budget", 0, "-cover-bench: node budget per open-tier solve (0 = default)")
		jobs        = flag.Int("j", 1, "-cover-bench/-cover-corpus: solver parallelism (1 = serial, deterministic node counts; 0 = all cores)")
	)
	flag.Parse()

	switch {
	case *cover:
		emitInstance(*rows, *cols, *density, *costs, *maxCost, *cseed)
	case *coverCorpus:
		regenerateCorpus(*out, *jobs)
	case *coverBench:
		runBoundsBench(*out, *openBudget, *jobs)
	case *list:
		fmt.Printf("%-8s %6s %6s %6s %8s\n", "name", "PI", "PO", "FF", "gates")
		for _, p := range bench.Profiles() {
			fmt.Printf("%-8s %6d %6d %6d %8d\n", p.Name, p.Inputs, p.Outputs, p.FFs, p.Gates)
		}
	case *circuit != "":
		emitCircuit(*circuit, *scan)
	default:
		fmt.Fprintln(os.Stderr, "benchgen: one of -circuit, -list, -cover, -cover-corpus, -cover-bench required")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}

func emitCircuit(name string, scan bool) {
	var (
		c   *netlist.Circuit
		err error
	)
	if scan {
		c, err = bench.ScanView(name)
	} else {
		c, err = bench.Named(name)
	}
	if err != nil {
		fatal(err)
	}
	if err := netlist.Write(os.Stdout, c); err != nil {
		fatal(err)
	}
}

func costClass(name string) (corpus.CostClass, error) {
	switch name {
	case "unit":
		return corpus.CostUnit, nil
	case "uniform":
		return corpus.CostUniform, nil
	default:
		return 0, fmt.Errorf("unknown cost class %q (known: unit, uniform)", name)
	}
}

func emitInstance(rows, cols int, density float64, costs string, maxCost int, seed int64) {
	cc, err := costClass(costs)
	if err != nil {
		fatal(err)
	}
	inst, err := corpus.Generate(fmt.Sprintf("scp-%d", seed), corpus.Params{
		Rows: rows, Cols: cols, Density: density, Costs: cc, MaxCost: maxCost, Seed: seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := corpus.Format(os.Stdout, inst); err != nil {
		fatal(err)
	}
}

// regenerateCorpus rewrites the committed corpus artifacts: every spec'd
// instance in canonical .scp form plus golden.json, with the non-open
// tiers solved to proven optimality and the open tier solved under the
// default node budget for a best-known cost.
func regenerateCorpus(dir string, jobs int) {
	if dir == "" {
		fatal(fmt.Errorf("-cover-corpus needs -out <corpus package dir>"))
	}
	if err := os.MkdirAll(filepath.Join(dir, "instances"), 0o755); err != nil {
		fatal(err)
	}
	instances, err := corpus.GenerateAll(jobs)
	if err != nil {
		fatal(err)
	}
	golden := make(map[string]corpus.Golden)
	for i, spec := range corpus.Specs() {
		inst := instances[i]
		path := filepath.Join(dir, "instances", spec.Name+".scp")
		if err := os.WriteFile(path, []byte(corpus.FormatString(inst)), 0o644); err != nil {
			fatal(err)
		}
		opts := setcover.ExactOptions{Parallelism: jobs}
		if spec.Tier == corpus.TierOpen {
			opts.MaxNodes = corpus.DefaultOpenNodeBudget
		}
		var sol setcover.Solution
		if w := inst.Weights(); w != nil {
			sol, err = inst.Problem.SolveExactWeighted(w, opts)
		} else {
			sol, err = inst.Problem.SolveExact(opts)
		}
		if err != nil {
			fatal(fmt.Errorf("solving %s: %w", spec.Name, err))
		}
		entry := corpus.Golden{Tier: spec.Tier, BestKnown: sol.Cost}
		if sol.Optimal {
			cost := sol.Cost
			entry.Optimal = &cost
		} else if spec.Tier != corpus.TierOpen {
			fatal(fmt.Errorf("%s: %s-tier instance did not solve to optimality (%d nodes) — retune Specs", spec.Name, spec.Tier, sol.Nodes))
		}
		golden[spec.Name] = entry
		fmt.Printf("%-10s %-6s %3dx%-3d cost=%-5d optimal=%-5v nodes=%d\n",
			spec.Name, spec.Tier, inst.Problem.NumRows(), inst.Problem.NumCols(), sol.Cost, sol.Optimal, sol.Nodes)
	}
	raw, err := corpus.FormatGolden(golden)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "golden.json"), raw, 0o644); err != nil {
		fatal(err)
	}
}

func runBoundsBench(out string, openBudget int64, jobs int) {
	bench, err := corpus.RunBounds(corpus.BenchOptions{
		Parallelism:    jobs,
		OpenNodeBudget: openBudget,
	})
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := bench.WriteJSON(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hard-tier nodes: counting=%d lagrangian=%d reduction=%.1fx\n",
		bench.Summary.HardNodesCounting, bench.Summary.HardNodesLagrangian, bench.Summary.HardNodeReduction)
}
