// Command benchgen emits the synthetic benchmark circuits as .bench
// netlists, so they can be inspected or fed to other tools.
//
// Usage:
//
//	benchgen -list
//	benchgen -circuit s1238            # sequential form
//	benchgen -circuit s1238 -scan      # full-scan combinational view
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/netlist"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark circuit name")
		scan    = flag.Bool("scan", false, "emit the full-scan combinational view")
		list    = flag.Bool("list", false, "list available circuits with their profiles")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %6s %6s %6s %8s\n", "name", "PI", "PO", "FF", "gates")
		for _, p := range bench.Profiles() {
			fmt.Printf("%-8s %6d %6d %6d %8d\n", p.Name, p.Inputs, p.Outputs, p.FFs, p.Gates)
		}
		return
	}
	if *circuit == "" {
		fmt.Fprintln(os.Stderr, "benchgen: -circuit or -list required")
		os.Exit(1)
	}
	var (
		c   *netlist.Circuit
		err error
	)
	if *scan {
		c, err = bench.ScanView(*circuit)
	} else {
		c, err = bench.Named(*circuit)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	if err := netlist.Write(os.Stdout, c); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
