// Command tpggen synthesizes a test pattern generator as a gate-level
// .bench netlist (the BIST hardware a Functional BIST insertion flow would
// instantiate), and can demonstrate it by simulating a triplet.
//
// Usage:
//
//	tpggen -tpg adder -width 16                    # netlist to stdout
//	tpggen -tpg lfsr -width 8 -demo 6 -delta 2b    # simulate 6 cycles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitvec"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tpggen"
)

func main() {
	var (
		kind  = flag.String("tpg", "adder", "generator kind: adder, subtracter, multiplier, lfsr")
		width = flag.Int("width", 16, "pattern width in bits")
		demo  = flag.Int("demo", 0, "instead of printing the netlist, simulate this many cycles")
		delta = flag.String("delta", "1", "hex seed δ for -demo")
		theta = flag.String("theta", "3", "hex input value θ for -demo")
	)
	flag.Parse()

	c, err := tpggen.FromKind(*kind, *width)
	if err != nil {
		fail(err)
	}
	if *demo == 0 {
		if err := netlist.Write(os.Stdout, c); err != nil {
			fail(err)
		}
		return
	}

	d, err := parseHex(*delta, *width)
	if err != nil {
		fail(fmt.Errorf("-delta: %w", err))
	}
	th, err := parseHex(*theta, *width)
	if err != nil {
		fail(fmt.Errorf("-theta: %w", err))
	}
	sim, err := logicsim.NewSequential(c)
	if err != nil {
		fail(err)
	}
	if err := sim.SetState(d); err != nil {
		fail(err)
	}
	in := bitvec.New(len(c.Inputs))
	for i := 0; i < len(c.Inputs); i++ {
		in.SetBit(i, th.Bit(i))
	}
	fmt.Printf("%s, width %d, %d gates, %d DFFs; δ=%s θ=%s\n",
		c.Name, *width, c.NumLogicGates(), len(c.DFFs), d.Hex(), th.Hex())
	for cyc := 0; cyc < *demo; cyc++ {
		out, err := sim.StepOne(in)
		if err != nil {
			fail(err)
		}
		fmt.Printf("cycle %3d: %s\n", cyc, out.Hex())
	}
}

func parseHex(s string, width int) (bitvec.Vector, error) {
	v := bitvec.New(width)
	for i := 0; i < len(s); i++ {
		c := s[len(s)-1-i]
		var nibble uint64
		switch {
		case c >= '0' && c <= '9':
			nibble = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			nibble = uint64(c-'a') + 10
		default:
			return bitvec.Vector{}, fmt.Errorf("invalid hex digit %q", c)
		}
		for b := 0; b < 4; b++ {
			if bit := 4*i + b; bit < width && nibble>>uint(b)&1 == 1 {
				v.SetBit(bit, true)
			}
		}
	}
	return v, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tpggen:", err)
	os.Exit(1)
}
