// Command reseedvet is the repository's analyzer suite: five checks that
// mechanically enforce the determinism, cancellation, locking and
// wire-format contracts the codebase's tests pin dynamically. Run it
// through cmd/go so it sees compiled type information:
//
//	go build -o /tmp/reseedvet ./cmd/reseedvet
//	go vet -vettool=/tmp/reseedvet ./...
//
// CI runs exactly that; a finding fails the build. See docs/DEVELOPING.md
// for what each analyzer enforces and how to acknowledge a finding.
package main

import (
	"repro/internal/analysis/atomicguard"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/detsource"
	"repro/internal/analysis/errpolicy"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/reseedvet"
	"repro/internal/analysis/wiretag"
)

func main() {
	reseedvet.Main(
		maporder.Analyzer,
		ctxloop.Analyzer,
		lockcheck.Analyzer,
		wiretag.Analyzer,
		errpolicy.Analyzer,
		detsource.Analyzer,
		ctxflow.Analyzer,
		atomicguard.Analyzer,
	)
}
