// Command reseed runs the set-covering reseeding flow end to end on a
// benchmark circuit (or a user .bench netlist) and prints the solution.
//
// Usage:
//
//	reseed -circuit s1238 -tpg adder -cycles 64
//	reseed -file mydesign.bench -tpg multiplier -cycles 128 -v
//	reseed -circuit s1238 -j 4        # bound the worker pool to 4 goroutines
//	reseed -circuit s1238 -solve-budget 2s   # anytime covering solve
//
// The command is a thin client of the reseeding Engine: the flags are
// packed into a single reseeding.Request and answered by Engine.Solve, and
// -json writes the Engine's full Response — the same JSON document the
// reseedd HTTP API answers for the same Request. An invalid request (the
// typed RequestError rejections shared with the HTTP 400 mapping) exits
// with status 2 before any work starts.
// SIGINT/SIGTERM cancel the request context; an interrupt during the
// covering solve prints the best solution found so far (optimal=false,
// the anytime contract) instead of dying mid-solve, while an interrupt
// before any solution exists exits with an error.
//
// Fault simulation, Detection Matrix construction and the exact covering
// solve run on a worker pool sized by -j (default: one worker per
// processor). The computed solution is bit-identical for every -j value as
// long as the solve completes. -solve-budget caps the wall-clock time of
// the exact covering solve — like an interrupt, a truncated solve keeps
// the best cover found so far.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	reseeding "repro"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	var (
		circuit = flag.String("circuit", "s1238", "benchmark circuit name (see benchgen -list)")
		file    = flag.String("file", "", ".bench netlist file (overrides -circuit)")
		kind    = flag.String("tpg", "adder", "TPG kind: adder, subtracter, multiplier, lfsr")
		cycles  = flag.Int("cycles", 64, "evolution length T per candidate triplet")
		seed    = flag.Int64("seed", 1, "random seed")
		solver  = flag.String("solver", "exact", "covering solver: exact, greedy, greedy-noreduce")
		objectv = flag.String("objective", "triplets", "minimize: triplets (ROM area) or testlength")
		noTrim  = flag.Bool("notrim", false, "keep full-length triplets (skip trailing-pattern deletion)")
		jsonOut = flag.String("json", "",
			"also write the full Engine Response (solution, circuit/ATPG summaries, cache and interrupt flags) as JSON to this file")
		verbose = flag.Bool("v", false, "print every selected triplet")
		jobs    = flag.Int("j", 0,
			"worker goroutines for fault simulation, matrix construction and the covering solve (0 = all processors)")
		solveBudget = flag.Duration("solve-budget", 0,
			"wall-clock budget for the exact covering solve; truncated solves return the best cover found (0 = none)")
		bound = flag.String("bound", "",
			"exact solver lower bound: auto (lagrangian, the default) or counting; the cover is bit-identical either way")
		trace = flag.Bool("trace", false,
			"record a phase-structured solve trace and print the per-phase breakdown (also embedded in -json output as response.timing)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the request; the Engine turns a cancellation
	// that reaches the covering phase into a best-so-far solution.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	req := reseeding.Request{
		Circuit:     *circuit,
		TPG:         *kind,
		Cycles:      *cycles,
		Seed:        *seed + 1,
		ATPGSeed:    *seed,
		Solver:      *solver,
		Objective:   *objectv,
		NoTrim:      *noTrim,
		SolveBudget: *solveBudget,
		Bound:       *bound,
	}
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		req.Circuit, req.Bench = "", string(src)
	}

	// Fail fast on a malformed request — the same typed checks the reseedd
	// HTTP API maps to 400 — before announcing any work.
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "reseed:", err)
		os.Exit(2)
	}

	target := *circuit
	if *file != "" {
		target = *file
	}
	fmt.Fprintf(os.Stderr, "reseed: %s: running ATPG, building the Detection Matrix and solving with the %s TPG (interrupt to keep the best cover found)...\n",
		target, *kind)

	if *trace {
		// Tracing is strictly additive: the solution is bit-identical with
		// the flag on or off; only Response.Timing appears.
		ctx = obs.ContextWithTrace(ctx, obs.NewTrace("reseed"))
	}
	eng := reseeding.NewEngine(reseeding.EngineOptions{Parallelism: *jobs})
	resp, err := eng.Solve(ctx, req)
	if err != nil {
		var reqErr *reseeding.RequestError
		if errors.As(err, &reqErr) {
			// The same typed rejection the reseedd HTTP API maps to 400:
			// the request is wrong, nothing was attempted.
			fmt.Fprintln(os.Stderr, "reseed:", err)
			os.Exit(2)
		}
		if errors.Is(err, context.Canceled) {
			fail(fmt.Errorf("interrupted before a solution existed: %w", err))
		}
		fail(err)
	}
	sol := resp.Solution

	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates\n",
		resp.Circuit.Name, resp.Circuit.Inputs, resp.Circuit.Outputs, resp.Circuit.Gates)
	fmt.Printf("ATPG: %d patterns, %d target faults (coverage %.2f%%, %d untestable, %d aborted)\n",
		resp.ATPG.Patterns, resp.ATPG.TargetFaults,
		100*resp.ATPG.Coverage, resp.ATPG.Untestable, resp.ATPG.Aborted)

	if *jsonOut != "" {
		// The full Response, not just the Solution, so the CLI's JSON
		// output is exactly what the reseedd HTTP API would answer for the
		// same Request (cache-hit flags, Interrupted, summaries).
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	fmt.Printf("\nDetection Matrix: %d x %d, reduced to %d x %d in %d sweeps (%d dominated rows, %d implied cols)\n",
		sol.MatrixRows, sol.MatrixCols, sol.ResidualRows, sol.ResidualCols,
		sol.ReductionIters, sol.DominatedRows, sol.ImpliedCols)
	fmt.Printf("solution: %d triplets (%d necessary + %d from solver), optimal=%v\n",
		sol.NumTriplets(), sol.NumNecessary, sol.NumFromSolver, sol.Optimal)
	fmt.Printf("global test length %d (uniform-T scheme: %d), ROM %d bits\n",
		sol.TestLength, sol.UniformLength, sol.ROMBits)
	fmt.Printf("effort: %d triplet simulations, %d gate evaluations\n",
		sol.TripletSims, sol.GateEvals)
	if resp.Interrupted {
		fmt.Println("interrupted: this is the best cover found before cancellation (optimal=false)")
	}
	if *trace && resp.Timing != nil {
		fmt.Println()
		printTrace(resp.Timing)
	}

	if *verbose {
		fmt.Println()
		t := report.NewTable("Selected triplets", "#", "necessary", "cycles", "faults", "delta (hex)", "theta (hex)")
		for i, st := range sol.Triplets {
			t.AddRow(
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%v", st.Necessary),
				fmt.Sprintf("%d", st.EffectiveCycles),
				fmt.Sprintf("%d", st.AssignedFaults),
				st.Delta.Hex(),
				st.Theta.Hex(),
			)
		}
		if err := t.Render(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// printTrace renders the solve's span tree as an indented per-phase
// breakdown: children under parents, durations in milliseconds, counter
// attributes appended.
func printTrace(td *obs.TraceData) {
	fmt.Printf("trace %s (%d spans", td.TraceID, len(td.Spans))
	if td.Dropped > 0 {
		fmt.Printf(", %d dropped", td.Dropped)
	}
	fmt.Println("):")
	children := make(map[string][]obs.SpanData)
	local := make(map[string]bool, len(td.Spans))
	for _, sp := range td.Spans {
		local[sp.SpanID] = true
	}
	var roots []obs.SpanData
	for _, sp := range td.Spans {
		if sp.Parent != "" && local[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var walk func(sp obs.SpanData, depth int)
	walk = func(sp obs.SpanData, depth int) {
		fmt.Printf("%*s%-12s %9.2fms", 2*depth, "", sp.Name, float64(sp.Duration)/1e6)
		for _, a := range sp.Attrs {
			if a.Str != "" {
				fmt.Printf("  %s=%s", a.Key, a.Str)
			} else {
				fmt.Printf("  %s=%d", a.Key, a.Int)
			}
		}
		fmt.Println()
		kids := children[sp.SpanID]
		sort.Slice(kids, func(a, b int) bool { return kids[a].Start < kids[b].Start })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a].Start < roots[b].Start })
	for _, sp := range roots {
		walk(sp, 0)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reseed:", err)
	os.Exit(1)
}
