// Command reseed runs the set-covering reseeding flow end to end on a
// benchmark circuit (or a user .bench netlist) and prints the solution.
//
// Usage:
//
//	reseed -circuit s1238 -tpg adder -cycles 64
//	reseed -file mydesign.bench -tpg multiplier -cycles 128 -v
//	reseed -circuit s1238 -j 4        # bound the worker pool to 4 goroutines
//	reseed -circuit s1238 -solve-budget 2s   # anytime covering solve
//
// Fault simulation, Detection Matrix construction and the exact covering
// solve run on a worker pool sized by -j (default: one worker per
// processor). The computed solution is bit-identical for every -j value as
// long as the solve completes. -solve-budget caps the wall-clock time of
// the exact covering solve: a truncated solve keeps the best cover found
// so far and reports optimal=false (the anytime contract) — that
// best-so-far is timing dependent and not covered by the -j guarantee.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/tpg"
)

func main() {
	var (
		circuit = flag.String("circuit", "s1238", "benchmark circuit name (see benchgen -list)")
		file    = flag.String("file", "", ".bench netlist file (overrides -circuit)")
		kind    = flag.String("tpg", "adder", "TPG kind: adder, subtracter, multiplier, lfsr")
		cycles  = flag.Int("cycles", 64, "evolution length T per candidate triplet")
		seed    = flag.Int64("seed", 1, "random seed")
		solver  = flag.String("solver", "exact", "covering solver: exact, greedy, greedy-noreduce")
		objectv = flag.String("objective", "triplets", "minimize: triplets (ROM area) or testlength")
		noTrim  = flag.Bool("notrim", false, "keep full-length triplets (skip trailing-pattern deletion)")
		jsonOut = flag.String("json", "", "also write the solution as JSON to this file")
		verbose = flag.Bool("v", false, "print every selected triplet")
		jobs    = flag.Int("j", 0,
			"worker goroutines for fault simulation, matrix construction and the covering solve (0 = all processors)")
		solveBudget = flag.Duration("solve-budget", 0,
			"wall-clock budget for the exact covering solve; truncated solves return the best cover found (0 = none)")
	)
	flag.Parse()

	c, err := loadCircuit(*file, *circuit)
	if err != nil {
		fail(err)
	}
	gen, err := tpg.ByName(*kind, len(c.Inputs))
	if err != nil {
		fail(err)
	}
	var solverKind core.SolverKind
	switch *solver {
	case "exact":
		solverKind = core.SolverExact
	case "greedy":
		solverKind = core.SolverGreedy
	case "greedy-noreduce":
		solverKind = core.SolverGreedyNoReduce
	default:
		fail(fmt.Errorf("unknown solver %q", *solver))
	}

	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates\n",
		c.Name, len(c.Inputs), len(c.Outputs), c.NumLogicGates())
	flow, err := core.Prepare(c, atpg.Options{Seed: *seed, Parallelism: *jobs})
	if err != nil {
		fail(err)
	}
	fmt.Printf("ATPG: %d patterns, %d target faults (coverage %.2f%%, %d untestable, %d aborted)\n",
		len(flow.Patterns), len(flow.TargetFaults),
		100*flow.ATPG.Coverage(), len(flow.ATPG.Untestable), len(flow.ATPG.Aborted))

	var objective core.Objective
	switch *objectv {
	case "triplets":
		objective = core.MinimizeTriplets
	case "testlength":
		objective = core.MinimizeTestLength
	default:
		fail(fmt.Errorf("unknown objective %q", *objectv))
	}

	coreOpts := core.Options{
		Cycles:      *cycles,
		Seed:        *seed + 1,
		Solver:      solverKind,
		Objective:   objective,
		NoTrim:      *noTrim,
		Parallelism: *jobs,
	}
	coreOpts.Exact.TimeBudget = *solveBudget
	sol, err := flow.Solve(gen, coreOpts)
	if err != nil {
		fail(err)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		if err := sol.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	fmt.Printf("\nDetection Matrix: %d x %d, reduced to %d x %d in %d sweeps (%d dominated rows, %d implied cols)\n",
		sol.MatrixRows, sol.MatrixCols, sol.ResidualRows, sol.ResidualCols,
		sol.ReductionIters, sol.DominatedRows, sol.ImpliedCols)
	fmt.Printf("solution: %d triplets (%d necessary + %d from solver), optimal=%v\n",
		sol.NumTriplets(), sol.NumNecessary, sol.NumFromSolver, sol.Optimal)
	fmt.Printf("global test length %d (uniform-T scheme: %d), ROM %d bits\n",
		sol.TestLength, sol.UniformLength, sol.ROMBits)
	fmt.Printf("effort: %d triplet simulations, %d gate evaluations\n",
		sol.TripletSims, sol.GateEvals)

	if *verbose {
		fmt.Println()
		t := report.NewTable("Selected triplets", "#", "necessary", "cycles", "faults", "delta (hex)", "theta (hex)")
		for i, st := range sol.Triplets {
			t.AddRow(
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%v", st.Necessary),
				fmt.Sprintf("%d", st.EffectiveCycles),
				fmt.Sprintf("%d", st.AssignedFaults),
				st.Delta.Hex(),
				st.Theta.Hex(),
			)
		}
		if err := t.Render(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func loadCircuit(file, circuit string) (*netlist.Circuit, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := netlist.Parse(file, f)
		if err != nil {
			return nil, err
		}
		if !c.IsCombinational() {
			return c.FullScan()
		}
		return c, nil
	}
	return bench.ScanView(circuit)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reseed:", err)
	os.Exit(1)
}
