// Command faultsim grades a pattern file against a circuit's collapsed
// stuck-at fault list using the parallel-pattern fault simulator.
//
// The pattern file holds one binary string per line, most significant bit
// first, with width equal to the circuit's input count (the format written
// by `atpg -o`).
//
// Usage:
//
//	faultsim -circuit c880 -patterns patterns.txt
//	faultsim -circuit c880 -patterns patterns.txt -j 4
//
// The fault list is graded on a worker pool sized by -j (default: one worker
// per processor); the detection report is bit-identical for every -j value.
// SIGINT/SIGTERM cancel a long grading run.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	reseeding "repro"
	"repro/internal/bench"
	"repro/internal/bitvec"
	"repro/internal/fsim"
	"repro/internal/netlist"
)

func main() {
	var (
		circuit  = flag.String("circuit", "c880", "benchmark circuit name")
		file     = flag.String("file", "", ".bench netlist file (overrides -circuit)")
		patterns = flag.String("patterns", "", "pattern file (required)")
		verbose  = flag.Bool("v", false, "list undetected faults")
		jobs     = flag.Int("j", 0,
			"worker goroutines for fault simulation (0 = all processors)")
	)
	flag.Parse()
	if *patterns == "" {
		fail(fmt.Errorf("-patterns is required"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, err := loadCircuit(*file, *circuit)
	if err != nil {
		fail(err)
	}
	pats, err := readPatterns(*patterns, len(c.Inputs))
	if err != nil {
		fail(err)
	}
	faults, stats, err := reseeding.FaultsWithStats(c)
	if err != nil {
		fail(err)
	}
	sim, err := fsim.New(c)
	if err != nil {
		fail(err)
	}
	res, err := sim.Run(faults, pats, fsim.Options{DropDetected: true, Parallelism: *jobs, Context: ctx})
	if err != nil {
		fail(err)
	}
	fmt.Printf("circuit %s: %d faults (collapsed from %d), %d patterns\n",
		c.Name, len(faults), stats.Total, len(pats))
	fmt.Printf("detected %d (%.2f%%), %d gate evaluations\n",
		res.NumDetected, 100*res.Coverage(), res.GateEvals)
	if *verbose {
		for i, d := range res.Detected {
			if !d {
				fmt.Printf("undetected: %s\n", faults[i].String(c))
			}
		}
	}
}

func readPatterns(path string, width int) ([]bitvec.Vector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []bitvec.Vector
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if s == "" {
			continue
		}
		v, err := bitvec.FromString(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if v.Width() != width {
			return nil, fmt.Errorf("%s:%d: pattern width %d, circuit has %d inputs",
				path, line, v.Width(), width)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func loadCircuit(file, circuit string) (*netlist.Circuit, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := netlist.Parse(file, f)
		if err != nil {
			return nil, err
		}
		if !c.IsCombinational() {
			return c.FullScan()
		}
		return c, nil
	}
	return bench.ScanView(circuit)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
