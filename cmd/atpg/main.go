// Command atpg runs the deterministic test generator on a circuit and
// prints the compacted test set with coverage statistics, including the
// full fault-collapsing report (total, representatives, classes, largest
// class). It can emit the patterns to a file consumed by cmd/faultsim.
// SIGINT/SIGTERM cancel a long run.
//
// Usage:
//
//	atpg -circuit c880
//	atpg -file mydesign.bench -o patterns.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	reseeding "repro"
	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/netlist"
)

func main() {
	var (
		circuit = flag.String("circuit", "c880", "benchmark circuit name")
		file    = flag.String("file", "", ".bench netlist file (overrides -circuit)")
		seed    = flag.Int64("seed", 1, "random seed")
		limit   = flag.Int("backtracks", 0, "PODEM backtrack limit (0 = default)")
		out     = flag.String("o", "", "write patterns to this file (one binary string per line)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, err := loadCircuit(*file, *circuit)
	if err != nil {
		fail(err)
	}
	// The facade variant keeps the collapsing statistics the plain Faults
	// helper discards.
	faults, stats, err := reseeding.FaultsWithStats(c)
	if err != nil {
		fail(err)
	}
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates\n",
		c.Name, len(c.Inputs), len(c.Outputs), c.NumLogicGates())
	fmt.Printf("faults: %d collapsed from %d in %d equivalence classes (largest class %d)\n",
		stats.Collapsed, stats.Total, stats.Classes, stats.MaxClass)

	res, err := atpg.Run(c, faults, atpg.Options{Seed: *seed, BacktrackLimit: *limit, Context: ctx})
	if err != nil {
		fail(err)
	}
	fmt.Printf("patterns: %d (from %d before compaction; %d random-phase patterns tried)\n",
		len(res.Patterns), res.Stats.PatternsBeforeCompaction, res.Stats.RandomPatterns)
	fmt.Printf("coverage: %.2f%% raw, %.2f%% of testable\n",
		100*res.Coverage(), 100*res.TestableCoverage())
	fmt.Printf("detected: %d random-phase, %d deterministic; %d untestable, %d aborted\n",
		res.Stats.RandomDetected, res.Stats.PodemDetected,
		res.Stats.PodemUntestable, res.Stats.PodemAborted)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		w := bufio.NewWriter(f)
		for _, p := range res.Patterns {
			fmt.Fprintln(w, p.String())
		}
		if err := w.Flush(); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d patterns to %s\n", len(res.Patterns), *out)
	}
}

func loadCircuit(file, circuit string) (*netlist.Circuit, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := netlist.Parse(file, f)
		if err != nil {
			return nil, err
		}
		if !c.IsCombinational() {
			return c.FullScan()
		}
		return c, nil
	}
	return bench.ScanView(circuit)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
