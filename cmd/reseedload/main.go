// Command reseedload drives a reseedd replica or reseedgw gateway with a
// deterministic solve workload and writes latency percentiles as
// BENCH_cluster.json — the cluster's service-level trajectory file,
// regenerated and diffed by CI the way BENCH_bounds.json is.
//
// Usage:
//
//	reseedload -target http://127.0.0.1:8350 -out BENCH_cluster.json
//
// The workload is two waves over the same deterministic key set
// (circuits × seeds): a cold wave that pays the ATPG builds and a warm
// wave that measures the cache path. The process exits non-zero when any
// request fails, so a smoke harness needs no JSON parsing to detect a
// broken cluster.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cluster/loadgen"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of the gateway or replica under load (required)")
		out         = flag.String("out", "BENCH_cluster.json", "output file (- for stdout)")
		circuits    = flag.String("circuits", "", "comma-separated built-in circuits (default: the committed trio)")
		seeds       = flag.Int("seeds", 0, "seeds per circuit (default 2)")
		repeats     = flag.Int("repeats", 0, "warm-wave replays of the key set (default 3)")
		concurrency = flag.Int("c", 0, "client workers (default 4)")
		cycles      = flag.Int("cycles", 0, "evolution length per request (default 32)")
		sloP99      = flag.Float64("slo-warm-p99-ms", 0, "warm-phase p99 threshold for the pass flag (default 5000)")
		timeout     = flag.Duration("timeout", 10*time.Minute, "overall run budget")
	)
	flag.Parse()
	log.SetPrefix("reseedload: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	if *target == "" {
		log.Fatal("pass -target http://host:port")
	}

	opts := loadgen.Options{
		Target:          strings.TrimRight(*target, "/"),
		SeedsPerCircuit: *seeds,
		WarmRepeats:     *repeats,
		Concurrency:     *concurrency,
		Cycles:          *cycles,
		SLOWarmP99Ms:    *sloP99,
	}
	if *circuits != "" {
		for _, c := range strings.Split(*circuits, ",") {
			if c = strings.TrimSpace(c); c != "" {
				opts.Circuits = append(opts.Circuits, c)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := loadgen.Run(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}

	failed := 0
	for _, ph := range rep.Phases {
		log.Printf("%s: %d requests, %d errors, p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms",
			ph.Name, ph.Requests, ph.Errors, ph.P50Ms, ph.P90Ms, ph.P99Ms, ph.MaxMs)
		failed += ph.Errors
	}
	if failed > 0 {
		log.Fatalf("%d requests failed", failed)
	}
	if !rep.SLOPass {
		log.Printf("warning: warm p99 above SLO %.0fms", rep.SLOWarmP99Ms)
	}
}
