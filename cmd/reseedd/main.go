// Command reseedd is the resident reseeding daemon: an HTTP JSON service
// over the reseeding Engine with warm artifact caches, an optional
// persistent on-disk store, asynchronous anytime jobs and admission
// control.
//
// Usage:
//
//	reseedd -addr :8351 -store /var/lib/reseedd
//	reseedd -addr 127.0.0.1:0 -j 4 -max-inflight 8 -queue 128
//
// Endpoints (see docs/API.md for schemas and curl examples):
//
//	GET    /healthz        liveness
//	POST   /v1/solve       synchronous solve of one Request
//	POST   /v1/batch       fan-out over several Requests
//	POST   /v1/jobs        start an asynchronous anytime job
//	GET    /v1/jobs/{id}   poll its best-so-far snapshot / final Response
//	DELETE /v1/jobs/{id}   cancel it (keeps the best cover found)
//	GET    /v1/stats       engine + server counters
//	GET    /metrics        Prometheus text exposition
//	GET    /v1/traces      solve-trace flight recorder (docs/OBSERVABILITY.md)
//
// With -store, ATPG preparations and Detection Matrices are persisted as
// content-addressed JSON under the given directory, and a restarted daemon
// serves its first request from disk instead of re-running ATPG. The same
// records are served to sibling replicas over GET/PUT /v1/store/...; with
// -remote-store URL the daemon reads through to (and writes through to) a
// sibling's store, tiered under the local directory when both are set.
//
// With -peers URL,URL,... a POST /v1/dist/solve fans the exact solver's
// top-level subtrees out across the named replicas (see docs/API.md); set
// -advertise to this daemon's own base URL so lease holders can exchange
// incumbents with it.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, running
// jobs turn anytime (their exact solves finish with the best cover found
// so far), and the process exits when everything has wound down or after
// -drain-timeout, whichever comes first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	reseeding "repro"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr = flag.String("addr", ":8351", "listen address (host:port; port 0 picks a free port)")
		jobs = flag.Int("j", 0,
			"worker goroutines per solve phase (0 = all processors)")
		storeDir = flag.String("store", "",
			"directory for the persistent artifact store (empty = in-memory caches only)")
		maxFlows = flag.Int("max-flows", 0,
			"bound on in-memory cached ATPG preparations (0 = unbounded)")
		maxMatrices = flag.Int("max-matrices", 0,
			"bound on in-memory cached Detection Matrices (0 = unbounded)")
		maxInFlight = flag.Int("max-inflight", 0,
			"concurrent solves admitted across all endpoints (0 = 2 per processor)")
		queue = flag.Int("queue", 64,
			"synchronous requests allowed to wait for a slot before 429 (negative = none)")
		maxJobs      = flag.Int("max-jobs", 256, "finished jobs retained for polling")
		maxBatch     = flag.Int("max-batch", 64, "requests accepted per /v1/batch call")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second,
			"how long a SIGINT/SIGTERM drain may take before the process exits anyway")
		remoteStore = flag.String("remote-store", "",
			"base URL of a replica serving /v1/store (with -store: tiered local-then-remote)")
		peers = flag.String("peers", "",
			"comma-separated base URLs of sibling replicas accepting distributed subtree leases")
		advertise = flag.String("advertise", "",
			"this replica's own base URL as peers reach it (enables incumbent exchange)")
		processName = flag.String("process-name", "reseedd",
			"process label stamped on trace spans (distinguishes replicas in stitched traces)")
		pprofAddr = flag.String("pprof", "",
			"serve net/http/pprof on this address (empty = profiling disabled)")
	)
	flag.Parse()
	log.SetPrefix("reseedd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	engOpts := reseeding.EngineOptions{
		Parallelism:       *jobs,
		MaxCachedFlows:    *maxFlows,
		MaxCachedMatrices: *maxMatrices,
	}
	cfg := server.Config{
		MaxInFlight: *maxInFlight,
		MaxQueue:    *queue,
		MaxJobs:     *maxJobs,
		MaxBatch:    *maxBatch,
		// The batch fan-out obeys the same -j bound as every other worker
		// pool, so -j 1 genuinely serializes the daemon.
		BatchParallelism: *jobs,
		ProcessName:      *processName,
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() { log.Print(http.Serve(pln, obs.PprofHandler())) }()
	}
	var localStore *reseeding.Store
	if *storeDir != "" {
		st, err := reseeding.OpenStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		localStore = st
		cfg.Store = st
		flows, matrices, err := st.Len()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("artifact store %s: %d flows, %d matrices", *storeDir, flows, matrices)
	}
	switch {
	case localStore != nil && *remoteStore != "":
		t := store.NewTiered(localStore, store.NewRemote(*remoteStore, nil))
		engOpts.Store = t
		cfg.Backends = t.Backends()
		log.Printf("tiered artifact store: local %s over remote %s", *storeDir, *remoteStore)
	case localStore != nil:
		engOpts.Store = localStore
	case *remoteStore != "":
		rem := store.NewRemote(*remoteStore, nil)
		engOpts.Store = rem
		cfg.Backends = rem.Backends()
		log.Printf("remote artifact store %s", *remoteStore)
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
		log.Printf("distributed solve peers: %v", cfg.Peers)
	}
	cfg.Advertise = strings.TrimRight(*advertise, "/")

	srv := server.New(reseeding.NewEngine(engOpts), cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	log.Printf("listening on http://%s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Both shutdowns must run concurrently: srv.Shutdown cancels the solve
	// base context first thing, which is what lets an in-flight synchronous
	// solve turn anytime and let its HTTP exchange — which hs.Shutdown is
	// waiting on — finish with the best cover found instead of holding the
	// drain open.
	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(ctx) }()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Print(err)
	}
	if err := <-drained; err != nil {
		fmt.Fprintln(os.Stderr, "reseedd: drain incomplete:", err)
		os.Exit(1)
	}
	log.Print("drained cleanly")
}
