// Quickstart: compute a minimal reseeding solution for one benchmark UUT
// with an adder-based accumulator TPG, and print what would be stored in
// the BIST ROM.
package main

import (
	"fmt"
	"log"

	reseeding "repro"
)

func main() {
	// The unit under test: the full-scan view of a benchmark circuit. Any
	// combinational *reseeding.Circuit works, including ones parsed from
	// .bench files via reseeding.ParseBench.
	scan, err := reseeding.ScanView("s420")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UUT %s: %d inputs, %d outputs, %d gates\n",
		scan.Name, len(scan.Inputs), len(scan.Outputs), scan.NumLogicGates())

	// Prepare runs the deterministic ATPG once: it yields the target fault
	// list F and the compacted test set the triplet candidates are seeded
	// from.
	flow, err := reseeding.Prepare(scan, reseeding.ATPGOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %d patterns covering %d faults\n",
		len(flow.Patterns), len(flow.TargetFaults))

	// The TPG is an existing functional unit — here an adder-based
	// accumulator as wide as the UUT's input vector.
	gen, err := reseeding.NewTPG("adder", len(scan.Inputs))
	if err != nil {
		log.Fatal(err)
	}

	// Solve casts triplet selection as a set covering problem: essentiality
	// and dominance shrink the Detection Matrix, an exact branch-and-bound
	// covers the residual.
	sol, err := flow.Solve(gen, reseeding.Options{Cycles: 64, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreseeding solution: %d triplets (%d necessary, %d from solver)\n",
		sol.NumTriplets(), sol.NumNecessary, sol.NumFromSolver)
	fmt.Printf("global test length: %d cycles, ROM: %d bits\n", sol.TestLength, sol.ROMBits)
	fmt.Println("\nROM contents (δ, θ, cycles):")
	for i, t := range sol.Triplets {
		fmt.Printf("  %2d: δ=%s θ=%s T=%d\n", i, t.Delta.Hex(), t.Theta.Hex(), t.EffectiveCycles)
	}
}
