// Quickstart: compute a minimal reseeding solution for one benchmark UUT
// through the reseeding Engine, and print what would be stored in the
// BIST ROM.
//
// The Engine is the v2 front door: a request is a plain (JSON-taggable)
// struct, the expensive artifacts — the ATPG preparation and the
// Detection Matrix — are cached inside the Engine, and the context
// cancels the whole pipeline. The second request below reuses the first
// one's ATPG preparation: only the matrix for the new generator kind is
// built.
package main

import (
	"context"
	"fmt"
	"log"

	reseeding "repro"
)

func main() {
	ctx := context.Background()
	eng := reseeding.NewEngine(reseeding.EngineOptions{})

	// One reseeding query: the unit under test (the full-scan view of a
	// benchmark circuit), the TPG kind, the evolution length T and the θ
	// seed. Any combinational circuit works — inline .bench source goes in
	// the Bench field instead of Circuit.
	resp, err := eng.Solve(ctx, reseeding.Request{
		Circuit: "s420",
		TPG:     "adder",
		Cycles:  64,
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UUT %s: %d inputs, %d outputs, %d gates\n",
		resp.Circuit.Name, resp.Circuit.Inputs, resp.Circuit.Outputs, resp.Circuit.Gates)
	fmt.Printf("ATPG: %d patterns covering %d faults (cached=%v)\n",
		resp.ATPG.Patterns, resp.ATPG.TargetFaults, resp.PrepareCached)

	sol := resp.Solution
	fmt.Printf("\nreseeding solution: %d triplets (%d necessary, %d from solver)\n",
		sol.NumTriplets(), sol.NumNecessary, sol.NumFromSolver)
	fmt.Printf("global test length: %d cycles, ROM: %d bits\n", sol.TestLength, sol.ROMBits)
	fmt.Println("\nROM contents (δ, θ, cycles):")
	for i, t := range sol.Triplets {
		fmt.Printf("  %2d: δ=%s θ=%s T=%d\n", i, t.Delta.Hex(), t.Theta.Hex(), t.EffectiveCycles)
	}

	// Same circuit, different generator: the ATPG preparation is served
	// from the Engine's cache (prepare_cached=true), so only the new
	// generator's Detection Matrix is built.
	resp2, err := eng.Solve(ctx, reseeding.Request{
		Circuit: "s420",
		TPG:     "lfsr",
		Cycles:  64,
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame UUT with an LFSR (prepare cached=%v): %d triplets, test length %d\n",
		resp2.PrepareCached, resp2.Solution.NumTriplets(), resp2.Solution.TestLength)
}
