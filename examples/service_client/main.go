// Service client: boot a reseedd-style HTTP service in-process on an
// ephemeral port, then drive it the way a remote client would — a
// synchronous solve, a batch, and an asynchronous anytime job polled to
// completion — all over plain JSON.
//
// The server side is three lines (engine, server.New, http.Serve); the
// rest of the program is the client's view: every payload here could as
// well travel to a daemon on another machine (see cmd/reseedd and
// docs/API.md).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	reseeding "repro"
	"repro/internal/server"
)

func main() {
	// Server side: an Engine behind the HTTP API, on an ephemeral port.
	eng := reseeding.NewEngine(reseeding.EngineOptions{})
	srv := server.New(eng, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("service up (ephemeral port)")

	// Client side. 1: a synchronous solve.
	var resp reseeding.Response
	postJSON(base+"/v1/solve", reseeding.Request{
		Circuit: "s420", TPG: "adder", Cycles: 64, Seed: 2,
	}, &resp)
	fmt.Printf("solve: %s via %s: %d triplets, test length %d, optimal=%v\n",
		resp.Circuit.Name, resp.Solution.Generator,
		resp.Solution.NumTriplets(), resp.Solution.TestLength, resp.Solution.Optimal)

	// 2: a batch — four generator kinds for the same UUT, fanned out on the
	// server's worker pool. The ATPG preparation is shared; each kind gets
	// its own Detection Matrix.
	var batch struct {
		Results []struct {
			Response *reseeding.Response `json:"response"`
			Error    string              `json:"error"`
		} `json:"results"`
	}
	var reqs struct {
		Requests []reseeding.Request `json:"requests"`
	}
	for _, kind := range reseeding.TPGKinds() {
		reqs.Requests = append(reqs.Requests,
			reseeding.Request{Circuit: "s420", TPG: kind, Cycles: 64, Seed: 2})
	}
	postJSON(base+"/v1/batch", reqs, &batch)
	fmt.Println("batch over every TPG kind:")
	for i, r := range batch.Results {
		if r.Error != "" {
			fmt.Printf("  %-10s error: %s\n", reqs.Requests[i].TPG, r.Error)
			continue
		}
		fmt.Printf("  %-10s %2d triplets, test length %3d (prepare cached=%v)\n",
			reqs.Requests[i].TPG, r.Response.Solution.NumTriplets(),
			r.Response.Solution.TestLength, r.Response.PrepareCached)
	}

	// 3: an asynchronous job. The covering solve is anytime: while it
	// runs, GET /v1/jobs/{id} reports the best cover found so far, and
	// DELETE would stop it while keeping that incumbent.
	var created struct {
		ID string `json:"id"`
	}
	postJSON(base+"/v1/jobs", reseeding.Request{
		Circuit: "s820", TPG: "adder", Cycles: 64, Seed: 2,
	}, &created)
	fmt.Printf("job %s accepted\n", created.ID)
	for {
		var job struct {
			State    string               `json:"state"`
			Best     *reseeding.Incumbent `json:"best"`
			Response *reseeding.Response  `json:"response"`
			Error    string               `json:"error"`
		}
		getJSON(base+"/v1/jobs/"+created.ID, &job)
		switch job.State {
		case "done":
			fmt.Printf("job done: %d triplets (last incumbent snapshot: cost %d at node %d)\n",
				job.Response.Solution.NumTriplets(), job.Best.Cost, job.Best.Nodes)
		case "failed", "cancelled":
			log.Fatalf("job %s: %s", job.State, job.Error)
		default:
			if job.Best != nil {
				fmt.Printf("  ...%s, best so far: %d triplets\n", job.State, job.Best.Rows)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		break
	}

	// Shut the service down gracefully, as SIGTERM would.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained")
}

// postJSON POSTs v and decodes the JSON answer into out, failing loudly on
// any non-2xx status — example-grade error handling.
func postJSON(url string, v, out any) {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
