// LFSR reseeding: the flexibility claim of the paper is that the set
// covering formulation is not tied to any particular generator. This
// example runs the very same flow with a multiple-polynomial LFSR — the
// classical reseeding hardware of Hellebrand et al. — instead of an
// arithmetic accumulator, and contrasts the two solutions.
//
// Both queries go through one reseeding Engine, so the circuit is
// prepared (fault list + ATPG) exactly once and each generator kind only
// pays for its own Detection Matrix.
package main

import (
	"context"
	"fmt"
	"log"

	reseeding "repro"
)

func main() {
	ctx := context.Background()
	eng := reseeding.NewEngine(reseeding.EngineOptions{})

	first := true
	for _, kind := range []string{"lfsr", "adder"} {
		resp, err := eng.Solve(ctx, reseeding.Request{
			Circuit: "s641",
			TPG:     kind,
			Cycles:  64,
			Seed:    2,
		})
		if err != nil {
			log.Fatal(err)
		}
		if first {
			fmt.Printf("UUT %s: %d scan inputs, %d target faults, %d ATPG patterns\n\n",
				resp.Circuit.Name, resp.Circuit.Inputs, resp.ATPG.TargetFaults, resp.ATPG.Patterns)
			fmt.Printf("%-12s %10s %12s %12s %10s\n", "TPG", "triplets", "necessary", "test length", "optimal")
			first = false
		}
		sol := resp.Solution
		fmt.Printf("%-12s %10d %12d %12d %10v\n",
			kind, sol.NumTriplets(), sol.NumNecessary, sol.TestLength, sol.Optimal)
	}

	stats := eng.Stats()
	fmt.Printf("\nengine: %d ATPG preparation for %d solves (%d prepare cache hits)\n",
		stats.PrepareBuilds, stats.Solves, stats.PrepareHits)
	fmt.Println(`
Notes: for the LFSR, θ selects one of the bank's feedback polynomials
(multiple-polynomial reseeding); for the accumulator θ is the addend held
in the input register. The covering model never looks inside the generator:
it only consumes the Detection Matrix, which is why the same code minimizes
both solutions.`)
}
