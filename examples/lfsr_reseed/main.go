// LFSR reseeding: the flexibility claim of the paper is that the set
// covering formulation is not tied to any particular generator. This
// example runs the very same flow with a multiple-polynomial LFSR — the
// classical reseeding hardware of Hellebrand et al. — instead of an
// arithmetic accumulator, and contrasts the two solutions.
package main

import (
	"fmt"
	"log"

	reseeding "repro"
)

func main() {
	scan, err := reseeding.ScanView("s641")
	if err != nil {
		log.Fatal(err)
	}
	flow, err := reseeding.Prepare(scan, reseeding.ATPGOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UUT %s: %d scan inputs, %d target faults, %d ATPG patterns\n\n",
		scan.Name, len(scan.Inputs), len(flow.TargetFaults), len(flow.Patterns))

	fmt.Printf("%-12s %10s %12s %12s %10s\n", "TPG", "triplets", "necessary", "test length", "optimal")
	for _, kind := range []string{"lfsr", "adder"} {
		gen, err := reseeding.NewTPG(kind, len(scan.Inputs))
		if err != nil {
			log.Fatal(err)
		}
		sol, err := flow.Solve(gen, reseeding.Options{Cycles: 64, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d %12d %12d %10v\n",
			kind, sol.NumTriplets(), sol.NumNecessary, sol.TestLength, sol.Optimal)
	}

	fmt.Println(`
Notes: for the LFSR, θ selects one of the bank's feedback polynomials
(multiple-polynomial reseeding); for the accumulator θ is the addend held
in the input register. The covering model never looks inside the generator:
it only consumes the Detection Matrix, which is why the same code minimizes
both solutions.`)
}
