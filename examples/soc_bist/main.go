// SoC functional BIST scenario: one wide accumulator (e.g. the datapath of
// a MAC unit) serves as the shared test pattern generator for several cores
// of a system on chip. Each core taps a bit-slice of the accumulator output
// bus, as in the paper's motivation: SoC modules are functionally linked by
// bus- and multiplexer-oriented interconnections, so an existing arithmetic
// unit can feed deterministic patterns to its neighbours.
//
// The example wraps the shared accumulator in a per-core view (a Generator
// that embeds core-width seeds into the bus and extracts the core's slice)
// and computes an independent minimal reseeding solution per core.
//
// Because the per-core view is a custom Generator — not one of the named
// kinds a serializable Request can carry — it uses the Engine's
// artifact-level API: PrepareNamed serves each core's ATPG preparation
// from the cache (across program runs of the same process, and across
// cores repeated in a session), and SolveFlow threads the context through
// matrix construction and the covering solve. Matrices are not memoized on
// this path; a custom Generator's name is too weak a cache key.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	reseeding "repro"
	"repro/internal/bitvec"
)

// busTPG adapts a bus-wide accumulator to a core occupying [offset,
// offset+width) of the output bus. Seeds are embedded at the core's offset;
// the remaining bus bits are drawn from the core's seed value mixed across
// the bus so the accumulator's carry chain stays active.
type busTPG struct {
	inner    reseeding.Generator
	busWidth int
	offset   int
	width    int
}

func (b *busTPG) Name() string { return b.inner.Name() + "-slice" }
func (b *busTPG) Width() int   { return b.width }

func (b *busTPG) Load(delta, theta bitvec.Vector) error {
	if delta.Width() != b.width || theta.Width() != b.width {
		return fmt.Errorf("busTPG: seed width %d, want %d", delta.Width(), b.width)
	}
	return b.inner.Load(b.embed(delta), b.embed(theta))
}

// embed places a core-width value at the core's bus offset and replicates
// it across the rest of the bus.
func (b *busTPG) embed(v bitvec.Vector) bitvec.Vector {
	out := bitvec.New(b.busWidth)
	for i := 0; i < b.busWidth; i++ {
		if v.Bit((i + b.busWidth - b.offset) % b.width) {
			out.SetBit(i, true)
		}
	}
	// Exact placement for the core's own slice.
	for i := 0; i < b.width; i++ {
		out.SetBit(b.offset+i, v.Bit(i))
	}
	return out
}

func (b *busTPG) Output() bitvec.Vector {
	bus := b.inner.Output()
	out := bitvec.New(b.width)
	for i := 0; i < b.width; i++ {
		out.SetBit(i, bus.Bit(b.offset+i))
	}
	return out
}

func (b *busTPG) Step() { b.inner.Step() }

func (b *busTPG) RandomTheta(rng *rand.Rand) bitvec.Vector {
	return bitvec.Random(b.width, rng)
}

func main() {
	ctx := context.Background()
	eng := reseeding.NewEngine(reseeding.EngineOptions{})

	// Three cores of the SoC, each a benchmark UUT in full-scan form.
	cores := []string{"s420", "s820", "s953"}

	// Shared TPG: a 128-bit adder accumulator (wider than any core).
	const busWidth = 128
	fmt.Printf("SoC BIST: shared %d-bit adder accumulator feeding %d cores\n\n", busWidth, len(cores))

	offset := 0
	totalROM, totalLength := 0, 0
	for _, name := range cores {
		flow, _, err := eng.PrepareNamed(ctx, name, reseeding.ATPGOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		inner, err := reseeding.NewTPG("adder", busWidth)
		if err != nil {
			log.Fatal(err)
		}
		w := len(flow.Circuit.Inputs)
		if offset+w > busWidth {
			offset = 0 // wrap: cores share bus lanes across sessions
		}
		gen := &busTPG{inner: inner, busWidth: busWidth, offset: offset, width: w}
		offset += w

		sol, err := eng.SolveFlow(ctx, flow, gen, reseeding.Options{Cycles: 64, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("core %-6s (%3d scan inputs): %2d reseedings (%d necessary), test %4d cycles, ROM %5d bits\n",
			name, w, sol.NumTriplets(), sol.NumNecessary, sol.TestLength, sol.ROMBits)
		totalROM += sol.ROMBits
		totalLength += sol.TestLength
	}
	fmt.Printf("\nSoC session: %d cycles of functional-BIST test, %d ROM bits total\n",
		totalLength, totalROM)
	fmt.Println("(cores are tested back to back by reprogramming the same accumulator)")
}
