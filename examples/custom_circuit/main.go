// Custom circuit: the library is not tied to the built-in benchmarks. This
// example submits a user netlist in the classic .bench format (here a
// 4-bit carry-ripple comparator with a registered flag) as an inline
// Engine request — the serializable Request carries the netlist source
// itself, so the same query could arrive as JSON over a wire — and
// computes reseeding solutions under two different objectives: minimum ROM
// area (triplet count) and minimum test time. Sequential sources are
// converted to their full-scan test view automatically.
package main

import (
	"context"
	"fmt"
	"log"

	reseeding "repro"
)

// A small datapath block: 4-bit equality and greater-than comparator with a
// registered "sticky" flag that remembers whether any mismatch was seen.
const comparatorBench = `
# cmp4: 4-bit comparator with sticky mismatch flag
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
INPUT(b0)
INPUT(b1)
INPUT(b2)
INPUT(b3)
INPUT(clr)
OUTPUT(eq)
OUTPUT(gt)
OUTPUT(sticky)

x0 = XNOR(a0, b0)
x1 = XNOR(a1, b1)
x2 = XNOR(a2, b2)
x3 = XNOR(a3, b3)
e01 = AND(x0, x1)
e23 = AND(x2, x3)
eq  = AND(e01, e23)

nb3 = NOT(b3)
nb2 = NOT(b2)
nb1 = NOT(b1)
nb0 = NOT(b0)
g3 = AND(a3, nb3)
g2a = AND(a2, nb2)
g2 = AND(g2a, x3)
g1a = AND(a1, nb1)
g1b = AND(g1a, x3)
g1 = AND(g1b, x2)
g0a = AND(a0, nb0)
g0b = AND(g0a, x3)
g0c = AND(g0b, x2)
g0 = AND(g0c, x1)
gto = OR(g3, g2)
gti = OR(g1, g0)
gt  = OR(gto, gti)

neq = NOT(eq)
keep = AND(sticky_q, nclr)
nclr = NOT(clr)
stin = OR(neq, keep)
sticky = BUFF(sticky_q)
sticky_q = DFF(stin)
`

func main() {
	ctx := context.Background()
	eng := reseeding.NewEngine(reseeding.EngineOptions{})

	var width int
	for i, obj := range []struct {
		name      string
		objective string
	}{
		{"minimize ROM area   ", "triplets"},
		{"minimize test length", "testlength"},
	} {
		resp, err := eng.Solve(ctx, reseeding.Request{
			Bench:     comparatorBench, // inline source; content-addressed in the cache
			TPG:       "adder",
			Cycles:    32,
			Seed:      2,
			Objective: obj.objective,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("scan view %s: %d inputs, %d gates; ATPG found %d patterns for %d faults\n\n",
				resp.Circuit.Name, resp.Circuit.Inputs, resp.Circuit.Gates,
				resp.ATPG.Patterns, resp.ATPG.TargetFaults)
		}
		width = resp.Circuit.Inputs
		sol := resp.Solution
		fmt.Printf("%s: %d triplets, %4d test cycles, %4d ROM bits (optimal=%v, prepare cached=%v)\n",
			obj.name, sol.NumTriplets(), sol.TestLength, sol.ROMBits, sol.Optimal, resp.PrepareCached)
	}

	// The matching BIST hardware can be synthesized directly, as wide as
	// the scan view's input vector.
	hw, err := reseeding.SynthesizeTPG("adder", width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized TPG hardware: %d gates + %d DFFs (emit with cmd/tpggen)\n",
		hw.NumLogicGates(), len(hw.DFFs))
}
