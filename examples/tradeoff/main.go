// Tradeoff reproduces the paper's Figure 2 interactively: on s1238 with an
// adder accumulator, sweeping the candidate evolution length T trades fewer
// stored reseedings (less area) for a longer global test.
//
// Each point of the sweep is one Engine request that differs only in
// Cycles: the ATPG preparation is computed once and served from the cache
// for every subsequent point (watch the cached column), while each T gets
// its own Detection Matrix.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	reseeding "repro"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()
	eng := reseeding.NewEngine(reseeding.EngineOptions{})

	fmt.Println("s1238 + adder accumulator: reseedings vs. test length")
	fmt.Printf("%8s %10s %12s %10s %8s\n", "T", "triplets", "test length", "ROM bits", "cached")
	var chart []report.Point
	var width int
	for _, t := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		resp, err := eng.Solve(ctx, reseeding.Request{
			Circuit: "s1238",
			TPG:     "adder",
			Cycles:  t,
			Seed:    2,
		})
		if err != nil {
			log.Fatal(err)
		}
		sol := resp.Solution
		width = resp.Circuit.Inputs
		// ROM: 2 seeds of UUT width plus a cycle counter per triplet.
		romBits := sol.NumTriplets() * (2*width + 16)
		fmt.Printf("%8d %10d %12d %10d %8v\n",
			t, sol.NumTriplets(), sol.TestLength, romBits, resp.PrepareCached)
		chart = append(chart, report.Point{
			X: float64(sol.TestLength), Y: float64(sol.NumTriplets()),
			Label: fmt.Sprintf("%d", sol.NumTriplets()),
		})
	}
	fmt.Println()
	if err := report.Chart(os.Stdout, "Figure 2 shape (annotations = #reseedings)",
		"global test length", "#reseedings", chart); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: the first point is the raw minimum cover of the ATPG test set;")
	fmt.Println("letting each seed evolve longer amortizes one stored triplet over many")
	fmt.Println("patterns until a handful of reseedings suffices, at the price of test time.")
}
