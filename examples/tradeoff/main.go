// Tradeoff reproduces the paper's Figure 2 interactively: on s1238 with an
// adder accumulator, sweeping the candidate evolution length T trades fewer
// stored reseedings (less area) for a longer global test.
package main

import (
	"fmt"
	"log"
	"os"

	reseeding "repro"
	"repro/internal/report"
)

func main() {
	scan, err := reseeding.ScanView("s1238")
	if err != nil {
		log.Fatal(err)
	}
	flow, err := reseeding.Prepare(scan, reseeding.ATPGOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := reseeding.NewTPG("adder", len(scan.Inputs))
	if err != nil {
		log.Fatal(err)
	}

	sweep := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	points, err := flow.Tradeoff(gen, sweep, reseeding.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("s1238 + adder accumulator: reseedings vs. test length")
	fmt.Printf("%8s %10s %12s %10s\n", "T", "triplets", "test length", "ROM bits")
	var chart []report.Point
	for _, p := range points {
		// ROM: 2 seeds of UUT width plus a cycle counter per triplet.
		romBits := p.Triplets * (2*len(scan.Inputs) + 16)
		fmt.Printf("%8d %10d %12d %10d\n", p.Cycles, p.Triplets, p.TestLength, romBits)
		chart = append(chart, report.Point{
			X: float64(p.TestLength), Y: float64(p.Triplets),
			Label: fmt.Sprintf("%d", p.Triplets),
		})
	}
	fmt.Println()
	if err := report.Chart(os.Stdout, "Figure 2 shape (annotations = #reseedings)",
		"global test length", "#reseedings", chart); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: the first point is the raw minimum cover of the ATPG test set;")
	fmt.Println("letting each seed evolve longer amortizes one stored triplet over many")
	fmt.Println("patterns until a handful of reseedings suffices, at the price of test time.")
}
