package reseeding

// Facade-level coverage of the v2 Engine surface: the v1 wrappers really
// are served by the package-default Engine, and the fault facade exposes
// the collapsing statistics.

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// The v1 Prepare wrapper honors ATPGOptions.Context: a cancelled context
// aborts the preparation instead of running the ATPG to completion.
func TestPrepareHonorsOptionsContext(t *testing.T) {
	scan, err := ScanView("s953")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Prepare(scan, ATPGOptions{Seed: 42, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Prepare returned %v, want context.Canceled", err)
	}
}

// FaultsWithStats must return the same list as Faults plus the collapsing
// statistics the plain helper discards.
func TestFaultsWithStats(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
n1 = AND(a, b)
n2 = NOT(n1)
z = OR(n2, c)
`
	circ, err := ParseBench("tiny", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Faults(circ)
	if err != nil {
		t.Fatal(err)
	}
	list, stats, err := FaultsWithStats(circ)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != len(plain) {
		t.Errorf("list lengths differ: %d vs %d", len(list), len(plain))
	}
	if stats.Collapsed != len(list) {
		t.Errorf("stats.Collapsed = %d, list has %d", stats.Collapsed, len(list))
	}
	if stats.Total <= stats.Collapsed {
		t.Errorf("collapsing had no effect: total %d, collapsed %d", stats.Total, stats.Collapsed)
	}
	if stats.Classes != stats.Collapsed {
		t.Errorf("classes %d != collapsed %d", stats.Classes, stats.Collapsed)
	}
	if stats.MaxClass < 2 {
		t.Errorf("largest class %d, want >= 2", stats.MaxClass)
	}
}

// The v1 Prepare wrapper is served by the package-default Engine: two
// calls with content-equal circuits and equal options share one cached
// Flow (pointer identity), different options do not.
func TestPrepareServedByDefaultEngine(t *testing.T) {
	scanA, err := ScanView("s820")
	if err != nil {
		t.Fatal(err)
	}
	scanB, err := ScanView("s820") // distinct object, equal content
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Prepare(scanA, ATPGOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Prepare(scanB, ATPGOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("equal circuits + options did not share the cached Flow")
	}
	f3, err := Prepare(scanA, ATPGOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Error("different ATPG seed shared a cached Flow")
	}
}

// The v1 one-shot Run wrapper flows through the same caches and stays
// deterministic.
func TestRunServedByDefaultEngine(t *testing.T) {
	a, err := Run("s420", "adder", ATPGOptions{Seed: 3}, Options{Cycles: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("s420", "adder", ATPGOptions{Seed: 3}, Options{Cycles: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTriplets() != b.NumTriplets() || a.TestLength != b.TestLength {
		t.Errorf("repeated Run diverged: %d/%d vs %d/%d",
			a.NumTriplets(), a.TestLength, b.NumTriplets(), b.TestLength)
	}
	stats := DefaultEngine().Stats()
	if stats.PrepareBuilds == 0 || stats.Solves < 2 {
		t.Errorf("default engine did not serve Run: %+v", stats)
	}
}
