package fsim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
)

// A cancelled context must abort the run with the context's error before
// any further pattern block is simulated.
func TestRunCancelledContext(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, err := fault.List(c)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	patterns := make([]bitvec.Vector, 8)
	for i := range patterns {
		patterns[i] = bitvec.Random(len(c.Inputs), rng)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sim.Run(faults, patterns, Options{DropDetected: true, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	// A nil context keeps the old behaviour.
	res, err := sim.Run(faults, patterns, Options{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PatternsApplied == 0 {
		t.Error("nil-context run simulated nothing")
	}
}
