package fsim

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/netlist"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func mustParse(t testing.TB, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseString(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return c
}

// refFaultyEval is a naive single-pattern faulty-machine reference: evaluate
// every gate in topological order with the fault injected.
func refFaultyEval(c *netlist.Circuit, f fault.Fault, p bitvec.Vector) (outs []bool) {
	vals := make(map[int]bool)
	force := func(id int, v bool) bool {
		if f.Pin == fault.OutputPin && f.Gate == id {
			return f.StuckAt1
		}
		return v
	}
	for i, id := range c.Inputs {
		vals[id] = force(id, p.Bit(i))
	}
	for _, id := range c.TopoOrder() {
		g := c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		in := make([]uint64, len(g.Fanin))
		for pin, fi := range g.Fanin {
			v := vals[fi]
			if f.Gate == id && f.Pin == pin {
				v = f.StuckAt1
			}
			if v {
				in[pin] = 1
			}
		}
		v := netlist.Eval(g.Type, in)&1 == 1
		vals[id] = force(id, v)
	}
	for _, id := range c.Outputs {
		outs = append(outs, vals[id])
	}
	return outs
}

func refGoodEval(c *netlist.Circuit, p bitvec.Vector) []bool {
	// A fault on a non-existent gate pin never matches, so this reuses the
	// faulty reference with an inert fault.
	return refFaultyEval(c, fault.Fault{Gate: -1, Pin: fault.OutputPin}, p)
}

// TestAgainstBruteForce cross-checks the event-driven simulator against the
// naive reference on every collapsed fault of c17 over random patterns.
func TestAgainstBruteForce(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, err := fault.List(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	patterns := make([]bitvec.Vector, 100) // crosses a block boundary
	for i := range patterns {
		patterns[i] = bitvec.Random(5, rng)
	}

	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(faults, patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for fi, f := range faults {
		wantDetected := false
		wantFirst := -1
		for pi, p := range patterns {
			good := refGoodEval(c, p)
			bad := refFaultyEval(c, f, p)
			for o := range good {
				if good[o] != bad[o] {
					wantDetected = true
					break
				}
			}
			if wantDetected {
				wantFirst = pi
				break
			}
		}
		if res.Detected[fi] != wantDetected {
			t.Errorf("fault %s: detected=%v, want %v", f.String(c), res.Detected[fi], wantDetected)
		}
		if wantDetected && res.FirstPattern[fi] != wantFirst {
			t.Errorf("fault %s: first pattern %d, want %d", f.String(c), res.FirstPattern[fi], wantFirst)
		}
	}
}

// Randomized property check on generated circuits: event-driven result must
// match brute force for every fault and every pattern prefix position.
func TestRandomCircuitsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(4), 15+rng.Intn(25))
		faults, _, err := fault.List(c)
		if err != nil {
			t.Fatal(err)
		}
		patterns := make([]bitvec.Vector, 20)
		for i := range patterns {
			patterns[i] = bitvec.Random(len(c.Inputs), rng)
		}
		sim, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(faults, patterns, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for fi, f := range faults {
			want := false
			for _, p := range patterns {
				good := refGoodEval(c, p)
				bad := refFaultyEval(c, f, p)
				for o := range good {
					if good[o] != bad[o] {
						want = true
					}
				}
				if want {
					break
				}
			}
			if res.Detected[fi] != want {
				t.Fatalf("trial %d fault %s: detected=%v, want %v\n%s",
					trial, f.String(c), res.Detected[fi], want, netlist.Format(c))
			}
		}
	}
}

// randomCircuit builds a small random combinational circuit where every
// dangling gate is collected into an output OR tree.
func randomCircuit(t testing.TB, rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("rand")
	var signals []string
	for i := 0; i < nIn; i++ {
		name := "i" + string(rune('a'+i))
		if _, err := c.AddInput(name); err != nil {
			t.Fatal(err)
		}
		signals = append(signals, name)
	}
	types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand,
		netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf}
	for i := 0; i < nGates; i++ {
		tp := types[rng.Intn(len(types))]
		n := 2
		if tp == netlist.Not || tp == netlist.Buf {
			n = 1
		}
		fanin := make([]string, n)
		for j := range fanin {
			fanin[j] = signals[rng.Intn(len(signals))]
		}
		name := "g" + itoa(i)
		if _, err := c.AddGate(name, tp, fanin...); err != nil {
			t.Fatal(err)
		}
		signals = append(signals, name)
	}
	// Collect dangling signals so everything is observable.
	dangling := []string{}
	for _, g := range c.Gates {
		if len(g.Fanout) == 0 {
			dangling = append(dangling, g.Name)
		}
	}
	// The Fanout fields are only valid after Finalize; recompute manually.
	used := map[string]bool{}
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			used[c.Gates[f].Name] = true
		}
	}
	dangling = dangling[:0]
	for _, g := range c.Gates {
		if !used[g.Name] {
			dangling = append(dangling, g.Name)
		}
	}
	for len(dangling) > 2 {
		name := "t" + itoa(len(c.Gates))
		if _, err := c.AddGate(name, netlist.Or, dangling[0], dangling[1]); err != nil {
			t.Fatal(err)
		}
		dangling = append(dangling[2:], name)
	}
	for _, d := range dangling {
		if err := c.MarkOutput(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

func TestDropDetectedStopsEarly(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, _ := fault.List(c)
	sim, _ := New(c)
	// Two repetitions of the exhaustive set span multiple 64-pattern blocks,
	// so fault dropping saves work in the later blocks.
	patterns := make([]bitvec.Vector, 128)
	for v := range patterns {
		patterns[v] = bitvec.FromUint64(5, uint64(v%32))
	}
	full, err := sim.Run(faults, patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := sim.Run(faults, patterns, Options{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.NumDetected != dropped.NumDetected {
		t.Errorf("drop changed detection count: %d vs %d", full.NumDetected, dropped.NumDetected)
	}
	for i := range faults {
		if full.Detected[i] != dropped.Detected[i] || full.FirstPattern[i] != dropped.FirstPattern[i] {
			t.Errorf("fault %d: drop changed result", i)
		}
	}
	if dropped.GateEvals >= full.GateEvals {
		t.Errorf("dropping should reduce work: %d vs %d evals", dropped.GateEvals, full.GateEvals)
	}
	// c17 is fully testable: every collapsed fault must be detected by the
	// exhaustive set.
	if dropped.NumDetected != len(faults) {
		t.Errorf("exhaustive patterns detected %d of %d faults", dropped.NumDetected, len(faults))
	}
}

func TestStopWhenAllDetected(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, _ := fault.List(c)
	sim, _ := New(c)
	patterns := make([]bitvec.Vector, 640)
	for v := range patterns {
		patterns[v] = bitvec.FromUint64(5, uint64(v%32))
	}
	res, err := sim.Run(faults, patterns, Options{DropDetected: true, StopWhenAllDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PatternsApplied == len(patterns) {
		t.Error("expected early stop before all 640 patterns")
	}
	if res.NumDetected != len(faults) {
		t.Errorf("detected %d of %d", res.NumDetected, len(faults))
	}
}

func TestUndetectableRedundantFault(t *testing.T) {
	// z = OR(a, NOT(a)) is constant 1: z s-a-1 is undetectable.
	src := `
INPUT(a)
OUTPUT(z)
n = NOT(a)
z = OR(a, n)
`
	c := mustParse(t, "red", src)
	gz, _ := c.GateByName("z")
	faults := []fault.Fault{
		{Gate: gz.ID, Pin: fault.OutputPin, StuckAt1: true},  // undetectable
		{Gate: gz.ID, Pin: fault.OutputPin, StuckAt1: false}, // always detected
	}
	sim, _ := New(c)
	patterns := []bitvec.Vector{bitvec.FromUint64(1, 0), bitvec.FromUint64(1, 1)}
	res, err := sim.Run(faults, patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected[0] {
		t.Error("redundant s-a-1 on constant-1 line reported detected")
	}
	if !res.Detected[1] || res.FirstPattern[1] != 0 {
		t.Errorf("s-a-0 on constant-1 line: %+v", res)
	}
	if got := res.Coverage(); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
}

func TestEmptyPatternList(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, _ := fault.List(c)
	sim, _ := New(c)
	res, err := sim.Run(faults, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDetected != 0 || res.PatternsApplied != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func BenchmarkFaultSimC17(b *testing.B) {
	c := mustParse(b, "c17", c17Bench)
	faults, _, err := fault.List(c)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(c)
	if err != nil {
		b.Fatal(err)
	}
	patterns := make([]bitvec.Vector, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range patterns {
		patterns[i] = bitvec.Random(5, rng)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(faults, patterns, Options{DropDetected: true}); err != nil {
			b.Fatal(err)
		}
	}
}
