// Package fsim implements a parallel-pattern single-fault-propagation
// stuck-at fault simulator.
//
// Patterns are processed in blocks of 64 (one bit per pattern). For each
// block the good machine is simulated once; then every live fault is
// injected and its effect propagated event-driven, visiting only gates whose
// value actually changes, in level order. A fault is detected when any
// primary output differs from the good machine in at least one pattern bit.
//
// This simulator plays the role of the TestGen fault simulator in the paper:
// it grades the ATPG test set and fills the Detection Matrix (which triplet
// detects which fault, and at which pattern index).
//
// # Parallelism and determinism
//
// Run additionally fans the live fault list of each block out across
// Options.Parallelism worker goroutines. The good-machine block simulation
// is shared state, computed exactly once per 64-pattern block; each worker
// owns a private faulty machine (event queues, epoch tags, and scratch value
// arrays), so workers never write shared state while simulating. Workers
// record one detection mask per fault into that fault's own slot, and the
// masks are folded into the Result serially, in fault-list order — the same
// order the serial loop uses.
//
// Determinism guarantee: for any Parallelism value (including 1, the serial
// path), Run returns a bit-identical Result — Detected, FirstPattern,
// NumDetected, PatternsApplied and GateEvals all match exactly. Per-fault
// propagation work is identical in both paths, scheduling only changes which
// goroutine performs it, and GateEvals is a sum of per-worker counters,
// which is order-independent. The fsim and dmatrix test suites assert this
// equivalence on the benchmark circuits.
//
// # Cancellation
//
// Options.Context makes a run cancellable: the context is checked once per
// 64-pattern block — the grain at which the simulator commits work — and a
// cancelled run returns the context's error wrapped, with no partial
// Result.
package fsim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/ctxutil"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options controls a fault simulation run.
type Options struct {
	// DropDetected stops simulating a fault after its first detection.
	// This is the right mode both for test grading and for Detection Matrix
	// rows, which only need "detected by this test set" plus the earliest
	// detecting pattern.
	DropDetected bool
	// StopWhenAllDetected ends the run early once every fault is detected.
	StopWhenAllDetected bool
	// Parallelism is the number of worker goroutines the live fault list of
	// each pattern block is fanned out across. 1 forces the serial path;
	// 0 (and any negative value) means one worker per available processor.
	// The Result is bit-identical for every value — see the package
	// documentation for the determinism guarantee.
	Parallelism int
	// Context, when non-nil, cancels the run: Run checks it between
	// 64-pattern blocks and returns the context's error. A run that
	// completes before cancellation is unaffected.
	Context context.Context
}

// Result reports the outcome of a fault simulation run.
type Result struct {
	// Detected[i] reports whether faults[i] was detected by any pattern.
	Detected []bool
	// FirstPattern[i] is the index (into the pattern slice) of the first
	// pattern that detects faults[i], or -1 if undetected.
	FirstPattern []int
	// NumDetected is the number of detected faults.
	NumDetected int
	// PatternsApplied is how many patterns were actually simulated before
	// any early stop.
	PatternsApplied int
	// GateEvals counts faulty-machine gate evaluations, a proxy for fault
	// simulation effort (the paper's argument that the set covering flow
	// needs far fewer fault simulations than GATSBY).
	GateEvals int64
}

// Coverage returns the fraction of faults detected, in [0, 1].
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 1
	}
	return float64(r.NumDetected) / float64(len(r.Detected))
}

// minFaultsPerWorker is the smallest per-worker share of the live fault
// list worth a goroutine handoff; below it the block degrades toward the
// serial path. Purely a scheduling threshold — it cannot affect results.
const minFaultsPerWorker = 16

// faultChunk is the number of live faults a worker claims per atomic
// operation on the shared cursor.
const faultChunk = 32

// machine is one worker's private faulty-machine state: the event-driven
// scratch needed to propagate a single fault against the shared good-machine
// values. Epoch tags make the reset between faults O(1).
type machine struct {
	c     *netlist.Circuit
	isOut []bool

	fval       []uint64
	fepoch     []int32
	sched      []int32
	epoch      int32
	buckets    [][]int // per-level work queues
	minLevel   int     // lowest level scheduled for the current fault
	maxTouched int     // highest level scheduled for the current fault

	faninBuf []uint64
}

func newMachine(c *netlist.Circuit, isOut []bool) *machine {
	return &machine{
		c:       c,
		isOut:   isOut,
		fval:    make([]uint64, c.NumGates()),
		fepoch:  make([]int32, c.NumGates()),
		sched:   make([]int32, c.NumGates()),
		buckets: make([][]int, c.MaxLevel()+1),
	}
}

// Simulator holds the per-circuit state for fault simulation: the shared
// good machine plus one private faulty machine per worker. A Simulator is
// not safe for concurrent use by multiple goroutines — Run manages its own
// internal worker pool instead; create one Simulator per concurrent caller.
type Simulator struct {
	c      *netlist.Circuit
	good   *logicsim.Simulator
	isOut  []bool // gate ID -> is primary output
	outIDs []int

	machines []*machine // machines[0] serves the serial path; grown on demand
	maskBuf  []uint64   // per-live-fault detection masks for one block
	evalsBuf []int64    // per-worker gate-evaluation counters
}

// New returns a fault simulator for the finalized combinational circuit.
func New(c *netlist.Circuit) (*Simulator, error) {
	good, err := logicsim.New(c)
	if err != nil {
		return nil, fmt.Errorf("fsim: %w", err)
	}
	s := &Simulator{
		c:     c,
		good:  good,
		isOut: make([]bool, c.NumGates()),
	}
	for _, id := range c.Outputs {
		s.isOut[id] = true
		s.outIDs = append(s.outIDs, id)
	}
	s.machines = []*machine{newMachine(c, s.isOut)}
	return s, nil
}

// ensureMachines grows the private faulty-machine pool to n entries.
func (s *Simulator) ensureMachines(n int) {
	for len(s.machines) < n {
		s.machines = append(s.machines, newMachine(s.c, s.isOut))
	}
}

// Run simulates the fault list against the pattern sequence and returns the
// detection record. The Result is bit-identical for every Options.Parallelism
// value; see the package documentation.
func (s *Simulator) Run(faults []fault.Fault, patterns []bitvec.Vector, opts Options) (*Result, error) {
	workers := parallel.Degree(opts.Parallelism)
	res := &Result{
		Detected:     make([]bool, len(faults)),
		FirstPattern: make([]int, len(faults)),
	}
	for i := range res.FirstPattern {
		res.FirstPattern[i] = -1
	}
	live := make([]int, len(faults))
	for i := range faults {
		live[i] = i
	}

	for base := 0; base < len(patterns); base += 64 {
		if err := ctxutil.Err(opts.Context); err != nil {
			return nil, fmt.Errorf("fsim: %w", err)
		}
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block := patterns[base:end]
		blockMask := ^uint64(0)
		if len(block) < 64 {
			blockMask = (uint64(1) << uint(len(block))) - 1
		}
		words, err := logicsim.PackPatterns(s.c, block)
		if err != nil {
			return nil, fmt.Errorf("fsim: %w", err)
		}
		if _, err := s.good.Run(words); err != nil {
			return nil, fmt.Errorf("fsim: %w", err)
		}
		res.PatternsApplied += len(block)
		goodVals := s.good.Values()

		// Degrade toward serial when the surviving live list is too short
		// to amortize goroutine handoffs (common once fault dropping has
		// thinned the list). Scheduling only; results are unaffected.
		blockWorkers := workers
		if lim := len(live) / minFaultsPerWorker; blockWorkers > lim {
			blockWorkers = lim
		}
		if blockWorkers < 1 {
			blockWorkers = 1
		}

		if blockWorkers == 1 {
			m := s.machines[0]
			n := 0
			for _, fi := range live {
				detMask := m.simulateFault(faults[fi], goodVals, blockMask, &res.GateEvals)
				if keep := res.fold(fi, detMask, base, opts); keep {
					live[n] = fi
					n++
				}
			}
			live = live[:n]
		} else {
			s.ensureMachines(blockWorkers)
			masks := s.masks(len(live))
			evals := s.evals(blockWorkers)
			parallel.ForEachChunk(blockWorkers, len(live), faultChunk,
				func(worker, lo, hi int) {
					// Accumulate into a local counter and publish once per
					// chunk: per-gate increments on adjacent evals slots
					// would false-share one cache line across workers.
					m := s.machines[worker]
					var chunkEvals int64
					for k := lo; k < hi; k++ {
						masks[k] = m.simulateFault(faults[live[k]], goodVals, blockMask, &chunkEvals)
					}
					evals[worker] += chunkEvals
				})
			for _, e := range evals {
				res.GateEvals += e
			}
			// Fold the per-fault masks serially, in fault-list order — the
			// exact order the serial path uses.
			n := 0
			for k, fi := range live {
				if keep := res.fold(fi, masks[k], base, opts); keep {
					live[n] = fi
					n++
				}
			}
			live = live[:n]
		}

		if opts.StopWhenAllDetected && res.NumDetected == len(faults) {
			break
		}
		if opts.DropDetected && len(live) == 0 {
			break
		}
	}
	// Fold effort counters onto the enclosing trace span (if any): many
	// Run calls — dmatrix simulates one row per call — accumulate into a
	// single span, and AddInt commutes, so the totals are
	// schedule-independent. No per-run span is created: that would cost a
	// span per matrix row.
	if sp := obs.CurrentSpan(opts.Context); sp != nil {
		sp.AddInt("gate_evals", res.GateEvals)
		sp.AddInt("patterns_applied", int64(res.PatternsApplied))
		sp.AddInt("runs", 1)
	}
	return res, nil
}

// fold merges one fault's block detection mask into the result and reports
// whether the fault stays on the live list.
func (r *Result) fold(fi int, detMask uint64, base int, opts Options) bool {
	if detMask == 0 {
		return true
	}
	if !r.Detected[fi] {
		r.Detected[fi] = true
		r.NumDetected++
		r.FirstPattern[fi] = base + bits.TrailingZeros64(detMask)
	}
	return !opts.DropDetected
}

// masks returns the per-live-fault detection mask buffer, resized to n.
func (s *Simulator) masks(n int) []uint64 {
	if cap(s.maskBuf) < n {
		s.maskBuf = make([]uint64, n)
	}
	return s.maskBuf[:n]
}

// evals returns the per-worker gate-evaluation counters, zeroed.
func (s *Simulator) evals(n int) []int64 {
	if cap(s.evalsBuf) < n {
		s.evalsBuf = make([]int64, n)
	}
	e := s.evalsBuf[:n]
	for i := range e {
		e[i] = 0
	}
	return e
}

// simulateFault injects one fault against the shared good values and returns
// the mask of pattern bits in which any primary output diverges. It touches
// only this machine's private state, so distinct machines may run
// concurrently against the same good values.
func (m *machine) simulateFault(f fault.Fault, good []uint64, blockMask uint64, evals *int64) uint64 {
	site := m.c.Gates[f.Gate]
	var faultyWord uint64
	if f.StuckAt1 {
		faultyWord = ^uint64(0)
	}

	siteGate := f.Gate
	if f.Pin != fault.OutputPin {
		// Input-pin fault: recompute the gate with the pin forced. The
		// fault effect first appears at this gate's output.
		in := m.faninBuf[:0]
		for pin, fi := range site.Fanin {
			v := good[fi]
			if pin == f.Pin {
				v = faultyWord
			}
			in = append(in, v)
		}
		m.faninBuf = in
		faultyWord = netlist.Eval(site.Type, in)
		*evals++
	}

	diff := (faultyWord ^ good[siteGate]) & blockMask
	if diff == 0 {
		return 0 // fault not activated by any pattern in this block
	}

	m.epoch++
	if m.epoch == 0 { // int32 wrap: clear tags and restart
		for i := range m.fepoch {
			m.fepoch[i] = -1
			m.sched[i] = -1
		}
		m.epoch = 1
	}
	m.fval[siteGate] = faultyWord & blockMask
	m.fepoch[siteGate] = m.epoch

	var detected uint64
	if m.isOut[siteGate] {
		detected |= diff
	}

	// Level-ordered event propagation from the site. Because every fanout
	// sits at a strictly higher level than its driver, processing levels in
	// ascending order guarantees all of a gate's faulty fanin values are
	// settled before the gate is evaluated; a gate is evaluated at most once
	// per fault.
	m.minLevel = len(m.buckets)
	m.maxTouched = -1
	m.scheduleFanouts(siteGate)
	for lvl := m.minLevel; lvl <= m.maxTouched; lvl++ {
		queue := m.buckets[lvl]
		if len(queue) == 0 {
			continue
		}
		for qi := 0; qi < len(queue); qi++ {
			id := queue[qi]
			g := m.c.Gates[id]
			in := m.faninBuf[:0]
			for _, fi := range g.Fanin {
				if m.fepoch[fi] == m.epoch {
					in = append(in, m.fval[fi])
				} else {
					in = append(in, good[fi])
				}
			}
			m.faninBuf = in
			nv := netlist.Eval(g.Type, in) & blockMask
			*evals++
			if nv == good[id]&blockMask {
				continue
			}
			m.fval[id] = nv
			m.fepoch[id] = m.epoch
			if m.isOut[id] {
				detected |= nv ^ (good[id] & blockMask)
			}
			m.scheduleFanouts(id)
		}
		m.buckets[lvl] = queue[:0]
	}
	return detected
}

// scheduleFanouts enqueues the combinational fanouts of gate id into their
// level buckets, once per fault.
func (m *machine) scheduleFanouts(id int) {
	for _, fo := range m.c.Gates[id].Fanout {
		g := m.c.Gates[fo]
		if g.Type == netlist.DFF {
			continue
		}
		if m.sched[fo] == m.epoch {
			continue
		}
		m.sched[fo] = m.epoch
		m.buckets[g.Level] = append(m.buckets[g.Level], fo)
		if g.Level < m.minLevel {
			m.minLevel = g.Level
		}
		if g.Level > m.maxTouched {
			m.maxTouched = g.Level
		}
	}
}
