// Package fsim implements a parallel-pattern single-fault-propagation
// stuck-at fault simulator.
//
// Patterns are processed in blocks of 64 (one bit per pattern). For each
// block the good machine is simulated once; then every live fault is
// injected and its effect propagated event-driven, visiting only gates whose
// value actually changes, in level order. A fault is detected when any
// primary output differs from the good machine in at least one pattern bit.
//
// This simulator plays the role of the TestGen fault simulator in the paper:
// it grades the ATPG test set and fills the Detection Matrix (which triplet
// detects which fault, and at which pattern index).
package fsim

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Options controls a fault simulation run.
type Options struct {
	// DropDetected stops simulating a fault after its first detection.
	// This is the right mode both for test grading and for Detection Matrix
	// rows, which only need "detected by this test set" plus the earliest
	// detecting pattern.
	DropDetected bool
	// StopWhenAllDetected ends the run early once every fault is detected.
	StopWhenAllDetected bool
}

// Result reports the outcome of a fault simulation run.
type Result struct {
	// Detected[i] reports whether faults[i] was detected by any pattern.
	Detected []bool
	// FirstPattern[i] is the index (into the pattern slice) of the first
	// pattern that detects faults[i], or -1 if undetected.
	FirstPattern []int
	// NumDetected is the number of detected faults.
	NumDetected int
	// PatternsApplied is how many patterns were actually simulated before
	// any early stop.
	PatternsApplied int
	// GateEvals counts faulty-machine gate evaluations, a proxy for fault
	// simulation effort (the paper's argument that the set covering flow
	// needs far fewer fault simulations than GATSBY).
	GateEvals int64
}

// Coverage returns the fraction of faults detected, in [0, 1].
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 1
	}
	return float64(r.NumDetected) / float64(len(r.Detected))
}

// Simulator holds the per-circuit state for fault simulation. It is not
// safe for concurrent use.
type Simulator struct {
	c      *netlist.Circuit
	good   *logicsim.Simulator
	isOut  []bool // gate ID -> is primary output
	outIDs []int

	// Event-driven faulty-machine state, epoch-tagged so that resetting
	// between faults is O(1).
	fval       []uint64
	fepoch     []int32
	sched      []int32
	epoch      int32
	buckets    [][]int // per-level work queues
	minLevel   int     // lowest level scheduled for the current fault
	maxTouched int     // highest level scheduled for the current fault

	faninBuf []uint64
}

// New returns a fault simulator for the finalized combinational circuit.
func New(c *netlist.Circuit) (*Simulator, error) {
	good, err := logicsim.New(c)
	if err != nil {
		return nil, fmt.Errorf("fsim: %w", err)
	}
	s := &Simulator{
		c:       c,
		good:    good,
		isOut:   make([]bool, c.NumGates()),
		fval:    make([]uint64, c.NumGates()),
		fepoch:  make([]int32, c.NumGates()),
		sched:   make([]int32, c.NumGates()),
		buckets: make([][]int, c.MaxLevel()+1),
	}
	for _, id := range c.Outputs {
		s.isOut[id] = true
		s.outIDs = append(s.outIDs, id)
	}
	return s, nil
}

// Run simulates the fault list against the pattern sequence and returns the
// detection record.
func (s *Simulator) Run(faults []fault.Fault, patterns []bitvec.Vector, opts Options) (*Result, error) {
	res := &Result{
		Detected:     make([]bool, len(faults)),
		FirstPattern: make([]int, len(faults)),
	}
	for i := range res.FirstPattern {
		res.FirstPattern[i] = -1
	}
	live := make([]int, len(faults))
	for i := range faults {
		live[i] = i
	}

	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block := patterns[base:end]
		blockMask := ^uint64(0)
		if len(block) < 64 {
			blockMask = (uint64(1) << uint(len(block))) - 1
		}
		words, err := logicsim.PackPatterns(s.c, block)
		if err != nil {
			return nil, fmt.Errorf("fsim: %w", err)
		}
		if _, err := s.good.Run(words); err != nil {
			return nil, fmt.Errorf("fsim: %w", err)
		}
		res.PatternsApplied += len(block)
		goodVals := s.good.Values()

		n := 0
		for _, fi := range live {
			detMask := s.simulateFault(faults[fi], goodVals, blockMask, &res.GateEvals)
			if detMask != 0 {
				if !res.Detected[fi] {
					res.Detected[fi] = true
					res.NumDetected++
					res.FirstPattern[fi] = base + bits.TrailingZeros64(detMask)
				}
				if opts.DropDetected {
					continue // dropped: not retained in live list
				}
			}
			live[n] = fi
			n++
		}
		live = live[:n]
		if opts.StopWhenAllDetected && res.NumDetected == len(faults) {
			break
		}
		if opts.DropDetected && len(live) == 0 {
			break
		}
	}
	return res, nil
}

// simulateFault injects one fault against the current good values and
// returns the mask of pattern bits in which any primary output diverges.
func (s *Simulator) simulateFault(f fault.Fault, good []uint64, blockMask uint64, evals *int64) uint64 {
	site := s.c.Gates[f.Gate]
	var faultyWord uint64
	if f.StuckAt1 {
		faultyWord = ^uint64(0)
	}

	siteGate := f.Gate
	if f.Pin != fault.OutputPin {
		// Input-pin fault: recompute the gate with the pin forced. The
		// fault effect first appears at this gate's output.
		in := s.faninBuf[:0]
		for pin, fi := range site.Fanin {
			v := good[fi]
			if pin == f.Pin {
				v = faultyWord
			}
			in = append(in, v)
		}
		s.faninBuf = in
		faultyWord = netlist.Eval(site.Type, in)
		*evals++
	}

	diff := (faultyWord ^ good[siteGate]) & blockMask
	if diff == 0 {
		return 0 // fault not activated by any pattern in this block
	}

	s.epoch++
	if s.epoch == 0 { // int32 wrap: clear tags and restart
		for i := range s.fepoch {
			s.fepoch[i] = -1
			s.sched[i] = -1
		}
		s.epoch = 1
	}
	s.fval[siteGate] = faultyWord & blockMask
	s.fepoch[siteGate] = s.epoch

	var detected uint64
	if s.isOut[siteGate] {
		detected |= diff
	}

	// Level-ordered event propagation from the site. Because every fanout
	// sits at a strictly higher level than its driver, processing levels in
	// ascending order guarantees all of a gate's faulty fanin values are
	// settled before the gate is evaluated; a gate is evaluated at most once
	// per fault.
	s.minLevel = len(s.buckets)
	s.maxTouched = -1
	s.scheduleFanouts(siteGate)
	for lvl := s.minLevel; lvl <= s.maxTouched; lvl++ {
		queue := s.buckets[lvl]
		if len(queue) == 0 {
			continue
		}
		for qi := 0; qi < len(queue); qi++ {
			id := queue[qi]
			g := s.c.Gates[id]
			in := s.faninBuf[:0]
			for _, fi := range g.Fanin {
				if s.fepoch[fi] == s.epoch {
					in = append(in, s.fval[fi])
				} else {
					in = append(in, good[fi])
				}
			}
			s.faninBuf = in
			nv := netlist.Eval(g.Type, in) & blockMask
			*evals++
			if nv == good[id]&blockMask {
				continue
			}
			s.fval[id] = nv
			s.fepoch[id] = s.epoch
			if s.isOut[id] {
				detected |= nv ^ (good[id] & blockMask)
			}
			s.scheduleFanouts(id)
		}
		s.buckets[lvl] = queue[:0]
	}
	return detected
}

// scheduleFanouts enqueues the combinational fanouts of gate id into their
// level buckets, once per fault.
func (s *Simulator) scheduleFanouts(id int) {
	for _, fo := range s.c.Gates[id].Fanout {
		g := s.c.Gates[fo]
		if g.Type == netlist.DFF {
			continue
		}
		if s.sched[fo] == s.epoch {
			continue
		}
		s.sched[fo] = s.epoch
		s.buckets[g.Level] = append(s.buckets[g.Level], fo)
		if g.Level < s.minLevel {
			s.minLevel = g.Level
		}
		if g.Level > s.maxTouched {
			s.maxTouched = g.Level
		}
	}
}
