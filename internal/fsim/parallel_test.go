package fsim

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitvec"
	"repro/internal/fault"
)

// resultsEqual compares every field of two Results bit for bit.
func resultsEqual(t *testing.T, label string, serial, par *Result) {
	t.Helper()
	if par.NumDetected != serial.NumDetected {
		t.Errorf("%s: NumDetected %d != serial %d", label, par.NumDetected, serial.NumDetected)
	}
	if par.PatternsApplied != serial.PatternsApplied {
		t.Errorf("%s: PatternsApplied %d != serial %d", label, par.PatternsApplied, serial.PatternsApplied)
	}
	if par.GateEvals != serial.GateEvals {
		t.Errorf("%s: GateEvals %d != serial %d", label, par.GateEvals, serial.GateEvals)
	}
	for i := range serial.Detected {
		if par.Detected[i] != serial.Detected[i] {
			t.Fatalf("%s: Detected[%d] = %v != serial %v", label, i, par.Detected[i], serial.Detected[i])
		}
		if par.FirstPattern[i] != serial.FirstPattern[i] {
			t.Fatalf("%s: FirstPattern[%d] = %d != serial %d", label, i, par.FirstPattern[i], serial.FirstPattern[i])
		}
	}
}

// TestParallelMatchesSerial is the determinism guarantee of the package doc:
// on the s-class benchmark circuits, Run returns a bit-identical Result for
// every Parallelism value, across every option combination.
func TestParallelMatchesSerial(t *testing.T) {
	degrees := []int{2, 3, 4, runtime.GOMAXPROCS(0), 0}
	optionSets := []Options{
		{},
		{DropDetected: true},
		{DropDetected: true, StopWhenAllDetected: true},
		{StopWhenAllDetected: true},
	}
	for _, name := range []string{"s420", "s820", "s1238"} {
		scan, err := bench.ScanView(name)
		if err != nil {
			t.Fatal(err)
		}
		faults, _, err := fault.List(scan)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		patterns := make([]bitvec.Vector, 200)
		for i := range patterns {
			patterns[i] = bitvec.Random(len(scan.Inputs), rng)
		}
		sim, err := New(scan)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range optionSets {
			serialOpts := opts
			serialOpts.Parallelism = 1
			serial, err := sim.Run(faults, patterns, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range degrees {
				parOpts := opts
				parOpts.Parallelism = j
				par, err := sim.Run(faults, patterns, parOpts)
				if err != nil {
					t.Fatal(err)
				}
				label := name
				resultsEqual(t, label, serial, par)
			}
		}
	}
}

// TestParallelMatchesSerialFreshSimulator re-runs the equivalence with a
// fresh Simulator per degree, guarding against state bleed through the
// reused machine pool.
func TestParallelMatchesSerialFreshSimulator(t *testing.T) {
	scan, err := bench.ScanView("s953")
	if err != nil {
		t.Fatal(err)
	}
	faults, _, err := fault.List(scan)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	patterns := make([]bitvec.Vector, 130)
	for i := range patterns {
		patterns[i] = bitvec.Random(len(scan.Inputs), rng)
	}
	var serial *Result
	for _, j := range []int{1, 2, 8} {
		sim, err := New(scan)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(faults, patterns, Options{DropDetected: true, Parallelism: j})
		if err != nil {
			t.Fatal(err)
		}
		if serial == nil {
			serial = res
			continue
		}
		resultsEqual(t, "s953", serial, res)
	}
}

// TestParallelSmallLiveList exercises the serial-degradation threshold: with
// fewer live faults than minFaultsPerWorker the block must still produce the
// serial result.
func TestParallelSmallLiveList(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, err := fault.List(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) >= 2*minFaultsPerWorker {
		t.Fatalf("c17 has %d faults; expected a live list below 2x the %d threshold",
			len(faults), minFaultsPerWorker)
	}
	rng := rand.New(rand.NewSource(3))
	patterns := make([]bitvec.Vector, 96)
	for i := range patterns {
		patterns[i] = bitvec.Random(len(c.Inputs), rng)
	}
	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := sim.Run(faults, patterns, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sim.Run(faults, patterns, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "c17", serial, par)
}

// TestMachinePoolGrowth checks that the worker pool grows lazily and only as
// far as the clamped degree.
func TestMachinePoolGrowth(t *testing.T) {
	scan, err := bench.ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	faults, _, err := fault.List(scan)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	patterns := make([]bitvec.Vector, 64)
	for i := range patterns {
		patterns[i] = bitvec.Random(len(scan.Inputs), rng)
	}
	sim, err := New(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.machines) != 1 {
		t.Fatalf("fresh simulator has %d machines, want 1", len(sim.machines))
	}
	if _, err := sim.Run(faults, patterns, Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if len(sim.machines) != 1 {
		t.Errorf("serial run grew the pool to %d machines", len(sim.machines))
	}
	if _, err := sim.Run(faults, patterns, Options{Parallelism: 3}); err != nil {
		t.Fatal(err)
	}
	if len(sim.machines) > 3 {
		t.Errorf("pool grew to %d machines for Parallelism 3", len(sim.machines))
	}
}
