package engine

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"repro/internal/bench"
	"repro/internal/tpg"
)

// RequestError reports one way a Request is invalid. It is the typed form
// behind every rejection of a malformed request, shared by the CLI clients
// and the HTTP server's 400 mapping: callers unwrap it with errors.As to
// distinguish "the request is wrong" (a client error) from "the solve
// failed" (a server error).
type RequestError struct {
	// Field is the JSON name of the offending Request field ("tpg",
	// "cycles", ...); "request" when the problem spans fields.
	Field string
	// Msg says what is wrong with it.
	Msg string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("engine: invalid request: %s: %s", e.Field, e.Msg)
}

func badField(field, format string, args ...any) *RequestError {
	return &RequestError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks every rule the Engine enforces on a Request before any
// work starts: exactly one circuit source, a known benchmark name, a known
// TPG kind, solver and objective, and non-negative numeric knobs (zero
// always means "use the default"). It returns nil or an error joining one
// *RequestError per violation; Engine.Solve and Engine.Prepare call it, so
// callers only need it themselves to fail fast or to map errors without
// solving.
func (req Request) Validate() error {
	errs := req.validateCircuit()
	switch {
	case req.TPG == "":
		errs = append(errs, badField("tpg",
			"no TPG kind given (known: %s)", strings.Join(tpg.Kinds(), ", ")))
	case !slices.Contains(tpg.Kinds(), req.TPG):
		errs = append(errs, badField("tpg",
			"unknown TPG kind %q (known: %s)", req.TPG, strings.Join(tpg.Kinds(), ", ")))
	}
	switch req.Solver {
	case "", "exact", "greedy", "greedy-noreduce":
	default:
		errs = append(errs, badField("solver",
			"unknown solver %q (known: exact, greedy, greedy-noreduce)", req.Solver))
	}
	switch req.Objective {
	case "", "triplets", "testlength":
	default:
		errs = append(errs, badField("objective",
			"unknown objective %q (known: triplets, testlength)", req.Objective))
	}
	switch req.Bound {
	case "", "auto", "lagrangian", "counting":
	default:
		errs = append(errs, badField("bound",
			"unknown bound %q (known: auto, lagrangian, counting)", req.Bound))
	}
	if req.Cycles < 0 {
		errs = append(errs, badField("cycles", "negative evolution length %d", req.Cycles))
	}
	if req.MaxNodes < 0 {
		errs = append(errs, badField("max_nodes", "negative node budget %d", req.MaxNodes))
	}
	if req.SolveBudget < 0 {
		errs = append(errs, badField("solve_budget", "negative solve budget %v", req.SolveBudget))
	}
	return errors.Join(errs...)
}

// validateCircuit checks the circuit-identity subset of the rules — all
// that Engine.Prepare, which warms artifacts without solving, needs.
func (req Request) validateCircuit() []error {
	var errs []error
	switch {
	case req.Circuit == "" && req.Bench == "":
		errs = append(errs, badField("request",
			"neither a benchmark circuit name nor an inline bench source given"))
	case req.Circuit != "" && req.Bench != "":
		errs = append(errs, badField("request",
			"both a benchmark circuit (%q) and an inline bench source given; they are mutually exclusive", req.Circuit))
	case req.Circuit != "" && !slices.Contains(bench.List(), req.Circuit):
		errs = append(errs, badField("circuit",
			"unknown benchmark %q (known: %s)", req.Circuit, strings.Join(bench.List(), ", ")))
	}
	return errs
}
