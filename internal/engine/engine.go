// Package engine implements the long-lived reseeding Engine behind the
// repro facade's v2 API: a concurrency-safe front door that memoizes the
// expensive per-circuit artifacts and serves covering queries from plain,
// serializable Requests.
//
// An Engine owns two artifact caches:
//
//   - Flows — the output of core.Prepare (collapsed fault list, ATPG test
//     set, target fault list), keyed by circuit identity plus the
//     ATPG tuning options;
//   - Detection Matrices — the output of core.Flow.BuildMatrix, keyed by
//     the flow key plus (generator kind, evolution length T, θ seed).
//
// Both caches deduplicate concurrent identical requests with a
// singleflight group (internal/cache): N goroutines asking for the same
// circuit run exactly one ATPG, and all of them get the same *Flow.
//
// # Cache keying
//
// A circuit is identified by name for built-in benchmarks
// ("bench:<name>") and by a SHA-256 hash of the .bench source for inline
// circuits ("inline:<hash>"), so equal sources share artifacts and any
// textual change is automatically a different key — there is no
// invalidation protocol to get wrong. ATPG options enter the flow key
// after WithDefaults normalization (an explicit default and a zero field
// address the same artifact). Matrix keys add the generator kind — which,
// together with the circuit's input width, fully determines the generator
// — the evolution length, and the θ seed.
//
// Parallelism and Context are deliberately NOT part of any key: the
// repository-wide determinism guarantee makes artifacts bit-identical for
// every worker-pool degree, so a flow prepared at -j 4 is the flow a
// serial caller would have computed.
//
// # Invalidation and bounds
//
// Successful artifacts are memoized for the Engine's lifetime; Flush drops
// everything. Failed or cancelled computations are never memoized — the
// next identical request recomputes. Callers must treat cached artifacts
// as immutable (every library path already does). The caches are unbounded
// by default — appropriate for a fixed benchmark population; a service fed
// unbounded distinct inline circuits or wide cycle sweeps should set
// Options.MaxCachedFlows / MaxCachedMatrices, which evict settled entries
// by random replacement once the bound is reached.
//
// # Persistence
//
// Options.Store plugs a second cache level underneath the in-memory maps:
// every computed artifact is also persisted (internal/store implements the
// on-disk form) and a miss consults the store before recomputing, so a
// restarted process answers its first request without re-running ATPG.
// Store keys are the same cache keys, so the keying discipline — and the
// absence of an invalidation protocol — carries over unchanged. Store
// failures are never fatal: unreadable records are recomputed, failed
// writes keep the in-memory result, and both are counted in
// Stats.StoreErrors. Flush does not touch the store (drop the directory to
// truly start cold).
//
// # Cancellation
//
// Engine.Solve threads its context through every phase: ATPG fault
// simulation, Detection Matrix row batches, and the exact covering solve.
// A Solve cancelled before its covering phase returns the context's error;
// a Solve cancelled during the covering phase returns the best cover found
// so far with Optimal = false (the anytime contract). A caller abandoning
// a shared in-flight computation does not poison it for the other waiters;
// the underlying work is cancelled only when the last waiter is gone.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dmatrix"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/setcover"
	"repro/internal/tpg"
)

// Incumbent is one anytime progress snapshot of an exact covering solve in
// flight — the best cover known so far — delivered to the observer of
// Engine.SolveObserved. Re-exported from internal/setcover.
type Incumbent = setcover.Incumbent

// Sample is one periodic search-progress snapshot delivered to
// SolveObserver.OnSample. Re-exported from internal/setcover.
type Sample = setcover.Sample

// ArtifactStore is the optional second level of an Engine's artifact
// caches: persistence of Prepare flows and Detection Matrices across
// process restarts, so a freshly started daemon pointed at a warm store
// answers its first request without re-running ATPG. Keys are the Engine's
// own cache keys (circuit identity + normalized options), which already
// encode everything an artifact depends on.
//
// Load returns (nil, nil) when the key is absent. Store failures never fail
// a request: a Load error falls back to recomputation and a Save error
// keeps the in-memory result; both are counted in Stats.StoreErrors.
// Implementations must be safe for concurrent use by any number of
// goroutines; internal/store provides the on-disk implementation.
type ArtifactStore interface {
	LoadFlow(key string) (*core.Flow, error)
	SaveFlow(key string, flow *core.Flow) error
	LoadMatrix(key string) (*dmatrix.Matrix, error)
	SaveMatrix(key string, m *dmatrix.Matrix) error
}

// Options configures a new Engine.
type Options struct {
	// Parallelism is the default worker-pool degree for every phase of
	// every request served by this Engine: ATPG fault simulation, matrix
	// construction and the exact covering solve. 1 forces serial; 0 (and
	// any negative value) means one worker per available processor.
	// Requests may override it per call.
	Parallelism int
	// ATPG supplies the engine-wide defaults for the test-generation step
	// (a zero Seed means 1, so an Engine is deterministic out of the box).
	// Request.ATPGSeed overrides the seed per request; the other tuning
	// fields are engine-wide because they are part of the flow cache key.
	ATPG atpg.Options
	// MaxCachedFlows / MaxCachedMatrices bound the artifact caches; 0 (the
	// default) means unbounded — right for a fixed benchmark population,
	// wrong for a service fed unbounded distinct inline circuits or cycle
	// sweeps, which should set bounds to cap resident memory. Eviction is
	// random replacement of settled entries; see internal/cache.
	MaxCachedFlows    int
	MaxCachedMatrices int
	// Store, when non-nil, persists computed flows and matrices and serves
	// cache misses from disk before recomputing — the warm-restart path.
	// The in-memory caches stay in front of it, so a running Engine reads
	// each stored artifact at most once.
	Store ArtifactStore
}

// Stats is a snapshot of an Engine's cache effectiveness counters.
type Stats struct {
	// PrepareBuilds counts ATPG preparations actually executed;
	// PrepareHits counts requests served from the flow cache or a shared
	// in-flight preparation.
	PrepareBuilds int64 `json:"prepare_builds"`
	PrepareHits   int64 `json:"prepare_hits"`
	// MatrixBuilds / MatrixHits are the same split for Detection Matrices.
	MatrixBuilds int64 `json:"matrix_builds"`
	MatrixHits   int64 `json:"matrix_hits"`
	// Solves counts covering solves performed (solves are never cached:
	// they are cheap next to the artifacts and carry per-request budgets).
	Solves int64 `json:"solves"`
	// FlowStoreLoads / MatrixStoreLoads count artifacts served from the
	// persistent ArtifactStore instead of being recomputed (the
	// warm-restart path); they are disjoint from the Builds and Hits
	// counters above. StoreReadErrors counts failed store reads (each
	// falls back to recomputation), StoreWriteErrors counts failed store
	// writes (the in-memory result is kept), and StoreErrors is their sum
	// — kept for compatibility with existing dashboards. StoreMisses
	// counts store consultations that found the key absent (a clean miss,
	// not an error). All are zero on an Engine without a Store.
	FlowStoreLoads   int64 `json:"flow_store_loads"`
	MatrixStoreLoads int64 `json:"matrix_store_loads"`
	StoreReadErrors  int64 `json:"store_read_errors"`
	StoreWriteErrors int64 `json:"store_write_errors"`
	StoreMisses      int64 `json:"store_misses"`
	StoreErrors      int64 `json:"store_errors"`
}

// Engine is the long-lived front door of the reseeding flow. It is safe
// for concurrent use by any number of goroutines; create one per process
// (or per isolation domain) and share it.
type Engine struct {
	parallelism  int
	atpgDefaults atpg.Options
	store        ArtifactStore

	flows    cache.Group[string, *core.Flow]
	matrices cache.Group[matrixKey, *dmatrix.Matrix]

	prepareBuilds    atomic.Int64
	prepareHits      atomic.Int64
	matrixBuilds     atomic.Int64
	matrixHits       atomic.Int64
	solves           atomic.Int64
	flowStoreLoads   atomic.Int64
	matrixStoreLoads atomic.Int64
	storeReadErrors  atomic.Int64
	storeWriteErrors atomic.Int64
	storeMisses      atomic.Int64
}

type matrixKey struct {
	flow   string
	kind   string
	cycles int
	seed   int64
}

// String is the matrix key's stable persistent-store form.
func (k matrixKey) String() string {
	return fmt.Sprintf("%s|tpg:%s,T=%d,theta-seed=%d", k.flow, k.kind, k.cycles, k.seed)
}

// New returns an Engine with the given defaults.
func New(opts Options) *Engine {
	if opts.ATPG.Seed == 0 {
		opts.ATPG.Seed = 1
	}
	e := &Engine{parallelism: opts.Parallelism, atpgDefaults: opts.ATPG, store: opts.Store}
	e.flows.SetLimit(opts.MaxCachedFlows)
	e.matrices.SetLimit(opts.MaxCachedMatrices)
	return e
}

// fallbackCtx returns ctx when non-nil, else the first non-nil fallback
// (the Context field of a v1 options struct — the facade's cancellation
// channel), else nil, which every layer treats as "not cancellable".
func fallbackCtx(ctx context.Context, fallbacks ...context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	for _, c := range fallbacks {
		if c != nil {
			return c
		}
	}
	return nil
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	read, write := e.storeReadErrors.Load(), e.storeWriteErrors.Load()
	return Stats{
		PrepareBuilds:    e.prepareBuilds.Load(),
		PrepareHits:      e.prepareHits.Load(),
		MatrixBuilds:     e.matrixBuilds.Load(),
		MatrixHits:       e.matrixHits.Load(),
		Solves:           e.solves.Load(),
		FlowStoreLoads:   e.flowStoreLoads.Load(),
		MatrixStoreLoads: e.matrixStoreLoads.Load(),
		StoreReadErrors:  read,
		StoreWriteErrors: write,
		StoreMisses:      e.storeMisses.Load(),
		StoreErrors:      read + write,
	}
}

// Flush drops every cached flow and matrix. In-flight computations finish
// for their current waiters but are not memoized.
func (e *Engine) Flush() {
	e.flows.Flush()
	e.matrices.Flush()
}

// flowKeyFor derives the flow cache key: circuit identity plus the
// normalized ATPG tuning fields. Parallelism and Context are excluded (see
// the package documentation).
func flowKeyFor(circuitID string, o atpg.Options) string {
	o = o.WithDefaults()
	return fmt.Sprintf("%s|atpg:seed=%d,rand=%d,stall=%d,bt=%d,skip=%t",
		circuitID, o.Seed, o.MaxRandomPatterns, o.RandomStallBlocks,
		o.BacktrackLimit, o.SkipCompaction)
}

// inlineID is the content-addressed identity of an inline .bench source.
func inlineID(source string) string {
	sum := sha256.Sum256([]byte(source))
	return "inline:" + hex.EncodeToString(sum[:])
}

// flow fetches or computes the Flow for key, consulting the persistent
// store (when configured) between the in-memory cache and a fresh
// core.Prepare. build constructs the circuit and runs the ATPG under the
// flight context it is given. The returned bool reports whether the caller
// was spared the ATPG: an in-memory hit, a shared in-flight preparation, or
// a store load.
func (e *Engine) flow(ctx context.Context, key string, atpgOpts atpg.Options,
	load func() (*netlist.Circuit, error)) (*core.Flow, bool, error) {

	// The prepare span is per caller; the inner atpg span is recorded by
	// the flight leader only (a shared flight's inner work happens once,
	// on the leader's trace — joiners see a prepare span with cache_hit).
	sctx, sp := obs.StartSpan(ctx, "prepare")
	defer sp.End()
	var fromStore bool
	f, hit, err := e.flows.Do(sctx, key, func(fctx context.Context) (*core.Flow, error) {
		if e.store != nil {
			switch f, err := e.store.LoadFlow(key); {
			case err != nil:
				e.storeReadErrors.Add(1) // unreadable record: recompute
			case f != nil:
				fromStore = true
				return f, nil
			default:
				e.storeMisses.Add(1)
			}
		}
		c, err := load()
		if err != nil {
			return nil, err
		}
		actx, asp := obs.StartSpan(fctx, "atpg")
		defer asp.End()
		o := atpgOpts
		o.Context = actx
		if o.Parallelism == 0 {
			o.Parallelism = e.parallelism
		}
		f, err := core.Prepare(c, o)
		if err != nil {
			return nil, err
		}
		asp.SetInt("patterns", int64(len(f.Patterns)))
		asp.SetInt("target_faults", int64(len(f.TargetFaults)))
		if e.store != nil {
			if serr := e.store.SaveFlow(key, f); serr != nil {
				e.storeWriteErrors.Add(1)
			}
		}
		return f, nil
	})
	sp.SetInt("cache_hit", b2i(hit))
	sp.SetInt("store_hit", b2i(fromStore))
	if err != nil {
		return nil, hit, fmt.Errorf("engine: prepare %s: %w", key, err)
	}
	switch {
	case hit:
		e.prepareHits.Add(1)
	case fromStore:
		e.flowStoreLoads.Add(1)
	default:
		e.prepareBuilds.Add(1)
	}
	return f, hit || fromStore, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// prepareNamed is the one derivation of a named benchmark's flow key and
// loader, shared by PrepareNamed, Run and the Request path so identical
// requests can never split the cache.
func (e *Engine) prepareNamed(ctx context.Context, circuit string, opts atpg.Options) (string, *core.Flow, bool, error) {
	opts = e.mergeATPG(opts)
	key := flowKeyFor("bench:"+circuit, opts)
	flow, hit, err := e.flow(ctx, key, opts,
		func() (*netlist.Circuit, error) { return bench.ScanView(circuit) })
	return key, flow, hit, err
}

// PrepareNamed fetches or computes the Flow of a built-in benchmark
// circuit (full-scan view). The bool reports whether the result came from
// the cache or a shared in-flight preparation. A nil ctx falls back to
// opts.Context (the v1 facade's cancellation channel).
func (e *Engine) PrepareNamed(ctx context.Context, circuit string, opts atpg.Options) (*core.Flow, bool, error) {
	_, flow, hit, err := e.prepareNamed(fallbackCtx(ctx, opts.Context), circuit, opts)
	return flow, hit, err
}

// PrepareCircuit fetches or computes the Flow of a caller-supplied
// combinational circuit. The cache key is content-addressed (a hash of the
// circuit's .bench rendering), so equal circuits share one preparation and
// any structural change is a fresh key. A nil ctx falls back to
// opts.Context.
func (e *Engine) PrepareCircuit(ctx context.Context, c *netlist.Circuit, opts atpg.Options) (*core.Flow, bool, error) {
	opts = e.mergeATPG(opts)
	f, hit, err := e.flow(fallbackCtx(ctx, opts.Context), flowKeyFor(inlineID(netlist.Format(c)), opts), opts,
		func() (*netlist.Circuit, error) { return c, nil })
	return f, hit, err
}

// mergeATPG overlays per-call ATPG options on the engine defaults: zero
// tuning fields inherit the engine-wide value (for the SkipCompaction
// flag, false is the zero value, so an engine-wide true cannot be undone
// per call). Every path into the flow cache merges the same way, so a
// logically identical request always derives the same key.
func (e *Engine) mergeATPG(o atpg.Options) atpg.Options {
	d := e.atpgDefaults
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.MaxRandomPatterns == 0 {
		o.MaxRandomPatterns = d.MaxRandomPatterns
	}
	if o.RandomStallBlocks == 0 {
		o.RandomStallBlocks = d.RandomStallBlocks
	}
	if o.BacktrackLimit == 0 {
		o.BacktrackLimit = d.BacktrackLimit
	}
	o.SkipCompaction = o.SkipCompaction || d.SkipCompaction
	return o
}

// fillCore injects the request context and the engine's default
// parallelism into solver options.
func (e *Engine) fillCore(ctx context.Context, opts core.Options) core.Options {
	if opts.Parallelism == 0 {
		opts.Parallelism = e.parallelism
	}
	opts.Context = ctx
	// Exact inherits Parallelism/Context in core's withDefaults.
	return opts
}

// SolveFlow computes a reseeding solution on a prepared Flow with an
// arbitrary (possibly caller-defined) generator, threading the context
// through matrix construction and the covering solve. Matrices are NOT
// memoized on this path: a caller-supplied Generator is identified only by
// its Name, which is too weak a key (two distinct generators may share
// one). Use Solve or Run for the kind-addressed, fully cached path.
func (e *Engine) SolveFlow(ctx context.Context, flow *core.Flow, gen tpg.Generator, opts core.Options) (*core.Solution, error) {
	e.solves.Add(1)
	return flow.Solve(gen, e.fillCore(fallbackCtx(ctx, opts.Context), opts))
}

// solveKind is the kind-addressed solve shared by Solve and Run: the
// Detection Matrix is fetched from (or inserted into) the matrix cache,
// then reduced and solved under the request's own budgets.
func (e *Engine) solveKind(ctx context.Context, flowKey string, flow *core.Flow,
	kind string, opts core.Options) (*core.Solution, bool, error) {

	gen, err := tpg.ByName(kind, len(flow.Circuit.Inputs))
	if err != nil {
		return nil, false, fmt.Errorf("engine: %w", err)
	}
	opts = e.fillCore(ctx, opts)
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = core.DefaultCycles
	}
	mkey := matrixKey{flow: flowKey, kind: kind, cycles: cycles, seed: opts.Seed}
	mctx, msp := obs.StartSpan(ctx, "matrix")
	var fromStore bool
	m, hit, err := e.matrices.Do(mctx, mkey, func(fctx context.Context) (*dmatrix.Matrix, error) {
		if e.store != nil {
			switch m, err := e.store.LoadMatrix(mkey.String()); {
			case err != nil:
				e.storeReadErrors.Add(1)
			case m != nil:
				fromStore = true
				return m, nil
			default:
				e.storeMisses.Add(1)
			}
		}
		bctx, bsp := obs.StartSpan(fctx, "matrix.build")
		defer bsp.End()
		o := opts
		o.Context = bctx
		m, err := flow.BuildMatrix(gen, o)
		if err != nil {
			return nil, err
		}
		bsp.SetInt("rows", int64(len(m.Rows)))
		bsp.SetInt("gate_evals", m.GateEvals)
		if e.store != nil {
			if serr := e.store.SaveMatrix(mkey.String(), m); serr != nil {
				e.storeWriteErrors.Add(1)
			}
		}
		return m, nil
	})
	msp.SetInt("cache_hit", b2i(hit))
	msp.SetInt("store_hit", b2i(fromStore))
	msp.End()
	if err != nil {
		return nil, hit, fmt.Errorf("engine: matrix %s/%s/T=%d: %w", flowKey, kind, cycles, err)
	}
	switch {
	case hit:
		e.matrixHits.Add(1)
	case fromStore:
		e.matrixStoreLoads.Add(1)
	default:
		e.matrixBuilds.Add(1)
	}
	e.solves.Add(1)
	sol, err := flow.SolveMatrix(m, gen, opts)
	if err != nil {
		return nil, hit, fmt.Errorf("engine: %w", err)
	}
	return sol, hit || fromStore, nil
}

// Run is the structured-options counterpart of Solve: it serves the v1
// facade's one-shot flow (named benchmark circuit, generator kind) from
// the Engine's caches. Unlike Request it accepts the full ATPG and solver
// option structs. A nil ctx falls back to the options' own Context fields.
func (e *Engine) Run(ctx context.Context, circuit, kind string, atpgOpts atpg.Options, opts core.Options) (*core.Solution, error) {
	ctx = fallbackCtx(ctx, atpgOpts.Context, opts.Context)
	key, flow, _, err := e.prepareNamed(ctx, circuit, atpgOpts)
	if err != nil {
		return nil, err
	}
	sol, _, err := e.solveKind(ctx, key, flow, kind, opts)
	return sol, err
}

// shortKey abbreviates the hash of an inline circuit id for display.
func shortKey(key string) string {
	if i := strings.Index(key, "inline:"); i >= 0 && len(key) > i+7+12 {
		rest := key[i+7:]
		if j := strings.IndexByte(rest, '|'); j > 12 {
			return key[:i+7] + rest[:12] + "…" + rest[j:]
		}
	}
	return key
}
