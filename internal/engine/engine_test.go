package engine

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netlist"
)

// s420Req is the small deterministic request most tests use.
func s420Req() Request {
	return Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2}
}

// s820Req solves an instance whose reduction leaves a nonempty residual,
// so the exact covering solver genuinely runs (needed by the
// cancel-during-solve test).
func s820Req() Request {
	return Request{Circuit: "s820", TPG: "adder", Cycles: 64, Seed: 2}
}

// normalized clears the one field excluded from the bit-identical
// guarantee (SolverNodes is an effort counter, like wall-clock time).
func normalized(s *core.Solution) core.Solution {
	n := *s
	n.SolverNodes = 0
	return n
}

// N concurrent identical requests must run exactly one ATPG preparation
// and one matrix build (singleflight), and every caller must receive the
// same solution. CI runs this under -race.
func TestSingleflightConcurrentIdentical(t *testing.T) {
	eng := New(Options{})
	const n = 8
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = eng.Solve(context.Background(), s420Req())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	stats := eng.Stats()
	if stats.PrepareBuilds != 1 {
		t.Errorf("PrepareBuilds = %d, want exactly 1 (singleflight)", stats.PrepareBuilds)
	}
	if stats.MatrixBuilds != 1 {
		t.Errorf("MatrixBuilds = %d, want exactly 1 (singleflight)", stats.MatrixBuilds)
	}
	if stats.PrepareHits != n-1 || stats.MatrixHits != n-1 {
		t.Errorf("hits = %d/%d, want %d/%d", stats.PrepareHits, stats.MatrixHits, n-1, n-1)
	}
	if stats.Solves != n {
		t.Errorf("Solves = %d, want %d", stats.Solves, n)
	}
	want := normalized(resps[0].Solution)
	for i := 1; i < n; i++ {
		if got := normalized(resps[i].Solution); !reflect.DeepEqual(got, want) {
			t.Errorf("request %d solution differs from request 0", i)
		}
	}
}

// Distinct requests on one circuit share the preparation but not the
// matrix.
func TestConcurrentDistinctRequests(t *testing.T) {
	eng := New(Options{})
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := s420Req()
			if i%2 == 1 {
				req.Cycles = 96 // distinct matrix key, same flow key
			}
			_, errs[i] = eng.Solve(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	stats := eng.Stats()
	if stats.PrepareBuilds != 1 {
		t.Errorf("PrepareBuilds = %d, want 1", stats.PrepareBuilds)
	}
	if stats.MatrixBuilds != 2 {
		t.Errorf("MatrixBuilds = %d, want 2 (one per distinct Cycles)", stats.MatrixBuilds)
	}
}

// A warm-cache solve must skip Prepare and the matrix build entirely and
// still produce a solution bit-identical to the cold one — on the same
// engine and across engines.
func TestWarmCacheBitIdentical(t *testing.T) {
	eng := New(Options{})
	cold, err := eng.Solve(context.Background(), s420Req())
	if err != nil {
		t.Fatal(err)
	}
	if cold.PrepareCached || cold.MatrixCached {
		t.Fatalf("cold solve reported cached artifacts: %+v", cold)
	}
	warm, err := eng.Solve(context.Background(), s420Req())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PrepareCached || !warm.MatrixCached {
		t.Errorf("warm solve missed the cache: prepare=%v matrix=%v",
			warm.PrepareCached, warm.MatrixCached)
	}
	if s := eng.Stats(); s.PrepareBuilds != 1 || s.MatrixBuilds != 1 {
		t.Errorf("warm solve rebuilt artifacts: %+v", s)
	}
	if !reflect.DeepEqual(normalized(cold.Solution), normalized(warm.Solution)) {
		t.Error("warm solution differs from cold solution")
	}

	other, err := New(Options{}).Solve(context.Background(), s420Req())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalized(cold.Solution), normalized(other.Solution)) {
		t.Error("solution differs across engines")
	}
}

// Flush drops the caches: the next solve rebuilds.
func TestFlush(t *testing.T) {
	eng := New(Options{})
	if _, err := eng.Solve(context.Background(), s420Req()); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	resp, err := eng.Solve(context.Background(), s420Req())
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrepareCached || resp.MatrixCached {
		t.Error("solve after Flush was served from the cache")
	}
}

// A context cancelled before the ATPG phase aborts promptly with the
// context's error and caches nothing.
func TestCancelledBeforePrepare(t *testing.T) {
	eng := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Solve(ctx, s420Req())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if s := eng.Stats(); s.PrepareBuilds != 0 {
		t.Errorf("cancelled prepare was counted as a build: %+v", s)
	}
	// The abandoned flight must not poison the cache: a live context
	// succeeds afterwards.
	if _, err := eng.Solve(context.Background(), s420Req()); err != nil {
		t.Fatalf("engine poisoned by cancelled request: %v", err)
	}
}

// A context cancelled after the flow is cached aborts in the matrix phase.
func TestCancelledDuringMatrixPhase(t *testing.T) {
	eng := New(Options{})
	if hit, err := eng.Prepare(context.Background(), s420Req()); err != nil || hit {
		t.Fatalf("warmup: hit=%v err=%v", hit, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Solve(ctx, s420Req())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	s := eng.Stats()
	if s.PrepareHits != 1 {
		t.Errorf("cancelled solve should still hit the flow cache: %+v", s)
	}
	if s.MatrixBuilds != 0 {
		t.Errorf("cancelled matrix build was counted: %+v", s)
	}
	if _, err := eng.Solve(context.Background(), s420Req()); err != nil {
		t.Fatalf("engine poisoned by cancelled request: %v", err)
	}
}

// A context cancelled once both artifacts are cached reaches the covering
// phase, which is anytime: the solver's best-so-far comes back with
// Optimal = false and Interrupted set, not an error.
func TestCancelledDuringSolveReturnsBestSoFar(t *testing.T) {
	eng := New(Options{})
	full, err := eng.Solve(context.Background(), s820Req())
	if err != nil {
		t.Fatal(err)
	}
	if !full.Solution.Optimal {
		t.Fatalf("reference solve not optimal: %+v", full.Solution)
	}
	if full.Solution.ResidualRows == 0 {
		t.Fatal("test premise broken: s820 residual solved by reduction alone; pick another instance")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, err := eng.Solve(ctx, s820Req())
	if err != nil {
		t.Fatalf("cancelled warm solve errored: %v", err)
	}
	if !resp.PrepareCached || !resp.MatrixCached {
		t.Errorf("cancelled solve rebuilt artifacts: prepare=%v matrix=%v",
			resp.PrepareCached, resp.MatrixCached)
	}
	sol := resp.Solution
	if sol.Optimal {
		t.Error("cancelled solve claims optimality")
	}
	if !resp.Interrupted {
		t.Error("Interrupted not set on cancelled solve")
	}
	if sol.NumTriplets() == 0 || sol.TestLength == 0 {
		t.Errorf("best-so-far is empty: %+v", sol)
	}
	// Best-so-far is a valid cover (assemble verifies coverage) but may be
	// worse than the optimum — never better.
	if sol.NumTriplets() < full.Solution.NumTriplets() {
		t.Errorf("best-so-far (%d triplets) beats the proven optimum (%d)",
			sol.NumTriplets(), full.Solution.NumTriplets())
	}
}

// A deadline expiring mid-ATPG must abort the solve promptly rather than
// running the preparation to completion.
func TestDeadlineMidPrepare(t *testing.T) {
	eng := New(Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.Solve(ctx, Request{Circuit: "s1238", TPG: "adder", Cycles: 64, Seed: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
}

// An inline .bench source is content-addressed: it never collides with the
// named benchmark's key (gate renumbering through a Format/Parse round
// trip makes the two circuits distinct artifacts), equal sources share one
// preparation, and the inline path is deterministic across engines.
func TestInlineBenchRequests(t *testing.T) {
	scan, err := bench.ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	inline := s420Req()
	inline.Circuit, inline.Bench = "", netlist.Format(scan)

	eng := New(Options{})
	if _, err := eng.Solve(context.Background(), s420Req()); err != nil {
		t.Fatal(err)
	}
	first, err := eng.Solve(context.Background(), inline)
	if err != nil {
		t.Fatal(err)
	}
	if first.PrepareCached {
		t.Error("inline circuit unexpectedly shared the named circuit's cache key")
	}
	if first.Solution.NumTriplets() == 0 || !first.Solution.Optimal {
		t.Errorf("inline solve degenerate: %+v", first.Solution)
	}
	again, err := eng.Solve(context.Background(), inline)
	if err != nil {
		t.Fatal(err)
	}
	if !again.PrepareCached || !again.MatrixCached {
		t.Error("equal inline sources did not share artifacts")
	}
	other, err := New(Options{}).Solve(context.Background(), inline)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalized(first.Solution), normalized(other.Solution)) {
		t.Error("inline solution differs across engines")
	}
}

// Requests and Responses are plain serializable values: a request survives
// a JSON round trip verbatim, and a response's solution keeps its triplets
// (seeds as hex strings) through marshal/unmarshal.
func TestRequestResponseJSONRoundTrip(t *testing.T) {
	req := Request{
		Circuit: "s820", TPG: "adder", Cycles: 64, Seed: 2, ATPGSeed: 1,
		Solver: "exact", Objective: "triplets", MaxNodes: 12345,
		SolveBudget: 2 * time.Second,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("request round trip:\n got %+v\nwant %+v", back, req)
	}

	eng := New(Options{})
	resp, err := eng.Solve(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Response
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Solution.NumTriplets() != resp.Solution.NumTriplets() ||
		decoded.Solution.TestLength != resp.Solution.TestLength ||
		decoded.Circuit != resp.Circuit {
		t.Errorf("response round trip lost data:\n got %+v\nwant %+v", decoded, resp)
	}
	for i, tr := range resp.Solution.Triplets {
		if decoded.Solution.Triplets[i].Delta.Hex() != tr.Delta.Hex() {
			t.Fatalf("triplet %d delta lost in round trip", i)
		}
	}
}

// Malformed requests are rejected up front.
func TestRequestValidation(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	cases := []Request{
		{TPG: "adder"},    // no circuit
		{Circuit: "s420"}, // no TPG
		{Circuit: "s420", Bench: "INPUT(a)", TPG: "adder"},    // both sources
		{Circuit: "s420", TPG: "adder", Solver: "simplex"},    // unknown solver
		{Circuit: "s420", TPG: "adder", Objective: "latency"}, // unknown objective
		{Circuit: "s420", TPG: "quantum"},                     // unknown TPG kind
	}
	for i, req := range cases {
		if _, err := eng.Solve(ctx, req); err == nil {
			t.Errorf("case %d (%+v): accepted", i, req)
		}
	}
}
