package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/setcover"
)

// Request is a serializable reseeding query: every field is a plain value,
// so a Request can arrive as JSON over a wire, sit in a queue, or be
// replayed from a log. Exactly one of Circuit and Bench identifies the
// unit under test.
type Request struct {
	// Circuit names a built-in benchmark circuit (full-scan view), e.g.
	// "s1238". Mutually exclusive with Bench.
	Circuit string `json:"circuit,omitempty"`
	// Bench is an inline netlist in .bench format. Sequential netlists are
	// converted to their full-scan combinational view automatically. The
	// circuit is content-addressed: equal sources share cached artifacts.
	Bench string `json:"bench,omitempty"`
	// TPG selects the generator kind: "adder", "subtracter", "multiplier"
	// or "lfsr". The width is taken from the circuit. Required.
	TPG string `json:"tpg"`
	// Cycles is the evolution length T per candidate triplet
	// (default core.DefaultCycles).
	Cycles int `json:"cycles,omitempty"`
	// Seed drives the random θ selection of the Detection Matrix build.
	Seed int64 `json:"seed,omitempty"`
	// ATPGSeed overrides the engine-wide ATPG seed (0 keeps the engine
	// default). It is part of the flow cache key.
	ATPGSeed int64 `json:"atpg_seed,omitempty"`
	// Solver selects the covering strategy: "" or "exact" (default),
	// "greedy", "greedy-noreduce".
	Solver string `json:"solver,omitempty"`
	// Objective selects the minimized quantity: "" or "triplets"
	// (default), "testlength".
	Objective string `json:"objective,omitempty"`
	// NoTrim keeps every selected triplet at full length.
	NoTrim bool `json:"no_trim,omitempty"`
	// Parallelism overrides the engine's worker-pool degree for this
	// request (0 keeps the engine default). Never part of a cache key: the
	// determinism guarantee makes results bit-identical for every value.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxNodes bounds the exact covering search (0 = solver default).
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// SolveBudget bounds the exact covering solve's wall-clock time
	// (anytime contract; serialized as integer nanoseconds).
	SolveBudget time.Duration `json:"solve_budget,omitempty"`
	// Bound selects the exact solver's lower bound: "" or "auto"
	// (Lagrangian, the default), "lagrangian", "counting". Never part of a
	// cache key: completed solves return bit-identical covers in every
	// mode — the bound only changes how much tree is searched.
	Bound string `json:"bound,omitempty"`
	// AscentIters overrides the root subgradient budget of the Lagrangian
	// bound (0 = solver default, negative = warm start only). Ignored for
	// Bound "counting".
	AscentIters int `json:"ascent_iters,omitempty"`
}

// CircuitInfo describes the resolved unit under test of a Response.
type CircuitInfo struct {
	Name    string `json:"name"`
	Key     string `json:"key"` // flow cache key (observability)
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	Gates   int    `json:"gates"`
}

// ATPGInfo summarizes the prepared test-generation artifacts of a
// Response.
type ATPGInfo struct {
	Patterns     int     `json:"patterns"`
	TargetFaults int     `json:"target_faults"`
	Coverage     float64 `json:"coverage"`
	Untestable   int     `json:"untestable"`
	Aborted      int     `json:"aborted"`
}

// Response carries the outcome of Engine.Solve. It serializes to JSON
// (core.Solution has a stable JSON form), so a Response can travel back
// over the wire the Request arrived on.
type Response struct {
	Solution *core.Solution `json:"solution"`
	Circuit  CircuitInfo    `json:"circuit"`
	ATPG     ATPGInfo       `json:"atpg"`
	// PrepareCached / MatrixCached report whether the artifact came from
	// the cache or a shared in-flight computation (true) rather than being
	// computed by this request (false).
	PrepareCached bool `json:"prepare_cached"`
	MatrixCached  bool `json:"matrix_cached"`
	// Interrupted reports that the request's context was cancelled and the
	// Solution is the exact covering solver's best-so-far (Optimal is
	// false). It is never set for greedy solvers, which run to completion
	// regardless of the context. A request cancelled before any solution
	// existed returns an error instead.
	Interrupted bool `json:"interrupted,omitempty"`
	// Timing is the per-phase breakdown of this solve: the subtree of
	// spans under the solve's root span (prepare/atpg, matrix/fsim,
	// reduce, ascent, branch-and-bound), as recorded on the obs.Trace the
	// request's context carried. It is nil when the context carried no
	// trace — tracing is strictly additive and never part of the solve's
	// result, its cache keys, or any persisted artifact.
	Timing *obs.TraceData `json:"timing,omitempty"`
}

// RouteKey returns a Request's circuit identity ("bench:<name>" or
// "inline:<sha256>") — the shard key a routing layer consistent-hashes so
// every request for one circuit lands on the replica already holding its
// warm artifacts. It is "" for a request with no usable circuit identity
// (invalid; a router should send it to any replica and let the replica's
// validation reject it).
func RouteKey(req Request) string {
	switch {
	case req.Circuit != "" && req.Bench == "":
		return "bench:" + req.Circuit
	case req.Bench != "" && req.Circuit == "":
		return inlineID(req.Bench)
	}
	return ""
}

// circuitRef resolves a Request's circuit identity without doing any work:
// the id is the cache-key component, load constructs the circuit on a
// cache miss.
func (e *Engine) circuitRef(req Request) (id string, load func() (*netlist.Circuit, error), err error) {
	switch {
	case req.Circuit != "" && req.Bench != "":
		return "", nil, badField("request",
			"both a benchmark circuit (%q) and an inline bench source given; they are mutually exclusive", req.Circuit)
	case req.Circuit != "":
		name := req.Circuit
		return "bench:" + name, func() (*netlist.Circuit, error) { return bench.ScanView(name) }, nil
	case req.Bench != "":
		id := inlineID(req.Bench)
		src := req.Bench
		name := "inline-" + id[len("inline:"):len("inline:")+8]
		return id, func() (*netlist.Circuit, error) {
			c, err := netlist.Parse(name, strings.NewReader(src))
			if err != nil {
				// An unparseable inline source is the client's fault, not
				// the solve's: type it so the HTTP layer maps it to 400.
				return nil, badField("bench", "%v", err)
			}
			if !c.IsCombinational() {
				return c.FullScan()
			}
			return c, nil
		}, nil
	default:
		return "", nil, badField("request",
			"neither a benchmark circuit name nor an inline bench source given")
	}
}

// coreOptions maps the request's serialized solver knobs onto core.Options.
func (req Request) coreOptions() (core.Options, error) {
	opts := core.Options{
		Cycles:      req.Cycles,
		Seed:        req.Seed,
		NoTrim:      req.NoTrim,
		Parallelism: req.Parallelism,
	}
	switch req.Solver {
	case "", "exact":
		opts.Solver = core.SolverExact
	case "greedy":
		opts.Solver = core.SolverGreedy
	case "greedy-noreduce":
		opts.Solver = core.SolverGreedyNoReduce
	default:
		return opts, fmt.Errorf("engine: unknown solver %q", req.Solver)
	}
	switch req.Objective {
	case "", "triplets":
		opts.Objective = core.MinimizeTriplets
	case "testlength":
		opts.Objective = core.MinimizeTestLength
	default:
		return opts, fmt.Errorf("engine: unknown objective %q", req.Objective)
	}
	switch req.Bound {
	case "", "auto":
		opts.Exact.Bound = setcover.BoundAuto
	case "lagrangian":
		opts.Exact.Bound = setcover.BoundLagrangian
	case "counting":
		opts.Exact.Bound = setcover.BoundCounting
	default:
		return opts, fmt.Errorf("engine: unknown bound %q", req.Bound)
	}
	opts.Exact.AscentIters = req.AscentIters
	opts.Exact.MaxNodes = req.MaxNodes
	opts.Exact.TimeBudget = req.SolveBudget
	return opts, nil
}

// atpgOptions derives the request's ATPG options from the engine defaults
// through the same mergeATPG every other path uses, so a logically
// identical request always lands on the same flow key. Parallelism rides
// along (it is not part of the key).
func (req Request) atpgOptions(e *Engine) atpg.Options {
	return e.mergeATPG(atpg.Options{Seed: req.ATPGSeed, Parallelism: req.Parallelism})
}

// Prepare warms the circuit artifacts a Request depends on (fault list and
// ATPG test set) without solving anything. The bool reports whether they
// were already cached. A later Solve for the same circuit skips the ATPG
// entirely.
func (e *Engine) Prepare(ctx context.Context, req Request) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if errs := req.validateCircuit(); len(errs) > 0 {
		return false, errors.Join(errs...)
	}
	id, load, err := e.circuitRef(req)
	if err != nil {
		return false, err
	}
	atpgOpts := req.atpgOptions(e)
	_, hit, err := e.flow(ctx, flowKeyFor(id, atpgOpts), atpgOpts, load)
	return hit, err
}

// Solve answers one reseeding query. It threads ctx through every phase —
// ATPG, matrix construction, covering solve — and serves the first two
// from the Engine's caches when possible. A ctx cancelled during the
// covering phase yields the solver's best-so-far with Optimal = false and
// Response.Interrupted set; a ctx cancelled before any solution exists
// returns the context's error. An invalid request fails Validate before
// any work starts (errors.As exposes the *RequestError details).
func (e *Engine) Solve(ctx context.Context, req Request) (*Response, error) {
	return e.SolveObserved(ctx, req, nil)
}

// SolveObserved is Solve with an anytime progress observer: when the
// covering phase runs the exact solver, onIncumbent receives a snapshot for
// the greedy seed and for every replacement of the best cover found so far
// (costs never increase; the last snapshot describes the returned cover),
// offset to whole-solution totals (essential rows included). It is
// how a long-running job surfaces best-so-far state before the final
// Response exists. onIncumbent runs on solver goroutines under a solver
// lock: it must return quickly and must not call back into the Engine. A
// nil onIncumbent makes SolveObserved exactly Solve.
func (e *Engine) SolveObserved(ctx context.Context, req Request, onIncumbent func(Incumbent)) (*Response, error) {
	return e.SolveWithObserver(ctx, req, SolveObserver{OnIncumbent: onIncumbent})
}

// A SolveObserver bundles the anytime streams of one exact covering
// solve. Both callbacks run on solver goroutines and must return
// quickly without calling back into the Engine; either may be nil.
type SolveObserver struct {
	// OnIncumbent receives every improvement of the best cover found so
	// far, offset to whole-solution totals (see SolveObserved).
	OnIncumbent func(Incumbent)
	// OnSample receives periodic search-progress samples (node count,
	// best cost, root lower bound) at a coarse, solver-chosen cadence —
	// the raw material of a bound-gap/nodes-per-second timeline. Sample
	// values are offset to whole-solution totals like incumbents.
	OnSample func(setcover.Sample)
}

// SolveWithObserver is SolveObserved with the full observer bundle: the
// incumbent stream plus periodic search-progress samples.
func (e *Engine) SolveWithObserver(ctx context.Context, req Request, watch SolveObserver) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	id, load, err := e.circuitRef(req)
	if err != nil {
		return nil, err
	}
	opts, err := req.coreOptions()
	if err != nil {
		return nil, err
	}
	opts.Exact.OnIncumbent = watch.OnIncumbent
	opts.Exact.OnSample = watch.OnSample
	sctx, sp := obs.StartSpan(ctx, "solve")
	defer sp.End()
	sp.SetStr("tpg", req.TPG)
	atpgOpts := req.atpgOptions(e)
	key := flowKeyFor(id, atpgOpts)
	flow, prepHit, err := e.flow(sctx, key, atpgOpts, load)
	if err != nil {
		return nil, err
	}
	sp.SetStr("circuit", flow.Circuit.Name)
	sol, matHit, err := e.solveKind(sctx, key, flow, req.TPG, opts)
	if err != nil {
		return nil, err
	}
	// Only the exact covering path is anytime (greedy solves ignore the
	// context and are non-optimal by construction), so only there does a
	// cancelled context mean "this result was cut short".
	exactPath := opts.Objective == core.MinimizeTestLength || opts.Solver == core.SolverExact
	resp := &Response{
		Solution: sol,
		Circuit: CircuitInfo{
			Name:    flow.Circuit.Name,
			Key:     shortKey(key),
			Inputs:  len(flow.Circuit.Inputs),
			Outputs: len(flow.Circuit.Outputs),
			Gates:   flow.Circuit.NumLogicGates(),
		},
		ATPG: ATPGInfo{
			Patterns:     len(flow.Patterns),
			TargetFaults: len(flow.TargetFaults),
			Coverage:     flow.ATPG.Coverage(),
			Untestable:   len(flow.ATPG.Untestable),
			Aborted:      len(flow.ATPG.Aborted),
		},
		PrepareCached: prepHit,
		MatrixCached:  matHit,
		Interrupted:   exactPath && ctx.Err() != nil && !sol.Optimal,
	}
	sp.End()
	if tr := obs.FromContext(ctx); tr != nil {
		resp.Timing = tr.Subtree(sp.ID())
	}
	return resp, nil
}
