package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// Validate is the one set of request rules shared by cmd/reseed and the
// HTTP server's 400 mapping: every rejection must be a typed *RequestError
// naming the offending field, every default-shaped request must pass.
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		// fields are the RequestError.Field values expected, in order; nil
		// means the request is valid.
		fields []string
	}{
		{"minimal named", Request{Circuit: "s420", TPG: "adder"}, nil},
		{"minimal inline", Request{Bench: "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n", TPG: "lfsr"}, nil},
		{"all knobs", Request{
			Circuit: "s820", TPG: "multiplier", Cycles: 64, Seed: 2, ATPGSeed: 3,
			Solver: "greedy-noreduce", Objective: "testlength", NoTrim: true,
			Parallelism: 4, MaxNodes: 100, SolveBudget: time.Second,
		}, nil},
		{"zero knobs mean defaults", Request{Circuit: "s420", TPG: "adder", Cycles: 0, MaxNodes: 0}, nil},

		{"no source", Request{TPG: "adder"}, []string{"request"}},
		{"both sources", Request{Circuit: "s420", Bench: "INPUT(a)", TPG: "adder"}, []string{"request"}},
		{"unknown benchmark", Request{Circuit: "sNaN", TPG: "adder"}, []string{"circuit"}},
		{"no tpg", Request{Circuit: "s420"}, []string{"tpg"}},
		{"unknown tpg", Request{Circuit: "s420", TPG: "quantum"}, []string{"tpg"}},
		{"unknown solver", Request{Circuit: "s420", TPG: "adder", Solver: "simplex"}, []string{"solver"}},
		{"unknown objective", Request{Circuit: "s420", TPG: "adder", Objective: "latency"}, []string{"objective"}},
		{"known bounds", Request{Circuit: "s420", TPG: "adder", Bound: "counting"}, nil},
		{"negative ascent is valid", Request{Circuit: "s420", TPG: "adder", Bound: "lagrangian", AscentIters: -1}, nil},
		{"unknown bound", Request{Circuit: "s420", TPG: "adder", Bound: "simplex"}, []string{"bound"}},
		{"negative cycles", Request{Circuit: "s420", TPG: "adder", Cycles: -1}, []string{"cycles"}},
		{"negative max nodes", Request{Circuit: "s420", TPG: "adder", MaxNodes: -1}, []string{"max_nodes"}},
		{"negative budget", Request{Circuit: "s420", TPG: "adder", SolveBudget: -time.Second}, []string{"solve_budget"}},
		{"several violations at once", Request{TPG: "quantum", Cycles: -1, Solver: "simplex"},
			[]string{"request", "tpg", "solver", "cycles"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if tc.fields == nil {
				if err != nil {
					t.Fatalf("valid request rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid request accepted")
			}
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("rejection is not a *RequestError: %v", err)
			}
			// Every expected field appears in the joined message (the
			// individual errors include their field names).
			for _, f := range tc.fields {
				if !strings.Contains(err.Error(), f+":") {
					t.Errorf("error does not mention field %q: %v", f, err)
				}
			}
			// errors.As surfaces the first violation.
			if reqErr.Field != tc.fields[0] {
				t.Errorf("first field = %q, want %q", reqErr.Field, tc.fields[0])
			}
		})
	}
}

// The Engine enforces Validate on the Solve path, and an unparseable
// inline source is also a typed client error even though it only surfaces
// inside the preparation.
func TestSolveRejectsWithTypedErrors(t *testing.T) {
	eng := New(Options{})
	_, err := eng.Solve(context.Background(), Request{Circuit: "s420", TPG: "quantum"})
	var reqErr *RequestError
	if !errors.As(err, &reqErr) || reqErr.Field != "tpg" {
		t.Errorf("Solve rejection not typed: %v", err)
	}
	if st := eng.Stats(); st.PrepareBuilds != 0 {
		t.Errorf("invalid request started work: %+v", st)
	}

	_, err = eng.Solve(context.Background(), Request{Bench: "this is not a netlist", TPG: "adder"})
	if !errors.As(err, &reqErr) || reqErr.Field != "bench" {
		t.Errorf("unparseable inline source not typed: %v", err)
	}

	// Prepare shares the circuit subset of the rules.
	_, err = eng.Prepare(context.Background(), Request{Circuit: "sNaN"})
	if !errors.As(err, &reqErr) || reqErr.Field != "circuit" {
		t.Errorf("Prepare rejection not typed: %v", err)
	}
}
