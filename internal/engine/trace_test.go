package engine

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// Tracing is write-only telemetry: solving the same request with and
// without an obs trace on the context must produce bit-identical
// solutions, and the trace must never leak into the response beyond the
// Timing field. CI runs this under -race. Pinned by the observability
// acceptance criteria; do not weaken to a field-subset comparison.
func TestSolutionBitIdenticalTracingOnOff(t *testing.T) {
	for _, req := range []Request{s420Req(), s820Req()} {
		req := req
		t.Run(req.Circuit, func(t *testing.T) {
			t.Parallel()
			// Fresh engines per side so neither run warms the other's caches.
			plain, err := New(Options{}).Solve(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			ctx := obs.ContextWithTrace(context.Background(), obs.NewTrace("test"))
			traced, err := New(Options{}).Solve(ctx, req)
			if err != nil {
				t.Fatal(err)
			}

			if plain.Timing != nil {
				t.Error("untraced solve has non-nil Response.Timing")
			}
			if traced.Timing == nil {
				t.Fatal("traced solve has nil Response.Timing")
			}

			a, err := json.Marshal(normalized(plain.Solution))
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(normalized(traced.Solution))
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("solution differs with tracing on:\noff: %s\non:  %s", a, b)
			}
		})
	}
}

// The traced solve's span tree must carry the documented phase spans
// with their parent links intact.
func TestTraceSpanTreeShape(t *testing.T) {
	ctx := obs.ContextWithTrace(context.Background(), obs.NewTrace("test"))
	resp, err := New(Options{}).Solve(ctx, s820Req())
	if err != nil {
		t.Fatal(err)
	}
	td := resp.Timing
	if td == nil {
		t.Fatal("nil Timing")
	}
	byName := make(map[string]obs.SpanData)
	byID := make(map[string]obs.SpanData)
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
		byID[sp.SpanID] = sp
	}
	for _, name := range []string{"solve", "prepare", "atpg", "matrix", "fsim", "covering", "reduce", "ascent", "bb"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("span %q missing from trace (have %d spans)", name, len(td.Spans))
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	for child, parent := range map[string]string{
		"prepare":  "solve",
		"matrix":   "solve",
		"covering": "solve",
		"atpg":     "prepare",
		"reduce":   "covering",
		"bb":       "covering",
	} {
		if got := byID[byName[child].Parent].Name; got != parent {
			t.Errorf("span %q parent = %q, want %q", child, got, parent)
		}
	}
	for _, sp := range td.Spans {
		if sp.Duration < 0 {
			t.Errorf("span %q has negative duration %d", sp.Name, sp.Duration)
		}
	}
}
