// Package cache provides the memoizing singleflight group behind the
// reseeding Engine's artifact caches.
//
// A Group[K, V] is a concurrency-safe map from keys to values computed at
// most once: the first caller of Do for a key (the leader) starts the
// computation, concurrent callers with the same key join the flight instead
// of duplicating the work, and later callers get the memoized value without
// computing anything.
//
// # Cancellation
//
// Every caller waits under its own context and stops waiting the moment
// that context is done. The computation itself runs under a flight context
// detached from any single caller's, so one impatient caller cannot poison
// the result for the others; the flight context is cancelled only when the
// last interested caller has abandoned the flight, at which point the
// computation is genuinely unwanted. A computation that returns an error
// (including a cancellation error) is not memoized — the entry is dropped
// and the next Do for the key starts a fresh flight.
package cache

import (
	"context"
	"sync"
)

// Group memoizes the results of a keyed computation with singleflight
// deduplication of concurrent identical calls. The zero value is ready to
// use. A Group must not be copied after first use.
type Group[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V] // guarded by mu
	limit   int             // guarded by mu
}

type entry[V any] struct {
	done    chan struct{} // closed when val/err are settled
	cancel  context.CancelFunc
	waiters int // callers currently interested in the result
	settled bool
	val     V
	err     error
}

// Do returns the value for key, computing it with fn if it is not cached.
// Concurrent calls with the same key share one invocation of fn; fn
// receives a flight context that is cancelled only when every caller
// sharing the flight has had its own context cancelled first. The second
// return value reports whether the result came from the cache or a shared
// flight (true) rather than a fresh leader computation (false).
//
// A nil ctx is treated as context.Background(). When ctx is done before the
// flight settles, Do returns ctx.Err() without waiting further; the flight
// keeps running for the remaining waiters, if any. Errors (fn failures and
// abandoned flights alike) are never memoized: the key becomes computable
// again immediately.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.entries == nil {
		g.entries = make(map[K]*entry[V])
	}
	if e, ok := g.entries[key]; ok {
		if e.settled {
			g.mu.Unlock()
			return e.val, true, e.err
		}
		e.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, e, true)
	}

	// Leader: run fn in its own goroutine under a flight context detached
	// from ctx, then join the flight like any other waiter. Detachment (via
	// context.WithoutCancel) keeps ctx's values visible to fn while making
	// the flight's lifetime depend on the waiter count, not on the leader.
	g.evictLocked()
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	e := &entry[V]{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.entries[key] = e
	g.mu.Unlock()

	go func() {
		val, err := fn(fctx)
		g.mu.Lock()
		e.val, e.err = val, err
		e.settled = true
		if err != nil && g.entries[key] == e {
			// Failed flights are not memoized; the next Do retries. The
			// identity check matters: an abandoned flight was already
			// detached, and the key may since have been taken by a fresh
			// one that must not be evicted.
			delete(g.entries, key)
		}
		g.mu.Unlock()
		close(e.done)
		cancel() // release the flight context's resources
	}()
	return g.wait(ctx, key, e, false)
}

// wait blocks until the entry settles or ctx is done, maintaining the
// waiter count. The last waiter to abandon an unsettled flight cancels it.
func (g *Group[K, V]) wait(ctx context.Context, key K, e *entry[V], shared bool) (V, bool, error) {
	select {
	case <-e.done:
		g.mu.Lock()
		e.waiters--
		g.mu.Unlock()
		return e.val, shared, e.err
	case <-ctx.Done():
		g.mu.Lock()
		e.waiters--
		if e.waiters == 0 && !e.settled {
			// Nobody wants this flight any more: cancel it and detach it
			// from the key immediately, so a new caller starts a fresh
			// flight instead of joining a doomed one.
			e.cancel()
			if g.entries[key] == e {
				delete(g.entries, key)
			}
		}
		g.mu.Unlock()
		var zero V
		return zero, shared, ctx.Err()
	}
}

// SetLimit bounds the number of cached entries; 0 (the default) means
// unbounded. When a new computation would exceed the bound, arbitrary
// settled entries are evicted (random replacement — the map's iteration
// order). In-flight computations are never evicted, so the bound can be
// exceeded transiently while more than limit flights run concurrently.
// Call it before the Group is shared between goroutines.
func (g *Group[K, V]) SetLimit(n int) {
	g.mu.Lock()
	g.limit = n
	g.mu.Unlock()
}

// evictLocked makes room for one more entry under the configured limit.
// Caller holds g.mu.
func (g *Group[K, V]) evictLocked() {
	if g.limit <= 0 || len(g.entries) < g.limit {
		return
	}
	for k, e := range g.entries {
		if e.settled {
			delete(g.entries, k)
			if len(g.entries) < g.limit {
				return
			}
		}
	}
}

// Forget drops the cached value for key, if any. An in-flight computation
// is not interrupted — its waiters still receive its result — but the
// result will not be visible to future Do calls. The next Do for the key
// computes afresh.
func (g *Group[K, V]) Forget(key K) {
	g.mu.Lock()
	delete(g.entries, key)
	g.mu.Unlock()
}

// Flush drops every cached value and forgets every in-flight computation
// (current waiters still receive their results).
func (g *Group[K, V]) Flush() {
	g.mu.Lock()
	g.entries = nil
	g.mu.Unlock()
}

// Len returns the number of cached or in-flight entries.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}
