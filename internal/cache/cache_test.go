package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrent identical keys must share one computation; the memoized value
// must serve later calls without recomputing.
func TestSingleflightDedup(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, s, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], shared[i] = v, s
		}(i)
	}
	// Let the goroutines pile onto the flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != 42 {
			t.Errorf("result[%d] = %d", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}

	// Memoized: no new call, reported as shared.
	v, s, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		t.Error("recomputed a memoized key")
		return 0, nil
	})
	if err != nil || v != 42 || !s {
		t.Errorf("cached Do = (%d, %v, %v)", v, s, err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

// A caller whose context is cancelled stops waiting promptly; the flight
// keeps running for the remaining waiters.
func TestWaiterCancellation(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	started := make(chan struct{})

	go func() {
		_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.Do(ctx, "k", nil) // joins the flight; fn unused
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}

	close(release)
	v, _, err := g.Do(context.Background(), "k", nil)
	if err != nil || v != 7 {
		t.Fatalf("surviving flight = (%d, %v)", v, err)
	}
}

// When every caller abandons a flight, the flight context is cancelled and
// the failed computation is not memoized: the next Do retries.
func TestAbandonedFlightCancelsAndRetries(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doomed := make(chan struct{})
	_, _, err := g.Do(ctx, "k", func(fctx context.Context) (int, error) {
		calls.Add(1)
		<-fctx.Done() // the last (only) waiter leaving must cancel us
		close(doomed)
		return 0, fctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v", err)
	}

	// The abandoned flight is detached immediately: the very next Do must
	// start a fresh computation even if the doomed one is still draining.
	v, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		calls.Add(1)
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
	<-doomed
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times, want 2", calls.Load())
	}
}

// Errors are returned to every waiter and never memoized.
func TestErrorNotMemoized(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 5, nil
	})
	if err != nil || v != 5 || shared {
		t.Fatalf("retry = (%d, %v, %v)", v, shared, err)
	}
}

// Forget drops a memoized value; distinct keys are independent.
func TestForgetAndDistinctKeys(t *testing.T) {
	var g Group[int, int]
	for _, k := range []int{1, 2} {
		v, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		})
		if err != nil || v != k*10 {
			t.Fatalf("key %d = (%d, %v)", k, v, err)
		}
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	g.Forget(1)
	var recomputed bool
	if _, _, err := g.Do(context.Background(), 1, func(context.Context) (int, error) {
		recomputed = true
		return 11, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("forgotten key served from cache")
	}
	g.Flush()
	if g.Len() != 0 {
		t.Errorf("Len after Flush = %d", g.Len())
	}
}

// SetLimit bounds the cache: settled entries are evicted to make room,
// evicted keys recompute, retained values stay correct.
func TestLimitEvictsSettledEntries(t *testing.T) {
	var g Group[int, int]
	g.SetLimit(2)
	for k := 1; k <= 3; k++ {
		if _, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() > 2 {
		t.Errorf("Len = %d, limit 2", g.Len())
	}
	// Every key still answers correctly, cached or recomputed.
	for k := 1; k <= 3; k++ {
		v, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		})
		if err != nil || v != k*10 {
			t.Errorf("key %d = (%d, %v)", k, v, err)
		}
	}
}

// An in-flight computation must survive limit eviction: only settled
// entries are replacement candidates, so a slow flight keeps its waiters
// and its memoized result even while faster keys churn the cache past its
// bound.
func TestLimitNeverEvictsInFlight(t *testing.T) {
	var g Group[int, int]
	g.SetLimit(1)

	const slowKey = 0
	started := make(chan struct{})
	release := make(chan struct{})
	var slowComputes atomic.Int32
	slowErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), slowKey, func(context.Context) (int, error) {
			slowComputes.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		slowErr <- err
	}()
	<-started

	// Churn other keys through the full cache: each leader runs eviction.
	for k := 1; k <= 8; k++ {
		if _, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A caller joining now must share the original flight, not start a
	// second computation.
	joined := make(chan error, 1)
	go func() {
		v, shared, err := g.Do(context.Background(), slowKey, func(context.Context) (int, error) {
			slowComputes.Add(1)
			return -1, nil
		})
		if err == nil && (!shared || v != 42) {
			err = errors.New("joiner did not share the in-flight computation")
		}
		joined <- err
	}()

	close(release)
	if err := <-slowErr; err != nil {
		t.Fatal(err)
	}
	if err := <-joined; err != nil {
		t.Fatal(err)
	}
	if n := slowComputes.Load(); n != 1 {
		t.Fatalf("slow key computed %d times, want 1", n)
	}
}

// The limit-eviction path must stay correct under concurrent Do and Flush:
// every caller always receives its key's value (recomputed or cached,
// never another key's), with no deadlock and no race (CI runs this under
// -race).
func TestLimitEvictionConcurrentDoFlush(t *testing.T) {
	var g Group[int, int]
	g.SetLimit(4)

	const (
		workers = 8
		rounds  = 200
		keys    = 16
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w + i) % keys
				v, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
					return k * 10, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if v != k*10 {
					errs <- errors.New("wrong value for key")
					return
				}
				if i%17 == 0 {
					g.Flush()
				}
				if i%29 == 0 {
					g.Forget(k)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After a final flush, the group is empty and still serviceable.
	g.Flush()
	if g.Len() != 0 {
		t.Errorf("Len = %d after Flush", g.Len())
	}
	if v, _, err := g.Do(context.Background(), 3, func(context.Context) (int, error) {
		return 30, nil
	}); err != nil || v != 30 {
		t.Fatalf("group broken after stress: (%d, %v)", v, err)
	}
}

// Eviction pressure with waiters attached: several goroutines wait on slow
// flights while settled entries are evicted around them; every waiter gets
// its own flight's value.
func TestLimitEvictionWithConcurrentWaiters(t *testing.T) {
	var g Group[int, int]
	g.SetLimit(2)

	const slowKeys = 3
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(slowKeys)
	var wg sync.WaitGroup
	errs := make(chan error, slowKeys*3)
	for k := 0; k < slowKeys; k++ {
		// One leader plus two joiners per slow key.
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func(k, c int) {
				defer wg.Done()
				v, _, err := g.Do(context.Background(), 100+k, func(context.Context) (int, error) {
					started.Done()
					<-release
					return 100 + k, nil
				})
				if err != nil {
					errs <- err
				} else if v != 100+k {
					errs <- errors.New("waiter got another key's value")
				}
			}(k, c)
			if c == 0 {
				// Let the leader install its flight before the joiners and
				// the churn below, so all three slow flights coexist beyond
				// the limit of 2.
				if k == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}
	started.Wait() // all slow flights in place: cache is over its limit
	for k := 1; k <= 6; k++ {
		if _, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
