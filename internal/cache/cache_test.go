package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrent identical keys must share one computation; the memoized value
// must serve later calls without recomputing.
func TestSingleflightDedup(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, s, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], shared[i] = v, s
		}(i)
	}
	// Let the goroutines pile onto the flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != 42 {
			t.Errorf("result[%d] = %d", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}

	// Memoized: no new call, reported as shared.
	v, s, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		t.Error("recomputed a memoized key")
		return 0, nil
	})
	if err != nil || v != 42 || !s {
		t.Errorf("cached Do = (%d, %v, %v)", v, s, err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

// A caller whose context is cancelled stops waiting promptly; the flight
// keeps running for the remaining waiters.
func TestWaiterCancellation(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	started := make(chan struct{})

	go func() {
		_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.Do(ctx, "k", nil) // joins the flight; fn unused
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}

	close(release)
	v, _, err := g.Do(context.Background(), "k", nil)
	if err != nil || v != 7 {
		t.Fatalf("surviving flight = (%d, %v)", v, err)
	}
}

// When every caller abandons a flight, the flight context is cancelled and
// the failed computation is not memoized: the next Do retries.
func TestAbandonedFlightCancelsAndRetries(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doomed := make(chan struct{})
	_, _, err := g.Do(ctx, "k", func(fctx context.Context) (int, error) {
		calls.Add(1)
		<-fctx.Done() // the last (only) waiter leaving must cancel us
		close(doomed)
		return 0, fctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v", err)
	}

	// The abandoned flight is detached immediately: the very next Do must
	// start a fresh computation even if the doomed one is still draining.
	v, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		calls.Add(1)
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
	<-doomed
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times, want 2", calls.Load())
	}
}

// Errors are returned to every waiter and never memoized.
func TestErrorNotMemoized(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 5, nil
	})
	if err != nil || v != 5 || shared {
		t.Fatalf("retry = (%d, %v, %v)", v, shared, err)
	}
}

// Forget drops a memoized value; distinct keys are independent.
func TestForgetAndDistinctKeys(t *testing.T) {
	var g Group[int, int]
	for _, k := range []int{1, 2} {
		v, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		})
		if err != nil || v != k*10 {
			t.Fatalf("key %d = (%d, %v)", k, v, err)
		}
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	g.Forget(1)
	var recomputed bool
	if _, _, err := g.Do(context.Background(), 1, func(context.Context) (int, error) {
		recomputed = true
		return 11, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("forgotten key served from cache")
	}
	g.Flush()
	if g.Len() != 0 {
		t.Errorf("Len after Flush = %d", g.Len())
	}
}

// SetLimit bounds the cache: settled entries are evicted to make room,
// evicted keys recompute, retained values stay correct.
func TestLimitEvictsSettledEntries(t *testing.T) {
	var g Group[int, int]
	g.SetLimit(2)
	for k := 1; k <= 3; k++ {
		if _, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() > 2 {
		t.Errorf("Len = %d, limit 2", g.Len())
	}
	// Every key still answers correctly, cached or recomputed.
	for k := 1; k <= 3; k++ {
		v, _, err := g.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		})
		if err != nil || v != k*10 {
			t.Errorf("key %d = (%d, %v)", k, v, err)
		}
	}
}
