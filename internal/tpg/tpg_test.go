package tpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestAdderSequence(t *testing.T) {
	g, err := NewAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Expand(g, Triplet{
		Delta:  bitvec.FromUint64(8, 10),
		Theta:  bitvec.FromUint64(8, 3),
		Cycles: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 13, 16, 19, 22}
	for i, w := range want {
		if ts[i].Uint64() != w {
			t.Errorf("pattern %d = %d, want %d", i, ts[i].Uint64(), w)
		}
	}
}

func TestAdderWraps(t *testing.T) {
	g, _ := NewAdder(8)
	ts, _ := Expand(g, Triplet{
		Delta:  bitvec.FromUint64(8, 250),
		Theta:  bitvec.FromUint64(8, 10),
		Cycles: 3,
	})
	want := []uint64{250, 4, 14}
	for i, w := range want {
		if ts[i].Uint64() != w {
			t.Errorf("pattern %d = %d, want %d", i, ts[i].Uint64(), w)
		}
	}
}

func TestSubtracterSequence(t *testing.T) {
	g, _ := NewSubtracter(8)
	ts, _ := Expand(g, Triplet{
		Delta:  bitvec.FromUint64(8, 5),
		Theta:  bitvec.FromUint64(8, 3),
		Cycles: 4,
	})
	want := []uint64{5, 2, 255, 252}
	for i, w := range want {
		if ts[i].Uint64() != w {
			t.Errorf("pattern %d = %d, want %d", i, ts[i].Uint64(), w)
		}
	}
}

func TestMultiplierSequence(t *testing.T) {
	g, _ := NewMultiplier(8)
	ts, _ := Expand(g, Triplet{
		Delta:  bitvec.FromUint64(8, 3),
		Theta:  bitvec.FromUint64(8, 5),
		Cycles: 4,
	})
	want := []uint64{3, 15, 75, 375 % 256}
	for i, w := range want {
		if ts[i].Uint64() != w {
			t.Errorf("pattern %d = %d, want %d", i, ts[i].Uint64(), w)
		}
	}
}

// The paper's key construction: with T = 1 the test set is exactly {δ}.
func TestCycleOneYieldsSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, kind := range Kinds() {
		g, err := ByName(kind, 32)
		if err != nil {
			t.Fatal(err)
		}
		delta := bitvec.Random(32, rng)
		ts, err := Expand(g, Triplet{Delta: delta, Theta: g.RandomTheta(rng), Cycles: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 1 || !ts[0].Equal(delta) {
			t.Errorf("%s: T=1 test set != {δ}", kind)
		}
	}
}

func TestLoadWidthMismatch(t *testing.T) {
	g, _ := NewAdder(8)
	if err := g.Load(bitvec.New(7), bitvec.New(8)); err == nil {
		t.Error("expected width mismatch error for delta")
	}
	if err := g.Load(bitvec.New(8), bitvec.New(9)); err == nil {
		t.Error("expected width mismatch error for theta")
	}
	l, _ := NewLFSR(8, DefaultPolynomials(8, 2, 1))
	if err := l.Load(bitvec.New(9), bitvec.New(8)); err == nil {
		t.Error("expected width mismatch error for LFSR")
	}
}

func TestExpandNegativeCycles(t *testing.T) {
	g, _ := NewAdder(8)
	if _, err := Expand(g, Triplet{Delta: bitvec.New(8), Theta: bitvec.New(8), Cycles: -1}); err == nil {
		t.Error("expected error for negative cycles")
	}
}

func TestMultiplierThetaForcedOdd(t *testing.T) {
	g, _ := NewMultiplier(64)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		theta := g.RandomTheta(rng)
		if !theta.Bit(0) {
			t.Fatal("multiplier RandomTheta returned an even value")
		}
	}
}

func TestAdderThetaNeverZero(t *testing.T) {
	g, _ := NewAdder(1) // width 1 makes zero highly likely
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if g.RandomTheta(rng).IsZero() {
			t.Fatal("adder RandomTheta returned zero")
		}
	}
}

// Property: multiplier with odd θ is a bijection on states, so distinct δ
// give distinct patterns at every cycle.
func TestMultiplierOddThetaBijectiveQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prop := func(uint8) bool {
		w := 4 + rng.Intn(60)
		g, _ := NewMultiplier(w)
		theta := g.RandomTheta(rng)
		d1, d2 := bitvec.Random(w, rng), bitvec.Random(w, rng)
		if d1.Equal(d2) {
			return true
		}
		ts1, _ := Expand(g, Triplet{Delta: d1, Theta: theta, Cycles: 8})
		g2, _ := NewMultiplier(w)
		ts2, _ := Expand(g2, Triplet{Delta: d2, Theta: theta, Cycles: 8})
		for i := range ts1 {
			if ts1[i].Equal(ts2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLFSRStepKnownSequence(t *testing.T) {
	// 4-bit Galois LFSR with taps x^4 + x^3 + 1 (mask 0b1100 in our
	// shift-right form: tap bits at positions 3 and 2).
	taps := bitvec.MustFromString("1100")
	l, err := NewLFSR(4, []bitvec.Vector{taps})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Expand(l, Triplet{
		Delta:  bitvec.MustFromString("0001"),
		Theta:  bitvec.New(4),
		Cycles: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// state 0001 -> shift 0000 ^ 1100 = 1100 -> 0110 -> 0011.
	want := []string{"0001", "1100", "0110", "0011"}
	for i, w := range want {
		if got := ts[i].String(); got != w {
			t.Errorf("cycle %d = %s, want %s", i, got, w)
		}
	}
}

func TestLFSRPeriod(t *testing.T) {
	// With the x^4+x^3+1 (primitive) polynomial the nonzero orbit has
	// period 15.
	taps := bitvec.MustFromString("1100")
	l, _ := NewLFSR(4, []bitvec.Vector{taps})
	start := bitvec.MustFromString("1000")
	if err := l.Load(start, bitvec.New(4)); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	period := 0
	for {
		s := l.Output().String()
		if seen[s] {
			break
		}
		seen[s] = true
		period++
		l.Step()
	}
	if period != 15 {
		t.Errorf("period = %d, want 15", period)
	}
}

func TestLFSRZeroLockup(t *testing.T) {
	l, _ := NewLFSR(8, DefaultPolynomials(8, 1, 1))
	ts, _ := Expand(l, Triplet{Delta: bitvec.New(8), Theta: bitvec.New(8), Cycles: 3})
	for i, p := range ts {
		if !p.IsZero() {
			t.Errorf("cycle %d: zero state escaped to %s", i, p)
		}
	}
}

func TestLFSRPolynomialSelection(t *testing.T) {
	polys := DefaultPolynomials(16, 4, 7)
	l, _ := NewLFSR(16, polys)
	delta := bitvec.FromUint64(16, 0x8001)
	runWith := func(sel uint64) string {
		ts, err := Expand(l, Triplet{Delta: delta, Theta: bitvec.FromUint64(16, sel), Cycles: 6})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, p := range ts {
			s += p.Hex()
		}
		return s
	}
	if runWith(0) == runWith(1) {
		t.Error("different θ selectors should pick different polynomials")
	}
	if runWith(1) != runWith(5) {
		t.Error("θ=1 and θ=5 select the same polynomial (mod 4) and must agree")
	}
}

func TestLFSRRejectsBadPolys(t *testing.T) {
	if _, err := NewLFSR(8, nil); err == nil {
		t.Error("expected error for no polynomials")
	}
	noTop := bitvec.New(8)
	noTop.SetBit(0, true)
	if _, err := NewLFSR(8, []bitvec.Vector{noTop}); err == nil {
		t.Error("expected error for polynomial without top tap")
	}
	if _, err := NewLFSR(8, []bitvec.Vector{bitvec.New(7)}); err == nil {
		t.Error("expected error for wrong-width polynomial")
	}
}

func TestByName(t *testing.T) {
	for _, kind := range Kinds() {
		g, err := ByName(kind, 16)
		if err != nil {
			t.Errorf("ByName(%q): %v", kind, err)
			continue
		}
		if g.Width() != 16 {
			t.Errorf("%s width = %d", kind, g.Width())
		}
	}
	if _, err := ByName("bogus", 16); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestAccumulatorRejectsBadWidth(t *testing.T) {
	if _, err := NewAdder(0); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := NewAccumulator(AccOp(99), 8); err == nil {
		t.Error("expected error for unknown op")
	}
}

func TestOutputIsACopy(t *testing.T) {
	g, _ := NewAdder(8)
	_ = g.Load(bitvec.FromUint64(8, 1), bitvec.FromUint64(8, 1))
	o := g.Output()
	o.SetBit(7, true)
	if g.Output().Bit(7) {
		t.Error("Output exposes internal state")
	}
}

func BenchmarkAdderStep256(b *testing.B) {
	g, _ := NewAdder(256)
	rng := rand.New(rand.NewSource(1))
	_ = g.Load(bitvec.Random(256, rng), bitvec.Random(256, rng))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

func BenchmarkMultiplierStep256(b *testing.B) {
	g, _ := NewMultiplier(256)
	rng := rand.New(rand.NewSource(1))
	_ = g.Load(bitvec.Random(256, rng), g.RandomTheta(rng))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}
