// Package tpg models the test pattern generators of the Functional BIST
// scheme: existing system modules (accumulators, LFSRs) reused to apply test
// patterns to a unit under test.
//
// A generator is driven by a triplet (δ, θ, T): its state register is loaded
// with δ, its input register held at θ, and it is clocked for T cycles. The
// T state-register values that appear on its outputs are the test set of the
// triplet. With T = 1 the test set is exactly {δ}, which is how the initial
// reseeding of the paper covers the fault list by construction (δ_i = p_i,
// the i-th ATPG pattern).
package tpg

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
)

// Generator is a functional module usable as a test pattern generator. A
// Generator is stateful and not safe for concurrent use.
type Generator interface {
	// Name identifies the generator kind (e.g. "adder").
	Name() string
	// Width is the pattern width in bits; it must equal the number of UUT
	// inputs.
	Width() int
	// Load seeds the state register with delta and the input register with
	// theta.
	Load(delta, theta bitvec.Vector) error
	// Output returns the pattern applied to the UUT in the current cycle.
	Output() bitvec.Vector
	// Step advances the state register by one clock cycle.
	Step()
	// RandomTheta draws a θ value appropriate for this generator kind (for
	// a multiplier the value is forced odd so the state does not collapse
	// to zero; for an LFSR θ selects the feedback polynomial).
	RandomTheta(rng *rand.Rand) bitvec.Vector
}

// Triplet is one reseeding: state seed δ, input value θ, and evolution
// length T in clock cycles.
type Triplet struct {
	Delta  bitvec.Vector
	Theta  bitvec.Vector
	Cycles int
}

// String summarizes the triplet without printing full-width seeds.
func (t Triplet) String() string {
	return fmt.Sprintf("(δ=%s… θ=%s… T=%d)", prefix(t.Delta, 8), prefix(t.Theta, 8), t.Cycles)
}

func prefix(v bitvec.Vector, n int) string {
	s := v.Hex()
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Expand runs the generator under the triplet and returns its test set: the
// sequence of T output patterns.
func Expand(g Generator, t Triplet) ([]bitvec.Vector, error) {
	if t.Cycles < 0 {
		return nil, fmt.Errorf("tpg: negative cycle count %d", t.Cycles)
	}
	if err := g.Load(t.Delta, t.Theta); err != nil {
		return nil, err
	}
	out := make([]bitvec.Vector, t.Cycles)
	for i := 0; i < t.Cycles; i++ {
		out[i] = g.Output()
		g.Step()
	}
	return out, nil
}

// AccOp selects the arithmetic function of an accumulator-based generator.
type AccOp int

// Accumulator operations, matching the three TPGs evaluated in the paper.
const (
	OpAdd AccOp = iota // S ← S + θ mod 2^n
	OpSub              // S ← S − θ mod 2^n
	OpMul              // S ← S × θ mod 2^n
)

func (op AccOp) String() string {
	switch op {
	case OpAdd:
		return "adder"
	case OpSub:
		return "subtracter"
	case OpMul:
		return "multiplier"
	default:
		return fmt.Sprintf("AccOp(%d)", int(op))
	}
}

// Accumulator is an accumulator-based TPG: an n-bit register updated through
// an adder, subtracter or multiplier whose second operand is the input
// register. These are the arithmetic-BIST structures of Rajski/Tyszer and
// Dorsch/Wunderlich reused as pattern generators.
type Accumulator struct {
	op    AccOp
	width int
	state bitvec.Vector
	theta bitvec.Vector
}

// NewAccumulator returns an accumulator TPG of the given operation and width.
func NewAccumulator(op AccOp, width int) (*Accumulator, error) {
	if width <= 0 {
		return nil, fmt.Errorf("tpg: invalid accumulator width %d", width)
	}
	switch op {
	case OpAdd, OpSub, OpMul:
	default:
		return nil, fmt.Errorf("tpg: unknown accumulator op %d", int(op))
	}
	return &Accumulator{
		op:    op,
		width: width,
		state: bitvec.New(width),
		theta: bitvec.New(width),
	}, nil
}

// NewAdder returns an adder-based accumulator TPG.
func NewAdder(width int) (*Accumulator, error) { return NewAccumulator(OpAdd, width) }

// NewSubtracter returns a subtracter-based accumulator TPG.
func NewSubtracter(width int) (*Accumulator, error) { return NewAccumulator(OpSub, width) }

// NewMultiplier returns a multiplier-based accumulator TPG.
func NewMultiplier(width int) (*Accumulator, error) { return NewAccumulator(OpMul, width) }

// Name implements Generator.
func (a *Accumulator) Name() string { return a.op.String() }

// Width implements Generator.
func (a *Accumulator) Width() int { return a.width }

// Load implements Generator.
func (a *Accumulator) Load(delta, theta bitvec.Vector) error {
	if delta.Width() != a.width || theta.Width() != a.width {
		return fmt.Errorf("tpg: %s: seed widths %d/%d do not match generator width %d",
			a.Name(), delta.Width(), theta.Width(), a.width)
	}
	a.state = delta.Clone()
	a.theta = theta.Clone()
	return nil
}

// Output implements Generator.
func (a *Accumulator) Output() bitvec.Vector { return a.state.Clone() }

// Step implements Generator.
func (a *Accumulator) Step() {
	switch a.op {
	case OpAdd:
		a.state = bitvec.Add(a.state, a.theta)
	case OpSub:
		a.state = bitvec.Sub(a.state, a.theta)
	case OpMul:
		a.state = bitvec.Mul(a.state, a.theta)
	}
}

// RandomTheta implements Generator. For the multiplier the result is forced
// odd (a unit mod 2^n), otherwise repeated multiplication collapses the
// state register to zero and the triplet's test set degenerates.
func (a *Accumulator) RandomTheta(rng *rand.Rand) bitvec.Vector {
	v := bitvec.Random(a.width, rng)
	if a.op == OpMul {
		v.SetBit(0, true)
	} else if v.IsZero() {
		// A zero increment makes every pattern identical; nudge it.
		v.SetBit(0, true)
	}
	return v
}

// LFSR is a Galois (one-to-many) linear feedback shift register TPG with a
// bank of selectable feedback polynomials, in the style of the
// multiple-polynomial reseeding scheme of Hellebrand et al. The input
// register value θ selects the polynomial: poly = θ mod len(polys).
type LFSR struct {
	width int
	polys []bitvec.Vector // tap masks; bit i set = tap after stage i
	state bitvec.Vector
	taps  bitvec.Vector
}

// NewLFSR returns an LFSR TPG of the given width with the given tap masks.
// Every mask must have the top bit set (so the register keeps its full
// period structure); at least one polynomial is required.
func NewLFSR(width int, polys []bitvec.Vector) (*LFSR, error) {
	if width <= 0 {
		return nil, fmt.Errorf("tpg: invalid LFSR width %d", width)
	}
	if len(polys) == 0 {
		return nil, fmt.Errorf("tpg: LFSR needs at least one polynomial")
	}
	for i, p := range polys {
		if p.Width() != width {
			return nil, fmt.Errorf("tpg: polynomial %d has width %d, want %d", i, p.Width(), width)
		}
		if !p.Bit(width - 1) {
			return nil, fmt.Errorf("tpg: polynomial %d lacks the top tap", i)
		}
	}
	return &LFSR{
		width: width,
		polys: polys,
		state: bitvec.New(width),
		taps:  polys[0].Clone(),
	}, nil
}

// DefaultPolynomials derives k deterministic tap masks of the given width
// from the seed. The masks are random with the top tap forced; they are not
// guaranteed primitive but give long, distinct orbits in practice.
func DefaultPolynomials(width, k int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bitvec.Vector, k)
	for i := range out {
		p := bitvec.Random(width, rng)
		p.SetBit(width-1, true)
		p.SetBit(0, true) // ensure the characteristic polynomial has x^0
		out[i] = p
	}
	return out
}

// Name implements Generator.
func (l *LFSR) Name() string { return "lfsr" }

// Width implements Generator.
func (l *LFSR) Width() int { return l.width }

// Load implements Generator. θ selects the feedback polynomial by value
// modulo the polynomial count.
func (l *LFSR) Load(delta, theta bitvec.Vector) error {
	if delta.Width() != l.width || theta.Width() != l.width {
		return fmt.Errorf("tpg: lfsr: seed widths %d/%d do not match width %d",
			delta.Width(), theta.Width(), l.width)
	}
	l.state = delta.Clone()
	idx := int(theta.Uint64() % uint64(len(l.polys)))
	l.taps = l.polys[idx].Clone()
	return nil
}

// Output implements Generator.
func (l *LFSR) Output() bitvec.Vector { return l.state.Clone() }

// Step implements Generator: Galois right shift; when the LSB is 1 the tap
// mask is XORed into the shifted state.
func (l *LFSR) Step() {
	lsb := l.state.Bit(0)
	l.state = bitvec.ShiftRight(l.state, 1)
	if lsb {
		l.state = bitvec.Xor(l.state, l.taps)
	}
}

// RandomTheta implements Generator: a random polynomial selector.
func (l *LFSR) RandomTheta(rng *rand.Rand) bitvec.Vector {
	return bitvec.FromUint64(l.width, uint64(rng.Intn(len(l.polys))))
}

// ByName constructs a generator by kind name: "adder", "subtracter",
// "multiplier", or "lfsr" (with k default polynomials).
func ByName(kind string, width int) (Generator, error) {
	switch kind {
	case "adder", "add":
		return NewAdder(width)
	case "subtracter", "sub":
		return NewSubtracter(width)
	case "multiplier", "mul":
		return NewMultiplier(width)
	case "lfsr":
		return NewLFSR(width, DefaultPolynomials(width, 8, 1))
	default:
		return nil, fmt.Errorf("tpg: unknown generator kind %q", kind)
	}
}

// Kinds lists the generator kind names accepted by ByName.
func Kinds() []string { return []string{"adder", "subtracter", "multiplier", "lfsr"} }
