// Package parallel provides the small bounded worker pool shared by the
// repository's hot paths (fault simulation and Detection Matrix
// construction).
//
// The pool is deliberately minimal: work is identified by integer index,
// indices are handed out dynamically (an atomic cursor, so fast workers steal
// slack from slow ones), and every callback receives the worker's identity
// so callers can keep per-worker scratch state without locking. Nothing here
// introduces nondeterminism by itself — callers that write results to
// per-index slots and fold them in index order get output that is
// bit-identical to a serial run, which is the contract internal/fsim and
// internal/dmatrix document.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Degree normalizes a requested parallelism: values >= 1 are returned
// unchanged; zero and negative values mean "one worker per available
// processor" (runtime.GOMAXPROCS(0)). It is the single interpretation of
// every Parallelism option and -j flag in the repository.
func Degree(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Clamp limits a degree to the number of work items so that no goroutine is
// spawned just to find the queue already drained.
func Clamp(workers, items int) int {
	if items < 1 {
		return 1
	}
	if workers > items {
		return items
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// ForEach invokes fn(worker, i) exactly once for every i in [0, n),
// distributing indices dynamically across Clamp(workers, n) goroutines.
// worker is in [0, Clamp(workers, n)) and identifies the calling goroutine,
// so fn may freely use worker-indexed scratch state.
//
// The first error returned by fn stops the distribution of further indices
// (in-flight calls still finish) and is returned. With workers <= 1, fn runs
// on the calling goroutine with worker == 0.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	cursor.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// ForEachChunk invokes fn(worker, lo, hi) over half-open chunks [lo, hi)
// that partition [0, n), each at most chunk wide, distributed dynamically
// across at most `workers` goroutines. It is ForEach for inner loops too
// cheap to pay one atomic operation per index; fn cannot fail because the
// hot loops it hosts (per-fault event propagation) have no error paths.
//
// With workers <= 1 (or a single chunk) fn runs on the calling goroutine.
func ForEachChunk(workers, n, chunk int, fn func(worker, lo, hi int)) {
	if n < 1 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	workers = Clamp(workers, chunks)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	cursor.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				ci := int(cursor.Add(1))
				if ci >= chunks {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
