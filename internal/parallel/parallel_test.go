package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if got := Degree(3); got != 3 {
		t.Errorf("Degree(3) = %d", got)
	}
	if got := Degree(1); got != 1 {
		t.Errorf("Degree(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Degree(0); got != want {
		t.Errorf("Degree(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Degree(-5); got != want {
		t.Errorf("Degree(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ workers, items, want int }{
		{8, 3, 3},
		{2, 100, 2},
		{0, 5, 1},
		{4, 0, 1},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.items); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.items, got, c.want)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		err := ForEach(workers, n, func(worker, i int) error {
			if worker < 0 || worker >= Clamp(workers, n) {
				t.Errorf("worker id %d out of range", worker)
			}
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(worker, i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called with no work")
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ForEach(4, 10000, func(worker, i int) error {
		calls.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The error stops further distribution: far fewer than n calls happen.
	if n := calls.Load(); n == 10000 {
		t.Errorf("error did not stop distribution (%d calls)", n)
	}
}

func TestForEachSerialErrorStopsImmediately(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ForEach(1, 100, func(worker, i int) error {
		calls++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 4 {
		t.Errorf("serial path made %d calls, want 4", calls)
	}
}

func TestForEachChunkCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, chunk := range []int{1, 7, 64, 1000} {
			const n = 517
			counts := make([]int32, n)
			ForEachChunk(workers, n, chunk, func(worker, lo, hi int) {
				if hi-lo > chunk && Clamp(workers, (n+chunk-1)/chunk) > 1 {
					t.Errorf("chunk [%d,%d) wider than %d", lo, hi, chunk)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d chunk=%d: index %d visited %d times",
						workers, chunk, i, c)
				}
			}
		}
	}
}

func TestForEachChunkEmpty(t *testing.T) {
	ForEachChunk(4, 0, 16, func(worker, lo, hi int) {
		t.Error("fn called with no work")
	})
}
