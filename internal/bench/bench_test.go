package bench

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		c, err := Generate(p)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		st := c.Stats()
		if st.Inputs != p.Inputs {
			t.Errorf("%s: inputs = %d, want %d", p.Name, st.Inputs, p.Inputs)
		}
		if st.Outputs != p.Outputs {
			t.Errorf("%s: outputs = %d, want %d", p.Name, st.Outputs, p.Outputs)
		}
		if st.DFFs != p.FFs {
			t.Errorf("%s: FFs = %d, want %d", p.Name, st.DFFs, p.FFs)
		}
		// The gate budget is approximate (cones and collector trees add a
		// margin) but must be in the right ballpark.
		if st.LogicGates < p.Gates || st.LogicGates > p.Gates*3/2+200 {
			t.Errorf("%s: logic gates = %d, budget %d", p.Name, st.LogicGates, p.Gates)
		}
	}
}

func TestNamedUnknown(t *testing.T) {
	if _, err := Named("c9999"); err == nil {
		t.Fatal("expected error for unknown circuit")
	}
}

func TestGenerateRejectsBadProfile(t *testing.T) {
	if _, err := Generate(Profile{Name: "x", Inputs: 0, Outputs: 1, Gates: 10}); err == nil {
		t.Error("expected error for zero inputs")
	}
	if _, err := Generate(Profile{Name: "x", Inputs: 1, Outputs: 0, Gates: 10}); err == nil {
		t.Error("expected error for zero outputs")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Named("c880")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Named("c880")
	if err != nil {
		t.Fatal(err)
	}
	if netlist.Format(a) != netlist.Format(b) {
		t.Error("generation is not deterministic")
	}
}

func TestDistinctCircuitsDiffer(t *testing.T) {
	a, _ := Named("c499")
	b, _ := Named("c1355")
	if netlist.Format(a) == netlist.Format(b) {
		t.Error("different circuits generated identical netlists")
	}
}

func TestScanViewCombinational(t *testing.T) {
	s, err := ScanView("s953")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsCombinational() {
		t.Fatal("scan view contains DFFs")
	}
	p, _ := ProfileByName("s953")
	if got := len(s.Inputs); got != p.ScanInputs() {
		t.Errorf("scan inputs = %d, want %d", got, p.ScanInputs())
	}
	if got := len(s.Outputs); got != p.Outputs+p.FFs {
		t.Errorf("scan outputs = %d, want %d", got, p.Outputs+p.FFs)
	}
}

func TestEveryGateReachesASink(t *testing.T) {
	// On the scan view, every gate must have a path to some output;
	// otherwise its faults are trivially undetectable by construction.
	s, err := ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	reach := make([]bool, s.NumGates())
	var stack []int
	for _, id := range s.Outputs {
		if !reach[id] {
			reach[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range s.Gates[id].Fanin {
			if !reach[f] {
				reach[f] = true
				stack = append(stack, f)
			}
		}
	}
	unreachable := 0
	for _, g := range s.Gates {
		if g.Type == netlist.Input {
			continue // unused PIs are legal
		}
		if !reach[g.ID] {
			unreachable++
		}
	}
	if unreachable > 0 {
		t.Errorf("%d gates cannot reach any output", unreachable)
	}
}

// The premise of the paper: circuits contain random-resistant faults but the
// deterministic ATPG reaches (near-)complete testable coverage.
func TestATPGOnSmallBenchmarks(t *testing.T) {
	for _, name := range []string{"c432", "s420", "s820"} {
		s, err := ScanView(name)
		if err != nil {
			t.Fatal(err)
		}
		faults, _, err := fault.List(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := atpg.Run(s, faults, atpg.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// A couple of aborts at the default backtrack limit are legitimate
		// on the deliberately hard coincidence cones.
		if cov := res.TestableCoverage(); cov < 0.99 {
			t.Errorf("%s: testable coverage %.4f (aborted %d)", name, cov, len(res.Aborted))
		}
		if res.Stats.PodemDetected == 0 {
			t.Errorf("%s: no deterministic contribution; circuit may be fully random testable", name)
		}
		if len(res.Patterns) == 0 {
			t.Errorf("%s: empty test set", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("s1238")
	if !ok {
		t.Fatal("s1238 missing")
	}
	if p.Inputs != 14 || p.FFs != 18 {
		t.Errorf("s1238 profile = %+v", p)
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile found")
	}
	if len(List()) != len(Profiles()) {
		t.Error("List and Profiles disagree")
	}
}

func BenchmarkGenerateC7552(b *testing.B) {
	p, _ := ProfileByName("c7552")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
