// Package bench provides the benchmark circuit suite used by the
// experiments: deterministic synthetic netlists that mirror the interface
// widths (PI/PO/FF counts) and approximate gate counts of the ISCAS'85 and
// ISCAS'89 circuits evaluated in the paper.
//
// The original ISCAS netlists are not redistributable inside this
// self-contained, offline module, so each named circuit here is generated
// from a fixed seed with the published profile: the same number of primary
// inputs, outputs and flip-flops, a comparable amount of random logic with
// reconvergent fanout, and a number of deliberately random-pattern-resistant
// "coincidence cones" (wide AND structures) so that, as in the paper, the
// circuits are not fully testable by random patterns alone. The experiments
// measure the relative behaviour of covering-based reseeding versus
// simulation-driven search on the Detection Matrices these circuits induce;
// that structure is preserved by the substitution (see DESIGN.md §2).
package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netlist"
)

// Profile describes a benchmark circuit's interface and size.
type Profile struct {
	Name      string
	Inputs    int // primary inputs
	Outputs   int // primary outputs
	FFs       int // D flip-flops (0 for the combinational c-series)
	Gates     int // approximate logic gate budget
	HardCones int // random-pattern-resistant cones to embed
	Seed      int64
}

// ScanInputs returns the pattern width of the full-scan test view:
// primary inputs plus pseudo inputs (one per flip-flop).
func (p Profile) ScanInputs() int { return p.Inputs + p.FFs }

// profiles lists the circuits appearing in the paper's Tables 1 and 2, with
// interface counts from the published ISCAS benchmark tables.
var profiles = []Profile{
	// ISCAS'85 combinational circuits.
	{Name: "c432", Inputs: 36, Outputs: 7, Gates: 160, HardCones: 2},
	{Name: "c499", Inputs: 41, Outputs: 32, Gates: 202, HardCones: 2},
	{Name: "c880", Inputs: 60, Outputs: 26, Gates: 383, HardCones: 3},
	{Name: "c1355", Inputs: 41, Outputs: 32, Gates: 546, HardCones: 3},
	{Name: "c1908", Inputs: 33, Outputs: 25, Gates: 880, HardCones: 4},
	{Name: "c2670", Inputs: 233, Outputs: 140, Gates: 1193, HardCones: 5},
	{Name: "c3540", Inputs: 50, Outputs: 22, Gates: 1669, HardCones: 6},
	{Name: "c5315", Inputs: 178, Outputs: 123, Gates: 2307, HardCones: 6},
	{Name: "c6288", Inputs: 32, Outputs: 32, Gates: 2416, HardCones: 4},
	{Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3512, HardCones: 8},
	// ISCAS'89 sequential circuits (used in full-scan form).
	{Name: "s420", Inputs: 18, Outputs: 1, FFs: 21, Gates: 218, HardCones: 2},
	{Name: "s641", Inputs: 35, Outputs: 24, FFs: 19, Gates: 379, HardCones: 2},
	{Name: "s820", Inputs: 18, Outputs: 19, FFs: 5, Gates: 289, HardCones: 2},
	{Name: "s838", Inputs: 34, Outputs: 1, FFs: 32, Gates: 446, HardCones: 3},
	{Name: "s953", Inputs: 16, Outputs: 23, FFs: 29, Gates: 395, HardCones: 3},
	{Name: "s1238", Inputs: 14, Outputs: 14, FFs: 18, Gates: 508, HardCones: 3},
	{Name: "s1423", Inputs: 17, Outputs: 5, FFs: 74, Gates: 657, HardCones: 3},
	{Name: "s5378", Inputs: 35, Outputs: 49, FFs: 179, Gates: 2779, HardCones: 6},
	{Name: "s9234", Inputs: 36, Outputs: 39, FFs: 211, Gates: 5597, HardCones: 10},
	{Name: "s13207", Inputs: 62, Outputs: 152, FFs: 638, Gates: 7951, HardCones: 12},
	{Name: "s15850", Inputs: 77, Outputs: 150, FFs: 534, Gates: 9772, HardCones: 14},
}

// Profiles returns the benchmark profiles in suite order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	for i := range out {
		out[i].Seed = seedFor(out[i].Name)
	}
	return out
}

// List returns the benchmark circuit names in suite order.
func List() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ProfileByName returns the profile of a named benchmark.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			p.Seed = seedFor(name)
			return p, true
		}
	}
	return Profile{}, false
}

// seedFor derives a stable per-circuit generation seed from the name.
func seedFor(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// Named generates the benchmark circuit with the given name. Sequential
// circuits are returned with their flip-flops in place; use ScanView (or
// Circuit.FullScan) for the combinational test view.
func Named(name string) (*netlist.Circuit, error) {
	p, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown circuit %q (known: %v)", name, List())
	}
	return Generate(p)
}

// ScanView generates the named benchmark and returns its full-scan
// combinational test view, the form consumed by the ATPG and reseeding flow.
func ScanView(name string) (*netlist.Circuit, error) {
	c, err := Named(name)
	if err != nil {
		return nil, err
	}
	return c.FullScan()
}

// Generate builds a circuit from an arbitrary profile. Generation is fully
// deterministic in Profile.Seed.
func Generate(p Profile) (*netlist.Circuit, error) {
	if p.Inputs <= 0 || p.Outputs <= 0 || p.Gates <= 0 || p.FFs < 0 {
		return nil, fmt.Errorf("bench: invalid profile %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := netlist.New(p.Name)

	b := &builder{c: c, rng: rng}
	for i := 0; i < p.Inputs; i++ {
		name := fmt.Sprintf("I%d", i)
		if _, err := c.AddInput(name); err != nil {
			return nil, err
		}
		b.signals = append(b.signals, name)
	}
	// Flip-flop Q outputs join the signal pool immediately; the DFF gates
	// themselves are declared at the end once their D drivers exist (the
	// netlist package resolves the forward references).
	for i := 0; i < p.FFs; i++ {
		b.signals = append(b.signals, fmt.Sprintf("Q%d", i))
	}

	// Main random-logic body with locality-biased fanin selection: mostly
	// recent signals (deep cones) with occasional long-range edges
	// (reconvergent fanout across the circuit).
	conesAt := conePositions(p, rng)
	coneIdx := 0
	for g := 0; g < p.Gates; g++ {
		if coneIdx < len(conesAt) && g == conesAt[coneIdx] {
			b.emitHardCone(16 + rng.Intn(7))
			coneIdx++
		}
		b.emitGate()
	}

	// The locality-biased picker can leave early inputs unused, which would
	// make their faults trivially untestable; fold every unconsumed primary
	// input (or flip-flop output) into the stream through XOR gates.
	if err := b.consumeUnusedSources(p); err != nil {
		return nil, err
	}

	// Wire flip-flop D inputs, preferring dangling signals so that state
	// feedback comes from deep logic and dangling cones become observable
	// through the scan chain.
	dangling := b.dangling()
	for i := 0; i < p.FFs; i++ {
		var d string
		if len(dangling) > 0 {
			d = dangling[len(dangling)-1]
			dangling = dangling[:len(dangling)-1]
		} else {
			d = b.pick()
		}
		if _, err := c.AddGate(fmt.Sprintf("Q%d", i), netlist.DFF, d); err != nil {
			return nil, err
		}
	}

	// Collect the remaining dangling signals into output trees until
	// exactly p.Outputs roots remain.
	dangling = b.dangling()
	for len(dangling) > p.Outputs {
		kind := netlist.Xor // parity collectors never mask their operands
		name := fmt.Sprintf("PO_T%d", b.nGates)
		b.nGates++
		if _, err := c.AddGate(name, kind, dangling[0], dangling[1]); err != nil {
			return nil, err
		}
		dangling = append(dangling[2:], name)
	}
	for _, d := range dangling {
		if err := c.MarkOutput(d); err != nil {
			return nil, err
		}
	}
	// If the profile wants more outputs than we have sinks, tap internal
	// signals.
	for extra := len(dangling); extra < p.Outputs; extra++ {
		if err := c.MarkOutput(b.pick()); err != nil {
			return nil, err
		}
	}

	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// conePositions spreads the hard cones evenly through the gate body.
func conePositions(p Profile, rng *rand.Rand) []int {
	if p.HardCones <= 0 {
		return nil
	}
	out := make([]int, p.HardCones)
	span := p.Gates / (p.HardCones + 1)
	if span == 0 {
		span = 1
	}
	for i := range out {
		out[i] = (i+1)*span + rng.Intn(span/2+1) - span/4
		if out[i] < 0 {
			out[i] = 0
		}
		if out[i] >= p.Gates {
			out[i] = p.Gates - 1
		}
	}
	sort.Ints(out)
	return out
}

type builder struct {
	c       *netlist.Circuit
	rng     *rand.Rand
	signals []string
	nGates  int
	// parents[s] lists the direct fanins of signal s, used to avoid wiring
	// a signal together with its own parent (x with y=f(x, ...) induces
	// implications like x=1 ⇒ y=1 that make many pin faults redundant).
	parents map[string][]string
}

func (b *builder) recordParents(name string, fanin []string) {
	if b.parents == nil {
		b.parents = make(map[string][]string)
	}
	b.parents[name] = fanin
}

// related reports whether a is a direct parent or child of b.
func (b *builder) related(a, s string) bool {
	for _, p := range b.parents[a] {
		if p == s {
			return true
		}
	}
	for _, p := range b.parents[s] {
		if p == a {
			return true
		}
	}
	return false
}

// pick selects a fanin signal with locality bias.
func (b *builder) pick() string {
	n := len(b.signals)
	if b.rng.Intn(100) < 65 {
		// Recent window: the last 40 signals.
		w := 250
		if w > n {
			w = n
		}
		return b.signals[n-1-b.rng.Intn(w)]
	}
	return b.signals[b.rng.Intn(n)]
}

// pickDistinct selects k distinct, pairwise-unrelated fanin signals.
// Duplicate fanins (XOR(a,a)) and parent-child pairs (AND(x, OR(x,z)))
// create structural redundancy far beyond what real benchmark circuits
// exhibit, so both are avoided.
func (b *builder) pickDistinct(k int) []string {
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	ok := func(s string) bool {
		if seen[s] {
			return false
		}
		for _, prev := range out {
			if b.related(prev, s) {
				return false
			}
		}
		return true
	}
	for tries := 0; len(out) < k && tries < 30*k; tries++ {
		s := b.pick()
		if ok(s) {
			seen[s] = true
			out = append(out, s)
		}
	}
	// Tiny circuits may not have k acceptable signals in range; fall back
	// to a full scan relaxing the relatedness constraint.
	for i := 0; len(out) < k && i < len(b.signals); i++ {
		s := b.signals[len(b.signals)-1-i]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

var gateMix = []struct {
	t      netlist.GateType
	weight int
	fanin  int // 0 = variable 2..4
}{
	{netlist.Nand, 28, 0},
	{netlist.Nor, 13, 0},
	{netlist.And, 14, 0},
	{netlist.Or, 14, 0},
	{netlist.Not, 12, 1},
	{netlist.Xor, 9, 2},
	{netlist.Xnor, 5, 2},
	{netlist.Buf, 5, 1},
}

func (b *builder) emitGate() {
	total := 0
	for _, m := range gateMix {
		total += m.weight
	}
	r := b.rng.Intn(total)
	var t netlist.GateType
	var nf int
	for _, m := range gateMix {
		if r < m.weight {
			t = m.t
			nf = m.fanin
			break
		}
		r -= m.weight
	}
	if nf == 0 {
		nf = 2
		if b.rng.Intn(100) < 20 {
			nf = 3
		} else if b.rng.Intn(100) < 5 {
			nf = 4
		}
	}
	fanin := b.pickDistinct(nf)
	name := fmt.Sprintf("N%d", b.nGates)
	b.nGates++
	if _, err := b.c.AddGate(name, t, fanin...); err != nil {
		panic(fmt.Sprintf("bench: internal: %v", err)) // names are unique by construction
	}
	b.recordParents(name, fanin)
	b.signals = append(b.signals, name)
}

// emitHardCone builds a wide AND tree over k distinct-ish signals and XORs
// its output into the signal stream. The cone output is 1 with probability
// about 2^-k under random patterns, so faults requiring it are
// random-pattern resistant — the deterministic ATPG (and a seeded TPG
// reaching the right state) can still excite them.
func (b *builder) emitHardCone(k int) {
	leaves := b.pickDistinct(k)
	for len(leaves) > 1 {
		var next []string
		for i := 0; i+1 < len(leaves); i += 2 {
			name := fmt.Sprintf("HC%d", b.nGates)
			b.nGates++
			if _, err := b.c.AddGate(name, netlist.And, leaves[i], leaves[i+1]); err != nil {
				panic(fmt.Sprintf("bench: internal: %v", err))
			}
			b.recordParents(name, []string{leaves[i], leaves[i+1]})
			next = append(next, name)
		}
		if len(leaves)%2 == 1 {
			next = append(next, leaves[len(leaves)-1])
		}
		leaves = next
	}
	// Fold the cone output into the stream through XOR so it is observable
	// regardless of the other operand's value.
	other := b.pickDistinct(1)[0]
	name := fmt.Sprintf("HX%d", b.nGates)
	b.nGates++
	if _, err := b.c.AddGate(name, netlist.Xor, leaves[0], other); err != nil {
		panic(fmt.Sprintf("bench: internal: %v", err))
	}
	b.recordParents(name, []string{leaves[0], other})
	b.signals = append(b.signals, name)
}

// consumeUnusedSources XORs every not-yet-consumed primary input and
// flip-flop output into the signal stream so that no source line is dead.
func (b *builder) consumeUnusedSources(p Profile) error {
	used := make(map[string]bool)
	for _, g := range b.c.Gates {
		for _, f := range g.Fanin {
			used[b.c.Gates[f].Name] = true
		}
	}
	var unused []string
	for i := 0; i < p.Inputs; i++ {
		if n := fmt.Sprintf("I%d", i); !used[n] {
			unused = append(unused, n)
		}
	}
	for i := 0; i < p.FFs; i++ {
		if n := fmt.Sprintf("Q%d", i); !used[n] {
			unused = append(unused, n)
		}
	}
	for _, u := range unused {
		other := b.pickDistinct(1)[0]
		if other == u {
			other = b.pickDistinct(2)[1]
		}
		name := fmt.Sprintf("MIX%d", b.nGates)
		b.nGates++
		if _, err := b.c.AddGate(name, netlist.Xor, u, other); err != nil {
			return err
		}
		b.recordParents(name, []string{u, other})
		b.signals = append(b.signals, name)
	}
	return nil
}

// dangling lists signals with no consumer yet, oldest first, excluding
// primary inputs (an unused PI is legal and stays unused).
func (b *builder) dangling() []string {
	used := make(map[string]bool, len(b.signals))
	for _, g := range b.c.Gates {
		for _, f := range g.Fanin {
			used[b.c.Gates[f].Name] = true
		}
	}
	var out []string
	for _, g := range b.c.Gates {
		if g.Type == netlist.Input {
			continue
		}
		if !used[g.Name] {
			out = append(out, g.Name)
		}
	}
	return out
}
