package dmatrix

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func setup(t *testing.T) (*netlist.Circuit, []fault.Fault, []bitvec.Vector) {
	t.Helper()
	c, err := netlist.ParseString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := fault.List(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := atpg.Run(c, all, atpg.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Target list F: the ATPG-detected faults, as in the paper.
	var faults []fault.Fault
	for _, fi := range res.DetectedFaults() {
		faults = append(faults, all[fi])
	}
	return c, faults, res.Patterns
}

func TestCoversByConstruction(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	for _, cycles := range []int{1, 5, 20} {
		m, err := Build(c, faults, patterns, gen, Options{Cycles: cycles, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !m.CoversAll() {
			t.Errorf("cycles=%d: matrix does not cover F: uncovered %v",
				cycles, m.UncoveredFaults())
		}
		if m.NumTriplets() != len(patterns) {
			t.Errorf("cycles=%d: %d triplets, want %d", cycles, m.NumTriplets(), len(patterns))
		}
	}
}

// With T = 1 each triplet's test set is exactly its source ATPG pattern, so
// row i must equal the per-pattern detection profile of pattern i.
func TestCyclesOneMatchesPatternDetection(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	m, err := Build(c, faults, patterns, gen, Options{Cycles: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// δ must be the pattern itself.
	for i := range patterns {
		if !m.Triplets[i].Delta.Equal(patterns[i]) {
			t.Errorf("triplet %d: δ != p_%d", i, i)
		}
	}
	// Union of rows covers; each row non-empty (every ATPG pattern detects
	// something after compaction).
	for i, r := range m.Rows {
		if r.Empty() {
			t.Errorf("triplet %d detects nothing at T=1; compaction should have dropped it", i)
		}
	}
}

// Longer evolution can only grow each row (the T-cycle test set contains the
// shorter one as a prefix).
func TestMonotoneInCycles(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	short, err := Build(c, faults, patterns, gen, Options{Cycles: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Build(c, faults, patterns, gen, Options{Cycles: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range short.Rows {
		if !short.Rows[i].SubsetOf(long.Rows[i]) {
			t.Errorf("triplet %d: T=2 row not a subset of T=10 row (same seed)", i)
		}
	}
}

func TestFirstDetectionAndEffectiveLength(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	m, err := Build(c, faults, patterns, gen, Options{Cycles: 8, Seed: 7, RecordFirstDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.FirstDetection == nil {
		t.Fatal("FirstDetection not recorded")
	}
	for i, row := range m.Rows {
		row.ForEach(func(fi int) {
			fd := m.FirstDetection[i][fi]
			if fd < 0 || fd >= 8 {
				t.Errorf("triplet %d fault %d: first detection %d out of range", i, fi, fd)
			}
		})
		// Effective length for all detected faults is the max first
		// detection + 1, and never exceeds T.
		el := m.EffectiveLength(i, row.Elements())
		if el < 1 || el > 8 {
			t.Errorf("triplet %d: effective length %d", i, el)
		}
		// Trimming with no responsibility keeps full length.
		if m.EffectiveLength(i, nil) != 8 {
			t.Error("empty responsibility should keep full cycles")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	m1, err := Build(c, faults, patterns, gen, Options{Cycles: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(c, faults, patterns, gen, Options{Cycles: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Rows {
		if !m1.Rows[i].Equal(m2.Rows[i]) {
			t.Fatalf("row %d differs across identical builds", i)
		}
		if !m1.Triplets[i].Theta.Equal(m2.Triplets[i].Theta) {
			t.Fatalf("θ %d differs across identical builds", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	if _, err := Build(c, faults, patterns, gen, Options{Cycles: 0}); err == nil {
		t.Error("expected error for zero cycles")
	}
	wrong, _ := tpg.NewAdder(len(c.Inputs) + 1)
	if _, err := Build(c, faults, patterns, wrong, Options{Cycles: 1}); err == nil {
		t.Error("expected error for width mismatch")
	}
}

func TestDensityAndStats(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	m, err := Build(c, faults, patterns, gen, Options{Cycles: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Density()
	if d <= 0 || d > 1 {
		t.Errorf("density = %v", d)
	}
	if m.TripletSims != len(patterns) {
		t.Errorf("TripletSims = %d, want %d", m.TripletSims, len(patterns))
	}
	if m.GateEvals <= 0 || m.PatternsSimulated <= 0 {
		t.Errorf("stats not collected: %+v", m)
	}
}

func TestDifferentGeneratorsGiveDifferentRows(t *testing.T) {
	c, faults, patterns := setup(t)
	add, _ := tpg.NewAdder(len(c.Inputs))
	mul, _ := tpg.NewMultiplier(len(c.Inputs))
	ma, err := Build(c, faults, patterns, add, Options{Cycles: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := Build(c, faults, patterns, mul, Options{Cycles: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ma.Rows {
		if !ma.Rows[i].Equal(mm.Rows[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("adder and multiplier TPGs produced identical matrices; evolution semantics suspect")
	}
}

// Parallel construction must produce a bit-identical matrix.
func TestParallelBuildIdentical(t *testing.T) {
	c, faults, patterns := setup(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	serial, err := Build(c, faults, patterns, gen,
		Options{Cycles: 16, Seed: 7, RecordFirstDetection: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(c, faults, patterns, gen,
		Options{Cycles: 16, Seed: 7, RecordFirstDetection: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if parallel.GateEvals != serial.GateEvals || parallel.TripletSims != serial.TripletSims {
		t.Errorf("effort differs: %d/%d vs %d/%d",
			parallel.GateEvals, parallel.TripletSims, serial.GateEvals, serial.TripletSims)
	}
	for i := range serial.Rows {
		if !serial.Rows[i].Equal(parallel.Rows[i]) {
			t.Fatalf("row %d differs between serial and parallel build", i)
		}
		if !serial.Triplets[i].Theta.Equal(parallel.Triplets[i].Theta) {
			t.Fatalf("θ %d differs between serial and parallel build", i)
		}
		for fi := range serial.FirstDetection[i] {
			if serial.FirstDetection[i][fi] != parallel.FirstDetection[i][fi] {
				t.Fatalf("first detection (%d,%d) differs", i, fi)
			}
		}
	}
}
