package store

// Tiered layers a local Store in front of a Remote so a replica keeps its
// warm shard on local disk while still sharing one artifact universe with
// its peers: reads try local first and fill it back on a remote hit,
// writes go to both levels.

import (
	"context"
	"errors"
	"os"

	"repro/internal/core"
	"repro/internal/dmatrix"
)

// Backend is one level of an artifact store for health reporting: a
// stable name and a cheap probe. The server's store prober walks these to
// feed the per-backend store_up gauge.
type Backend struct {
	// Name labels the backend in metrics ("local", "remote").
	Name string
	// Probe reports nil when the backend is reachable/usable.
	Probe func(ctx context.Context) error
}

// Probe is the local backend's health check: the root directory must
// still exist and be a directory. It is deliberately cheap (one stat) so
// the server can run it on every scrape interval.
func (s *Store) Probe(_ context.Context) error {
	fi, err := os.Stat(s.root)
	if err != nil {
		return err
	}
	if !fi.IsDir() {
		return errors.New("store: root is not a directory")
	}
	return nil
}

// Backends returns the local store's single backend descriptor.
func (s *Store) Backends() []Backend {
	return []Backend{{Name: "local", Probe: s.Probe}}
}

// Backends returns the remote store's single backend descriptor.
func (r *Remote) Backends() []Backend {
	return []Backend{{Name: "remote", Probe: r.Probe}}
}

// Tiered is a two-level ArtifactStore: local first, remote behind it.
// Create it with NewTiered; it is safe for concurrent use.
type Tiered struct {
	local  *Store
	remote *Remote
}

// NewTiered layers local in front of remote.
func NewTiered(local *Store, remote *Remote) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Local returns the tier's local store.
func (t *Tiered) Local() *Store { return t.local }

// Remote returns the tier's remote store.
func (t *Tiered) Remote() *Remote { return t.remote }

// Backends returns both levels' backend descriptors, local first.
func (t *Tiered) Backends() []Backend {
	return append(t.local.Backends(), t.remote.Backends()...)
}

// LoadFlow reads local first, then remote; a remote hit is written back
// to the local level best-effort (the flow is already in hand — a
// write-back failure must not fail the read).
func (t *Tiered) LoadFlow(key string) (*core.Flow, error) {
	f, err := t.local.LoadFlow(key)
	if err != nil || f != nil {
		return f, err
	}
	f, err = t.remote.LoadFlow(key)
	if err != nil || f == nil {
		return nil, err
	}
	_ = t.local.SaveFlow(key, f) // best-effort: fill-back; the remote copy remains authoritative
	return f, nil
}

// SaveFlow writes through to both levels; the errors (if any) are joined
// so the engine's store-error counter sees every failed level.
func (t *Tiered) SaveFlow(key string, f *core.Flow) error {
	return errors.Join(t.local.SaveFlow(key, f), t.remote.SaveFlow(key, f))
}

// LoadMatrix reads local first, then remote with local fill-back.
func (t *Tiered) LoadMatrix(key string) (*dmatrix.Matrix, error) {
	m, err := t.local.LoadMatrix(key)
	if err != nil || m != nil {
		return m, err
	}
	m, err = t.remote.LoadMatrix(key)
	if err != nil || m == nil {
		return nil, err
	}
	_ = t.local.SaveMatrix(key, m) // best-effort: fill-back; the remote copy remains authoritative
	return m, nil
}

// SaveMatrix writes through to both levels.
func (t *Tiered) SaveMatrix(key string, m *dmatrix.Matrix) error {
	return errors.Join(t.local.SaveMatrix(key, m), t.remote.SaveMatrix(key, m))
}
