package store

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/tpg"
)

// prepared runs a real (small) preparation to exercise the codec on
// genuine artifacts.
func prepared(t testing.TB) *core.Flow {
	t.Helper()
	c, err := bench.ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.Prepare(c, atpg.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// A flow must survive the disk round trip behaviorally: the rebuilt flow
// yields a bit-identical Detection Matrix even though the circuit was
// re-parsed from its .bench source (gate IDs may differ; gate names and
// the fault order may not).
func TestFlowRoundTripBitIdenticalMatrix(t *testing.T) {
	f := prepared(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "bench:s420|test"
	if err := s.SaveFlow(key, f); err != nil {
		t.Fatal(err)
	}
	back, err := s.LoadFlow(key)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil {
		t.Fatal("saved flow not found")
	}
	if back.Circuit.Name != f.Circuit.Name ||
		len(back.Circuit.Inputs) != len(f.Circuit.Inputs) ||
		len(back.AllFaults) != len(f.AllFaults) ||
		len(back.TargetFaults) != len(f.TargetFaults) ||
		len(back.Patterns) != len(f.Patterns) {
		t.Fatalf("flow shape changed: %d/%d faults, %d/%d targets, %d/%d patterns",
			len(back.AllFaults), len(f.AllFaults),
			len(back.TargetFaults), len(f.TargetFaults),
			len(back.Patterns), len(f.Patterns))
	}
	for i, p := range f.Patterns {
		if !back.Patterns[i].Equal(p) {
			t.Fatalf("pattern %d changed in round trip", i)
		}
	}
	if back.ATPG.Stats != f.ATPG.Stats {
		t.Errorf("ATPG stats changed: %+v vs %+v", back.ATPG.Stats, f.ATPG.Stats)
	}

	gen, err := tpg.ByName("adder", len(f.Circuit.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Cycles: 48, Seed: 2}
	want, err := f.BuildMatrix(gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.BuildMatrix(gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFaults != want.NumFaults || len(got.Rows) != len(want.Rows) {
		t.Fatalf("matrix shape %dx%d, want %dx%d",
			len(got.Rows), got.NumFaults, len(want.Rows), want.NumFaults)
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("matrix row %d differs after flow round trip", i)
		}
		if !reflect.DeepEqual(got.FirstDetection[i], want.FirstDetection[i]) {
			t.Fatalf("first-detection row %d differs after flow round trip", i)
		}
	}
}

// A matrix must survive the disk round trip exactly.
func TestMatrixRoundTrip(t *testing.T) {
	f := prepared(t)
	gen, err := tpg.ByName("adder", len(f.Circuit.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.BuildMatrix(gen, core.Options{Cycles: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "bench:s420|test|matrix"
	if err := s.SaveMatrix(key, m); err != nil {
		t.Fatal(err)
	}
	back, err := s.LoadMatrix(key)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil {
		t.Fatal("saved matrix not found")
	}
	if back.NumFaults != m.NumFaults || len(back.Rows) != len(m.Rows) ||
		back.GateEvals != m.GateEvals || back.PatternsSimulated != m.PatternsSimulated ||
		back.TripletSims != m.TripletSims {
		t.Fatalf("matrix metadata changed: %+v vs %+v", back, m)
	}
	for i := range m.Rows {
		if !back.Rows[i].Equal(m.Rows[i]) {
			t.Fatalf("row %d changed", i)
		}
		if !back.Triplets[i].Delta.Equal(m.Triplets[i].Delta) ||
			!back.Triplets[i].Theta.Equal(m.Triplets[i].Theta) ||
			back.Triplets[i].Cycles != m.Triplets[i].Cycles {
			t.Fatalf("triplet %d changed", i)
		}
	}
	if !reflect.DeepEqual(back.FirstDetection, m.FirstDetection) {
		t.Fatal("first-detection table changed")
	}
}

// Missing keys are absent, not errors; corrupt records are errors, not
// flows; a record under the wrong key (hash collision or copied file) is
// rejected.
func TestLoadEdgeCases(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if f, err := s.LoadFlow("absent"); err != nil || f != nil {
		t.Errorf("absent flow: got (%v, %v), want (nil, nil)", f, err)
	}
	if m, err := s.LoadMatrix("absent"); err != nil || m != nil {
		t.Errorf("absent matrix: got (%v, %v), want (nil, nil)", m, err)
	}

	f := prepared(t)
	if err := s.SaveFlow("key-a", f); err != nil {
		t.Fatal(err)
	}
	// Same record filed under another key: key verification must reject.
	src := s.path("flows", "key-a")
	dst := s.path("flows", "key-b")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFlow("key-b"); err == nil {
		t.Error("record with mismatched key accepted")
	}
	// Corruption is an error.
	if err := os.WriteFile(src, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFlow("key-a"); err == nil {
		t.Error("corrupt record accepted")
	}
}

// The acceptance criterion of the service PR: an Engine restarted against
// a warm store serves its first solve without re-running ATPG — zero
// Prepare and matrix builds, artifacts loaded from disk — and the solution
// is bit-identical to the cold one.
func TestWarmRestartSkipsATPG(t *testing.T) {
	dir := t.TempDir()
	req := engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2, Parallelism: 1}

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := engine.New(engine.Options{Store: s1})
	coldResp, err := cold.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.PrepareBuilds != 1 || st.FlowStoreLoads != 0 || st.StoreErrors != 0 {
		t.Fatalf("cold stats: %+v", st)
	}
	if flows, matrices, err := s1.Len(); err != nil || flows != 1 || matrices != 1 {
		t.Fatalf("store holds %d flows, %d matrices (%v), want 1 and 1", flows, matrices, err)
	}

	// "Restart": a brand-new Engine (empty in-memory caches) on a fresh
	// Store handle over the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := engine.New(engine.Options{Store: s2})
	warmResp, err := warm.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.PrepareBuilds != 0 || st.MatrixBuilds != 0 {
		t.Errorf("warm restart recomputed artifacts: %+v", st)
	}
	if st.FlowStoreLoads != 1 || st.MatrixStoreLoads != 1 {
		t.Errorf("warm restart did not load from the store: %+v", st)
	}
	if st.StoreErrors != 0 {
		t.Errorf("store errors on warm restart: %+v", st)
	}
	if !warmResp.PrepareCached || !warmResp.MatrixCached {
		t.Errorf("warm response does not report cached artifacts: %+v", warmResp)
	}
	if !reflect.DeepEqual(coldResp.Solution, warmResp.Solution) {
		t.Error("warm-restart solution differs from cold solution")
	}
	if coldResp.ATPG != warmResp.ATPG {
		t.Errorf("ATPG summary changed across restart: %+v vs %+v", coldResp.ATPG, warmResp.ATPG)
	}
	if coldResp.Circuit != warmResp.Circuit {
		t.Errorf("circuit summary changed across restart: %+v vs %+v", coldResp.Circuit, warmResp.Circuit)
	}
}

// A corrupt store must degrade to recomputation, not failure.
func TestEngineRecoversFromCorruptStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2}
	if _, err := engine.New(engine.Options{Store: s}).Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Corrupt every record.
	for _, sub := range []string{"flows", "matrices"} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := os.WriteFile(filepath.Join(dir, sub, e.Name()), []byte("{broken"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng := engine.New(engine.Options{Store: s})
	resp, err := eng.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("corrupt store failed the solve: %v", err)
	}
	if resp.Solution.NumTriplets() == 0 {
		t.Error("degenerate solution after store corruption")
	}
	st := eng.Stats()
	if st.StoreErrors == 0 {
		t.Error("corrupt records not counted in StoreErrors")
	}
	if st.PrepareBuilds != 1 || st.MatrixBuilds != 1 {
		t.Errorf("corrupt store should force recomputation: %+v", st)
	}
}

// BenchmarkRestart compares a daemon's first solve cold (empty store: full
// ATPG + matrix build) against warm (artifacts on disk): the warm restart
// must be at least an order of magnitude faster, which is the store's
// reason to exist. Recorded on the 1-CPU dev container: see CI logs.
func BenchmarkRestart(b *testing.B) {
	req := engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := engine.New(engine.Options{Store: s}).Solve(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-restart", func(b *testing.B) {
		dir := b.TempDir()
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.New(engine.Options{Store: s}).Solve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.New(engine.Options{Store: s}).Solve(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
