// Package store persists the reseeding flow's expensive artifacts —
// Prepare flows (fault list + ATPG test set) and Detection Matrices — as
// content-addressed JSON files on disk. It implements the Engine's
// ArtifactStore hook (internal/engine), turning the Engine's in-memory
// caches into the first level of a two-level hierarchy: a daemon restarted
// against a warm store answers its first request without re-running ATPG.
//
// # Layout and addressing
//
// A Store owns one root directory with two subdirectories, flows/ and
// matrices/. Each artifact lives in its own file named by the SHA-256 hash
// of its Engine cache key, so the addressing inherits the Engine's keying
// discipline verbatim: the key already encodes the circuit identity and
// every option an artifact depends on, and any change of either is
// automatically a different file — there is no invalidation protocol. The
// full key is recorded inside the file and verified on load; a mismatch
// (or any other inconsistency) is reported as an error, which the Engine
// counts and converts into a recomputation.
//
// # Encoding
//
// Records use the repository's stable encodings: bit vectors (patterns,
// triplet seeds) as most-significant-first hex strings with explicit
// widths (bitvec.Vector.Hex), Detection Matrix rows as the same hex form
// over the fault universe (bitvec.Set.Hex), and faults by gate NAME rather
// than gate ID — signal names survive the circuit's .bench round trip
// while IDs need not. Rebuilding a flow re-parses the persisted .bench
// source and re-resolves fault sites by name, so a loaded Flow produces
// bit-identical Detection Matrices and solutions (the column order is the
// persisted fault order, and detection is a property of the logic, not of
// gate numbering).
//
// # Concurrency and atomicity
//
// Writes go to a temporary file in the same directory, fsynced, then
// atomically renamed into place, so concurrent writers (several daemons
// sharing one store directory) can only ever race toward identical
// content, readers never observe a torn file, and a replica that crashes
// mid-write can never leave a truncated artifact visible to its peers.
// The Store itself is stateless beyond its root path and safe for
// concurrent use.
//
// # Remote and tiered backends
//
// The same record bytes travel over HTTP: reseedd serves its local store
// at /v1/store/{flows,matrices}/{hash} (GET/PUT of whole records), Remote
// is the client-side ArtifactStore over those endpoints, and Tiered
// layers a local Store in front of a Remote — reads fill the local level
// back, writes go to both — so N replicas share one content-addressed
// artifact universe while keeping warm-shard reads on local disk.
package store

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/atpg"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dmatrix"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

// formatVersion is bumped whenever the record schema changes incompatibly;
// records with a different version are treated as absent (recomputed and
// rewritten), never as errors.
const formatVersion = 1

// A Kind names one of the store's two artifact namespaces; it doubles as
// the subdirectory name on disk and the path segment of the HTTP store
// endpoints.
type Kind string

const (
	KindFlows    Kind = "flows"
	KindMatrices Kind = "matrices"
)

// ParseKind maps an HTTP path segment to its Kind.
func ParseKind(s string) (Kind, bool) {
	switch Kind(s) {
	case KindFlows, KindMatrices:
		return Kind(s), true
	}
	return "", false
}

// HashKey maps an Engine cache key to its content address: the lowercase
// hex SHA-256 of the key. It is the on-disk file name (plus ".json") and
// the {hash} segment of the HTTP store endpoints, so every backend
// addresses the same artifact the same way.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Store is an on-disk artifact cache rooted at one directory. Open it with
// Open; the zero value is not usable.
type Store struct {
	root string
}

// Open returns a Store rooted at dir, creating dir and its flows/ and
// matrices/ subdirectories as needed.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "flows"), filepath.Join(dir, "matrices")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// path maps an Engine cache key to its file: subdir/<sha256(key)>.json.
func (s *Store) path(subdir Kind, key string) string {
	return s.hashPath(subdir, HashKey(key))
}

// hashPath maps an already-hashed address to its file.
func (s *Store) hashPath(subdir Kind, hash string) string {
	return filepath.Join(s.root, string(subdir), hash+".json")
}

// Len reports the number of persisted flows and matrices (observability;
// the /v1/stats endpoint surfaces it).
func (s *Store) Len() (flows, matrices int, err error) {
	for _, c := range []struct {
		dir string
		n   *int
	}{{"flows", &flows}, {"matrices", &matrices}} {
		entries, err := os.ReadDir(filepath.Join(s.root, c.dir))
		if err != nil {
			return 0, 0, fmt.Errorf("store: %w", err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				*c.n++
			}
		}
	}
	return flows, matrices, nil
}

// writeFileAtomic atomically replaces path with data: write to a
// temporary file in the same directory, fsync it, rename it into place,
// then fsync the directory. The fsync before the rename is what keeps a
// shared store crash-safe: without it a replica dying at the wrong moment
// could publish a name whose content had never reached the disk, and
// every peer would read a truncated artifact.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: sync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	// Publish the rename itself. A failure here means the artifact is
	// readable but its durability across a host crash is uncertain — report
	// it; the engine counts it and the artifact stays usable in memory.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", filepath.Dir(path), err)
	}
	return nil
}

// readFile returns path's bytes. The bool reports presence: (false, nil)
// means the file does not exist.
func readFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return data, true, nil
}

// GetRaw returns the stored record bytes at (kind, hash), or (nil, nil)
// when absent — the read side of the HTTP store endpoints. The hash must
// be a well-formed content address (64 lowercase hex digits).
func (s *Store) GetRaw(kind Kind, hash string) ([]byte, error) {
	if err := checkHash(hash); err != nil {
		return nil, err
	}
	data, ok, err := readFile(s.hashPath(kind, hash))
	if err != nil || !ok {
		return nil, err
	}
	return data, nil
}

// PutRaw stores raw record bytes under (kind, hash) — the write side of
// the HTTP store endpoints. The record must be a well-formed store record
// whose embedded key hashes to the given address, so a confused or
// malicious writer cannot poison someone else's artifact: content
// addressing is verified, not trusted.
func (s *Store) PutRaw(kind Kind, hash string, data []byte) error {
	if err := checkHash(hash); err != nil {
		return err
	}
	var rec struct {
		Format int    `json:"format"`
		Key    string `json:"key"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("store: put %s/%s: malformed record: %w", kind, hash, err)
	}
	if rec.Key == "" {
		return fmt.Errorf("store: put %s/%s: record carries no key", kind, hash)
	}
	if got := HashKey(rec.Key); got != hash {
		return fmt.Errorf("store: put %s/%s: record key hashes to %s", kind, hash, got)
	}
	return writeFileAtomic(s.hashPath(kind, hash), data)
}

// checkHash validates a content address: exactly the lowercase hex form
// HashKey produces, so an address can never traverse outside the store.
func checkHash(hash string) error {
	if len(hash) != sha256.Size*2 {
		return fmt.Errorf("store: malformed content address %q", hash)
	}
	for _, c := range []byte(hash) {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: malformed content address %q", hash)
		}
	}
	return nil
}

// faultJSON is a stuck-at fault addressed by gate name (stable across the
// circuit's Format/Parse round trip, unlike gate IDs).
type faultJSON struct {
	Gate    string `json:"g"`
	Pin     int    `json:"p"`
	StuckAt bool   `json:"s"`
}

// flowJSON is the on-disk form of a core.Flow: the scan-view circuit as
// .bench source plus everything atpg.Run produced. TargetFaults is not
// stored — it is re-derived from Detected exactly as core.Prepare derives
// it, so the two can never disagree.
type flowJSON struct {
	Format int         `json:"format"`
	Key    string      `json:"key"`
	Name   string      `json:"name"`
	Bench  string      `json:"bench"`
	Width  int         `json:"width"` // primary input count (pattern width)
	Faults []faultJSON `json:"faults"`
	// Detected holds the indices into Faults the ATPG test set detects,
	// in ascending order.
	Detected   []int      `json:"detected"`
	Untestable []int      `json:"untestable"`
	Aborted    []int      `json:"aborted"`
	Patterns   []string   `json:"patterns"` // hex, Width bits each
	Stats      atpg.Stats `json:"stats"`
}

// SaveFlow persists a prepared flow under its Engine cache key.
func (s *Store) SaveFlow(key string, f *core.Flow) error {
	data, err := EncodeFlow(key, f)
	if err != nil {
		return err
	}
	return writeFileAtomic(s.path(KindFlows, key), data)
}

// EncodeFlow renders a flow as its store record bytes — the form every
// backend (disk file, HTTP body) persists.
func EncodeFlow(key string, f *core.Flow) ([]byte, error) {
	rec := flowJSON{
		Format:     formatVersion,
		Key:        key,
		Name:       f.Circuit.Name,
		Bench:      netlist.Format(f.Circuit),
		Width:      len(f.Circuit.Inputs),
		Detected:   f.ATPG.DetectedFaults(),
		Untestable: f.ATPG.Untestable,
		Aborted:    f.ATPG.Aborted,
		Stats:      f.ATPG.Stats,
	}
	for _, fa := range f.AllFaults {
		rec.Faults = append(rec.Faults, faultJSON{
			Gate:    f.Circuit.Gates[fa.Gate].Name,
			Pin:     fa.Pin,
			StuckAt: fa.StuckAt1,
		})
	}
	for _, p := range f.Patterns {
		rec.Patterns = append(rec.Patterns, p.Hex())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode flow %s: %w", key, err)
	}
	return append(data, '\n'), nil
}

// LoadFlow rebuilds the flow stored under key, or returns (nil, nil) when
// none is stored. The circuit is re-parsed from its persisted .bench
// source and fault sites are re-resolved by gate name, so the rebuilt Flow
// is behaviorally identical to the one Prepare computed even though gate
// IDs may be numbered differently.
func (s *Store) LoadFlow(key string) (*core.Flow, error) {
	data, ok, err := readFile(s.path(KindFlows, key))
	if err != nil || !ok {
		return nil, err
	}
	return DecodeFlow(key, data)
}

// DecodeFlow rebuilds a flow from its store record bytes, verifying the
// embedded key. It returns (nil, nil) for a record of another schema
// generation (treated as absent, recomputed and rewritten).
func DecodeFlow(key string, data []byte) (*core.Flow, error) {
	var rec flowJSON
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("store: decode flow %s: %w", HashKey(key), err)
	}
	if rec.Format != formatVersion {
		return nil, nil // other schema generation: treat as absent
	}
	if rec.Key != key {
		return nil, fmt.Errorf("store: flow record holds key %q, want %q", rec.Key, key)
	}
	c, err := netlist.ParseString(rec.Name, rec.Bench)
	if err != nil {
		return nil, fmt.Errorf("store: flow %s: %w", key, err)
	}
	if got := len(c.Inputs); got != rec.Width {
		return nil, fmt.Errorf("store: flow %s: circuit has %d inputs, record says %d", key, got, rec.Width)
	}
	all := make([]fault.Fault, len(rec.Faults))
	for i, fj := range rec.Faults {
		g, ok := c.GateByName(fj.Gate)
		if !ok {
			return nil, fmt.Errorf("store: flow %s: fault %d names unknown gate %q", key, i, fj.Gate)
		}
		if fj.Pin != fault.OutputPin && (fj.Pin < 0 || fj.Pin >= len(g.Fanin)) {
			return nil, fmt.Errorf("store: flow %s: fault %d pin %d out of range for gate %q", key, i, fj.Pin, fj.Gate)
		}
		all[i] = fault.Fault{Gate: g.ID, Pin: fj.Pin, StuckAt1: fj.StuckAt}
	}
	res := &atpg.Result{
		Detected:   make([]bool, len(all)),
		Untestable: rec.Untestable,
		Aborted:    rec.Aborted,
		Stats:      rec.Stats,
	}
	for _, fi := range rec.Detected {
		if fi < 0 || fi >= len(all) {
			return nil, fmt.Errorf("store: flow %s: detected index %d out of range", key, fi)
		}
		res.Detected[fi] = true
	}
	res.Patterns = make([]bitvec.Vector, len(rec.Patterns))
	for i, h := range rec.Patterns {
		v, err := bitvec.FromHex(rec.Width, h)
		if err != nil {
			return nil, fmt.Errorf("store: flow %s: pattern %d: %w", key, i, err)
		}
		res.Patterns[i] = v
	}
	return core.NewFlow(c, all, res), nil
}

// tripletStoreJSON is one candidate triplet: seeds in hex at the circuit's
// input width, plus its evolution length.
type tripletStoreJSON struct {
	Delta  string `json:"delta"`
	Theta  string `json:"theta"`
	Cycles int    `json:"cycles"`
}

// matrixJSON is the on-disk form of a dmatrix.Matrix. Rows are hex-encoded
// fault sets (bitvec.Set.Hex); the dense FirstDetection table — by far the
// largest part of the record — is stored as one base64 blob of row-major
// little-endian int32s, which decodes an order of magnitude faster than a
// JSON integer array (the warm-restart path is latency-sensitive: it is
// what a daemon's first request waits on).
type matrixJSON struct {
	Format         int                `json:"format"`
	Key            string             `json:"key"`
	Width          int                `json:"width"` // seed width in bits
	NumFaults      int                `json:"num_faults"`
	Triplets       []tripletStoreJSON `json:"triplets"`
	Rows           []string           `json:"rows"` // hex, NumFaults bits each
	FirstDetection string             `json:"first_detection,omitempty"`
	GateEvals      int64              `json:"gate_evals"`
	PatternsSim    int                `json:"patterns_simulated"`
	TripletSims    int                `json:"triplet_sims"`
}

// encodeFirstDetection packs the row-major table into the base64 blob.
func encodeFirstDetection(fd [][]int32) string {
	if fd == nil {
		return ""
	}
	var buf []byte
	for _, row := range fd {
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeFirstDetection unpacks the blob into rows × cols int32s.
func decodeFirstDetection(blob string, rows, cols int) ([][]int32, error) {
	if blob == "" {
		return nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(blob)
	if err != nil {
		return nil, err
	}
	if len(buf) != rows*cols*4 {
		return nil, fmt.Errorf("first-detection blob holds %d bytes, want %d", len(buf), rows*cols*4)
	}
	out := make([][]int32, rows)
	for i := range out {
		row := make([]int32, cols)
		for j := range row {
			row[j] = int32(binary.LittleEndian.Uint32(buf[(i*cols+j)*4:]))
		}
		out[i] = row
	}
	return out, nil
}

// SaveMatrix persists a Detection Matrix under its Engine cache key.
func (s *Store) SaveMatrix(key string, m *dmatrix.Matrix) error {
	data, err := EncodeMatrix(key, m)
	if err != nil {
		return err
	}
	return writeFileAtomic(s.path(KindMatrices, key), data)
}

// EncodeMatrix renders a Detection Matrix as its store record bytes.
func EncodeMatrix(key string, m *dmatrix.Matrix) ([]byte, error) {
	rec := matrixJSON{
		Format:         formatVersion,
		Key:            key,
		NumFaults:      m.NumFaults,
		FirstDetection: encodeFirstDetection(m.FirstDetection),
		GateEvals:      m.GateEvals,
		PatternsSim:    m.PatternsSimulated,
		TripletSims:    m.TripletSims,
	}
	if len(m.Triplets) > 0 {
		rec.Width = m.Triplets[0].Delta.Width()
	}
	for _, t := range m.Triplets {
		rec.Triplets = append(rec.Triplets, tripletStoreJSON{
			Delta:  t.Delta.Hex(),
			Theta:  t.Theta.Hex(),
			Cycles: t.Cycles,
		})
	}
	for _, r := range m.Rows {
		rec.Rows = append(rec.Rows, r.Hex())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode matrix %s: %w", key, err)
	}
	return append(data, '\n'), nil
}

// LoadMatrix rebuilds the Detection Matrix stored under key, or returns
// (nil, nil) when none is stored.
func (s *Store) LoadMatrix(key string) (*dmatrix.Matrix, error) {
	data, ok, err := readFile(s.path(KindMatrices, key))
	if err != nil || !ok {
		return nil, err
	}
	return DecodeMatrix(key, data)
}

// DecodeMatrix rebuilds a Detection Matrix from its store record bytes,
// verifying the embedded key. It returns (nil, nil) for a record of
// another schema generation.
func DecodeMatrix(key string, data []byte) (*dmatrix.Matrix, error) {
	var rec matrixJSON
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("store: decode matrix %s: %w", HashKey(key), err)
	}
	if rec.Format != formatVersion {
		return nil, nil
	}
	if rec.Key != key {
		return nil, fmt.Errorf("store: matrix record holds key %q, want %q", rec.Key, key)
	}
	if len(rec.Rows) != len(rec.Triplets) {
		return nil, fmt.Errorf("store: matrix %s: %d rows for %d triplets", key, len(rec.Rows), len(rec.Triplets))
	}
	fd, err := decodeFirstDetection(rec.FirstDetection, len(rec.Triplets), rec.NumFaults)
	if err != nil {
		return nil, fmt.Errorf("store: matrix %s: %w", key, err)
	}
	m := &dmatrix.Matrix{
		NumFaults:         rec.NumFaults,
		FirstDetection:    fd,
		GateEvals:         rec.GateEvals,
		PatternsSimulated: rec.PatternsSim,
		TripletSims:       rec.TripletSims,
	}
	for i, tj := range rec.Triplets {
		delta, err := bitvec.FromHex(rec.Width, tj.Delta)
		if err != nil {
			return nil, fmt.Errorf("store: matrix %s: triplet %d delta: %w", key, i, err)
		}
		theta, err := bitvec.FromHex(rec.Width, tj.Theta)
		if err != nil {
			return nil, fmt.Errorf("store: matrix %s: triplet %d theta: %w", key, i, err)
		}
		m.Triplets = append(m.Triplets, tpg.Triplet{Delta: delta, Theta: theta, Cycles: tj.Cycles})
	}
	for i, h := range rec.Rows {
		row, err := bitvec.SetFromHex(rec.NumFaults, h)
		if err != nil {
			return nil, fmt.Errorf("store: matrix %s: row %d: %w", key, i, err)
		}
		m.Rows = append(m.Rows, row)
	}
	return m, nil
}
