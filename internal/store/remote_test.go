package store

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
)

// storeHandler is a minimal stand-in for reseedd's /v1/store endpoints,
// backed by a real Store — the same GetRaw/PutRaw contract the daemon
// wires up, so these tests exercise the actual record round trip.
func storeHandler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		rest, ok := strings.CutPrefix(r.URL.Path, "/v1/store/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		kindStr, hash, ok := strings.Cut(rest, "/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		kind, ok := ParseKind(kindStr)
		if !ok {
			http.NotFound(w, r)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := s.GetRaw(kind, hash)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if data == nil {
				http.NotFound(w, r)
				return
			}
			w.Write(data)
		case http.MethodPut:
			data := make([]byte, 0, 1<<16)
			buf := make([]byte, 1<<15)
			for {
				n, err := r.Body.Read(buf)
				data = append(data, buf[:n]...)
				if err != nil {
					break
				}
			}
			if err := s.PutRaw(kind, hash, data); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
}

// A flow and matrix must survive the HTTP round trip exactly as they
// survive the disk one, and absence must come back as (nil, nil).
func TestRemoteRoundTrip(t *testing.T) {
	backing, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storeHandler(backing))
	defer srv.Close()
	r := NewRemote(srv.URL+"/", nil) // trailing slash must be tolerated

	if f, err := r.LoadFlow("absent"); err != nil || f != nil {
		t.Fatalf("absent flow over HTTP: got (%v, %v), want (nil, nil)", f, err)
	}

	f := prepared(t)
	const key = "bench:s420|remote-test"
	if err := r.SaveFlow(key, f); err != nil {
		t.Fatal(err)
	}
	// The record must have landed in the backing store under the content
	// address, loadable by a plain local Store.
	back, err := backing.LoadFlow(key)
	if err != nil || back == nil {
		t.Fatalf("remote save did not reach the backing store: (%v, %v)", back, err)
	}
	back, err = r.LoadFlow(key)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil {
		t.Fatal("remote flow not found after save")
	}
	if len(back.AllFaults) != len(f.AllFaults) || len(back.Patterns) != len(f.Patterns) {
		t.Fatalf("flow shape changed over HTTP: %d/%d faults, %d/%d patterns",
			len(back.AllFaults), len(f.AllFaults), len(back.Patterns), len(f.Patterns))
	}
}

// A remote server that is down is a store error, not an absence and not a
// panic; the engine treats it as a miss and recomputes.
func TestRemoteServerDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // immediately: every request now fails at the dial
	r := NewRemote(srv.URL, nil)
	if _, err := r.LoadFlow("any"); err == nil {
		t.Error("load from a dead remote reported success")
	}
	if err := r.SaveFlow("any", prepared(t)); err == nil {
		t.Error("save to a dead remote reported success")
	}
	if err := r.Probe(context.Background()); err == nil {
		t.Error("probe of a dead remote reported healthy")
	}

	eng := engine.New(engine.Options{Store: r})
	resp, err := eng.Solve(context.Background(),
		engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2})
	if err != nil {
		t.Fatalf("dead remote store failed the solve: %v", err)
	}
	if resp.Solution.NumTriplets() == 0 {
		t.Error("degenerate solution with dead remote store")
	}
	if st := eng.Stats(); st.StoreErrors == 0 {
		t.Error("dead remote store not counted in StoreErrors")
	}
}

// PutRaw is content addressing verified, not trusted: a record whose
// embedded key does not hash to the claimed address, a keyless record,
// malformed JSON, and a malformed address must all be rejected.
func TestPutRawRejectsPoisonedRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeFlow("key-a", prepared(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		hash string
		data []byte
	}{
		{"wrong address", HashKey("key-b"), good},
		{"keyless record", HashKey("key-a"), []byte(`{"format":1}`)},
		{"malformed record", HashKey("key-a"), []byte("{broken")},
		{"traversal address", "../../etc/passwd", good},
		{"short address", "abc123", good},
		{"uppercase address", strings.ToUpper(HashKey("key-a")), good},
	}
	for _, c := range cases {
		if err := s.PutRaw(KindFlows, c.hash, c.data); err == nil {
			t.Errorf("%s: PutRaw accepted", c.name)
		}
	}
	// The honest put succeeds and round-trips through GetRaw.
	if err := s.PutRaw(KindFlows, HashKey("key-a"), good); err != nil {
		t.Fatal(err)
	}
	back, err := s.GetRaw(KindFlows, HashKey("key-a"))
	if err != nil || string(back) != string(good) {
		t.Fatalf("GetRaw after PutRaw: %d bytes, err %v", len(back), err)
	}
	if data, err := s.GetRaw(KindFlows, HashKey("absent")); err != nil || data != nil {
		t.Errorf("absent GetRaw: got (%d bytes, %v), want (nil, nil)", len(data), err)
	}
	if _, err := s.GetRaw(KindFlows, "not-a-hash"); err == nil {
		t.Error("GetRaw accepted a malformed address")
	}
}

// The shared-directory crash scenario of the fsync fix: a torn record (a
// valid prefix cut mid-file, as a crash without fsync could publish) must
// be a counted store error followed by recomputation — never a fatal
// request failure, never silently accepted.
func TestTornRecordIsCountedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2}
	if _, err := engine.New(engine.Options{Store: s}).Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Tear every record in half — a truncated-but-prefix-valid file, the
	// exact artifact a crashed peer without the fsync could leave behind.
	for _, kind := range []Kind{KindFlows, KindMatrices} {
		entries, err := os.ReadDir(fmt.Sprintf("%s/%s", dir, kind))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			p := fmt.Sprintf("%s/%s/%s", dir, kind, e.Name())
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng := engine.New(engine.Options{Store: s})
	resp, err := eng.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("torn records failed the solve: %v", err)
	}
	if resp.Solution.NumTriplets() == 0 {
		t.Error("degenerate solution after torn records")
	}
	st := eng.Stats()
	if st.StoreReadErrors == 0 {
		t.Errorf("torn records not counted as read errors: %+v", st)
	}
	if st.PrepareBuilds != 1 || st.MatrixBuilds != 1 {
		t.Errorf("torn records should force recomputation: %+v", st)
	}
}

// Tiered semantics: local-first reads, remote fallback with local
// fill-back, write-through saves, and both backends listed for probing.
func TestTieredFillBackAndWriteThrough(t *testing.T) {
	backing, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storeHandler(backing))
	defer srv.Close()
	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTiered(local, NewRemote(srv.URL, nil))

	if f, err := tier.LoadFlow("absent"); err != nil || f != nil {
		t.Fatalf("absent tiered flow: got (%v, %v), want (nil, nil)", f, err)
	}

	// Seed only the remote: a tiered read must hit it and fill local back.
	f := prepared(t)
	const key = "bench:s420|tier-test"
	if err := backing.SaveFlow(key, f); err != nil {
		t.Fatal(err)
	}
	got, err := tier.LoadFlow(key)
	if err != nil || got == nil {
		t.Fatalf("tiered read missed a remote-only record: (%v, %v)", got, err)
	}
	if filled, err := local.LoadFlow(key); err != nil || filled == nil {
		t.Errorf("remote hit was not filled back locally: (%v, %v)", filled, err)
	}

	// Write-through: a tiered save lands in both levels.
	const key2 = "bench:s420|tier-test-2"
	if err := tier.SaveFlow(key2, f); err != nil {
		t.Fatal(err)
	}
	if got, err := local.LoadFlow(key2); err != nil || got == nil {
		t.Errorf("write-through missed the local level: (%v, %v)", got, err)
	}
	if got, err := backing.LoadFlow(key2); err != nil || got == nil {
		t.Errorf("write-through missed the remote level: (%v, %v)", got, err)
	}

	backends := tier.Backends()
	if len(backends) != 2 || backends[0].Name != "local" || backends[1].Name != "remote" {
		t.Fatalf("tiered backends: %+v", backends)
	}
	for _, b := range backends {
		if err := b.Probe(context.Background()); err != nil {
			t.Errorf("backend %s unhealthy: %v", b.Name, err)
		}
	}
}

// A full warm-restart through the tiered store: replica A (local dir A +
// shared remote) computes; replica B (empty local dir B + same remote)
// must serve the same request from the store with zero ATPG builds —
// the cross-replica cache-sharing contract of the cluster.
func TestTieredCrossReplicaWarmRestart(t *testing.T) {
	backing, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storeHandler(backing))
	defer srv.Close()
	req := engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2, Parallelism: 1}

	localA, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	engA := engine.New(engine.Options{Store: NewTiered(localA, NewRemote(srv.URL, nil))})
	respA, err := engA.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	localB, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	engB := engine.New(engine.Options{Store: NewTiered(localB, NewRemote(srv.URL, nil))})
	respB, err := engB.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := engB.Stats()
	if st.PrepareBuilds != 0 || st.MatrixBuilds != 0 {
		t.Errorf("replica B recomputed artifacts shared by A: %+v", st)
	}
	if st.FlowStoreLoads != 1 || st.MatrixStoreLoads != 1 {
		t.Errorf("replica B did not load from the shared store: %+v", st)
	}
	if respA.Solution.NumTriplets() != respB.Solution.NumTriplets() {
		t.Errorf("replicas disagree on solution size: %d vs %d",
			respA.Solution.NumTriplets(), respB.Solution.NumTriplets())
	}
}
