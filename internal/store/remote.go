package store

// Remote is the HTTP client side of the shared artifact store: an
// ArtifactStore whose records live behind another reseedd's
// /v1/store/{flows,matrices}/{hash} endpoints. Records travel verbatim —
// the same bytes SaveFlow/SaveMatrix would put on a local disk — and the
// receiving server re-verifies the content address before persisting, so
// a remote store inherits the local store's keying discipline and its
// absence of an invalidation protocol.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dmatrix"
)

// remoteTimeout bounds every store round trip: an artifact fetch that
// cannot finish in this long is slower than recomputing most artifacts,
// and the engine treats the error as a miss anyway.
const remoteTimeout = 30 * time.Second

// maxRemoteRecord caps a fetched record body (a defensive bound far above
// any real artifact; a misbehaving server must not exhaust memory).
const maxRemoteRecord = 256 << 20

// Remote implements engine.ArtifactStore over a reseedd replica's store
// endpoints. Create it with NewRemote; it is safe for concurrent use.
type Remote struct {
	base   string
	client *http.Client
}

// NewRemote returns a Remote against base (e.g. "http://10.0.0.1:8351").
// A nil client uses a private one with a conservative timeout.
func NewRemote(base string, client *http.Client) *Remote {
	if client == nil {
		client = &http.Client{Timeout: remoteTimeout}
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Remote{base: base, client: client}
}

// Base returns the remote's base URL (observability).
func (r *Remote) Base() string { return r.base }

// url renders the endpoint of one record.
func (r *Remote) url(kind Kind, key string) string {
	return fmt.Sprintf("%s/v1/store/%s/%s", r.base, kind, HashKey(key))
}

// get fetches a record's bytes; (nil, nil) means the key is absent.
func (r *Remote) get(kind Kind, key string) ([]byte, error) {
	resp, err := r.client.Get(r.url(kind, key))
	if err != nil {
		return nil, fmt.Errorf("store: remote get %s/%s: %w", kind, HashKey(key), err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteRecord))
		if err != nil {
			return nil, fmt.Errorf("store: remote get %s/%s: %w", kind, HashKey(key), err)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("store: remote get %s/%s: %s", kind, HashKey(key), resp.Status)
	}
}

// put uploads a record's bytes.
func (r *Remote) put(kind Kind, key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, r.url(kind, key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("store: remote put %s/%s: %w", kind, HashKey(key), err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put %s/%s: %w", kind, HashKey(key), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
		resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("store: remote put %s/%s: %s", kind, HashKey(key), resp.Status)
	}
	return nil
}

// LoadFlow fetches and rebuilds the flow stored under key, or returns
// (nil, nil) when the remote does not hold it.
func (r *Remote) LoadFlow(key string) (*core.Flow, error) {
	data, err := r.get(KindFlows, key)
	if err != nil || data == nil {
		return nil, err
	}
	return DecodeFlow(key, data)
}

// SaveFlow uploads a prepared flow under its Engine cache key.
func (r *Remote) SaveFlow(key string, f *core.Flow) error {
	data, err := EncodeFlow(key, f)
	if err != nil {
		return err
	}
	return r.put(KindFlows, key, data)
}

// LoadMatrix fetches and rebuilds the Detection Matrix stored under key,
// or returns (nil, nil) when the remote does not hold it.
func (r *Remote) LoadMatrix(key string) (*dmatrix.Matrix, error) {
	data, err := r.get(KindMatrices, key)
	if err != nil || data == nil {
		return nil, err
	}
	return DecodeMatrix(key, data)
}

// SaveMatrix uploads a Detection Matrix under its Engine cache key.
func (r *Remote) SaveMatrix(key string, m *dmatrix.Matrix) error {
	data, err := EncodeMatrix(key, m)
	if err != nil {
		return err
	}
	return r.put(KindMatrices, key, data)
}

// Probe is the remote backend's cheap health check: one GET of the
// replica's /healthz under the probe's context. It feeds the
// reseedd_store_up gauge.
func (r *Remote) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: remote %s: health %s", r.base, resp.Status)
	}
	return nil
}
