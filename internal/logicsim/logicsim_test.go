package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/netlist"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseString(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return c
}

// refC17 computes c17's outputs directly from its equations.
func refC17(in [5]bool) (g22, g23 bool) {
	nand := func(a, b bool) bool { return !(a && b) }
	g1, g2, g3, g6, g7 := in[0], in[1], in[2], in[3], in[4]
	n10 := nand(g1, g3)
	n11 := nand(g3, g6)
	n16 := nand(g2, n11)
	n19 := nand(n11, g7)
	return nand(n10, n16), nand(n16, n19)
}

func TestC17Exhaustive(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	// All 32 input combinations fit in one block.
	patterns := make([]bitvec.Vector, 32)
	for v := 0; v < 32; v++ {
		patterns[v] = bitvec.FromUint64(5, uint64(v))
	}
	words, err := PackPatterns(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 32; v++ {
		var in [5]bool
		for i := 0; i < 5; i++ {
			in[i] = (v>>uint(i))&1 == 1
		}
		w22, w23 := refC17(in)
		if got := out[0]>>uint(v)&1 == 1; got != w22 {
			t.Errorf("pattern %05b: G22 = %v, want %v", v, got, w22)
		}
		if got := out[1]>>uint(v)&1 == 1; got != w23 {
			t.Errorf("pattern %05b: G23 = %v, want %v", v, got, w23)
		}
	}
}

func TestApplySinglePattern(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	p := bitvec.FromUint64(5, 0b00111) // G1=1 G2=1 G3=1 G6=0 G7=0
	out, err := sim.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	w22, w23 := refC17([5]bool{true, true, true, false, false})
	if out.Bit(0) != w22 || out.Bit(1) != w23 {
		t.Errorf("Apply = %s, want %v %v", out, w22, w23)
	}
}

func TestAllGateTypes(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(o_and)
OUTPUT(o_or)
OUTPUT(o_xor)
OUTPUT(o_not)
OUTPUT(o_buf)
OUTPUT(o_xnor)
OUTPUT(o_nor)
o_and  = AND(a, b)
o_or   = OR(a, b)
o_xor  = XOR(a, b)
o_not  = NOT(a)
o_buf  = BUFF(b)
o_xnor = XNOR(a, b)
o_nor  = NOR(a, b)
`
	c := mustParse(t, "types", src)
	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		a, b := v&1 == 1, v&2 == 2
		out, err := sim.Apply(bitvec.FromUint64(2, uint64(v)))
		if err != nil {
			t.Fatal(err)
		}
		want := []bool{a && b, a || b, a != b, !a, b, a == b, !(a || b)}
		for i, w := range want {
			if out.Bit(i) != w {
				t.Errorf("v=%02b output %d = %v, want %v", v, i, out.Bit(i), w)
			}
		}
	}
}

func TestSequentialRejected(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
z = AND(a, q)
q = DFF(z)
`
	c := mustParse(t, "seq", src)
	if _, err := New(c); err == nil {
		t.Fatal("expected error for sequential circuit")
	}
}

func TestInputCountMismatch(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	sim, _ := New(c)
	if _, err := sim.Run(make([]uint64, 3)); err == nil {
		t.Fatal("expected error for wrong input word count")
	}
}

func TestPackPatternsErrors(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	if _, err := PackPatterns(c, make([]bitvec.Vector, 65)); err == nil {
		t.Fatal("expected error for 65-pattern block")
	}
	if _, err := PackPatterns(c, []bitvec.Vector{bitvec.New(3)}); err == nil {
		t.Fatal("expected error for wrong pattern width")
	}
}

func TestPackPatternsLayout(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	p0 := bitvec.FromUint64(5, 0b00001) // only input 0 set
	p1 := bitvec.FromUint64(5, 0b10000) // only input 4 set
	words, err := PackPatterns(c, []bitvec.Vector{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0b01 {
		t.Errorf("input 0 word = %b, want 01", words[0])
	}
	if words[4] != 0b10 {
		t.Errorf("input 4 word = %b, want 10", words[4])
	}
}

// Blockwise simulation must agree with pattern-at-a-time simulation.
func TestBlockMatchesSingle(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
t1 = XOR(a, b)
t2 = NAND(c, d)
t3 = OR(t1, c)
t4 = AND(t2, b)
y  = XNOR(t3, t4)
z  = NOR(t1, t4)
`
	c := mustParse(t, "mix", src)
	sim, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	patterns := make([]bitvec.Vector, 64)
	for i := range patterns {
		patterns[i] = bitvec.Random(4, rng)
	}
	words, _ := PackPatterns(c, patterns)
	blockOut, err := sim.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]uint64, len(blockOut))
	copy(block, blockOut) // Run reuses its buffer; Apply below overwrites it

	sim2, _ := New(c)
	for k, p := range patterns {
		single, err := sim2.Apply(p)
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < 2; o++ {
			if got := block[o]>>uint(k)&1 == 1; got != single.Bit(o) {
				t.Errorf("pattern %d output %d: block %v vs single %v", k, o, got, single.Bit(o))
			}
		}
	}
}

func BenchmarkRunC17Block(b *testing.B) {
	c, err := netlist.ParseString("c17", c17Bench)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(c)
	if err != nil {
		b.Fatal(err)
	}
	words := []uint64{0xaaaa, 0xcccc, 0xf0f0, 0xff00, 0x1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(words); err != nil {
			b.Fatal(err)
		}
	}
}
