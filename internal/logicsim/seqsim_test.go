package logicsim

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/netlist"
)

// A 2-bit synchronous counter: s0 toggles, s1 toggles when s0 is 1.
const counterBench = `
INPUT(en)
OUTPUT(s0)
OUTPUT(s1)
n0 = XOR(s0, en)
c  = AND(s0, en)
n1 = XOR(s1, c)
s0 = DFF(n0)
s1 = DFF(n1)
`

func TestCounterSequence(t *testing.T) {
	c, err := netlist.ParseString("cnt", counterBench)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSequential(c)
	if err != nil {
		t.Fatal(err)
	}
	en := bitvec.FromUint64(1, 1)
	// From 00, with enable held: 00 01 10 11 00 ...
	want := []uint64{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		out, err := sim.StepOne(en)
		if err != nil {
			t.Fatal(err)
		}
		got := uint64(0)
		if out.Bit(0) {
			got |= 1
		}
		if out.Bit(1) {
			got |= 2
		}
		if got != w {
			t.Fatalf("cycle %d: count %d, want %d", i, got, w)
		}
	}
}

func TestHoldWhenDisabled(t *testing.T) {
	c, _ := netlist.ParseString("cnt", counterBench)
	sim, _ := NewSequential(c)
	if err := sim.SetState(bitvec.FromUint64(2, 0b10)); err != nil {
		t.Fatal(err)
	}
	dis := bitvec.New(1)
	for i := 0; i < 4; i++ {
		if _, err := sim.StepOne(dis); err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.State().Uint64(); got != 0b10 {
		t.Errorf("state changed while disabled: %02b", got)
	}
}

func TestSetStateAndReset(t *testing.T) {
	c, _ := netlist.ParseString("cnt", counterBench)
	sim, _ := NewSequential(c)
	if err := sim.SetState(bitvec.FromUint64(2, 0b11)); err != nil {
		t.Fatal(err)
	}
	if sim.State().Uint64() != 0b11 {
		t.Error("SetState not reflected")
	}
	sim.Reset()
	if sim.State().Uint64() != 0 {
		t.Error("Reset did not clear")
	}
	if err := sim.SetState(bitvec.New(3)); err == nil {
		t.Error("wrong-width state accepted")
	}
}

func TestParallelStreams(t *testing.T) {
	c, _ := netlist.ParseString("cnt", counterBench)
	sim, _ := NewSequential(c)
	// Stream k enables the counter iff k is even; run 2 cycles.
	enWord := uint64(0x5555555555555555)
	for i := 0; i < 2; i++ {
		if _, err := sim.Step([]uint64{enWord}); err != nil {
			t.Fatal(err)
		}
	}
	// Even streams counted to 2 (s0=0, s1=1), odd streams stayed 0.
	out, err := sim.Step([]uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&1 != 0 || out[1]&1 != 1 {
		t.Errorf("stream 0 state wrong: s0=%d s1=%d", out[0]&1, out[1]&1)
	}
	if out[0]>>1&1 != 0 || out[1]>>1&1 != 0 {
		t.Errorf("stream 1 should have stayed zero")
	}
}

func TestLoadStateWordCount(t *testing.T) {
	c, _ := netlist.ParseString("cnt", counterBench)
	sim, _ := NewSequential(c)
	if err := sim.LoadState([]uint64{1}); err == nil {
		t.Error("short state accepted")
	}
	if err := sim.LoadState([]uint64{1, 2}); err != nil {
		t.Error(err)
	}
}

func TestSequentialOnCombinational(t *testing.T) {
	c, _ := netlist.ParseString("comb", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = XOR(a, b)
`)
	sim, err := NewSequential(c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.StepOne(bitvec.FromUint64(2, 0b01))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Bit(0) {
		t.Error("XOR(1,0) should be 1")
	}
}

func TestStepInputCountMismatch(t *testing.T) {
	c, _ := netlist.ParseString("cnt", counterBench)
	sim, _ := NewSequential(c)
	if _, err := sim.Step([]uint64{1, 2}); err == nil {
		t.Error("wrong input word count accepted")
	}
}
