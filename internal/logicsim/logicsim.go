// Package logicsim implements a 64-way bit-parallel good-machine simulator
// for combinational circuits.
//
// Each gate value is a 64-bit word; bit k of every word belongs to pattern k
// of the current block. One pass over the levelized netlist therefore
// simulates up to 64 test patterns, which is what makes Detection Matrix
// construction for the large ISCAS-class circuits tractable.
package logicsim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/netlist"
)

// Simulator evaluates a finalized combinational circuit over blocks of up to
// 64 patterns. It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	c      *netlist.Circuit
	order  []int
	values []uint64 // per-gate word for the current block
	inbuf  [][]uint64
}

// New returns a simulator for the circuit. The circuit must be finalized and
// combinational (run FullScan first for sequential circuits).
func New(c *netlist.Circuit) (*Simulator, error) {
	if !c.Finalized() {
		return nil, fmt.Errorf("logicsim: circuit %q not finalized", c.Name)
	}
	if !c.IsCombinational() {
		return nil, fmt.Errorf("logicsim: circuit %q is sequential; apply FullScan first", c.Name)
	}
	return &Simulator{
		c:      c,
		order:  c.TopoOrder(),
		values: make([]uint64, c.NumGates()),
	}, nil
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Run simulates one block. inputWords[i] carries the 64 pattern bits for the
// i-th primary input (in circuit input order). It returns one word per
// primary output, in circuit output order. The returned slice is reused
// across calls.
func (s *Simulator) Run(inputWords []uint64) ([]uint64, error) {
	if len(inputWords) != len(s.c.Inputs) {
		return nil, fmt.Errorf("logicsim: got %d input words, circuit has %d inputs",
			len(inputWords), len(s.c.Inputs))
	}
	for i, id := range s.c.Inputs {
		s.values[id] = inputWords[i]
	}
	var faninBuf [16]uint64
	for _, id := range s.order {
		g := s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		in := faninBuf[:0]
		for _, f := range g.Fanin {
			in = append(in, s.values[f])
		}
		s.values[id] = netlist.Eval(g.Type, in)
	}
	if s.inbuf == nil {
		s.inbuf = [][]uint64{make([]uint64, len(s.c.Outputs))}
	}
	out := s.inbuf[0]
	for i, id := range s.c.Outputs {
		out[i] = s.values[id]
	}
	return out, nil
}

// Values returns the per-gate words after the last Run. The slice is owned
// by the simulator; callers must not modify it.
func (s *Simulator) Values() []uint64 { return s.values }

// PackPatterns packs up to 64 patterns into per-input words: the returned
// slice has one word per circuit input, with bit k holding pattern k's value
// for that input. Pattern bit i corresponds to circuit input i (pattern
// width must equal the circuit's input count).
func PackPatterns(c *netlist.Circuit, patterns []bitvec.Vector) ([]uint64, error) {
	if len(patterns) > 64 {
		return nil, fmt.Errorf("logicsim: block of %d patterns exceeds 64", len(patterns))
	}
	n := len(c.Inputs)
	words := make([]uint64, n)
	for k, p := range patterns {
		if p.Width() != n {
			return nil, fmt.Errorf("logicsim: pattern %d has width %d, circuit has %d inputs",
				k, p.Width(), n)
		}
		for i := 0; i < n; i++ {
			if p.Bit(i) {
				words[i] |= 1 << uint(k)
			}
		}
	}
	return words, nil
}

// Apply simulates a single pattern and returns the primary output values as
// a vector (bit i = output i). It is a convenience wrapper for examples and
// tests; bulk work should use Run with packed blocks.
func (s *Simulator) Apply(p bitvec.Vector) (bitvec.Vector, error) {
	words, err := PackPatterns(s.c, []bitvec.Vector{p})
	if err != nil {
		return bitvec.Vector{}, err
	}
	outWords, err := s.Run(words)
	if err != nil {
		return bitvec.Vector{}, err
	}
	out := bitvec.New(len(s.c.Outputs))
	for i, w := range outWords {
		if w&1 == 1 {
			out.SetBit(i, true)
		}
	}
	return out, nil
}
