package logicsim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/netlist"
)

// SeqSimulator evaluates sequential circuits cycle by cycle: each Step
// computes the combinational logic from the current primary inputs and
// flip-flop states, samples the primary outputs, and then clocks every DFF
// (Q ← D). Like Simulator it is 64-way bit-parallel, simulating the same
// circuit under up to 64 independent input/state streams at once; the
// single-stream helpers (SetState/StepOne) cover the common verification
// use.
//
// It is used to validate the gate-level TPG implementations produced by
// package tpggen against their behavioral models, and more generally to run
// any .bench design with flip-flops.
type SeqSimulator struct {
	c      *netlist.Circuit
	order  []int
	values []uint64
	state  []uint64 // per-DFF, in circuit DFF order
	outBuf []uint64
}

// NewSequential returns a sequential simulator. The circuit must be
// finalized; it may also be purely combinational (Step then never latches
// anything).
func NewSequential(c *netlist.Circuit) (*SeqSimulator, error) {
	if !c.Finalized() {
		return nil, fmt.Errorf("logicsim: circuit %q not finalized", c.Name)
	}
	return &SeqSimulator{
		c:      c,
		order:  c.TopoOrder(),
		values: make([]uint64, c.NumGates()),
		state:  make([]uint64, len(c.DFFs)),
		outBuf: make([]uint64, len(c.Outputs)),
	}, nil
}

// Circuit returns the simulated circuit.
func (s *SeqSimulator) Circuit() *netlist.Circuit { return s.c }

// Reset clears every flip-flop to 0 in all streams.
func (s *SeqSimulator) Reset() {
	for i := range s.state {
		s.state[i] = 0
	}
}

// LoadState sets the flip-flop states of all 64 streams; words[i] carries
// the 64 per-stream bits of the i-th DFF (in circuit DFF order).
func (s *SeqSimulator) LoadState(words []uint64) error {
	if len(words) != len(s.state) {
		return fmt.Errorf("logicsim: %d state words, circuit has %d DFFs", len(words), len(s.state))
	}
	copy(s.state, words)
	return nil
}

// SetState loads the same single-stream state into stream 0 (bit i of v is
// DFF i) and clears all other streams.
func (s *SeqSimulator) SetState(v bitvec.Vector) error {
	if v.Width() != len(s.state) {
		return fmt.Errorf("logicsim: state width %d, circuit has %d DFFs", v.Width(), len(s.state))
	}
	for i := range s.state {
		if v.Bit(i) {
			s.state[i] = 1
		} else {
			s.state[i] = 0
		}
	}
	return nil
}

// State returns the stream-0 flip-flop values as a vector (bit i = DFF i).
func (s *SeqSimulator) State() bitvec.Vector {
	out := bitvec.New(len(s.state))
	for i, w := range s.state {
		if w&1 == 1 {
			out.SetBit(i, true)
		}
	}
	return out
}

// Step evaluates one clock cycle for all 64 streams: combinational settle,
// output sampling, then the DFF update Q ← D. The returned slice (one word
// per primary output) is reused across calls.
func (s *SeqSimulator) Step(inputWords []uint64) ([]uint64, error) {
	if len(inputWords) != len(s.c.Inputs) {
		return nil, fmt.Errorf("logicsim: got %d input words, circuit has %d inputs",
			len(inputWords), len(s.c.Inputs))
	}
	for i, id := range s.c.Inputs {
		s.values[id] = inputWords[i]
	}
	for i, id := range s.c.DFFs {
		s.values[id] = s.state[i]
	}
	var faninBuf [16]uint64
	for _, id := range s.order {
		g := s.c.Gates[id]
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			continue
		}
		in := faninBuf[:0]
		for _, f := range g.Fanin {
			in = append(in, s.values[f])
		}
		s.values[id] = netlist.Eval(g.Type, in)
	}
	for i, id := range s.c.Outputs {
		s.outBuf[i] = s.values[id]
	}
	// Clock edge: capture each DFF's data input.
	for i, id := range s.c.DFFs {
		s.state[i] = s.values[s.c.Gates[id].Fanin[0]]
	}
	return s.outBuf, nil
}

// StepOne runs one cycle of stream 0 with a single input pattern (bit i =
// input i) and returns the primary outputs as a vector.
func (s *SeqSimulator) StepOne(inputs bitvec.Vector) (bitvec.Vector, error) {
	if inputs.Width() != len(s.c.Inputs) {
		return bitvec.Vector{}, fmt.Errorf("logicsim: input width %d, circuit has %d inputs",
			inputs.Width(), len(s.c.Inputs))
	}
	words := make([]uint64, len(s.c.Inputs))
	for i := range words {
		if inputs.Bit(i) {
			words[i] = 1
		}
	}
	outWords, err := s.Step(words)
	if err != nil {
		return bitvec.Vector{}, err
	}
	out := bitvec.New(len(s.c.Outputs))
	for i, w := range outWords {
		if w&1 == 1 {
			out.SetBit(i, true)
		}
	}
	return out, nil
}
