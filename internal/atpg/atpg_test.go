package atpg

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func mustParse(t testing.TB, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseString(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return c
}

func TestFullCoverageC17(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, err := fault.List(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, faults, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("c17 coverage = %v, want 1.0 (aborted: %d, untestable: %d)",
			res.Coverage(), len(res.Aborted), len(res.Untestable))
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns produced")
	}
	// The classic minimal test set for c17 has 4-5 patterns; compaction
	// should land close.
	if len(res.Patterns) > 10 {
		t.Errorf("compacted test set unusually large: %d patterns", len(res.Patterns))
	}

	// Independent check: grading the returned patterns must reproduce the
	// claimed detection record.
	sim, _ := fsim.New(c)
	fres, err := sim.Run(faults, res.Patterns, fsim.Options{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if fres.Detected[i] != res.Detected[i] {
			t.Errorf("fault %s: ATPG claims %v, grading says %v",
				faults[i].String(c), res.Detected[i], fres.Detected[i])
		}
	}
}

func TestPodemDirectOnAllC17Faults(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, _ := fault.List(c)
	gen := newPodem(c, 1000)
	rng := rand.New(rand.NewSource(3))
	sim, _ := fsim.New(c)
	for _, f := range faults {
		pattern, st := gen.generate(f, rng)
		if st != statusDetected {
			t.Errorf("PODEM failed on testable fault %s (status %d)", f.String(c), st)
			continue
		}
		res, err := sim.Run([]fault.Fault{f}, []bitvec.Vector{pattern}, fsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected[0] {
			t.Errorf("PODEM pattern %s does not detect %s", pattern, f.String(c))
		}
	}
}

func TestRedundantFaultProvenUntestable(t *testing.T) {
	// z = OR(a, NOT(a)): z s-a-1 is redundant.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(q)
n = NOT(a)
z = OR(a, n)
q = AND(z, b)
`
	c := mustParse(t, "red", src)
	gz, _ := c.GateByName("z")
	faults := []fault.Fault{{Gate: gz.ID, Pin: fault.OutputPin, StuckAt1: true}}
	gen := newPodem(c, 1000)
	rng := rand.New(rand.NewSource(1))
	if _, st := gen.generate(faults[0], rng); st != statusUntestable {
		t.Errorf("redundant fault classified %d, want untestable", st)
	}

	res, err := Run(c, faults, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Untestable) != 1 {
		t.Errorf("Run did not classify the redundant fault: %+v", res.Stats)
	}
	if res.TestableCoverage() != 1.0 {
		t.Errorf("testable coverage = %v, want 1.0", res.TestableCoverage())
	}
}

func TestXorChainNeedsDeterministicPhase(t *testing.T) {
	// A 16-input AND tree is strongly random-resistant: the only test for
	// "output s-a-0" needs all 16 inputs at 1 (probability 2^-16).
	src := `
INPUT(i0)` + "\n"
	for i := 1; i < 16; i++ {
		src += "INPUT(i" + itoa(i) + ")\n"
	}
	src += "OUTPUT(z)\n"
	// Balanced AND tree.
	src += `
a0 = AND(i0, i1)
a1 = AND(i2, i3)
a2 = AND(i4, i5)
a3 = AND(i6, i7)
a4 = AND(i8, i9)
a5 = AND(i10, i11)
a6 = AND(i12, i13)
a7 = AND(i14, i15)
b0 = AND(a0, a1)
b1 = AND(a2, a3)
b2 = AND(a4, a5)
b3 = AND(a6, a7)
c0 = AND(b0, b1)
c1 = AND(b2, b3)
z = AND(c0, c1)
`
	c := mustParse(t, "andtree", src)
	faults, _, _ := fault.List(c)
	res, err := Run(c, faults, Options{Seed: 1, MaxRandomPatterns: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("AND tree coverage = %v, want 1.0", res.Coverage())
	}
	if res.Stats.PodemDetected == 0 {
		t.Error("expected the deterministic phase to contribute")
	}
}

func TestCompactionShrinksOrKeeps(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, _ := fault.List(c)
	raw, err := Run(c, faults, Options{Seed: 5, SkipCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Run(c, faults, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted.Patterns) > len(raw.Patterns) {
		t.Errorf("compaction grew the test set: %d -> %d",
			len(raw.Patterns), len(compacted.Patterns))
	}
	if compacted.Coverage() != raw.Coverage() {
		t.Errorf("compaction changed coverage: %v vs %v",
			raw.Coverage(), compacted.Coverage())
	}
}

func TestSequentialRejected(t *testing.T) {
	c := mustParse(t, "seq", `
INPUT(a)
OUTPUT(z)
z = AND(a, q)
q = DFF(z)
`)
	if _, err := Run(c, nil, Options{}); err == nil {
		t.Fatal("expected error for sequential circuit")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	faults, _, _ := fault.List(c)
	r1, err := Run(c, faults, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, faults, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Patterns) != len(r2.Patterns) {
		t.Fatalf("same seed produced different test set sizes: %d vs %d",
			len(r1.Patterns), len(r2.Patterns))
	}
	for i := range r1.Patterns {
		if !r1.Patterns[i].Equal(r2.Patterns[i]) {
			t.Fatalf("same seed produced different pattern %d", i)
		}
	}
}

func TestEval3TruthTables(t *testing.T) {
	// Spot-check the X-propagation rules.
	cases := []struct {
		t    netlist.GateType
		in   []byte
		want byte
	}{
		{netlist.And, []byte{v0, vX}, v0}, // controlling beats X
		{netlist.And, []byte{v1, vX}, vX},
		{netlist.Nand, []byte{v0, vX}, v1},
		{netlist.Or, []byte{v1, vX}, v1},
		{netlist.Or, []byte{v0, vX}, vX},
		{netlist.Nor, []byte{v1, vX}, v0},
		{netlist.Xor, []byte{v1, vX}, vX}, // XOR never resolves X
		{netlist.Xor, []byte{v1, v1}, v0},
		{netlist.Xnor, []byte{v1, v0}, v0},
		{netlist.Not, []byte{vX}, vX},
		{netlist.Not, []byte{v0}, v1},
		{netlist.Buf, []byte{v1}, v1},
	}
	for _, cse := range cases {
		if got := eval3(cse.t, cse.in); got != cse.want {
			t.Errorf("eval3(%v, %v) = %d, want %d", cse.t, cse.in, got, cse.want)
		}
	}
}

// Randomized: ATPG must reach full testable coverage on random circuits and
// its claimed detections must match independent grading.
func TestRandomCircuitsFullTestableCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		c := randomCircuit(t, rng, 6, 40)
		faults, _, err := fault.List(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, faults, Options{Seed: int64(trial), BacktrackLimit: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Aborted) > 0 {
			t.Errorf("trial %d: %d aborts on a small circuit", trial, len(res.Aborted))
		}
		if res.TestableCoverage() != 1.0 {
			t.Errorf("trial %d: testable coverage %v", trial, res.TestableCoverage())
		}
		sim, _ := fsim.New(c)
		fres, err := sim.Run(faults, res.Patterns, fsim.Options{DropDetected: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range faults {
			if fres.Detected[i] != res.Detected[i] {
				t.Errorf("trial %d fault %s: claim %v, grading %v",
					trial, faults[i].String(c), res.Detected[i], fres.Detected[i])
			}
		}
	}
}

func randomCircuit(t testing.TB, rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("rand")
	var signals []string
	for i := 0; i < nIn; i++ {
		name := "pi" + itoa(i)
		if _, err := c.AddInput(name); err != nil {
			t.Fatal(err)
		}
		signals = append(signals, name)
	}
	types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand,
		netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not}
	for i := 0; i < nGates; i++ {
		tp := types[rng.Intn(len(types))]
		n := 2
		if tp == netlist.Not {
			n = 1
		}
		fanin := make([]string, n)
		for j := range fanin {
			fanin[j] = signals[len(signals)-1-rng.Intn(min(len(signals), 10))]
		}
		name := "g" + itoa(i)
		if _, err := c.AddGate(name, tp, fanin...); err != nil {
			t.Fatal(err)
		}
		signals = append(signals, name)
	}
	used := map[string]bool{}
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			used[c.Gates[f].Name] = true
		}
	}
	var dangling []string
	for _, g := range c.Gates {
		if !used[g.Name] {
			dangling = append(dangling, g.Name)
		}
	}
	for len(dangling) > 2 {
		name := "t" + itoa(len(c.Gates))
		if _, err := c.AddGate(name, netlist.Or, dangling[0], dangling[1]); err != nil {
			t.Fatal(err)
		}
		dangling = append(dangling[2:], name)
	}
	for _, d := range dangling {
		if err := c.MarkOutput(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

func BenchmarkATPGC17(b *testing.B) {
	c := mustParse(b, "c17", c17Bench)
	faults, _, err := fault.List(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, faults, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
