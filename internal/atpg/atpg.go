// Package atpg generates compacted deterministic test sets for stuck-at
// faults on combinational circuits.
//
// It stands in for the commercial gate-level ATPG (TestGen in the paper)
// that supplies the reseeding flow with its inputs: the target fault list F
// and the deterministic test set ATPGTS that covers F completely. The flow
// is classical: a random-pattern phase with fault dropping, a deterministic
// PODEM phase for the random-resistant faults, and reverse-order fault
// simulation to compact the final pattern sequence.
package atpg

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/ctxutil"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
)

// Options tunes the ATPG run. The zero value selects sensible defaults.
type Options struct {
	// Seed drives pattern randomness (random phase and X-filling).
	Seed int64
	// MaxRandomPatterns bounds the random phase (default 10*64).
	MaxRandomPatterns int
	// RandomStallBlocks stops the random phase after this many consecutive
	// 64-pattern blocks without a new detection (default 2).
	RandomStallBlocks int
	// BacktrackLimit bounds PODEM backtracks per fault (default 1000).
	BacktrackLimit int
	// SkipCompaction keeps the raw pattern list (useful for ablation).
	SkipCompaction bool
	// Parallelism bounds the fault-simulation worker pool used by the
	// random, PODEM-grading and compaction phases. 1 forces serial; 0 (and
	// any negative value) means one worker per available processor. The
	// generated test set is bit-identical for any value (the fsim
	// determinism guarantee; PODEM itself is single-threaded).
	Parallelism int
	// Context, when non-nil, cancels the run: it is checked between
	// fault-simulation blocks (through fsim), before every PODEM target and
	// at each phase boundary. A cancelled run returns the context's error —
	// there is no partial test set.
	Context context.Context
}

// WithDefaults returns the options with every zero tuning field replaced by
// its documented default. Run applies it internally; the reseeding Engine
// applies it too before deriving cache keys, so that explicitly passing a
// default value and leaving the field zero address the same artifact.
func (o Options) WithDefaults() Options {
	if o.MaxRandomPatterns == 0 {
		o.MaxRandomPatterns = 640
	}
	if o.RandomStallBlocks == 0 {
		o.RandomStallBlocks = 2
	}
	if o.BacktrackLimit == 0 {
		o.BacktrackLimit = 1000
	}
	return o
}

// Stats reports how the test set was produced.
type Stats struct {
	RandomPatterns           int // patterns tried in the random phase
	RandomDetected           int // faults detected by the random phase
	PodemDetected            int // faults detected by PODEM patterns
	PodemUntestable          int // faults proven untestable
	PodemAborted             int // faults abandoned at the backtrack limit
	PatternsBeforeCompaction int
	GateEvals                int64 // fault-simulation effort
}

// Result is the outcome of an ATPG run.
type Result struct {
	// Patterns is the final (compacted) deterministic test set, the
	// paper's ATPGTS.
	Patterns []bitvec.Vector
	// Detected[i] reports whether faults[i] is detected by Patterns.
	Detected []bool
	// Untestable lists indices of faults proven redundant.
	Untestable []int
	// Aborted lists indices of faults abandoned at the backtrack limit.
	Aborted []int
	Stats   Stats
}

// Coverage returns detected / total over the full fault list.
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 1
	}
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(r.Detected))
}

// TestableCoverage returns detected / (total − untestable), the paper's
// "testable fault coverage".
func (r *Result) TestableCoverage() float64 {
	testable := len(r.Detected) - len(r.Untestable)
	if testable <= 0 {
		return 1
	}
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(testable)
}

// DetectedFaults returns the indices of detected faults, the target list F
// for the reseeding flow.
func (r *Result) DetectedFaults() []int {
	var out []int
	for i, d := range r.Detected {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Run generates a compacted test set for the fault list on the finalized
// combinational circuit.
func Run(c *netlist.Circuit, faults []fault.Fault, opts Options) (*Result, error) {
	opts = opts.WithDefaults()
	if !c.IsCombinational() {
		return nil, fmt.Errorf("atpg: circuit %q is sequential; apply FullScan first", c.Name)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sim, err := fsim.New(c)
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	res := &Result{Detected: make([]bool, len(faults))}
	width := len(c.Inputs)

	// Phase 1: random patterns with fault dropping. Patterns that detect
	// nothing new are discarded block by block.
	var patterns []bitvec.Vector
	undetected := make([]int, len(faults))
	for i := range faults {
		undetected[i] = i
	}
	stall := 0
	for len(patterns) < opts.MaxRandomPatterns && len(undetected) > 0 && stall < opts.RandomStallBlocks {
		block := make([]bitvec.Vector, 64)
		for i := range block {
			block[i] = bitvec.Random(width, rng)
		}
		sub := subset(faults, undetected)
		fres, err := sim.Run(sub, block, fsim.Options{DropDetected: true, Parallelism: opts.Parallelism, Context: opts.Context})
		if err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		res.Stats.GateEvals += fres.GateEvals
		res.Stats.RandomPatterns += len(block)
		if fres.NumDetected == 0 {
			stall++
			continue
		}
		stall = 0
		// Keep only patterns that first-detect something.
		keep := make([]bool, len(block))
		for si, fp := range fres.FirstPattern {
			if fp >= 0 {
				keep[fp] = true
				fi := undetected[si]
				res.Detected[fi] = true
				res.Stats.RandomDetected++
			}
		}
		for pi, k := range keep {
			if k {
				patterns = append(patterns, block[pi])
			}
		}
		undetected = filterUndetected(undetected, res.Detected)
	}

	// Phase 2: PODEM on the remaining faults. Patterns are produced in
	// batches of up to 64 (one per distinct target fault) and then fault
	// simulated as a single block, so each deterministic pattern can drop
	// many faults at the cost of one parallel-pattern pass.
	gen := newPodem(c, opts.BacktrackLimit)
	classified := make([]bool, len(faults)) // untestable or aborted
	for len(undetected) > 0 {
		var batch []bitvec.Vector
		var targets []int
		for _, fi := range undetected {
			if len(batch) == 64 {
				break
			}
			if err := ctxutil.Err(opts.Context); err != nil {
				return nil, fmt.Errorf("atpg: %w", err)
			}
			pattern, st := gen.generate(faults[fi], rng)
			switch st {
			case statusUntestable:
				res.Untestable = append(res.Untestable, fi)
				res.Stats.PodemUntestable++
				classified[fi] = true
			case statusAborted:
				res.Aborted = append(res.Aborted, fi)
				res.Stats.PodemAborted++
				classified[fi] = true
			case statusDetected:
				batch = append(batch, pattern)
				targets = append(targets, fi)
			}
		}
		n := 0
		for _, fi := range undetected {
			if !classified[fi] {
				undetected[n] = fi
				n++
			}
		}
		undetected = undetected[:n]
		if len(batch) == 0 {
			break // every remaining fault in range was classified
		}
		sub := subset(faults, undetected)
		fres, err := sim.Run(sub, batch, fsim.Options{DropDetected: true, Parallelism: opts.Parallelism, Context: opts.Context})
		if err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		res.Stats.GateEvals += fres.GateEvals
		for si, d := range fres.Detected {
			if d {
				res.Detected[undetected[si]] = true
				res.Stats.PodemDetected++
			}
		}
		for bi, fi := range targets {
			if !res.Detected[fi] {
				// PODEM said detected but simulation disagrees: that is a
				// generator bug; fail loudly rather than looping forever.
				return nil, fmt.Errorf("atpg: internal error: PODEM pattern %d does not detect %s",
					bi, faults[fi].String(c))
			}
		}
		patterns = append(patterns, batch...)
		undetected = filterUndetected(undetected, res.Detected)
	}
	res.Stats.PatternsBeforeCompaction = len(patterns)

	// Phase 3: reverse-order compaction. Simulating the sequence backwards
	// with fault dropping keeps only patterns that still first-detect a
	// fault; later (deterministic, high-yield) patterns absorb the work of
	// earlier random ones.
	if !opts.SkipCompaction && len(patterns) > 0 {
		detectedIdx := res.DetectedFaults()
		sub := subset(faults, detectedIdx)
		reversed := make([]bitvec.Vector, len(patterns))
		for i, p := range patterns {
			reversed[len(patterns)-1-i] = p
		}
		fres, err := sim.Run(sub, reversed, fsim.Options{DropDetected: true, Parallelism: opts.Parallelism, Context: opts.Context})
		if err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		res.Stats.GateEvals += fres.GateEvals
		keep := make([]bool, len(reversed))
		for _, fp := range fres.FirstPattern {
			if fp >= 0 {
				keep[fp] = true
			}
		}
		var compacted []bitvec.Vector
		for i := len(reversed) - 1; i >= 0; i-- { // restore original order
			if keep[i] {
				compacted = append(compacted, reversed[i])
			}
		}
		patterns = compacted
	}
	res.Patterns = patterns
	return res, nil
}

func subset(faults []fault.Fault, idx []int) []fault.Fault {
	out := make([]fault.Fault, len(idx))
	for i, fi := range idx {
		out[i] = faults[fi]
	}
	return out
}

func filterUndetected(idx []int, detected []bool) []int {
	n := 0
	for _, fi := range idx {
		if !detected[fi] {
			idx[n] = fi
			n++
		}
	}
	return idx[:n]
}
