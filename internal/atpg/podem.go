package atpg

import (
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/netlist"
)

// Three-valued logic values.
const (
	v0 byte = 0
	v1 byte = 1
	vX byte = 2
)

// Status of a PODEM run for one fault.
type status int

const (
	statusDetected status = iota
	statusUntestable
	statusAborted
)

// podem is a test generator for single stuck-at faults using the PODEM
// algorithm: decisions are made only on primary inputs, with three-valued
// event-driven implication of the good and faulty machines and trail-based
// backtracking.
type podem struct {
	c     *netlist.Circuit
	order []int
	limit int // backtrack limit

	gv []byte // good machine values
	fv []byte // faulty machine values

	distPO []int // min combinational distance to a primary output
	cc0    []int // SCOAP-style 0-controllability
	cc1    []int // SCOAP-style 1-controllability
	isOut  []bool

	// X-path memoization, valid for one xpathEpoch.
	xpathMemo  []byte // 0 unknown, 1 yes, 2 no
	xpathEpoch []int32
	xpathCur   int32

	// Event propagation state (same level-bucket scheme as fsim).
	buckets    [][]int
	sched      []int32
	epoch      int32
	minLevel   int
	maxTouched int

	// Trail-based undo.
	trail   []trailEntry
	markers []int

	// Current fault.
	flt      fault.Fault
	siteGate int
	// cone is the fanout cone of the site: the only region where the
	// D-frontier can live. Cached per site gate because the output fault
	// and all pin faults of a gate share it.
	cone     []int
	coneGate int

	faninBuf []byte
}

type trailEntry struct {
	id    int32
	oldGV byte
	oldFV byte
}

type decision struct {
	pi        int // gate ID of the primary input
	value     byte
	triedBoth bool
}

func newPodem(c *netlist.Circuit, limit int) *podem {
	p := &podem{
		c:          c,
		order:      c.TopoOrder(),
		limit:      limit,
		gv:         make([]byte, c.NumGates()),
		fv:         make([]byte, c.NumGates()),
		distPO:     make([]int, c.NumGates()),
		cc0:        make([]int, c.NumGates()),
		cc1:        make([]int, c.NumGates()),
		isOut:      make([]bool, c.NumGates()),
		xpathMemo:  make([]byte, c.NumGates()),
		xpathEpoch: make([]int32, c.NumGates()),
		buckets:    make([][]int, c.MaxLevel()+1),
		sched:      make([]int32, c.NumGates()),
	}
	for _, id := range c.Outputs {
		p.isOut[id] = true
	}
	p.computeControllability()
	// Distance to the nearest primary output, for D-frontier selection.
	const inf = 1 << 30
	for i := range p.distPO {
		p.distPO[i] = inf
	}
	queue := make([]int, 0, len(c.Outputs))
	for _, id := range c.Outputs {
		if p.distPO[id] > 0 {
			p.distPO[id] = 0
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, f := range c.Gates[id].Fanin {
			if p.distPO[f] > p.distPO[id]+1 {
				p.distPO[f] = p.distPO[id] + 1
				queue = append(queue, f)
			}
		}
	}
	return p
}

// computeControllability assigns SCOAP-style testability measures: cc0/cc1
// estimate the effort of driving each line to 0/1 from the primary inputs.
// They guide backtrace input selection.
func (p *podem) computeControllability() {
	for _, id := range p.order {
		g := p.c.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			p.cc0[id], p.cc1[id] = 1, 1
		case netlist.Const0:
			p.cc0[id], p.cc1[id] = 0, 1<<28
		case netlist.Const1:
			p.cc0[id], p.cc1[id] = 1<<28, 0
		case netlist.Not:
			p.cc0[id] = p.cc1[g.Fanin[0]] + 1
			p.cc1[id] = p.cc0[g.Fanin[0]] + 1
		case netlist.Buf:
			p.cc0[id] = p.cc0[g.Fanin[0]] + 1
			p.cc1[id] = p.cc1[g.Fanin[0]] + 1
		case netlist.And, netlist.Nand:
			sum1, min0 := 1, int(^uint(0)>>1)
			for _, f := range g.Fanin {
				sum1 += p.cc1[f]
				if p.cc0[f] < min0 {
					min0 = p.cc0[f]
				}
			}
			if g.Type == netlist.And {
				p.cc1[id], p.cc0[id] = sum1, min0+1
			} else {
				p.cc0[id], p.cc1[id] = sum1, min0+1
			}
		case netlist.Or, netlist.Nor:
			sum0, min1 := 1, int(^uint(0)>>1)
			for _, f := range g.Fanin {
				sum0 += p.cc0[f]
				if p.cc1[f] < min1 {
					min1 = p.cc1[f]
				}
			}
			if g.Type == netlist.Or {
				p.cc0[id], p.cc1[id] = sum0, min1+1
			} else {
				p.cc1[id], p.cc0[id] = sum0, min1+1
			}
		case netlist.Xor, netlist.Xnor:
			// Fold pairwise over the inputs.
			c0, c1 := p.cc0[g.Fanin[0]], p.cc1[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				b0, b1 := p.cc0[f], p.cc1[f]
				n0 := minInt(c0+b0, c1+b1)
				n1 := minInt(c0+b1, c1+b0)
				c0, c1 = n0, n1
			}
			if g.Type == netlist.Xnor {
				c0, c1 = c1, c0
			}
			p.cc0[id], p.cc1[id] = c0+1, c1+1
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// cc returns the controllability cost of driving a line to val.
func (p *podem) cc(id int, val byte) int {
	if val == v1 {
		return p.cc1[id]
	}
	return p.cc0[id]
}

// eval3 computes the three-valued function of a gate type.
func eval3(t netlist.GateType, in []byte) byte {
	switch t {
	case netlist.And, netlist.Nand:
		v := v1
		for _, x := range in {
			if x == v0 {
				v = v0
				break
			}
			if x == vX {
				v = vX
			}
		}
		if t == netlist.Nand {
			return not3(v)
		}
		return v
	case netlist.Or, netlist.Nor:
		v := v0
		for _, x := range in {
			if x == v1 {
				v = v1
				break
			}
			if x == vX {
				v = vX
			}
		}
		if t == netlist.Nor {
			return not3(v)
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := v0
		for _, x := range in {
			if x == vX {
				return vX
			}
			v ^= x
		}
		if t == netlist.Xnor {
			return not3(v)
		}
		return v
	case netlist.Not:
		return not3(in[0])
	case netlist.Buf:
		return in[0]
	case netlist.Const0:
		return v0
	case netlist.Const1:
		return v1
	default:
		return vX
	}
}

func not3(v byte) byte {
	switch v {
	case v0:
		return v1
	case v1:
		return v0
	default:
		return vX
	}
}

// controlling returns the controlling input value of a gate type, or vX if
// the gate has none (XOR family).
func controlling(t netlist.GateType) byte {
	switch t {
	case netlist.And, netlist.Nand:
		return v0
	case netlist.Or, netlist.Nor:
		return v1
	default:
		return vX
	}
}

// inverts reports whether the gate type inverts the backtraced objective.
func inverts(t netlist.GateType) bool {
	switch t {
	case netlist.Nand, netlist.Nor, netlist.Not:
		return true
	default:
		return false
	}
}

// generate attempts to produce a test pattern for the fault. Unassigned
// inputs in the returned pattern are filled randomly from rng.
func (p *podem) generate(f fault.Fault, rng *rand.Rand) (bitvec.Vector, status) {
	p.flt = f
	p.siteGate = f.Gate
	if p.cone == nil || p.coneGate != f.Gate {
		p.cone = p.c.FanoutCone(f.Gate)
		p.coneGate = f.Gate
	}
	p.reset()

	var stack []decision
	backtracks := 0
	for {
		if p.detected() {
			return p.fillPattern(rng), statusDetected
		}
		objGate, objVal := p.objective()
		if objVal != vX {
			pi, val, ok := p.backtrace(objGate, objVal)
			if ok {
				p.pushMarker()
				p.assign(pi, val)
				stack = append(stack, decision{pi: pi, value: val})
				continue
			}
			// No X path to a PI: treat as a dead end.
		}
		// Dead end: backtrack to the most recent decision with an untried
		// alternative.
		backtracks++
		if backtracks > p.limit {
			return bitvec.Vector{}, statusAborted
		}
		flipped := false
		for len(stack) > 0 {
			d := stack[len(stack)-1]
			p.popToMarker()
			stack = stack[:len(stack)-1]
			if !d.triedBoth {
				nv := not3(d.value)
				p.pushMarker()
				p.assign(d.pi, nv)
				stack = append(stack, decision{pi: d.pi, value: nv, triedBoth: true})
				flipped = true
				break
			}
		}
		if !flipped {
			return bitvec.Vector{}, statusUntestable
		}
	}
}

// reset rebuilds the baseline three-valued state for the current fault: all
// primary inputs X, constants propagated, the fault injected.
func (p *podem) reset() {
	p.trail = p.trail[:0]
	p.markers = p.markers[:0]
	for _, id := range p.order {
		g := p.c.Gates[id]
		switch g.Type {
		case netlist.Input:
			p.gv[id] = vX
		default:
			p.gv[id] = p.evalGood(g)
		}
		p.fv[id] = p.evalFaulty(g)
	}
}

func (p *podem) evalGood(g *netlist.Gate) byte {
	in := p.faninBuf[:0]
	for _, f := range g.Fanin {
		in = append(in, p.gv[f])
	}
	p.faninBuf = in
	return eval3(g.Type, in)
}

// evalFaulty computes the faulty-machine value of a gate, injecting the
// fault when the gate is the site.
func (p *podem) evalFaulty(g *netlist.Gate) byte {
	if g.ID == p.siteGate && p.flt.Pin == fault.OutputPin {
		return stuckVal(p.flt)
	}
	in := p.faninBuf[:0]
	for pin, f := range g.Fanin {
		v := p.fv[f]
		if g.ID == p.siteGate && pin == p.flt.Pin {
			v = stuckVal(p.flt)
		}
		in = append(in, v)
	}
	p.faninBuf = in
	if g.Type == netlist.Input {
		// An input gate's faulty value tracks its good value unless it is
		// the fault site (handled above).
		return p.gv[g.ID]
	}
	return eval3(g.Type, in)
}

func stuckVal(f fault.Fault) byte {
	if f.StuckAt1 {
		return v1
	}
	return v0
}

// assign sets a primary input to a binary value and propagates events.
func (p *podem) assign(pi int, val byte) {
	p.setValue(pi, val, p.faultyInputValue(pi, val))
	p.propagate(pi)
}

func (p *podem) faultyInputValue(pi int, good byte) byte {
	if pi == p.siteGate && p.flt.Pin == fault.OutputPin {
		return stuckVal(p.flt)
	}
	return good
}

func (p *podem) setValue(id int, gv, fv byte) {
	p.trail = append(p.trail, trailEntry{id: int32(id), oldGV: p.gv[id], oldFV: p.fv[id]})
	p.gv[id] = gv
	p.fv[id] = fv
}

// propagate performs level-ordered event propagation from a changed gate.
func (p *podem) propagate(from int) {
	p.epoch++
	if p.epoch == 0 {
		for i := range p.sched {
			p.sched[i] = -1
		}
		p.epoch = 1
	}
	p.minLevel = len(p.buckets)
	p.maxTouched = -1
	p.scheduleFanouts(from)
	for lvl := p.minLevel; lvl <= p.maxTouched; lvl++ {
		queue := p.buckets[lvl]
		if len(queue) == 0 {
			continue
		}
		for qi := 0; qi < len(queue); qi++ {
			id := queue[qi]
			g := p.c.Gates[id]
			ngv := p.evalGood(g)
			nfv := p.evalFaulty(g)
			if ngv == p.gv[id] && nfv == p.fv[id] {
				continue
			}
			p.setValue(id, ngv, nfv)
			p.scheduleFanouts(id)
		}
		p.buckets[lvl] = queue[:0]
	}
}

func (p *podem) scheduleFanouts(id int) {
	for _, fo := range p.c.Gates[id].Fanout {
		g := p.c.Gates[fo]
		if g.Type == netlist.DFF {
			continue
		}
		if p.sched[fo] == p.epoch {
			continue
		}
		p.sched[fo] = p.epoch
		p.buckets[g.Level] = append(p.buckets[g.Level], fo)
		if g.Level < p.minLevel {
			p.minLevel = g.Level
		}
		if g.Level > p.maxTouched {
			p.maxTouched = g.Level
		}
	}
}

func (p *podem) pushMarker() {
	p.markers = append(p.markers, len(p.trail))
}

func (p *podem) popToMarker() {
	if len(p.markers) == 0 {
		return
	}
	mark := p.markers[len(p.markers)-1]
	p.markers = p.markers[:len(p.markers)-1]
	for i := len(p.trail) - 1; i >= mark; i-- {
		e := p.trail[i]
		p.gv[e.id] = e.oldGV
		p.fv[e.id] = e.oldFV
	}
	p.trail = p.trail[:mark]
}

// detected reports whether any primary output currently carries a fault
// effect (binary and different in the two machines).
func (p *podem) detected() bool {
	for _, id := range p.c.Outputs {
		g, f := p.gv[id], p.fv[id]
		if g != vX && f != vX && g != f {
			return true
		}
	}
	return false
}

// objective returns the next (line, value) goal: activate the fault if it is
// not yet activated, otherwise advance the D-frontier gate closest to a
// primary output. It returns value vX when no goal exists (dead end).
func (p *podem) objective() (int, byte) {
	want := not3(stuckVal(p.flt)) // line value that activates the fault
	actLine := p.siteGate
	if p.flt.Pin != fault.OutputPin {
		actLine = p.c.Gates[p.siteGate].Fanin[p.flt.Pin]
	}
	switch p.gv[actLine] {
	case vX:
		return actLine, want
	case stuckVal(p.flt):
		return 0, vX // good value equals the stuck value: no divergence possible
	}

	// Fault activated. Find the best D-frontier gate: output X in either
	// machine with a divergent binary input pair and an X path to a primary
	// output (without an X path the divergence can never be observed, so
	// the branch is pruned immediately).
	p.xpathCur++
	best, bestDist := -1, int(^uint(0)>>1)
	for _, id := range p.cone {
		if p.gv[id] != vX && p.fv[id] != vX {
			continue
		}
		g := p.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		diverges := false
		for pin, f := range g.Fanin {
			gvv, fvv := p.gv[f], p.fv[f]
			if id == p.siteGate && pin == p.flt.Pin {
				fvv = stuckVal(p.flt)
			}
			if gvv != vX && fvv != vX && gvv != fvv {
				diverges = true
				break
			}
		}
		if diverges && p.distPO[id] < bestDist && p.xpath(id) {
			best, bestDist = id, p.distPO[id]
		}
	}
	if best < 0 {
		return 0, vX
	}
	// Objective: set an X side input of the frontier gate to the
	// non-controlling value so the divergence passes through. All side
	// inputs must eventually be set, so take the hardest one first (classic
	// multiple-backtrace intuition): failing early is cheaper.
	g := p.c.Gates[best]
	ctrl := controlling(g.Type)
	nonCtrl := not3(ctrl)
	if ctrl == vX {
		nonCtrl = v0 // XOR family: any binary value sensitizes
	}
	pick, pickCost := -1, -1
	for _, f := range g.Fanin {
		if p.gv[f] != vX {
			continue
		}
		cost := p.cc(f, nonCtrl)
		if cost > pickCost {
			pick, pickCost = f, cost
		}
	}
	if pick < 0 {
		return 0, vX
	}
	return pick, nonCtrl
}

// xpath reports whether gate id has a path of X-valued gates to a primary
// output (in either machine). Memoized per objective computation.
func (p *podem) xpath(id int) bool {
	if p.xpathEpoch[id] == p.xpathCur {
		return p.xpathMemo[id] == 1
	}
	p.xpathEpoch[id] = p.xpathCur
	p.xpathMemo[id] = 2 // assume no (also breaks fanout cycles defensively)
	if p.isOut[id] {
		p.xpathMemo[id] = 1
		return true
	}
	for _, fo := range p.c.Gates[id].Fanout {
		g := p.c.Gates[fo]
		if g.Type == netlist.DFF {
			continue
		}
		if p.gv[fo] != vX && p.fv[fo] != vX {
			continue
		}
		if p.xpath(fo) {
			p.xpathMemo[id] = 1
			return true
		}
	}
	return false
}

// backtrace walks an objective (line, value) backwards through X-valued
// gates to an unassigned primary input, returning the PI and the value to
// try. Input selection is guided by controllability: when one controlling
// input suffices, take the easiest; when all inputs are needed, take the
// hardest (so infeasible branches fail early).
func (p *podem) backtrace(line int, val byte) (int, byte, bool) {
	for {
		g := p.c.Gates[line]
		if g.Type == netlist.Input {
			if p.gv[line] != vX {
				return 0, 0, false
			}
			return line, val, true
		}

		var inVal byte
		var pickEasiest bool
		switch g.Type {
		case netlist.Not, netlist.Buf:
			if inverts(g.Type) {
				val = not3(val)
			}
			line = g.Fanin[0]
			continue
		case netlist.And, netlist.Nand:
			out := val
			if g.Type == netlist.Nand {
				out = not3(val)
			}
			if out == v1 {
				inVal, pickEasiest = v1, false // all inputs must be 1
			} else {
				inVal, pickEasiest = v0, true // one 0 suffices
			}
		case netlist.Or, netlist.Nor:
			out := val
			if g.Type == netlist.Nor {
				out = not3(val)
			}
			if out == v0 {
				inVal, pickEasiest = v0, false // all inputs must be 0
			} else {
				inVal, pickEasiest = v1, true // one 1 suffices
			}
		case netlist.Xor, netlist.Xnor:
			// Parity gates: any X input works; aim for its cheaper value.
			next, bestCost := -1, int(^uint(0)>>1)
			var nextVal byte
			for _, f := range g.Fanin {
				if p.gv[f] != vX {
					continue
				}
				c0, c1 := p.cc(f, v0), p.cc(f, v1)
				v, cost := byte(v0), c0
				if c1 < c0 {
					v, cost = v1, c1
				}
				if cost < bestCost {
					next, nextVal, bestCost = f, v, cost
				}
			}
			if next < 0 {
				return 0, 0, false
			}
			line, val = next, nextVal
			continue
		default:
			return 0, 0, false
		}

		next, bestCost := -1, 0
		if pickEasiest {
			bestCost = int(^uint(0) >> 1)
		} else {
			bestCost = -1
		}
		for _, f := range g.Fanin {
			if p.gv[f] != vX {
				continue
			}
			cost := p.cc(f, inVal)
			if (pickEasiest && cost < bestCost) || (!pickEasiest && cost > bestCost) {
				next, bestCost = f, cost
			}
		}
		if next < 0 {
			return 0, 0, false
		}
		line, val = next, inVal
	}
}

// fillPattern converts the current PI assignment into a pattern, filling
// unassigned inputs randomly.
func (p *podem) fillPattern(rng *rand.Rand) bitvec.Vector {
	out := bitvec.New(len(p.c.Inputs))
	for i, id := range p.c.Inputs {
		switch p.gv[id] {
		case v1:
			out.SetBit(i, true)
		case v0:
		default:
			if rng.Intn(2) == 1 {
				out.SetBit(i, true)
			}
		}
	}
	return out
}
