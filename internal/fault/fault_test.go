package fault

import (
	"testing"

	"repro/internal/netlist"
)

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseString(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return c
}

func TestAllCount(t *testing.T) {
	// One 2-input AND: 3 gates (a, b, z). Output faults: 3*2 = 6.
	// Pin faults: 2 pins * 2 = 4. Total 10.
	c := mustParse(t, "and1", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`)
	faults, err := All(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 10 {
		t.Errorf("All = %d faults, want 10", len(faults))
	}
}

func TestAllRejectsSequential(t *testing.T) {
	c := mustParse(t, "seq", `
INPUT(a)
OUTPUT(z)
z = AND(a, q)
q = DFF(z)
`)
	if _, err := All(c); err == nil {
		t.Fatal("expected error for sequential circuit")
	}
}

func TestCollapseSingleAnd(t *testing.T) {
	c := mustParse(t, "and1", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`)
	faults, _ := All(c)
	reps, stats, err := Collapse(c, faults)
	if err != nil {
		t.Fatal(err)
	}
	// Classic result for a fanout-free 2-input AND cone: 10 faults collapse
	// to 4 classes: {z sa0 ≡ z.in* sa0 ≡ a sa0 ≡ b sa0}, {z sa1},
	// {a sa1 ≡ z.in0 sa1}, {b sa1 ≡ z.in1 sa1}.
	if stats.Total != 10 {
		t.Errorf("Total = %d, want 10", stats.Total)
	}
	if len(reps) != 4 {
		t.Errorf("collapsed to %d classes, want 4: %v", len(reps), names(c, reps))
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// a -> NOT -> NOT -> z, fanout-free: the whole chain collapses to 2.
	c := mustParse(t, "chain", `
INPUT(a)
OUTPUT(z)
n = NOT(a)
z = NOT(n)
`)
	faults, _ := All(c)
	reps, _, err := Collapse(c, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Errorf("inverter chain collapsed to %d, want 2: %v", len(reps), names(c, reps))
	}
}

func TestCollapseFanoutKeepsBranches(t *testing.T) {
	// A stem with two branches: branch faults must NOT collapse with the
	// stem (classic reconvergence hazard).
	c := mustParse(t, "fan", `
INPUT(a)
INPUT(b)
OUTPUT(x)
OUTPUT(y)
x = AND(a, b)
y = OR(a, b)
`)
	faults, _ := All(c)
	reps, _, err := Collapse(c, faults)
	if err != nil {
		t.Fatal(err)
	}
	// a and b each drive 2 gates, so their branch faults stay distinct from
	// stem faults. Classes: for AND cone: {x sa0, x.in0 sa0, x.in1 sa0},
	// {x sa1}, {x.in0 sa1}, {x.in1 sa1}; for OR: {y sa1, y.in0 sa1, y.in1
	// sa1}, {y sa0}, {y.in0 sa0}, {y.in1 sa0}; stems: {a sa0}, {a sa1},
	// {b sa0}, {b sa1}. Total 12.
	if len(reps) != 12 {
		t.Errorf("collapsed to %d classes, want 12: %v", len(reps), names(c, reps))
	}
}

func TestCollapseXorKeepsAll(t *testing.T) {
	// XOR has no controlling value: only fanout-free branch merging applies.
	c := mustParse(t, "xor1", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = XOR(a, b)
`)
	faults, _ := All(c)
	reps, _, err := Collapse(c, faults)
	if err != nil {
		t.Fatal(err)
	}
	// 10 faults; fanout-free branches merge pin faults with stems a/b:
	// {a sa0 ≡ z.in0 sa0}, {a sa1 ≡ z.in1 sa1}... leaving z sa0, z sa1,
	// a sa0, a sa1, b sa0, b sa1 = 6.
	if len(reps) != 6 {
		t.Errorf("collapsed to %d classes, want 6: %v", len(reps), names(c, reps))
	}
}

func TestListMatchesAllPlusCollapse(t *testing.T) {
	c := mustParse(t, "and1", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`)
	reps, stats, err := List(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 10 || len(reps) != stats.Collapsed {
		t.Errorf("List stats inconsistent: %+v with %d reps", stats, len(reps))
	}
}

func TestFaultString(t *testing.T) {
	c := mustParse(t, "and1", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`)
	g, _ := c.GateByName("z")
	f := Fault{Gate: g.ID, Pin: 1, StuckAt1: true}
	if got := f.String(c); got != "z.in1(b) s-a-1" {
		t.Errorf("String = %q", got)
	}
	f2 := Fault{Gate: g.ID, Pin: OutputPin, StuckAt1: false}
	if got := f2.String(c); got != "z s-a-0" {
		t.Errorf("String = %q", got)
	}
}

func TestCollapseReducesLargerCircuit(t *testing.T) {
	const c17 = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`
	c := mustParse(t, "c17", c17)
	reps, stats, err := List(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Collapsed >= stats.Total {
		t.Errorf("collapsing did nothing: %+v", stats)
	}
	// The standard collapsed fault count for c17 is 22.
	if len(reps) != 22 {
		t.Errorf("c17 collapsed faults = %d, want 22: %v", len(reps), names(c, reps))
	}
}

func names(c *netlist.Circuit, fs []Fault) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String(c)
	}
	return out
}
