// Package fault models single stuck-at faults on gate-level circuits and
// performs structural equivalence collapsing.
//
// A fault site is either a gate's output line (the stem) or one of its input
// pins (a branch). The target fault list F of the reseeding flow is the
// collapsed list over the full-scan combinational view of the unit under
// test, matching the paper's "target list of stuck-at faults of the
// combinational circuit to be tested".
package fault

import (
	"fmt"

	"repro/internal/netlist"
)

// OutputPin marks a fault on a gate's output line rather than an input pin.
const OutputPin = -1

// Fault is a single stuck-at fault.
type Fault struct {
	Gate     int  // gate ID of the fault site
	Pin      int  // OutputPin for the output line, else fanin pin index
	StuckAt1 bool // true for stuck-at-1, false for stuck-at-0
}

// String renders the fault with signal names resolved against the circuit.
func (f Fault) String(c *netlist.Circuit) string {
	v := 0
	if f.StuckAt1 {
		v = 1
	}
	g := c.Gates[f.Gate]
	if f.Pin == OutputPin {
		return fmt.Sprintf("%s s-a-%d", g.Name, v)
	}
	return fmt.Sprintf("%s.in%d(%s) s-a-%d", g.Name, f.Pin, c.Gates[g.Fanin[f.Pin]].Name, v)
}

// All enumerates the complete uncollapsed fault list: two output-line faults
// per gate and two faults per gate input pin. The circuit must be finalized
// and combinational.
func All(c *netlist.Circuit) ([]Fault, error) {
	if !c.Finalized() {
		return nil, fmt.Errorf("fault: circuit %q not finalized", c.Name)
	}
	if !c.IsCombinational() {
		return nil, fmt.Errorf("fault: circuit %q is sequential; apply FullScan first", c.Name)
	}
	var out []Fault
	for _, g := range c.Gates {
		for _, sa1 := range []bool{false, true} {
			out = append(out, Fault{Gate: g.ID, Pin: OutputPin, StuckAt1: sa1})
		}
		for pin := range g.Fanin {
			for _, sa1 := range []bool{false, true} {
				out = append(out, Fault{Gate: g.ID, Pin: pin, StuckAt1: sa1})
			}
		}
	}
	return out, nil
}

// CollapseStats reports the effect of equivalence collapsing.
type CollapseStats struct {
	Total     int // faults before collapsing
	Collapsed int // representative faults after collapsing
	Classes   int // equivalence classes (== Collapsed)
	MaxClass  int // size of the largest class
}

// Collapse partitions the fault list into structural equivalence classes and
// returns one representative per class, in stable order. The classic rules
// are applied:
//
//   - controlling-value input faults are equivalent to the corresponding
//     output fault (AND: in s-a-0 ≡ out s-a-0; NAND: in s-a-0 ≡ out s-a-1;
//     OR: in s-a-1 ≡ out s-a-1; NOR: in s-a-1 ≡ out s-a-0),
//   - NOT/BUFF input faults are equivalent to the (inverted/equal) output
//     fault, and
//   - a branch fault on a fanout-free line is equivalent to the stem fault.
func Collapse(c *netlist.Circuit, faults []Fault) ([]Fault, CollapseStats, error) {
	if !c.IsCombinational() {
		return nil, CollapseStats{}, fmt.Errorf("fault: circuit %q is sequential", c.Name)
	}
	index := make(map[Fault]int, len(faults))
	for i, f := range faults {
		index[f] = i
	}
	uf := newUnionFind(len(faults))
	merge := func(a, b Fault) {
		ia, oka := index[a]
		ib, okb := index[b]
		if oka && okb {
			uf.union(ia, ib)
		}
	}

	for _, g := range c.Gates {
		switch g.Type {
		case netlist.And, netlist.Nand:
			outVal := g.Type == netlist.Nand // out stuck at 1 for NAND
			for pin := range g.Fanin {
				merge(Fault{g.ID, pin, false}, Fault{g.ID, OutputPin, outVal})
			}
		case netlist.Or, netlist.Nor:
			outVal := g.Type != netlist.Nor // out stuck at 1 for OR
			for pin := range g.Fanin {
				merge(Fault{g.ID, pin, true}, Fault{g.ID, OutputPin, outVal})
			}
		case netlist.Not:
			merge(Fault{g.ID, 0, false}, Fault{g.ID, OutputPin, true})
			merge(Fault{g.ID, 0, true}, Fault{g.ID, OutputPin, false})
		case netlist.Buf:
			merge(Fault{g.ID, 0, false}, Fault{g.ID, OutputPin, false})
			merge(Fault{g.ID, 0, true}, Fault{g.ID, OutputPin, true})
		}
		// Fanout-free branch ≡ stem: the input pin fault on the only
		// consumer of a line is equivalent to the driver's output fault.
		for pin, f := range g.Fanin {
			if len(c.Gates[f].Fanout) == 1 {
				merge(Fault{g.ID, pin, false}, Fault{f, OutputPin, false})
				merge(Fault{g.ID, pin, true}, Fault{f, OutputPin, true})
			}
		}
	}

	classSize := make(map[int]int)
	for i := range faults {
		classSize[uf.find(i)]++
	}
	var reps []Fault
	seen := make(map[int]bool)
	maxClass := 0
	for i, f := range faults {
		r := uf.find(i)
		if classSize[r] > maxClass {
			maxClass = classSize[r]
		}
		if !seen[r] {
			seen[r] = true
			reps = append(reps, f)
		}
	}
	stats := CollapseStats{
		Total:     len(faults),
		Collapsed: len(reps),
		Classes:   len(reps),
		MaxClass:  maxClass,
	}
	return reps, stats, nil
}

// List returns the collapsed fault list for the circuit: All followed by
// Collapse.
func List(c *netlist.Circuit) ([]Fault, CollapseStats, error) {
	all, err := All(c)
	if err != nil {
		return nil, CollapseStats{}, err
	}
	return Collapse(c, all)
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
