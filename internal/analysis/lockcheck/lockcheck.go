// Package lockcheck enforces `// guarded by <mu>` field annotations: a
// struct field documented as guarded by a sibling mutex field may only be
// accessed by functions that demonstrably hold that mutex.
//
// # Annotation grammar
//
// A field's doc comment or same-line comment containing
//
//	guarded by <fieldname>
//
// declares that every read or write of the field must happen under the
// named sibling field, which must be a sync.Mutex or sync.RWMutex (or a
// pointer to one). Example:
//
//	type table struct {
//		mu   sync.Mutex
//		jobs map[string]*job // guarded by mu
//	}
//
// # What counts as holding the lock
//
// The check is flow-insensitive and per-function. An access base.field is
// accepted when one of these holds:
//
//   - the enclosing function also contains base.mu.Lock() or
//     base.mu.RLock() with the same base expression;
//   - the enclosing function's name ends in "Locked" (the repository's
//     convention for helpers whose callers hold the lock);
//   - base is a local variable declared inside the function body — a
//     freshly constructed, not-yet-shared value.
//
// Anything else is flagged. Function literals are analyzed as their own
// functions: a closure must take the lock itself (or be acknowledged with
// a //reseedvet:ignore directive explaining why it is safe).
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/reseedvet"
)

var Analyzer = &reseedvet.Analyzer{
	Name: "lockcheck",
	Doc:  "enforces '// guarded by <mu>' field annotations against accesses outside the mutex",
	Run:  run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *reseedvet.Pass) error {
	guarded := collectAnnotations(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exempt := strings.HasSuffix(fn.Name.Name, "Locked")
			checkFunc(pass, guarded, fn.Body, exempt)
		}
	}
	return nil
}

// collectAnnotations parses every struct declaration's field comments for
// the grammar and resolves the annotated fields to their types.Object.
// It validates that the named mutex is a sibling field of a mutex type.
func collectAnnotations(pass *reseedvet.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]*ast.Field)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = f
				}
			}
			for _, f := range st.Fields.List {
				mu := annotation(f)
				if mu == "" {
					continue
				}
				muField, ok := fieldNames[mu]
				if !ok {
					pass.Reportf(f.Pos(), "guarded-by annotation names %q, which is not a field of this struct", mu)
					continue
				}
				if !isMutexField(pass, muField) {
					pass.Reportf(f.Pos(), "guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex", mu)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func annotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func isMutexField(pass *reseedvet.Pass, f *ast.Field) bool {
	tv, ok := pass.TypesInfo.Types[f.Type]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkFunc analyzes one function body. Nested function literals are
// peeled off and analyzed on their own: locks held by the enclosing
// function do not sanction a closure that may run on another goroutine.
func checkFunc(pass *reseedvet.Pass, guarded map[types.Object]string, body *ast.BlockStmt, exempt bool) {
	var lits []*ast.FuncLit
	held := make(map[string]bool) // "base.mu" expressions locked in this function

	// Pass 1: find nested literals and the Lock/RLock calls made at this
	// function's level.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			held[types.ExprString(muSel.X)+"."+muSel.Sel.Name] = true
		} else if id, ok := sel.X.(*ast.Ident); ok {
			// A mutex held directly (local or package-level `mu.Lock()`).
			held[id.Name] = true
		}
		return true
	})

	// Pass 2: check guarded-field accesses at this function's level.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		mu, isGuarded := guarded[obj]
		if !isGuarded || exempt {
			return true
		}
		base := types.ExprString(sel.X)
		if held[base+"."+mu] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && isFreshLocal(pass, id, body) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s.%s, but this function neither locks it nor is a *Locked helper",
			base, sel.Sel.Name, base, mu)
		return true
	})

	// Recurse into each literal as its own function.
	for _, lit := range lits {
		if !inLitOther(lit, lits) {
			checkFunc(pass, guarded, lit.Body, exempt)
		}
	}
}

// inLitOther reports whether lit is nested inside another literal in the
// list (it will be reached by the recursive checkFunc of its parent).
func inLitOther(lit *ast.FuncLit, all []*ast.FuncLit) bool {
	for _, other := range all {
		if other == lit {
			continue
		}
		if lit.Pos() > other.Pos() && lit.End() <= other.End() {
			return true
		}
	}
	return false
}

// isFreshLocal reports whether id names a variable declared inside this
// function body — a value constructed here and (absent aliasing) not yet
// shared with other goroutines, so pre-publication initialization without
// the lock is fine.
func isFreshLocal(pass *reseedvet.Pass, id *ast.Ident, body *ast.BlockStmt) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}
