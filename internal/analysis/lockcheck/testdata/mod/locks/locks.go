// Package locks is a lockcheck fixture (the analyzer is module-wide; no
// special import path needed).
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// inc holds the lock: fine.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// read does not: flagged.
func (c *counter) read() int {
	return c.n // want "guarded by c.mu"
}

// addLocked is exempt by the *Locked naming convention.
func (c *counter) addLocked(d int) {
	c.n += d
}

// fresh initializes a value that no other goroutine can see yet.
func fresh() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// closureBad: the goroutine body is its own function and holds nothing.
func closureBad(c *counter) {
	go func() {
		c.n++ // want "guarded by c.mu"
	}()
}

// closureGood: the closure takes the lock itself.
func closureGood(c *counter) {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// gauge exercises the RWMutex + RLock path.
type gauge struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (g *gauge) get() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// Malformed annotations are findings on the field itself.
type wrong struct {
	x int // guarded by missing — // want "not a field of this struct"
}

type notMutex struct {
	l int
	v int // guarded by l — // want "not a sync.Mutex"
}
