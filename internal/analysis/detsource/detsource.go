// Package detsource is the interprocedural determinism gate: it computes,
// for every function in the module, whether calling it can touch a source
// of nondeterminism, and forbids any such reach from the
// determinism-scoped packages (reseedvet.DeterminismScope) — the solver
// core whose outputs must be bit-identical across runs, Parallelism
// values and warm restarts.
//
// # Sources
//
//   - the wall clock: time.Now, time.Since, time.Until;
//   - unseeded randomness: any package-level function of math/rand,
//     math/rand/v2 or crypto/rand (methods on an explicitly seeded
//     *rand.Rand are deterministic and exempt — that is the sanctioned
//     idiom, see dmatrix and the corpus generator);
//   - the environment: os.Getenv, os.LookupEnv, os.Environ;
//   - map iteration order escaping a range loop, per maporder.Escapes —
//     the exact definition the maporder analyzer enforces in scope.
//
// # Reachability
//
// The analyzer exports a NondetFact for every function whose body touches
// a source directly or calls — across any number of package hops — a
// function that does. Fact files ride the `go vet` build graph
// (reseedvet's facts system), so when a determinism-scoped package calls
// a helper three modules deep that quietly reaches time.Now, the finding
// lands at the call site in the scoped package, naming the chain.
//
// Dynamic calls (function values, interface methods) are invisible to
// the call graph and pass silently; the standard library is trusted
// except for the hard-coded roots above.
//
// # Carve-outs
//
// Timing-only uses — the TimeBudget deadline in the exact solver, the
// wall-time fields of a benchmark harness — are acknowledged in place:
//
//	//reseedvet:ignore detsource -- wall-clock budget: truncation is recorded in Optimal
//
// An acknowledged source stops propagating: it neither reports nor
// poisons the facts of its callers. A map-range escape acknowledged for
// maporder is likewise benign here.
package detsource

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/maporder"
	"repro/internal/analysis/reseedvet"
)

// name is the analyzer identifier (a const so run can refer to it
// without an initialization cycle through Analyzer).
const name = "detsource"

var Analyzer = &reseedvet.Analyzer{
	Name:      name,
	Doc:       "forbids transitively reachable nondeterminism (clock, unseeded rand, env, map order) in determinism-scoped packages",
	Run:       run,
	FactTypes: []reseedvet.Fact{&NondetFact{}},
}

// A Source is one way a function touches nondeterminism.
type Source struct {
	Root string // the ultimate source, e.g. "time.Now" or "map iteration order escape"
	Via  string // call chain from the function to the root, "" when the touch is direct
}

// String renders the source for a diagnostic.
func (s Source) String() string {
	if s.Via == "" {
		return s.Root
	}
	return s.Root + " (via " + s.Via + ")"
}

// A NondetFact marks a function whose call can observe nondeterminism.
// Sources is deduplicated by root, sorted, and capped — it is evidence
// for a diagnostic, not an exhaustive enumeration.
type NondetFact struct {
	Sources []Source
}

func (*NondetFact) AFact() {}

// maxSources bounds the evidence carried per function.
const maxSources = 4

func run(pass *reseedvet.Pass) error {
	inScope := pass.PathHasSuffix(reseedvet.DeterminismScope...)

	// Collect the package's function declarations in file order, keyed by
	// their type objects for the local call graph.
	type funcInfo struct {
		obj     *types.Func
		decl    *ast.FuncDecl
		sources []Source      // accumulated, deduped by root
		locals  []*types.Func // same-package callees, in first-call order
		seen    map[*types.Func]bool
	}
	var funcs []*funcInfo
	byObj := make(map[*types.Func]*funcInfo)
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fn, seen: make(map[*types.Func]bool)}
			funcs = append(funcs, fi)
			byObj[obj] = fi
		}
	}

	addSource := func(fi *funcInfo, s Source) {
		for _, have := range fi.sources {
			if have.Root == s.Root {
				return
			}
		}
		if len(fi.sources) < maxSources {
			fi.sources = append(fi.sources, s)
		}
	}

	// Pass 1: direct sources, local call edges, and — in scope — the
	// diagnostics for direct root touches and for calls whose imported
	// fact says the callee reaches nondeterminism.
	for _, fi := range funcs {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass, call)
			if callee == nil {
				return true
			}
			if root := rootSource(callee); root != "" {
				if inScope {
					pass.Reportf(call.Pos(),
						"calls %s, a nondeterminism source, in a determinism-scoped package (timing-only uses: //reseedvet:ignore detsource -- <reason>)", root)
				}
				if !pass.Acknowledged(call.Pos(), name) {
					addSource(fi, Source{Root: root})
				}
				return true
			}
			if callee.Pkg() == pass.Pkg {
				if !fi.seen[callee] {
					fi.seen[callee] = true
					fi.locals = append(fi.locals, callee)
				}
				return true
			}
			var fact NondetFact
			if pass.ImportObjectFact(callee, &fact) && len(fact.Sources) > 0 {
				if inScope {
					pass.Reportf(call.Pos(),
						"call to %s reaches a nondeterminism source: %s; determinism-scoped packages must stay bit-identical across runs (//reseedvet:ignore detsource -- <reason> for timing-only uses)",
						displayName(callee), joinSources(fact.Sources))
				}
				if !pass.Acknowledged(call.Pos(), name) {
					for _, s := range fact.Sources {
						addSource(fi, inherit(s, displayName(callee)))
					}
				}
			}
			return true
		})

		// Map-range order escapes are sources too — per maporder's exact
		// definition. maporder itself reports them in its (wider) scope, so
		// here they only feed the fact; an escape acknowledged for either
		// analyzer is benign.
		for _, esc := range maporder.Escapes(pass, fi.decl.Body) {
			if !pass.Acknowledged(esc.Pos, name, "maporder") {
				addSource(fi, Source{Root: "map iteration order escape"})
			}
		}
	}

	// Package-level variable initializers can touch roots without any
	// enclosing function; in scope that is a finding in its own right
	// (it runs once per process, at an uncontrolled moment).
	if inScope {
		for _, file := range pass.SourceFiles() {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				ast.Inspect(gd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeOf(pass, call); callee != nil {
						if root := rootSource(callee); root != "" {
							pass.Reportf(call.Pos(),
								"package-level initializer calls %s, a nondeterminism source, in a determinism-scoped package", root)
						}
					}
					return true
				})
			}
		}
	}

	// Pass 2: propagate along local call edges to a fixed point (sources
	// only grow and are deduped by root, so this terminates; cycles just
	// converge). Declaration order outside, first-call order inside:
	// via-chains — and with them the fact bytes cmd/go caches — are
	// deterministic.
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			for _, callee := range fi.locals {
				ci := byObj[callee]
				if ci == nil {
					continue
				}
				for _, s := range ci.sources {
					before := len(fi.sources)
					addSource(fi, inherit(s, callee.Name()))
					if len(fi.sources) != before {
						changed = true
					}
				}
			}
		}
	}

	// Export the facts. Functions without a cross-package name (locals,
	// methods of unnamed types) drop theirs — nothing outside the package
	// can call them anyway.
	for _, fi := range funcs {
		if len(fi.sources) == 0 {
			continue
		}
		sort.Slice(fi.sources, func(i, j int) bool { return fi.sources[i].Root < fi.sources[j].Root })
		pass.ExportObjectFact(fi.obj, &NondetFact{Sources: fi.sources})
	}
	return nil
}

// inherit rebases a callee's source onto the caller's chain.
func inherit(s Source, step string) Source {
	via := step
	if s.Via != "" {
		via += " → " + s.Via
	}
	return Source{Root: s.Root, Via: via}
}

func joinSources(sources []Source) string {
	parts := make([]string, len(sources))
	for i, s := range sources {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// displayName renders a callee for messages and via-chains:
// "pkg.Func" or "pkg.Type.Method".
func displayName(fn *types.Func) string {
	if path := reseedvet.ObjectPath(fn); path != "" && fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + path
	}
	return fn.Name()
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes: a package-level function (possibly qualified), a method on a
// concrete receiver, or nil for builtins, conversions, and dynamic calls.
func calleeOf(pass *reseedvet.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified call pkg.F: no Selection entry, the Sel resolves
		// directly.
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootSource classifies a callee as a hard-coded nondeterminism root,
// returning its display name ("" otherwise). Only package-level
// functions count: methods of rand.Rand run a caller-seeded stream.
func rootSource(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	name := fn.Name()
	switch pkg.Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "time." + name
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + name
		}
	case "math/rand", "math/rand/v2":
		// Constructors build caller-seeded generators and are fine; every
		// other package-level function draws from the shared, unseeded
		// (or runtime-seeded) source.
		if !strings.HasPrefix(name, "New") {
			return fmt.Sprintf("unseeded %s.%s", pkg.Path(), name)
		}
	case "crypto/rand":
		return "crypto/rand." + name
	}
	return ""
}
