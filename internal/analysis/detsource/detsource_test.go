package detsource_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/vettest"
)

// TestDetsource vets the fixture module with only this analyzer enabled
// and matches the findings against the fixture's want comments. The
// fixture is deliberately multi-package: the wall-clock touch that
// `internal/setcover`'s findings name sits two import hops away, so the
// test only passes when NondetFacts flow through the vet build graph —
// dependency-ordered units, fact files and all.
func TestDetsource(t *testing.T) {
	vettest.Check(t, "testdata/mod", "detsource")
}

// TestDetsourceJSON pins the -json surface: the same run, machine-read.
// The scoped package must carry its six live findings plus the
// acknowledged deadline touch marked suppressed (suppressed findings are
// dropped from text output but kept, flagged, in JSON); the out-of-scope
// packages must report nothing at all.
func TestDetsourceJSON(t *testing.T) {
	units := vettest.JSON(t, "testdata/mod", "detsource")

	for _, pkg := range []string{"detfix/clock", "detfix/helpers"} {
		if n := len(units[pkg]); n != 0 {
			t.Errorf("%s: got %d findings, want 0 (out of scope)", pkg, n)
		}
	}

	var live, suppressed int
	for _, f := range units["detfix/internal/setcover"] {
		if f.Analyzer != "detsource" {
			t.Errorf("unexpected analyzer %q in finding %+v", f.Analyzer, f)
		}
		if f.Suppressed {
			suppressed++
			if !strings.Contains(f.Message, "time.Now") {
				t.Errorf("suppressed finding is not the deadline touch: %+v", f)
			}
		} else {
			live++
		}
	}
	if live != 6 || suppressed != 1 {
		t.Errorf("scoped package: got %d live + %d suppressed findings, want 6 + 1\nunits: %+v",
			live, suppressed, units)
	}
}
