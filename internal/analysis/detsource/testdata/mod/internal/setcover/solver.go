// The determinism-scoped package of the fixture (scoping is by import
// path suffix, so this "internal/setcover" stands in for the real one).
// Every reachable nondeterminism source below must be reported here, at
// the call site — including the ones whose roots live one and two
// packages away.
package setcover

import (
	"math/rand"
	"os"
	"time"

	"detfix/helpers"
)

var initStamp = time.Now().UnixNano() // want "package-level initializer calls time.Now, a nondeterminism source"

// Solve exercises every reporting path.
func Solve() int64 {
	direct := time.Now().UnixNano() // want "calls time.Now, a nondeterminism source, in a determinism-scoped package"
	viaHelpers := helpers.Tick()    // want "call to helpers.Tick reaches a nondeterminism source: time.Now (via clock.Stamp)"

	keys := helpers.Keys(map[string]int{"a": 1}) // want "call to helpers.Keys reaches a nondeterminism source: map iteration order escape"

	var g helpers.Gen
	drawn := g.Next() // want "call to helpers.Gen.Next reaches a nondeterminism source: unseeded math/rand.Int63"

	env := len(os.Getenv("RESEED_DEBUG")) // want "calls os.Getenv, a nondeterminism source"

	// The deterministic counterparts: no findings.
	okPure := helpers.Pure(1, 2)
	okSorted := helpers.SortedKeys(map[string]int{"b": 2})
	okSeeded := helpers.Seeded(42)
	okLocal := rand.New(rand.NewSource(7)).Int63()
	okFixed := deadline(time.Second)

	return direct + viaHelpers + int64(len(keys)) + drawn + int64(env) +
		int64(okPure) + int64(len(okSorted)) + okSeeded + okLocal + okFixed + initStamp
}

// deadline is the sanctioned timing-only carve-out: the acknowledged
// touch neither reports nor poisons this function's callers (Solve calls
// it and inherits nothing).
func deadline(d time.Duration) int64 {
	//reseedvet:ignore detsource -- fixture: wall-clock budget is timing-only, truncation is the caller's contract
	return time.Now().Add(d).UnixNano()
}
