// Package helpers sits between the scoped package and the clock: it
// never touches nondeterminism directly on some paths, inherits it
// through another package on others. Out of scope, so no findings here —
// only facts.
package helpers

import (
	"math/rand"
	"sort"

	"detfix/clock"
)

// Tick reaches the wall clock only through the clock package; its fact
// names the chain.
func Tick() int64 { return clock.Stamp().UnixNano() }

// Pure is deterministic.
func Pure(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Keys lets map iteration order escape into its return value — a
// nondeterminism source per maporder's definition, carried here as a
// fact because this package is outside maporder's scope.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned spelling: the sort launders the order.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Gen exercises the method-object fact path.
type Gen struct{ bias int64 }

// Next draws from math/rand's shared, unseeded stream.
func (g Gen) Next() int64 { return g.bias + rand.Int63() }

// Seeded draws from a caller-seeded stream — the sanctioned idiom, no
// fact.
func Seeded(seed int64) int64 { return rand.New(rand.NewSource(seed)).Int63() }
