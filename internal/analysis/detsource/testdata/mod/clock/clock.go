// Package clock is the deepest package of the fixture: the wall-clock
// touch lives here, two import hops from the determinism-scoped caller.
// Nothing is reported in this package — it is out of scope — but the
// NondetFact exported for Stamp is what carries the finding upward.
package clock

import "time"

// Stamp touches the wall clock directly.
func Stamp() time.Time { return time.Now() }

// Fixed is deterministic and must export no fact.
func Fixed() time.Time { return time.Unix(0, 0) }
