package reseedvet

// The `go vet -vettool` driver. cmd/go speaks a small protocol to vet
// tools:
//
//   - `tool -V=full` must print an identifying version line (cmd/go hashes
//     it into the build cache key);
//   - `tool -flags` must print a JSON array describing the tool's flags
//     (cmd/go uses it to validate user-supplied analyzer flags);
//   - `tool [flags] $WORK/.../vet.cfg` performs the analysis of one
//     package. The cfg file is JSON describing the package: its files,
//     its import map, the export-data files of its dependencies (which
//     cmd/go has already compiled), and — since the facts system — the
//     fact files (PackageVetx) those dependencies' vet runs produced.
//     The tool must write the file named by VetxOutput (this unit's
//     facts), print findings to stderr as "file:line:col: message", and
//     exit non-zero iff it found something.
//
// Dependencies not named on the vet command line arrive with
// VetxOnly=true: cmd/go wants only their facts. Fact-producing analyzers
// (FactTypes != nil) run on those units too, so facts flow bottom-up
// through the import graph; each unit's output re-exports everything it
// imported, which makes facts transitive even though PackageVetx lists
// direct imports only. Standard-library units are exempt — the analyzers
// trust std apart from the explicit nondeterminism roots they hard-code —
// and contribute an empty fact file without being typechecked.
//
// This is the same protocol golang.org/x/tools/go/analysis/unitchecker
// implements; reimplementing it here keeps the repository free of
// external module dependencies. Type information comes from the standard
// library's gc importer reading the export data cmd/go hands us, so the
// analysis is as precise as the compiler's own view of the package.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON cmd/go writes to vet.cfg (the fields this
// tool consumes; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ModulePath   string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// parseVetConfig decodes one vet.cfg and validates the invariants the
// rest of the driver leans on.
func parseVetConfig(data []byte) (*vetConfig, error) {
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config: %v", err)
	}
	if cfg.ImportPath == "" {
		return nil, fmt.Errorf("vet config names no ImportPath")
	}
	return &cfg, nil
}

// jsonFlag is one entry of the -flags handshake.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// flagsJSON renders the -flags response: one boolean toggle per analyzer
// plus the driver's own -json switch.
func flagsJSON(analyzers []*Analyzer) ([]byte, error) {
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit machine-readable JSON diagnostics on stdout (suppressed findings included)"}}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	return json.Marshal(flags)
}

// Main is the entry point of cmd/reseedvet: a multichecker over the given
// analyzers speaking the cmd/go vet protocol.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	registerFactTypes(analyzers)

	// Hand-rolled flag handling: cmd/go probes -V=full and -flags as the
	// sole argument, and otherwise passes (possibly) analyzer flags
	// followed by exactly one vet.cfg path.
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// The version line cmd/go hashes into its build cache key. It must
		// lead with os.Args[0] exactly as invoked (cmd/go compares the first
		// field against the -vettool path), and it embeds a digest of the
		// binary so rebuilding the tool invalidates cached vet results —
		// fact files included.
		f, err := os.Open(os.Args[0])
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		out, err := flagsJSON(analyzers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	// Analyzer enable/disable flags (-maporder=false etc.) and -json;
	// anything else before the cfg path is rejected.
	enabled := make(map[string]bool, len(analyzers))
	explicit := false
	jsonOut := false
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var cfgPath string
	for _, arg := range args {
		if !strings.HasPrefix(arg, "-") {
			if cfgPath != "" {
				log.Fatalf("unexpected argument %q (want exactly one vet.cfg)", arg)
			}
			cfgPath = arg
			continue
		}
		name, val, hasVal := strings.Cut(strings.TrimLeft(arg, "-"), "=")
		if name == "json" {
			jsonOut = !hasVal || val == "true" || val == "1"
			continue
		}
		if _, ok := enabled[name]; !ok {
			log.Fatalf("unknown flag %q", arg)
		}
		if !explicit {
			// First explicit selection: switch from "all on" to "only the
			// named ones", matching cmd/vet semantics.
			for n := range enabled {
				enabled[n] = false
			}
			explicit = true
		}
		enabled[name] = !hasVal || val == "true" || val == "1"
	}
	if cfgPath == "" || !strings.HasSuffix(cfgPath, ".cfg") {
		log.Fatalf(`invoking reseedvet directly is unsupported; run it via "go vet -vettool=$(which reseedvet) ./..."`)
	}

	var active []*Analyzer
	for _, a := range analyzers {
		if enabled[a.Name] {
			active = append(active, a)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	os.Exit(run(cfgPath, active, known, jsonOut))
}

func run(cfgPath string, analyzers []*Analyzer, known map[string]bool, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := parseVetConfig(data)
	if err != nil {
		log.Fatalf("vet config %s: %v", cfgPath, err)
	}

	// Standard-library fact-only units are not analyzed at all: std is
	// trusted except for the hard-coded nondeterminism roots, so its fact
	// file is legitimately empty and typechecking it would only burn time.
	if cfg.VetxOnly && cfg.ModulePath == "" {
		writeFacts(cfg.VetxOutput, nil)
		return 0
	}

	// In fact-only mode just the fact-producing analyzers run; diagnostics
	// are discarded (they will be recomputed — and reported — when the
	// package itself is vetted).
	if cfg.VetxOnly {
		var producers []*Analyzer
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				producers = append(producers, a)
			}
		}
		if len(producers) == 0 {
			writeFacts(cfg.VetxOutput, nil)
			return 0
		}
		analyzers = producers
	}

	// Load the dependencies' facts. A missing entry or an empty file is a
	// fact-free dependency; a corrupted file is a hard, explained error.
	facts := newFactSet()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		depPaths = append(depPaths, dep)
	}
	sort.Strings(depPaths)
	for _, dep := range depPaths {
		file := cfg.PackageVetx[dep]
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatalf("loading facts of dependency %s: %v", dep, err)
		}
		if err := facts.decodeInto(data, fmt.Sprintf("%s (dependency %s)", file, dep)); err != nil {
			log.Fatalf("loading facts of dependency %s: %v (re-run with a rebuilt reseedvet, or clear the go build cache)", dep, err)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	dirs := parseDirectives(fset, files)
	var diags []Diagnostic
	moduleDir := findModuleDir(cfg.Dir)
	activeNames := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		activeNames[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Dir:       cfg.Dir,
			Module:    cfg.ModulePath,
			ModuleDir: moduleDir,
			report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     facts,
			dirs:      dirs,
		}
		if err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	// Persist this unit's facts — everything imported plus everything the
	// analyzers exported — before any diagnostic handling, so dependents
	// can proceed even when this unit has findings.
	writeFacts(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		return 0
	}

	diags = applyDirectives(dirs, diags, activeNames, known)
	if jsonOut {
		return emitJSON(os.Stdout, fset, cfg.ImportPath, diags)
	}
	exit := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		exit = 1
	}
	return exit
}

// writeFacts writes the unit's fact file. cmd/go declared VetxOutput as
// this action's product and caches it, so the file must exist even when
// there are no facts to record.
func writeFacts(path string, facts *factSet) {
	if path == "" {
		return
	}
	var data []byte
	if facts != nil && len(facts.m) > 0 {
		var err error
		data, err = facts.encode()
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonUnit is the -json document one unit prints: the package and every
// diagnostic, suppressed ones included and marked.
type jsonUnit struct {
	Package  string           `json:"package"`
	Findings []jsonDiagnostic `json:"findings"`
}

// emitJSON prints the unit's diagnostics as one JSON document on w and
// returns the exit code (non-zero iff an unsuppressed finding remains,
// same contract as the text path).
func emitJSON(w io.Writer, fset *token.FileSet, pkgPath string, diags []Diagnostic) int {
	unit := jsonUnit{Package: pkgPath, Findings: []jsonDiagnostic{}}
	exit := 0
	for _, d := range diags {
		p := fset.Position(d.Pos)
		unit.Findings = append(unit.Findings, jsonDiagnostic{
			File:       p.Filename,
			Line:       p.Line,
			Col:        p.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
		if !d.Suppressed {
			exit = 1
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(unit); err != nil {
		log.Fatal(err)
	}
	return exit
}

// typecheck builds the package's type information from the export data
// cmd/go compiled for its dependencies.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path has already been mapped through ImportMap by the importer
		// function below.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// findModuleDir walks up from dir to the enclosing go.mod, so analyzers
// (wiretag's manifest) can locate module-rooted resources. Returns ""
// outside a module.
func findModuleDir(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
