package reseedvet

// The `go vet -vettool` driver. cmd/go speaks a small protocol to vet
// tools:
//
//   - `tool -V=full` must print an identifying version line (cmd/go hashes
//     it into the build cache key);
//   - `tool -flags` must print a JSON array describing the tool's flags
//     (cmd/go uses it to validate user-supplied analyzer flags);
//   - `tool [flags] $WORK/.../vet.cfg` performs the analysis of one
//     package. The cfg file is JSON describing the package: its files,
//     its import map, and the export-data files of its dependencies,
//     which cmd/go has already compiled. The tool must write the file
//     named by VetxOutput (the "facts" output; this tool records none),
//     print findings to stderr as "file:line:col: message", and exit
//     non-zero iff it found something.
//
// This is the same protocol golang.org/x/tools/go/analysis/unitchecker
// implements; reimplementing it here keeps the repository free of
// external module dependencies. Type information comes from the standard
// library's gc importer reading the export data cmd/go hands us, so the
// analysis is as precise as the compiler's own view of the package.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON cmd/go writes to vet.cfg (the fields this
// tool consumes; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ModulePath   string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/reseedvet: a multichecker over the given
// analyzers speaking the cmd/go vet protocol.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	// Hand-rolled flag handling: cmd/go probes -V=full and -flags as the
	// sole argument, and otherwise passes (possibly) analyzer flags
	// followed by exactly one vet.cfg path.
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// The version line cmd/go hashes into its build cache key. It must
		// lead with os.Args[0] exactly as invoked (cmd/go compares the first
		// field against the -vettool path), and it embeds a digest of the
		// binary so rebuilding the tool invalidates cached vet results.
		f, err := os.Open(os.Args[0])
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool-specific flags beyond the analyzer toggles.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var flags []jsonFlag
		for _, a := range analyzers {
			flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		out, err := json.Marshal(flags)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	// Analyzer enable/disable flags (-maporder=false etc.); anything else
	// before the cfg path is rejected.
	enabled := make(map[string]bool, len(analyzers))
	explicit := false
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var cfgPath string
	for _, arg := range args {
		if !strings.HasPrefix(arg, "-") {
			if cfgPath != "" {
				log.Fatalf("unexpected argument %q (want exactly one vet.cfg)", arg)
			}
			cfgPath = arg
			continue
		}
		name, val, hasVal := strings.Cut(strings.TrimLeft(arg, "-"), "=")
		if _, ok := enabled[name]; !ok {
			log.Fatalf("unknown flag %q", arg)
		}
		if !explicit {
			// First explicit selection: switch from "all on" to "only the
			// named ones", matching cmd/vet semantics.
			for n := range enabled {
				enabled[n] = false
			}
			explicit = true
		}
		enabled[name] = !hasVal || val == "true" || val == "1"
	}
	if cfgPath == "" || !strings.HasSuffix(cfgPath, ".cfg") {
		log.Fatalf(`invoking reseedvet directly is unsupported; run it via "go vet -vettool=$(which reseedvet) ./..."`)
	}

	var active []*Analyzer
	for _, a := range analyzers {
		if enabled[a.Name] {
			active = append(active, a)
		}
	}
	os.Exit(run(cfgPath, active))
}

func run(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgPath, err)
	}

	// cmd/go declared VetxOutput as this action's product and caches it;
	// the file must exist even though this tool records no facts and even
	// when the package is fact-only (a dependency of the packages named on
	// the command line).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("reseedvet: no facts\n"), 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	var diags []Diagnostic
	moduleDir := findModuleDir(cfg.Dir)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Dir:       cfg.Dir,
			Module:    cfg.ModulePath,
			ModuleDir: moduleDir,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	diags = applyDirectives(fset, files, diags)
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(a, b int) bool {
		pa, pb := fset.Position(diags[a].Pos), fset.Position(diags[b].Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		return diags[a].Analyzer < diags[b].Analyzer
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 1
}

// typecheck builds the package's type information from the export data
// cmd/go compiled for its dependencies.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path has already been mapped through ImportMap by the importer
		// function below.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// findModuleDir walks up from dir to the enclosing go.mod, so analyzers
// (wiretag's manifest) can locate module-rooted resources. Returns ""
// outside a module.
func findModuleDir(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// ignoreRE matches the suppression directive. The reason after "--" is
// mandatory: an acknowledged finding must say why it is acceptable.
var ignoreRE = regexp.MustCompile(`^//reseedvet:ignore\s+([a-z0-9_,]+)\s*(?:--\s*(.*))?$`)

// applyDirectives filters out diagnostics acknowledged by an
// `//reseedvet:ignore <analyzers> -- <reason>` comment on the same line
// or the line immediately above, and reports malformed directives.
func applyDirectives(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		name string
	}
	ignored := make(map[key]bool)
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					out = append(out, Diagnostic{
						Analyzer: "reseedvet",
						Pos:      c.Pos(),
						Message:  `ignore directive needs a justification: "//reseedvet:ignore <analyzer> -- <reason>"`,
					})
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					// The directive covers its own line and the next one,
					// so it can trail the flagged statement or precede it.
					ignored[key{pos.Filename, pos.Line, name}] = true
					ignored[key{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if ignored[key{pos.Filename, pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
