package reseedvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestApplyDirectives pins the suppression grammar without a vet run:
// which lines a directive covers, multi-analyzer lists, the
// same-analyzer-only rule, the mandatory reason, and the stale and
// unknown-name findings.
func TestApplyDirectives(t *testing.T) {
	const src = `package p

//reseedvet:ignore maporder -- covers this line and the next
var a int

//reseedvet:ignore maporder,ctxloop -- multi-analyzer list
var b int

//reseedvet:ignore errpolicy
var c int

var d int //reseedvet:ignore lockcheck -- trailing form

//reseedvet:ignore maporder -- stale: nothing on this or the next line
var e int

//reseedvet:ignore mapodrer -- typo in the analyzer name
var f int

//reseedvet:ignore wiretag -- names only an inactive analyzer; not condemned
var g int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	at := func(line int) token.Pos { return fset.File(f.Package).LineStart(line) }

	in := []Diagnostic{
		{Analyzer: "maporder", Pos: at(4), Message: "suppressed by line 3"},
		{Analyzer: "wiretag", Pos: at(4), Message: "different analyzer: survives"},
		{Analyzer: "maporder", Pos: at(7), Message: "suppressed by multi list"},
		{Analyzer: "ctxloop", Pos: at(7), Message: "suppressed by multi list"},
		{Analyzer: "errpolicy", Pos: at(10), Message: "reasonless directive suppresses nothing"},
		{Analyzer: "lockcheck", Pos: at(12), Message: "suppressed by trailing directive"},
	}
	active := map[string]bool{"maporder": true, "ctxloop": true, "errpolicy": true, "lockcheck": true}
	known := map[string]bool{"maporder": true, "ctxloop": true, "errpolicy": true, "lockcheck": true, "wiretag": true}

	dirs := parseDirectives(fset, []*ast.File{f})
	out := applyDirectives(dirs, in, active, known)

	got := make(map[string][]int)
	for _, d := range out {
		if d.Suppressed {
			continue
		}
		got[d.Analyzer] = append(got[d.Analyzer], fset.Position(d.Pos).Line)
	}
	want := map[string][]int{
		"wiretag":   {4},         // a directive only covers the analyzers it names
		"reseedvet": {9, 14, 17}, // reasonless, stale, and typo directives are findings
		"errpolicy": {10},        // ... and the reasonless one suppresses nothing
	}
	for name, lines := range want {
		if len(got[name]) != len(lines) {
			t.Errorf("%s diagnostics at %v, want %v", name, got[name], lines)
			continue
		}
		for i := range lines {
			if got[name][i] != lines[i] {
				t.Errorf("%s diagnostics at %v, want %v", name, got[name], lines)
				break
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected surviving %s diagnostics at %v", name, got[name])
		}
	}

	// The suppressed diagnostics are retained and marked, for -json.
	suppressed := 0
	for _, d := range out {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 4 {
		t.Errorf("suppressed diagnostics = %d, want 4", suppressed)
	}
}

// TestAcknowledgedKeepsDirectiveLive pins the fact-level carve-out
// contract: a directive consumed through Pass.Acknowledged (no
// positional diagnostic involved) is not reported stale.
func TestAcknowledgedKeepsDirectiveLive(t *testing.T) {
	const src = `package p

//reseedvet:ignore detsource -- timing-only: consumed by a fact carve-out
var a int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs := parseDirectives(fset, []*ast.File{f})
	pass := &Pass{dirs: dirs}

	pos := fset.File(f.Package).LineStart(4)
	if !pass.Acknowledged(pos, "detsource") {
		t.Fatal("Acknowledged = false for a covered line")
	}
	if pass.Acknowledged(pos, "maporder") {
		t.Fatal("Acknowledged = true for an analyzer the directive does not name")
	}

	active := map[string]bool{"detsource": true}
	known := map[string]bool{"detsource": true}
	out := applyDirectives(dirs, nil, active, known)
	if len(out) != 0 {
		t.Fatalf("acknowledged directive reported stale: %v", out)
	}
}
