package reseedvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestApplyDirectives pins the suppression grammar without a vet run:
// which lines a directive covers, multi-analyzer lists, the
// same-analyzer-only rule, and the mandatory reason.
func TestApplyDirectives(t *testing.T) {
	const src = `package p

//reseedvet:ignore maporder -- covers this line and the next
var a int

//reseedvet:ignore maporder,ctxloop -- multi-analyzer list
var b int

//reseedvet:ignore errpolicy
var c int

var d int //reseedvet:ignore lockcheck -- trailing form
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	at := func(line int) token.Pos { return fset.File(f.Package).LineStart(line) }

	in := []Diagnostic{
		{Analyzer: "maporder", Pos: at(4), Message: "suppressed by line 3"},
		{Analyzer: "wiretag", Pos: at(4), Message: "different analyzer: survives"},
		{Analyzer: "maporder", Pos: at(7), Message: "suppressed by multi list"},
		{Analyzer: "ctxloop", Pos: at(7), Message: "suppressed by multi list"},
		{Analyzer: "errpolicy", Pos: at(10), Message: "reasonless directive suppresses nothing"},
		{Analyzer: "lockcheck", Pos: at(12), Message: "suppressed by trailing directive"},
	}
	out := applyDirectives(fset, []*ast.File{f}, in)

	got := make(map[string][]int)
	for _, d := range out {
		got[d.Analyzer] = append(got[d.Analyzer], fset.Position(d.Pos).Line)
	}
	want := map[string][]int{
		"wiretag":   {4},  // a directive only covers the analyzers it names
		"reseedvet": {9},  // the reasonless directive is itself a finding
		"errpolicy": {10}, // ... and suppresses nothing
	}
	for name, lines := range want {
		if len(got[name]) != len(lines) || (len(lines) > 0 && got[name][0] != lines[0]) {
			t.Errorf("%s diagnostics at %v, want %v", name, got[name], lines)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected surviving %s diagnostics at %v", name, got[name])
		}
	}
}
