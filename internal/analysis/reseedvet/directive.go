package reseedvet

// Suppression directives. A diagnostic is acknowledged in place with
//
//	//reseedvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// on the flagged line or the line immediately above it. The grammar is
// deliberately strict — analyzers are lowercase identifiers, the reason
// is mandatory — and a comment that starts like a directive but fails to
// parse is itself a finding rather than silently inert, so a typo cannot
// quietly disable a suppression (or fail to).
//
// Directives are tracked: one that matches no diagnostic and no
// fact-level acknowledgment (Pass.Acknowledged) in a run where its
// analyzers are active is reported as stale, so carve-outs cannot
// outlive the code they excused.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment.
const directivePrefix = "//reseedvet:ignore"

// parseIgnoreDirective parses one comment's text. Returns:
//
//   - analyzers, reason, ok=true for a well-formed directive;
//   - ok=false, problem!="" for a comment that is recognizably a
//     reseedvet:ignore directive but malformed (the problem string says
//     how);
//   - ok=false, problem=="" for comments that are not directives at all.
func parseIgnoreDirective(text string) (analyzers []string, reason string, ok bool, problem string) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return nil, "", false, ""
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// "//reseedvet:ignoreX" — some other word; not ours.
		return nil, "", false, ""
	}
	if strings.ContainsAny(rest, "\n\r") {
		return nil, "", false, "directive must be a single line"
	}
	list, after, hasReason := strings.Cut(rest, "--")
	list = strings.TrimSpace(list)
	if list == "" {
		return nil, "", false, `missing analyzer list: "//reseedvet:ignore <analyzer> -- <reason>"`
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, "", false, "empty analyzer name in list"
		}
		for _, r := range name {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
				return nil, "", false, fmt.Sprintf("invalid analyzer name %q (want lowercase [a-z0-9_]+)", name)
			}
		}
		analyzers = append(analyzers, name)
	}
	reason = strings.TrimSpace(after)
	if !hasReason || reason == "" {
		return nil, "", false, `ignore directive needs a justification: "//reseedvet:ignore <analyzer> -- <reason>"`
	}
	return analyzers, reason, true, ""
}

// formatIgnoreDirective renders the canonical spelling of a directive;
// parseIgnoreDirective is its exact inverse for well-formed inputs (the
// fuzzer holds it to that).
func formatIgnoreDirective(analyzers []string, reason string) string {
	return directivePrefix + " " + strings.Join(analyzers, ",") + " -- " + reason
}

// A directiveEntry is one parsed suppression comment and its usage state.
type directiveEntry struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	reason    string
	used      bool
}

// A directiveSet indexes every directive of one unit by the lines it
// covers. A directive covers its own line and the next, so it can trail
// the flagged statement or precede it.
type directiveSet struct {
	fset      *token.FileSet
	entries   []*directiveEntry
	byKey     map[dirKey][]*directiveEntry
	malformed []Diagnostic
}

type dirKey struct {
	file string
	line int
	name string
}

// parseDirectives scans all comments of files (test files included — a
// directive is wherever the author put it) and builds the set.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	s := &directiveSet{fset: fset, byKey: make(map[dirKey][]*directiveEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzers, reason, ok, problem := parseIgnoreDirective(c.Text)
				if !ok {
					if problem != "" {
						s.malformed = append(s.malformed, Diagnostic{
							Analyzer: FrameworkName,
							Pos:      c.Pos(),
							Message:  problem,
						})
					}
					continue
				}
				pos := fset.Position(c.Pos())
				e := &directiveEntry{
					pos:       c.Pos(),
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: analyzers,
					reason:    reason,
				}
				s.entries = append(s.entries, e)
				for _, name := range analyzers {
					s.byKey[dirKey{pos.Filename, pos.Line, name}] = append(s.byKey[dirKey{pos.Filename, pos.Line, name}], e)
					s.byKey[dirKey{pos.Filename, pos.Line + 1, name}] = append(s.byKey[dirKey{pos.Filename, pos.Line + 1, name}], e)
				}
			}
		}
	}
	return s
}

// covered reports whether a directive naming analyzer covers pos, and
// marks every such directive used.
func (s *directiveSet) covered(pos token.Pos, analyzer string) bool {
	if s == nil {
		return false
	}
	p := s.fset.Position(pos)
	entries := s.byKey[dirKey{p.Filename, p.Line, analyzer}]
	for _, e := range entries {
		e.used = true
	}
	return len(entries) > 0
}

// stale reports directives that earned their keep in no way this run:
// every entry naming at least one active analyzer that suppressed no
// diagnostic and acknowledged no fact source. Directives naming only
// inactive analyzers are left alone — a single-analyzer run must not
// condemn the others' carve-outs — but a name no analyzer has ever had
// is reported regardless, because it can never become live.
func (s *directiveSet) stale(active, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		var unknown []string
		anyActive := false
		for _, name := range e.analyzers {
			if !known[name] && name != FrameworkName {
				unknown = append(unknown, name)
			} else if active[name] {
				anyActive = true
			}
		}
		if len(unknown) > 0 {
			out = append(out, Diagnostic{
				Analyzer: FrameworkName,
				Pos:      e.pos,
				Message:  fmt.Sprintf("ignore directive names unknown analyzer %s", strings.Join(unknown, ", ")),
			})
			continue
		}
		if anyActive && !e.used {
			out = append(out, Diagnostic{
				Analyzer: FrameworkName,
				Pos:      e.pos,
				Message: fmt.Sprintf("stale ignore directive: suppresses no %s finding on this or the next line; delete it or re-justify it",
					strings.Join(e.analyzers, "/")),
			})
		}
	}
	return out
}

// applyDirectives marks suppressed diagnostics (rather than dropping
// them, so -json can show the full picture), appends the set's malformed
// and stale findings, and returns everything position-sorted. active and
// known are analyzer-name sets: active drove this run; known is every
// analyzer the tool ships, for the typo check.
func applyDirectives(dirs *directiveSet, diags []Diagnostic, active, known map[string]bool) []Diagnostic {
	for i := range diags {
		if dirs.covered(diags[i].Pos, diags[i].Analyzer) {
			diags[i].Suppressed = true
		}
	}
	diags = append(diags, dirs.malformed...)
	diags = append(diags, dirs.stale(active, known)...)
	sort.SliceStable(diags, func(a, b int) bool {
		pa, pb := dirs.fset.Position(diags[a].Pos), dirs.fset.Position(diags[b].Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		return diags[a].Analyzer < diags[b].Analyzer
	})
	return diags
}
