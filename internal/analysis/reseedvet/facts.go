package reseedvet

// The facts system: the piece that makes analyzers interprocedural.
//
// An analyzer that declares FactTypes may attach serializable facts to
// objects (functions, fields, package-level vars) of the package it is
// analyzing. The unitchecker persists every unit's facts in the .vetx
// file cmd/go already demands (VetxOutput), and hands each unit the
// .vetx files of its direct imports (PackageVetx). Because a unit's
// output re-exports everything it imported, facts reach transitive
// dependents through direct-import hops alone — the same scheme
// golang.org/x/tools/go/analysis/unitchecker uses, rebuilt here on the
// standard library.
//
// Facts are addressed by (package path, object path, concrete fact
// type). Object paths are intra-package names that survive export data:
//
//	F           package-level func, var, const or type named F
//	T.M         method M with receiver (or pointer receiver) T
//	T.F         field F of the package-level named struct type T
//
// Anything without such a name — locals, fields of anonymous structs,
// results of instantiation — is not addressable and silently drops its
// facts; analyzers needing those keep them package-internal.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
)

// A Fact is an analyzer-defined datum attached to an object or package.
// Concrete fact types must be pointers to gob-encodable structs and are
// declared in the owning Analyzer's FactTypes so the driver can register
// them. The marker method keeps arbitrary types from being smuggled in.
type Fact interface{ AFact() }

// factsVersion leads every fact file; bumping it invalidates fact files
// written by an incompatible encoder. (The -V=full binary digest already
// invalidates cmd/go's cache across tool rebuilds; the header is the
// defense for files that outlive a cache, e.g. copies under test.)
const factsVersion = "reseedvet-facts-v1\n"

// factKey addresses one fact: Object "" means a package-level fact.
type factKey struct {
	pkg  string // package import path
	obj  string // object path within pkg, or ""
	kind string // concrete fact type name, e.g. "*detsource.NondetFact"
}

// factRecord is the serialized form of one fact.
type factRecord struct {
	PkgPath string
	Object  string
	Fact    Fact
}

// A factSet holds every fact visible to one unit: those decoded from the
// dependencies' fact files plus those the unit's own analyzers export.
type factSet struct {
	m map[factKey]Fact
}

func newFactSet() *factSet { return &factSet{m: make(map[factKey]Fact)} }

func kindOf(f Fact) string { return reflect.TypeOf(f).String() }

func (s *factSet) add(pkg, obj string, f Fact) {
	s.m[factKey{pkg, obj, kindOf(f)}] = f
}

// get copies the stored fact for (pkg, obj, type of ptr) into ptr and
// reports whether one existed. ptr must be a pointer to a concrete fact
// type, as in gob: the stored value is assigned through reflection.
func (s *factSet) get(pkg, obj string, ptr Fact) bool {
	stored, ok := s.m[factKey{pkg, obj, kindOf(ptr)}]
	if !ok {
		return false
	}
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		panic(fmt.Sprintf("reseedvet: fact target %T is not a non-nil pointer", ptr))
	}
	rv.Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// encode serializes the whole set deterministically: records are sorted
// by key so a byte-for-byte stable .vetx lands in cmd/go's content-
// addressed cache.
func (s *factSet) encode() ([]byte, error) {
	keys := make([]factKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		return a.kind < b.kind
	})
	var buf bytes.Buffer
	buf.WriteString(factsVersion)
	enc := gob.NewEncoder(&buf)
	for _, k := range keys {
		if err := enc.Encode(factRecord{PkgPath: k.pkg, Object: k.obj, Fact: s.m[k]}); err != nil {
			return nil, fmt.Errorf("encoding fact %s.%s (%s): %w", k.pkg, k.obj, k.kind, err)
		}
	}
	return buf.Bytes(), nil
}

// decodeInto merges the fact file contents in data into the set. An
// empty file is a valid empty set (standard-library units and fact-free
// dependencies write those). Anything else must carry the version header
// and a well-formed gob stream; a mismatch or decode failure is an error
// naming the source so the driver can fail with a diagnosis instead of a
// panic deep inside gob.
func (s *factSet) decodeInto(data []byte, source string) error {
	if len(data) == 0 {
		return nil
	}
	rest, ok := bytes.CutPrefix(data, []byte(factsVersion))
	if !ok {
		return fmt.Errorf("fact file %s: missing %q header (corrupted, or written by an incompatible reseedvet)", source, factsVersion[:len(factsVersion)-1])
	}
	dec := gob.NewDecoder(bytes.NewReader(rest))
	for {
		var rec factRecord
		err := dec.Decode(&rec)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("fact file %s: corrupted fact stream: %v", source, err)
		}
		if rec.Fact == nil {
			return fmt.Errorf("fact file %s: record for %s.%s carries no fact", source, rec.PkgPath, rec.Object)
		}
		s.add(rec.PkgPath, rec.Object, rec.Fact)
	}
}

// registerFactTypes makes the analyzers' fact types known to gob and
// rejects malformed declarations up front.
func registerFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Pointer {
				panic(fmt.Sprintf("analyzer %s: fact type %T must be a pointer", a.Name, f))
			}
			gob.Register(f)
		}
	}
}

// ObjectPath returns the stable intra-package path for obj ("" when obj
// is not addressable from another package; see the package comment for
// the grammar).
func ObjectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil {
			named := namedReceiver(recv.Type())
			if named == nil {
				return ""
			}
			return named.Obj().Name() + "." + o.Name()
		}
		if o.Parent() != o.Pkg().Scope() {
			return "" // a local function value, not addressable
		}
		return o.Name()
	case *types.Var:
		if o.IsField() {
			return fieldPath(o)
		}
		if o.Parent() == o.Pkg().Scope() {
			return o.Name()
		}
		return ""
	case *types.TypeName, *types.Const:
		if o.Parent() == o.Pkg().Scope() {
			return o.Name()
		}
		return ""
	}
	return ""
}

// namedReceiver unwraps a method receiver type to its named type.
func namedReceiver(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// fieldPath locates the package-level named struct type declaring field
// and returns "Type.Field". go/types gives fields no parent pointer, so
// this scans the declaring package's scope; nested anonymous structs are
// not addressable and return "".
func fieldPath(field *types.Var) string {
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return name + "." + field.Name()
			}
		}
	}
	return ""
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis. Facts on objects that are not addressable across
// packages are dropped silently: they would be unreachable anyway.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	if obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("reseedvet: analyzer %s exported a fact for %v, which is outside package %s",
			p.Analyzer.Name, obj, p.Pkg.Path()))
	}
	if path := ObjectPath(obj); path != "" {
		p.facts.add(p.Pkg.Path(), path, fact)
	}
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr
// and reports whether one exists. obj may belong to any package whose
// facts this unit can see — a dependency, or the package under analysis
// itself (facts exported earlier in the same run).
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path := ObjectPath(obj)
	if path == "" {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), path, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts != nil {
		p.facts.add(p.Pkg.Path(), "", fact)
	}
}

// ImportPackageFact copies pkg's fact of ptr's type into ptr and reports
// whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.get(pkg.Path(), "", ptr)
}
