package reseedvet

import (
	"encoding/gob"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// testFact is a minimal serializable fact for the round-trip tests.
type testFact struct{ Marks []string }

func (*testFact) AFact() {}

func init() { gob.Register(&testFact{}) }

// newSig builds a no-arg no-result signature, optionally with a receiver.
func newSig(recv *types.Var) *types.Signature {
	return types.NewSignatureType(recv, nil, nil, nil, nil, false)
}

// depPackage fabricates a dependency package with a function F, a method
// T.M, and a struct field T.N — one object of each addressable shape.
func depPackage() (pkg *types.Package, fn, meth, field types.Object) {
	pkg = types.NewPackage("example.com/dep", "dep")
	f := types.NewFunc(token.NoPos, pkg, "F", newSig(nil))
	pkg.Scope().Insert(f)

	fieldVar := types.NewField(token.NoPos, pkg, "N", types.Typ[types.Int64], false)
	st := types.NewStruct([]*types.Var{fieldVar}, nil)
	tn := types.NewTypeName(token.NoPos, pkg, "T", nil)
	named := types.NewNamed(tn, st, nil)
	pkg.Scope().Insert(tn)
	m := types.NewFunc(token.NoPos, pkg, "M", newSig(types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))))
	named.AddMethod(m)
	return pkg, f, m, fieldVar
}

func TestObjectPath(t *testing.T) {
	_, fn, meth, field := depPackage()
	for _, tc := range []struct {
		obj  types.Object
		want string
	}{
		{fn, "F"},
		{meth, "T.M"},
		{field, "T.N"},
	} {
		if got := ObjectPath(tc.obj); got != tc.want {
			t.Errorf("ObjectPath(%v) = %q, want %q", tc.obj, got, tc.want)
		}
	}
	// A local is not addressable.
	local := types.NewVar(token.NoPos, fn.Pkg(), "x", types.Typ[types.Int])
	if got := ObjectPath(local); got != "" {
		t.Errorf("ObjectPath(local) = %q, want \"\"", got)
	}
}

// TestFactsRoundTrip drives the full fact path: export through a Pass,
// encode, decode into a fresh set (a dependent unit), and import against
// the same type objects.
func TestFactsRoundTrip(t *testing.T) {
	pkg, fn, meth, field := depPackage()

	set := newFactSet()
	pass := &Pass{Pkg: pkg, facts: set}
	pass.ExportObjectFact(fn, &testFact{Marks: []string{"time.Now"}})
	pass.ExportObjectFact(meth, &testFact{Marks: []string{"math/rand.Intn"}})
	pass.ExportObjectFact(field, &testFact{Marks: []string{"atomic"}})
	pass.ExportPackageFact(&testFact{Marks: []string{"package-wide"}})

	data, err := set.encode()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic encoding: same set, same bytes.
	again, err := set.encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("fact encoding is not deterministic")
	}

	dep := newFactSet()
	if err := dep.decodeInto(data, "test.vetx"); err != nil {
		t.Fatal(err)
	}
	importer := &Pass{Pkg: types.NewPackage("example.com/main", "main"), facts: dep}
	var got testFact
	if !importer.ImportObjectFact(fn, &got) || got.Marks[0] != "time.Now" {
		t.Errorf("ImportObjectFact(F) = %v, want time.Now", got.Marks)
	}
	if !importer.ImportObjectFact(meth, &got) || got.Marks[0] != "math/rand.Intn" {
		t.Errorf("ImportObjectFact(T.M) = %v, want math/rand.Intn", got.Marks)
	}
	if !importer.ImportObjectFact(field, &got) || got.Marks[0] != "atomic" {
		t.Errorf("ImportObjectFact(T.N) = %v, want atomic", got.Marks)
	}
	if !importer.ImportPackageFact(pkg, &got) || got.Marks[0] != "package-wide" {
		t.Errorf("ImportPackageFact = %v, want package-wide", got.Marks)
	}
	if importer.ImportObjectFact(types.NewFunc(token.NoPos, pkg, "Absent", newSig(nil)), &got) {
		t.Error("ImportObjectFact reported a fact for an object that has none")
	}
}

// TestFactsDecodeDegradesClearly pins the corruption contract: an empty
// dependency is fine; garbage fails with an error naming the source, not
// a panic.
func TestFactsDecodeDegradesClearly(t *testing.T) {
	if err := newFactSet().decodeInto(nil, "empty.vetx"); err != nil {
		t.Fatalf("empty fact file: %v, want nil", err)
	}
	if err := newFactSet().decodeInto([]byte{}, "empty.vetx"); err != nil {
		t.Fatalf("zero-length fact file: %v, want nil", err)
	}

	for name, data := range map[string][]byte{
		"no-header":        []byte("reseedvet: no facts\n"), // pre-facts-era file contents
		"truncated-stream": append([]byte(factsVersion), 0x42, 0x17),
		"garbage":          {0xde, 0xad, 0xbe, 0xef},
	} {
		err := newFactSet().decodeInto(data, name+".vetx")
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), name+".vetx") {
			t.Errorf("%s: error %q does not name the source file", name, err)
		}
	}
}

// TestFlagsJSON pins the -flags handshake cmd/go validates analyzer
// flags against: every analyzer appears as a boolean toggle, plus -json.
func TestFlagsJSON(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "maporder", Doc: "a"},
		{Name: "detsource", Doc: "b"},
	}
	data, err := flagsJSON(analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Name":"json"`, `"Name":"maporder"`, `"Name":"detsource"`, `"Bool":true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("-flags output %s lacks %s", data, want)
		}
	}
}

// TestParseVetConfig pins the vet.cfg fields the driver consumes and the
// tolerance for fields it does not.
func TestParseVetConfig(t *testing.T) {
	cfg, err := parseVetConfig([]byte(`{
		"ID": "repro/internal/setcover",
		"ImportPath": "repro/internal/setcover",
		"Compiler": "gc",
		"GoFiles": ["a.go", "b.go"],
		"ModulePath": "repro",
		"PackageVetx": {"repro/internal/bitvec": "/cache/xx.vetx"},
		"VetxOutput": "/cache/out.vetx",
		"VetxOnly": false,
		"SomeFutureField": {"nested": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ImportPath != "repro/internal/setcover" || len(cfg.GoFiles) != 2 ||
		cfg.PackageVetx["repro/internal/bitvec"] != "/cache/xx.vetx" || cfg.VetxOutput != "/cache/out.vetx" {
		t.Errorf("parsed config %+v lost fields", cfg)
	}

	if _, err := parseVetConfig([]byte(`{"GoFiles": }`)); err == nil {
		t.Error("malformed JSON parsed without error")
	}
	if _, err := parseVetConfig([]byte(`{"Compiler": "gc"}`)); err == nil {
		t.Error("config without ImportPath parsed without error")
	}
}
