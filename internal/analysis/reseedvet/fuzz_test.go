package reseedvet

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseIgnoreDirective holds the suppression-directive parser to its
// contract on arbitrary comment text: never panic, never accept a
// malformed directive, and round-trip every accepted one through the
// canonical spelling. CI's fuzz-smoke job runs this next to
// FuzzCrossCheck; the seed corpus is the malformed shapes the grammar
// must reject with a diagnosis rather than ignore.
func FuzzParseIgnoreDirective(f *testing.F) {
	for _, seed := range []string{
		"//reseedvet:ignore maporder -- consumer treats this as a set",
		"//reseedvet:ignore maporder,ctxloop -- multi",
		"//reseedvet:ignore",
		"//reseedvet:ignore ",
		"//reseedvet:ignore -- reason without analyzers",
		"//reseedvet:ignore maporder",
		"//reseedvet:ignore maporder --",
		"//reseedvet:ignore maporder --   ",
		"//reseedvet:ignore maporder,, -- double comma",
		"//reseedvet:ignore ,maporder -- leading comma",
		"//reseedvet:ignore Maporder -- uppercase",
		"//reseedvet:ignore map order -- space in name",
		"//reseedvet:ignore map\torder -- tab in name",
		"//reseedvet:ignored maporder -- not our word",
		"//reseedvet:ignore maporder -- reason -- with separator again",
		"//reseedvet:ignore maporder \t--\t tabs around separator",
		"// reseedvet:ignore maporder -- leading space: plain comment",
		"//reseedvet:ignore\tmaporder -- tab after verb",
		"//reseedvet:ignore maporder -- line\nbreak",
		"//reseedvet:ignore мапордер -- non-ascii",
		"/*reseedvet:ignore maporder -- block comment*/",
		"//reseedvet:ignore _ -- underscore only",
		"//reseedvet:ignore 0 -- digit only",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzers, reason, ok, problem := parseIgnoreDirective(text)
		if !ok {
			if analyzers != nil || reason != "" {
				t.Fatalf("rejected input %q returned data: %v %q", text, analyzers, reason)
			}
			if problem != "" && !strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("non-directive %q reported malformed: %s", text, problem)
			}
			return
		}
		if problem != "" {
			t.Fatalf("accepted input %q still reported problem %q", text, problem)
		}
		if len(analyzers) == 0 {
			t.Fatalf("accepted input %q with no analyzers", text)
		}
		for _, name := range analyzers {
			if name == "" {
				t.Fatalf("accepted input %q with empty analyzer name", text)
			}
			for _, r := range name {
				if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
					t.Fatalf("accepted input %q with analyzer name %q outside [a-z0-9_]", text, name)
				}
			}
		}
		if reason == "" || reason != strings.TrimSpace(reason) {
			t.Fatalf("accepted input %q with untrimmed or empty reason %q", text, reason)
		}
		if !utf8.ValidString(text) {
			// The canonical respelling below only makes sense for valid
			// UTF-8; acceptance itself is already verified.
			return
		}
		// Round trip: the canonical spelling must parse back to the same
		// directive.
		canon := formatIgnoreDirective(analyzers, reason)
		a2, r2, ok2, _ := parseIgnoreDirective(canon)
		if !ok2 || r2 != reason || strings.Join(a2, ",") != strings.Join(analyzers, ",") {
			t.Fatalf("canonical form %q of %q did not round-trip: %v %q %v", canon, text, a2, r2, ok2)
		}
	})
}
