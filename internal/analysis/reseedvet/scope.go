package reseedvet

// The determinism-scoped package lists — the single source of truth the
// scoped analyzers and docs/DEVELOPING.md both point at. Packages are
// matched by import-path suffix (Pass.PathHasSuffix) so fixture modules
// with a different module name exercise the same scoping.

// DeterminismScope is the solver core: every package on the path from a
// Detection Matrix to a Solution, whose outputs must be bit-identical
// for every Parallelism value, across runs, and across warm restarts.
// detsource forbids any reachable nondeterminism source here (wall
// clock, unseeded randomness, environment); maporder forbids map
// iteration order escaping here.
var DeterminismScope = []string{
	"internal/setcover",
	"internal/setcover/corpus",
	"internal/fsim",
	"internal/dmatrix",
	"internal/core",
	"internal/engine",
	// The distributed fabric: ring placement, subtree leases and the
	// incumbent protocol must agree across processes, which is the same
	// contract as within one. (internal/cluster/loadgen is deliberately
	// outside — latency measurement is wall-clock by definition, and
	// suffix matching does not descend.)
	"internal/cluster",
}

// WireScope extends DeterminismScope with the serving tier: packages
// whose map iteration order could still leak into a wire response or a
// persisted artifact, even though they legitimately touch the clock
// (deadlines, metrics, modtimes). maporder patrols the union; detsource
// does not, so reseedd can keep timestamping responses.
var WireScope = append([]string{
	"internal/store",
	"internal/server",
}, DeterminismScope...)
