// Package reseedvet is the repository's static-analysis framework: a
// minimal, dependency-free analogue of golang.org/x/tools/go/analysis
// plus the `go vet -vettool` driver protocol, built entirely on the
// standard library (the build environment forbids external modules).
//
// The framework exists to enforce, mechanically, the invariants this
// codebase's value rests on and that the compiler cannot see:
//
//  1. determinism — solves are bit-identical for every Parallelism value,
//     so nothing order-dependent may leak out of a Go map iteration
//     (maporder);
//  2. cancellation — every potentially unbounded loop in a package whose
//     options carry a context.Context must be able to observe
//     cancellation (ctxloop);
//  3. locking — fields documented as `// guarded by <mu>` may only be
//     touched while that mutex is demonstrably held (lockcheck);
//  4. wire stability — JSON wire types carry explicit, lowercase,
//     collision-free tags and changing them requires touching a committed
//     manifest (wiretag);
//
// plus an error-handling policy: silently discarded errors need a
// same-line justification (errpolicy).
//
// # Suppressing a finding
//
// A diagnostic can be acknowledged in place with a directive comment on
// the flagged line or the line immediately above it:
//
//	//reseedvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// See docs/DEVELOPING.md for the full contract of each analyzer.
package reseedvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrameworkName is the pseudo-analyzer name under which the framework
// itself reports (malformed and stale suppression directives).
const FrameworkName = "reseedvet"

// An Analyzer is one named check. Run inspects the package in pass and
// reports findings through pass.Reportf; returning an error aborts the
// whole vet invocation (reserved for internal failures, not findings).
type Analyzer struct {
	Name string // short lowercase identifier, used in directives and output
	Doc  string // one-paragraph description
	Run  func(pass *Pass) error

	// FactTypes declares the pointer types of the facts this analyzer
	// exports or imports (see facts.go). A non-empty list also makes the
	// analyzer run on fact-only dependency units, so its facts exist
	// before any dependent package is analyzed.
	FactTypes []Fact
}

// A Pass describes one analyzed package: its syntax, its type
// information, and where it lives.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // all compiled files, tests included
	Pkg       *types.Package
	TypesInfo *types.Info
	Dir       string // package source directory
	Module    string // module path, "" when unknown
	ModuleDir string // module root directory (go.mod location), "" when unknown

	report func(Diagnostic)
	facts  *factSet
	dirs   *directiveSet
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Pos
	Message    string
	Suppressed bool // acknowledged by an ignore directive (kept for -json)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Acknowledged reports whether an ignore directive naming any of the
// given analyzers covers pos, and marks it used. It is how an analyzer
// consults carve-outs during computation rather than reporting: a
// source acknowledged here stops contributing to exported facts, and the
// directive is counted as live for the stale-suppression check even when
// it suppressed no positional diagnostic in this unit.
func (p *Pass) Acknowledged(pos token.Pos, analyzers ...string) bool {
	ok := false
	for _, name := range analyzers {
		if p.dirs.covered(pos, name) {
			ok = true
		}
	}
	return ok
}

// SourceFiles returns the package's non-test files: the analyzers enforce
// production invariants and deliberately leave _test.go files alone.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// PathHasSuffix reports whether the analyzed package's import path ends in
// one of the given slash-separated suffixes (e.g. "internal/setcover").
// Matching by suffix rather than full path keeps analyzers testable from
// fixture modules with a different module name.
func (p *Pass) PathHasSuffix(suffixes ...string) bool {
	path := p.Pkg.Path()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// ErrorType is the universe error type, for result-signature checks.
var ErrorType = types.Universe.Lookup("error").Type()

// HasErrorResult reports whether t — a call's result type, which may be
// a single type or a tuple — contains an error.
func HasErrorResult(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), ErrorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, ErrorType)
}

// IsContextType reports whether t is context.Context (possibly through
// named aliases).
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
