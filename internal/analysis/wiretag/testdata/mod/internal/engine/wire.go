// Package engine is a wiretag fixture; its suffix places it in the wire
// scope and the fixture module carries its own manifest. The stale
// manifest entry (Response.Gone) is reported at the package clause.
package engine // want "manifest entry fixture/internal/engine.Response.Gone has no corresponding wire field"

// Request matches the manifest except for Count, whose manifest entry
// says "tally".
type Request struct {
	Name  string `json:"name"`
	Count int    `json:"count"` // want "drifted from the manifest"
}

type Response struct {
	Name    string `json:"name"`
	Extra   string `json:"extra"` // want "not in the manifest"
	Missing int    // want "needs an explicit json tag"
	BadCase string `json:"BadCase"` // want "not lowercase"
	Dup     string `json:"name"`    // want "collides with"
	hidden  int    `json:"hidden"`  // want "ignored by encoding/json"
	Skip    string `json:"-"`
}

// NotWire has no json tags anywhere, so it is not a wire type and its
// untagged exported fields are fine.
type NotWire struct {
	A int
	B string
}
