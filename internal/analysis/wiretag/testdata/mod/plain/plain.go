// Package plain is outside the wire scope: tagged or not, its structs
// are no concern of wiretag's.
package plain

type Loose struct {
	Name    string `json:"Whatever"`
	Untaged int
}
