// Package wiretag enforces the stability of the repository's JSON wire
// formats: the Request/Response pairs of the engine, the server's HTTP
// bodies, and the store's on-disk records.
//
// A struct in a wire-scoped package counts as a wire type as soon as any
// of its fields carries a `json` tag. For wire types the analyzer
// requires:
//
//   - every exported field has an explicit json tag (no reliance on Go
//     field-name defaulting, which turns a rename into a silent wire
//     break);
//   - tag names are lowercase snake_case ([a-z][a-z0-9_]*, or "-" to
//     exclude a field);
//   - no two fields of one struct share a tag name;
//   - a json tag never sits on an unexported field (encoding/json ignores
//     it — the tag is dead and misleading).
//
// # The manifest
//
// Named wire structs are additionally pinned by a committed manifest,
// internal/analysis/wiretag/manifest.json, mapping
// "<pkgpath>.<Type>.<Field>" to the tag name. Adding, renaming or
// removing a wire field without the matching manifest edit is a finding,
// so every deliberate wire-format change is visible in review as a
// manifest diff. The manifest is looked up relative to the analyzed
// package's module root; fixture modules without one skip the manifest
// checks.
package wiretag

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/reseedvet"
)

// scope lists the wire-bearing packages by import-path suffix.
var scope = []string{
	"internal/engine",
	"internal/server",
	"internal/store",
	"internal/core",
	"internal/setcover",
	"internal/setcover/corpus",
	"internal/atpg",
	"internal/cluster",
}

// manifestRelPath is where the manifest lives relative to the module
// root.
const manifestRelPath = "internal/analysis/wiretag/manifest.json"

var Analyzer = &reseedvet.Analyzer{
	Name: "wiretag",
	Doc:  "enforces explicit lowercase collision-free json tags on wire types, pinned by a committed manifest",
	Run:  run,
}

var tagNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *reseedvet.Pass) error {
	if !pass.PathHasSuffix(scope...) {
		return nil
	}
	manifest, haveManifest := loadManifest(pass)
	seen := make(map[string]bool) // manifest keys present in the code

	for _, file := range pass.SourceFiles() {
		// Map struct type nodes to their declared names.
		names := make(map[*ast.StructType]string)
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				names[st] = ts.Name.Name
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			checkStruct(pass, st, names[st], manifest, haveManifest, seen)
			return true
		})
	}

	if haveManifest {
		// Reverse direction: every manifest entry for this package must
		// still exist in the code, so removing or renaming a wire field
		// forces a manifest edit.
		prefix := pass.Pkg.Path() + "."
		var stale []string
		for key := range manifest {
			if strings.HasPrefix(key, prefix) && !seen[key] {
				stale = append(stale, key)
			}
		}
		sort.Strings(stale)
		for _, key := range stale {
			pass.Reportf(pass.Files[0].Package,
				"manifest entry %s has no corresponding wire field; removing or renaming a wire field requires updating %s", key, manifestRelPath)
		}
	}
	return nil
}

func checkStruct(pass *reseedvet.Pass, st *ast.StructType, name string,
	manifest map[string]string, haveManifest bool, seen map[string]bool) {

	type taggedField struct {
		field   *ast.Field
		fname   string
		tag     string // full json tag value
		tagName string // first comma-separated element
		pos     token.Pos
	}
	var fields []taggedField
	anyTag := false
	for _, f := range st.Fields.List {
		tag := jsonTag(f)
		if tag != "" {
			anyTag = true
		}
		fnames := make([]string, 0, 1)
		for _, n := range f.Names {
			fnames = append(fnames, n.Name)
		}
		if len(f.Names) == 0 {
			// Embedded field: its name is the (possibly qualified) type
			// name's base.
			fnames = append(fnames, embeddedName(f.Type))
		}
		for _, fn := range fnames {
			tagName, _, _ := strings.Cut(tag, ",")
			fields = append(fields, taggedField{f, fn, tag, tagName, f.Pos()})
		}
	}
	if !anyTag {
		return // not a wire type
	}

	used := make(map[string]token.Pos)
	for _, tf := range fields {
		exported := ast.IsExported(tf.fname)
		switch {
		case tf.tag == "" && exported:
			pass.Reportf(tf.pos,
				"exported field %s of wire struct %s needs an explicit json tag", tf.fname, displayName(name))
			continue
		case tf.tag != "" && !exported:
			pass.Reportf(tf.pos,
				"json tag %q on unexported field %s is ignored by encoding/json; remove it or export the field", tf.tagName, tf.fname)
			continue
		case tf.tag == "":
			continue
		}
		if tf.tagName != "-" && !tagNameRE.MatchString(tf.tagName) {
			pass.Reportf(tf.pos,
				"json tag %q on %s.%s is not lowercase snake_case ([a-z][a-z0-9_]*)", tf.tagName, displayName(name), tf.fname)
		}
		if tf.tagName != "-" && tf.tagName != "" {
			if prev, dup := used[tf.tagName]; dup {
				pass.Reportf(tf.pos,
					"json tag %q on %s.%s collides with the field at %s", tf.tagName, displayName(name), tf.fname,
					pass.Fset.Position(prev))
			}
			used[tf.tagName] = tf.pos
		}
		if haveManifest && name != "" && tf.tagName != "-" && tf.tagName != "" {
			key := fmt.Sprintf("%s.%s.%s", pass.Pkg.Path(), name, tf.fname)
			seen[key] = true
			want, ok := manifest[key]
			switch {
			case !ok:
				pass.Reportf(tf.pos,
					"wire field %s (json tag %q) is not in the manifest; deliberate wire changes must update %s", key, tf.tagName, manifestRelPath)
			case want != tf.tagName:
				pass.Reportf(tf.pos,
					"json tag %q on %s drifted from the manifest (%q); changing a wire name must update %s", tf.tagName, key, want, manifestRelPath)
			}
		}
	}
}

func displayName(name string) string {
	if name == "" {
		return "(anonymous)"
	}
	return name
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

func jsonTag(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	raw := strings.Trim(f.Tag.Value, "`")
	return reflect.StructTag(raw).Get("json")
}

func loadManifest(pass *reseedvet.Pass) (map[string]string, bool) {
	if pass.ModuleDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(pass.ModuleDir, filepath.FromSlash(manifestRelPath)))
	if err != nil {
		return nil, false
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		pass.Reportf(pass.Files[0].Package, "unreadable wiretag manifest %s: %v", manifestRelPath, err)
		return nil, false
	}
	return m, true
}
