// Package ctxflow enforces context threading below the API surface: a
// function that receives a context.Context must flow that context — not a
// fresh one — into the work it does.
//
// Two findings:
//
//   - a ctx-receiving function calls context.Background or context.TODO.
//     Entry points (main, tests, handlers at the top of the stack) create
//     root contexts; anything already handed a context that conjures a
//     second one breaks the cancellation chain the caller set up — the
//     solve deadline and drain paths in internal/server rely on that
//     chain reaching the engine.
//
//   - a ctx-receiving function never touches its context parameter at
//     all, yet calls something that accepts one — either directly (a
//     context.Context parameter) or through an options struct with a
//     context-typed field. The parameter suggests cancellation flows
//     through; it silently doesn't.
//
// The repository's sanctioned nil-normalization idiom is exempt: a
// function whose body nil-checks a context-typed expression, e.g.
//
//	if ctx == nil { ctx = context.Background() }
//
// or the return form (orBackground in the root package), is allowed its
// Background call — substituting Background for an absent context is
// exactly what those helpers are for.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/reseedvet"
)

var Analyzer = &reseedvet.Analyzer{
	Name: "ctxflow",
	Doc:  "a function receiving a context.Context must thread it, not conjure context.Background/TODO or drop it",
	Run:  run,
}

func run(pass *reseedvet.Pass) error {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fn)
			if len(ctxParams) == 0 {
				continue
			}
			checkFunc(pass, fn, ctxParams)
		}
	}
	return nil
}

// contextParams returns the type objects of fn's context.Context
// parameters. Blank parameters have no object and are excluded — writing
// `_ context.Context` is an explicit, visible drop.
func contextParams(pass *reseedvet.Pass, fn *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && obj != nil &&
				reseedvet.IsContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func checkFunc(pass *reseedvet.Pass, fn *ast.FuncDecl, ctxParams []*types.Var) {
	normalizer := nilChecksContext(pass, fn.Body)

	used := make(map[*types.Var]bool)
	var capableWitness *types.Func
	conjured := false

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
				for _, p := range ctxParams {
					if obj == p {
						used[p] = true
					}
				}
			}
		case *ast.CallExpr:
			callee := staticCallee(pass, n)
			if callee == nil {
				return true
			}
			if isContextRoot(callee) {
				if !normalizer {
					conjured = true
					pass.Reportf(n.Pos(),
						"%s already receives a context but calls context.%s; thread the context parameter instead (nil-normalization with an explicit nil check is exempt)",
						fn.Name.Name, callee.Name())
				}
				return true
			}
			if capableWitness == nil && acceptsContext(callee) {
				capableWitness = callee
			}
		}
		return true
	})

	// A conjure finding already explains why the parameter never flows;
	// piling the dropped-parameter finding on top would say it twice.
	if capableWitness == nil || conjured {
		return
	}
	for _, p := range ctxParams {
		if !used[p] {
			pass.Reportf(p.Pos(),
				"context parameter %s is never threaded: %s calls %s, which accepts a context",
				p.Name(), fn.Name.Name, qualifiedName(capableWitness))
		}
	}
}

// isContextRoot reports whether fn is context.Background or context.TODO.
func isContextRoot(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// acceptsContext reports whether calling fn can carry a context: a
// context.Context parameter, or a parameter of (pointer-to-)struct type
// with a context-typed field — the options-struct idiom Engine.Solve and
// Run use.
func acceptsContext(fn *types.Func) bool {
	// The context package's own constructors (WithCancel, WithTimeout…)
	// take a parent context by definition; using one with a non-parameter
	// parent is the Background/TODO finding's job, not this one's.
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "context" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if reseedvet.IsContextType(t) {
			return true
		}
		if st, ok := derefStruct(t); ok && hasContextField(st) {
			return true
		}
	}
	return false
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func hasContextField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if reseedvet.IsContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// nilChecksContext reports whether body contains an if condition comparing
// a context-typed expression against nil — the marker of the sanctioned
// normalization idiom, in either its assignment or return form.
func nilChecksContext(pass *reseedvet.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
			bin, ok := c.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				if id, ok := side.(*ast.Ident); ok && id.Name == "nil" {
					other := bin.Y
					if side == bin.Y {
						other = bin.X
					}
					if tv, ok := pass.TypesInfo.Types[other]; ok && tv.Type != nil &&
						reseedvet.IsContextType(tv.Type) {
						found = true
					}
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// staticCallee resolves a call to the *types.Func it statically invokes,
// nil for builtins, conversions and dynamic calls.
func staticCallee(pass *reseedvet.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func qualifiedName(fn *types.Func) string {
	if path := reseedvet.ObjectPath(fn); path != "" && fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + path
	}
	return fn.Name()
}
