// Package caller exercises both ctxflow findings and every sanctioned
// shape that must stay clean.
package caller

import (
	"context"

	"ctxfix/work"
)

// saved stands in for a context stored at construction time (the
// server's baseCtx pattern); package-level initializers are entry-point
// territory and not ctxflow's concern.
var saved = context.Background()

// Conjure receives a context and conjures another: the caller's deadline
// never reaches work.Do.
func Conjure(ctx context.Context, n int) int {
	return work.Do(context.Background(), n) // want "Conjure already receives a context but calls context.Background"
}

// ConjureTODO is the same break with the other root constructor.
func ConjureTODO(ctx context.Context, n int) int {
	return work.Do(context.TODO(), n) // want "ConjureTODO already receives a context but calls context.TODO"
}

// Dropped never touches ctx while handing work.Run an options struct that
// could have carried it.
func Dropped(ctx context.Context, n int) int { // want "context parameter ctx is never threaded: Dropped calls work.Run, which accepts a context"
	return work.Run(work.Opts{N: n})
}

// DroppedDirect never touches ctx while calling a callee with a direct
// context parameter (fed from storage instead).
func DroppedDirect(ctx context.Context, n int) int { // want "context parameter ctx is never threaded: DroppedDirect calls work.Do, which accepts a context"
	return work.Do(saved, n)
}

// Threaded is the contract kept: the parameter flows into the callee.
func Threaded(ctx context.Context, n int) int {
	return work.Do(ctx, n)
}

// ThreadedOpts flows the parameter through the options struct.
func ThreadedOpts(ctx context.Context, n int) int {
	return work.Run(work.Opts{Context: ctx, N: n})
}

// Normalize is the sanctioned assignment-form nil normalization.
func Normalize(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return work.Do(ctx, n)
}

// OrBackground is the sanctioned return-form nil normalization.
func OrBackground(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	return context.Background()
}

// Blank declares the drop in the signature itself — visible, so allowed.
func Blank(_ context.Context, n int) int {
	return work.Run(work.Opts{N: n})
}

// Captured threads the context through a closure; capture counts as use.
func Captured(ctx context.Context, n int) int {
	f := func() int { return work.Do(ctx, n) }
	return f()
}

// NoCapableCallee drops its context but calls nothing that could carry
// one; pointless, not a broken chain.
func NoCapableCallee(ctx context.Context, n int) int {
	return work.Pure(n)
}
