// Package work holds the context-capable callees; the caller package
// imports it so capability detection runs off export data, the way it
// does across real package boundaries.
package work

import "context"

// Opts is the options-struct idiom: a context rides in a field.
type Opts struct {
	Context context.Context
	N       int
}

// Do accepts a context directly.
func Do(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
		return n
	}
}

// Run accepts a context through its options struct.
func Run(o Opts) int {
	if o.Context != nil {
		return Do(o.Context, o.N)
	}
	return o.N
}

// Pure accepts no context at all.
func Pure(n int) int { return n * 2 }
