module ctxfix

go 1.24
