package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/vettest"
)

// TestCtxflow vets the fixture module with only this analyzer enabled and
// matches findings against want comments. The capable callees live in a
// separate package so acceptsContext runs off export data, as it does in
// the real tree.
func TestCtxflow(t *testing.T) {
	vettest.Check(t, "testdata/mod", "ctxflow")
}
