// Package ctxloop enforces the cancellation contract in packages whose
// option structs carry a context.Context: every potentially infinite
// `for` loop must be able to stop.
//
// The repository's anytime contract (PR 4) threads a Context through
// every long-running phase, with ctxutil.Err as the one shared
// cancellation probe. A `for` loop with no condition can spin forever, so
// inside a context-carrying package it must contain at least one of
//
//   - a context check: a call to ctxutil.Err / ctxutil.Done, or .Err() /
//     .Done() on a context.Context value (selects over ctx.Done() count
//     through the latter);
//   - a return statement, handing the decision back to the caller; or
//   - a break out of the loop.
//
// Loops with none of these never observe cancellation and are flagged.
// Conditional loops (`for cond {}`, `for i := ...`) and range loops are
// presumed bounded by their condition and left alone.
package ctxloop

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/reseedvet"
)

var Analyzer = &reseedvet.Analyzer{
	Name: "ctxloop",
	Doc:  "flags condition-less for loops that cannot observe cancellation in context-carrying packages",
	Run:  run,
}

func run(pass *reseedvet.Pass) error {
	if !carriesContext(pass) {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !canStop(pass, loop) {
				pass.Reportf(loop.For,
					"infinite for loop has no context check, return, or break; long phases must honor cancellation (see ctxutil.Err)")
			}
			return true
		})
	}
	return nil
}

// carriesContext reports whether the package declares a struct type with
// a context.Context field — the repository's Options convention, which is
// what puts a package under the cancellation contract.
func carriesContext(pass *reseedvet.Pass) bool {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if reseedvet.IsContextType(st.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// canStop reports whether the loop body contains an escape hatch: a
// context check, a return from the enclosing function, or a break that
// leaves this loop. Function literals inside the body are separate
// functions — their returns and loops don't count.
func canStop(pass *reseedvet.Pass, loop *ast.ForStmt) bool {
	found := false
	// depth tracks enclosing break targets between loop and the node, so
	// an unlabeled break deeper inside a nested for/select/switch is not
	// mistaken for an exit of this loop.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if found || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return // a different function
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			if n.Tok.String() == "break" && (n.Label != nil || depth == 0) {
				// An unlabeled break at depth 0 exits this loop; a labeled
				// break is conservatively assumed to (labels target
				// enclosing statements, and this loop encloses the break).
				found = true
			}
			return
		case *ast.CallExpr:
			if isContextCheck(pass, n) {
				found = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			depth++
		}
		for _, c := range children(n) {
			walk(c, depth)
		}
	}
	for _, stmt := range loop.Body.List {
		walk(stmt, 0)
	}
	return found
}

// children lists n's immediate AST children (ast.Inspect can't carry the
// per-node depth state this walk needs).
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// isContextCheck recognizes ctxutil.Err(ctx), ctxutil.Done(ctx), and
// ctx.Err() / ctx.Done() on a context.Context value.
func isContextCheck(pass *reseedvet.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Err" && name != "Done" {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return pkg.Imported().Name() == "ctxutil"
		}
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
		return reseedvet.IsContextType(tv.Type)
	}
	return false
}
