// Package solver is a ctxloop fixture: Options carries a context.Context,
// which puts the whole package under the cancellation contract.
package solver

import "context"

type Options struct {
	Ctx context.Context
}

// Spin can never observe cancellation.
func Spin() int {
	n := 0
	for { // want "infinite for loop"
		n++
	}
}

// Pump is fine: the select checks Done (and can return).
func Pump(o Options, ch chan int) int {
	total := 0
	for {
		select {
		case <-o.Ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// Drain is fine: it can break out of the loop.
func Drain(ch chan int) int {
	n := 0
	for {
		if len(ch) == 0 {
			break
		}
		n += <-ch
	}
	return n
}

// Stuck is flagged: the break leaves the inner range loop, not the
// infinite outer one.
func Stuck(mm [][]int) {
	for { // want "infinite for loop"
		for _, r := range mm {
			if len(r) == 0 {
				break
			}
		}
	}
}

// Escape is flagged: the return belongs to the function literal, not the
// loop's function.
func Escape() {
	for { // want "infinite for loop"
		f := func() int { return 1 }
		f()
	}
}
