// Package nocontext declares no context-carrying struct, so it is outside
// the cancellation contract and its spin loop is not ctxloop's business.
package nocontext

func Spin() int {
	n := 0
	for {
		n++
	}
}
