// Package maporder flags Go map iterations whose order can leak into an
// observable result in the determinism-scoped packages.
//
// The repository guarantees that solves are bit-identical for every
// Parallelism value and across runs; Go randomizes map iteration order,
// so a `range` over a map may only feed order-insensitive consumption
// (counting, set membership) or a collection that is sorted afterwards.
// The analyzer flags a map-range loop when its body
//
//   - appends to a slice declared outside the loop that is not passed to
//     a sort.* / slices.Sort* call later in the same function,
//   - returns from the enclosing function (which element won the race to
//     be inspected first is nondeterministic), or
//   - writes output (fmt.Fprint*, io.WriteString, or a Write*/Encode
//     method call).
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/reseedvet"
)

var Analyzer = &reseedvet.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration order leaking into results in determinism-scoped packages",
	Run:  run,
}

// The analyzer patrols reseedvet.WireScope — the solver core plus the
// serving tier, everything between a netlist and a wire Response whose
// output must be bit-identical across runs and worker counts.
func run(pass *reseedvet.Pass) error {
	if !pass.PathHasSuffix(reseedvet.WireScope...) {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, esc := range Escapes(pass, fn.Body) {
				pass.Reportf(esc.Pos, "%s", esc.Message)
			}
		}
	}
	return nil
}

// An Escape is one point where map iteration order leaks out of a range
// loop into an observable result.
type Escape struct {
	Pos     token.Pos // the range statement
	Message string
}

// Escapes inspects one function body and returns every map-range order
// escape in it (function literals are part of their enclosing
// declaration's body and are visited with it; a sort in the surrounding
// function still sanctions an append inside a literal). Exported because
// detsource treats an order escape as a nondeterminism source when it
// computes reachability facts — per exactly this definition.
func Escapes(pass *reseedvet.Pass, body *ast.BlockStmt) []Escape {
	var out []Escape
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, mapRangeEscapes(pass, body, rng)...)
		return true
	})
	return out
}

func mapRangeEscapes(pass *reseedvet.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) []Escape {
	// Returns inside a function literal leave that literal, not the loop.
	var litRanges [][2]token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	// Collect the loop body's order-sensitive sinks.
	var out []Escape
	var appendTargets []*ast.Ident // outer-declared vars extended by append
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !inLit(n.Pos()) {
				out = append(out, Escape{rng.Range,
					"map iteration order decides this loop's return; iterate a sorted view instead"})
			}
			return true
		case *ast.CallExpr:
			if name, ok := outputCall(pass, n); ok {
				out = append(out, Escape{rng.Range,
					fmt.Sprintf("map iteration order reaches the output written by %s; iterate a sorted view instead", name)})
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && declaredOutside(pass, id, rng) {
					appendTargets = append(appendTargets, id)
				}
			}
		}
		return true
	})
	for _, id := range appendTargets {
		if sortedAfter(pass, funcBody, rng, id) {
			continue
		}
		out = append(out, Escape{rng.Range,
			fmt.Sprintf("map iteration order leaks into %q via append with no subsequent sort", id.Name)})
	}
	return out
}

// outputCall reports whether call writes output: fmt.Fprint*,
// io.WriteString, or a method named Write*/Encode.
func outputCall(pass *reseedvet.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkg, ok := sel.X.(*ast.Ident); ok {
		if obj, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); isPkg {
			switch {
			case obj.Imported().Path() == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
				return "fmt." + name, true
			case obj.Imported().Path() == "io" && name == "WriteString":
				return "io.WriteString", true
			}
			return "", false
		}
	}
	// A method call on some value: Write, WriteString, WriteByte,
	// WriteRune, or Encode.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return "(method) " + name, true
	}
	return "", false
}

func isBuiltinAppend(pass *reseedvet.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether id's object was declared outside the
// range statement (so appends accumulate across iterations).
func declaredOutside(pass *reseedvet.Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether, after the loop, the function passes id's
// object to a sort.* or slices.* call — the sanctioned way to consume an
// order-accumulating append.
func sortedAfter(pass *reseedvet.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, id *ast.Ident) bool {
	target := pass.TypesInfo.Uses[id]
	if target == nil {
		return false
	}
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if aid, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[aid] == target {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				break
			}
		}
		return true
	})
	return sorted
}
