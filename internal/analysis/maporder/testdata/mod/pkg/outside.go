// Package pkg sits outside the determinism scope: the same patterns that
// are findings in internal/setcover pass untouched here.
package pkg

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
