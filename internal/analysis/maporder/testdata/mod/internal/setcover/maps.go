// Package setcover is a maporder fixture: its import path suffix places
// it in the determinism scope.
package setcover

import (
	"fmt"
	"io"
	"sort"
)

// Keys leaks map order through an unsorted append.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "via append with no subsequent sort"
		keys = append(keys, k)
	}
	return keys
}

// First leaks map order through a return inside the loop.
func First(m map[string]int) string {
	for k := range m { // want "decides this loop's return"
		return k
	}
	return ""
}

// Dump leaks map order into written output.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want "output written by fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// SortedKeys is the sanctioned form: the append is sorted afterwards.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Total consumes the map order-insensitively.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Acknowledged shows the suppression directive on the line above.
func Acknowledged(m map[string]int) []string {
	var keys []string
	//reseedvet:ignore maporder -- fixture: consumer treats this as a set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// LitReturn returns from a function literal, not from the loop — the
// loop itself only counts elements.
func LitReturn(m map[string]int) int {
	n := 0
	for k := range m {
		f := func() int { return len(k) }
		n += f()
	}
	return n
}
