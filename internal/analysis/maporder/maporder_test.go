package maporder_test

import (
	"testing"

	"repro/internal/analysis/vettest"
)

// TestMaporder vets the fixture module with only this analyzer enabled and
// matches the findings against the fixture's want comments, positive and
// negative cases both.
func TestMaporder(t *testing.T) {
	vettest.Check(t, "testdata/mod", "maporder")
}
