// Package vettest runs the real reseedvet binary over fixture modules —
// the analyzer tests exercise the exact `go vet -vettool` path CI uses,
// export data and all, rather than a synthetic loader.
//
// A fixture is a self-contained module under an analyzer's testdata
// directory (cmd/go ignores testdata, so the repository's own builds and
// vet runs never descend into one). Fixture files mark expected findings
// with trailing comments:
//
//	for k := range m { // want "iteration order"
//
// Check runs one analyzer over the fixture and demands an exact match
// both ways: every want comment must be hit by a finding on its line,
// and every finding must be claimed by a want comment.
package vettest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	toolPath  string
	buildErr  error
)

// Tool builds cmd/reseedvet once per test process and returns its path.
func Tool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		toolPath = filepath.Join(os.TempDir(), fmt.Sprintf("reseedvet-test-%d", os.Getpid()))
		cmd := exec.Command("go", "build", "-o", toolPath, "./cmd/reseedvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building reseedvet: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return toolPath
}

// Root returns the repository's module root (the directory of go.mod).
func Root(t *testing.T) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// moduleRoot walks up from the working directory (the test's package dir)
// to the repository's go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// A JSONFinding is one entry of reseedvet's -json output.
type JSONFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

type jsonUnit struct {
	Package  string        `json:"package"`
	Findings []JSONFinding `json:"findings"`
}

// JSON vets the fixture module at dir with -json and only the named
// analyzer, returning every finding — suppressed ones included, the way
// machine consumers see them — keyed by package path.
func JSON(t *testing.T, dir, analyzer string) map[string][]JSONFinding {
	t.Helper()
	tool := Tool(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+tool, "-json", "-"+analyzer, "./...")
	cmd.Dir = abs
	out, _ := cmd.CombinedOutput() // non-zero exit just means findings

	// cmd/go interleaves its own "# pkg" headers with the tool's JSON
	// units; strip them and decode the remaining object stream.
	var clean []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		clean = append(clean, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(clean, "\n")))
	units := make(map[string][]JSONFinding)
	for dec.More() {
		var u jsonUnit
		if err := dec.Decode(&u); err != nil {
			t.Fatalf("decoding -json output: %v\nfull output:\n%s", err, out)
		}
		units[u.Package] = u.Findings
	}
	return units
}

// findingRE matches one reseedvet output line:
// path/file.go:12:3: message [analyzer]
var findingRE = regexp.MustCompile(`^(.*\.go):(\d+):\d+: (.*) \[([a-z]+)\]$`)

type finding struct {
	file    string // basename
	line    string
	message string
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// Check vets the fixture module at dir (relative to the calling test's
// package directory) with only the named analyzer enabled, then matches
// the findings against the fixture's want comments.
func Check(t *testing.T, dir, analyzer string) {
	t.Helper()
	tool := Tool(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+tool, "-"+analyzer, "./...")
	cmd.Dir = abs
	out, _ := cmd.CombinedOutput() // non-zero exit just means findings

	var got []finding
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := findingRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable vet output line: %q\nfull output:\n%s", line, out)
		}
		got = append(got, finding{file: filepath.Base(m[1]), line: m[2], message: m[3]})
	}

	type wantKey struct{ file, line string }
	wants := make(map[wantKey]string)
	err = filepath.Walk(abs, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants[wantKey{filepath.Base(path), fmt.Sprint(i + 1)}] = m[1]
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	matched := make(map[wantKey]bool)
	for _, f := range got {
		k := wantKey{f.file, f.line}
		want, ok := wants[k]
		if !ok {
			t.Errorf("unexpected finding at %s:%s: %s", f.file, f.line, f.message)
			continue
		}
		if !strings.Contains(f.message, want) {
			t.Errorf("finding at %s:%s = %q; want substring %q", f.file, f.line, f.message, want)
		}
		matched[k] = true
	}
	for k, want := range wants {
		if !matched[k] {
			t.Errorf("no finding at %s:%s (want substring %q)\nvet output:\n%s", k.file, k.line, want, out)
		}
	}
}
