package atomicguard_test

import (
	"testing"

	"repro/internal/analysis/vettest"
)

// TestAtomicguard vets the fixture module with only this analyzer enabled
// and matches findings against want comments. The reader package's
// findings depend entirely on AtomicFacts exported by the state package;
// the fixture also carries a stale suppression to pin the framework's
// stale-directive finding end to end.
func TestAtomicguard(t *testing.T) {
	vettest.Check(t, "testdata/mod", "atomicguard")
}
