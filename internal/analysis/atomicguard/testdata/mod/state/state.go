// Package state owns the atomically-managed objects; the facts exported
// here are what convict the plain accesses in the reader package.
package state

import "sync/atomic"

// Counter is the shared-incumbent shape: Hits is published through
// sync/atomic, Name is plain data set at construction.
type Counter struct {
	Hits int64
	Name string
}

// Inc is the atomic writer; its call is the recorded witness.
func (c *Counter) Inc() { atomic.AddInt64(&c.Hits, 1) }

// Get is the sanctioned reader.
func (c *Counter) Get() int64 { return atomic.LoadInt64(&c.Hits) }

// Total is a package-level variable managed the same way.
var Total int64

// BumpTotal guards Total.
func BumpTotal() { atomic.AddInt64(&Total, 1) }

// Sloppy mixes in a plain read right next to the atomic users.
func Sloppy(c *Counter) int64 {
	return c.Hits // want "state.Counter.Hits is managed with sync/atomic (state.go:15); this plain access can race"
}

// Fresh constructs a Counter; composite-literal keys are construction,
// not shared access, and stay clean.
func Fresh() *Counter { return &Counter{Hits: 0, Name: "fresh"} }
