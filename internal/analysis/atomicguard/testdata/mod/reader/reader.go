// Package reader never calls sync/atomic on Counter.Hits itself — every
// finding here exists only because state's AtomicFacts crossed the
// package boundary.
package reader

import (
	"sync/atomic"

	"atomfix/state"
)

// Peek is the cross-package race: a plain read of a field the owning
// package only ever touches atomically.
func Peek(c *state.Counter) int64 {
	return c.Hits // want "state.Counter.Hits is managed with sync/atomic (state.go:15); this plain access can race"
}

// PeekTotal does the same to the package-level variable.
func PeekTotal() int64 {
	return state.Total // want "state.Total is managed with sync/atomic"
}

// Proper goes through the owner's accessor.
func Proper(c *state.Counter) int64 { return c.Get() }

// peeks is this package's own atomically-managed variable; consistently
// atomic use is clean no matter which package guards the object.
var peeks int64

// ProperAtomic counts atomically and reads through the owner's accessor.
func ProperAtomic(c *state.Counter) int64 {
	atomic.AddInt64(&peeks, 1)
	return c.Get()
}

// Label reads the unguarded field; only Hits is convicted, not the struct.
func Label(c *state.Counter) string { return c.Name }

// Quiet carries a suppression left over from a refactor that removed the
// plain access it justified; the directive itself is now the finding.
//
//reseedvet:ignore atomicguard -- leftover: the plain read moved behind Get() // want "stale ignore directive: suppresses no atomicguard finding"
func Quiet(c *state.Counter) int64 { return c.Get() }
