// Package atomicguard enforces all-or-nothing atomicity: once any code
// updates a field or package-level variable through sync/atomic, every
// access to it must go through sync/atomic. A plain read races with the
// atomic writers (the race detector only catches it when a test happens
// to interleave); a plain write can be lost entirely. The shared-incumbent
// pattern in internal/setcover's portfolio engine is exactly the shape
// this guards — workers publishing through atomic operations while
// another goroutine is tempted to read the field directly.
//
// The analyzer records an AtomicFact for each field of a package-level
// struct type and each package-level variable whose address is taken in a
// sync/atomic call, so mixed access is caught across package boundaries:
// the package that wraps a counter in atomic.AddInt64 and the package
// that reads it plainly are usually not the same one.
//
// Accesses inside sync/atomic call arguments are the sanctioned form.
// Composite-literal keys (Counter{hits: 0}) are exempt: construction
// happens before the value is shared. Aliased access through a stored
// pointer is invisible, as everywhere in reseedvet.
//
// The repository's own code prefers the typed atomics (atomic.Int64,
// atomic.Bool) whose method set makes mixed access inexpressible; this
// analyzer exists for the addressed-integer style that predates them and
// still appears in third-party-shaped code.
package atomicguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis/reseedvet"
)

var Analyzer = &reseedvet.Analyzer{
	Name:      "atomicguard",
	Doc:       "a field or variable ever accessed through sync/atomic must never be read or written plainly",
	Run:       run,
	FactTypes: []reseedvet.Fact{&AtomicFact{}},
}

// An AtomicFact marks an object (struct field or package-level var) as
// managed through sync/atomic. Witness names one atomic access, for the
// diagnostic at the mixed-access site.
type AtomicFact struct {
	Witness string // "file.go:line" of one sync/atomic access
}

func (*AtomicFact) AFact() {}

type posRange struct{ lo, hi token.Pos }

func run(pass *reseedvet.Pass) error {
	// Pass 1 over every function body and initializer: find sync/atomic
	// calls, record their extents (accesses inside them are sanctioned)
	// and resolve their &x.f / &v arguments to the guarded objects.
	var sanctioned []posRange
	guarded := make(map[types.Object]string) // object -> witness
	skipKeys := make(map[*ast.Ident]bool)    // composite-literal field keys

	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							skipKeys[id] = true
						}
					}
				}
			case *ast.CallExpr:
				if !isAtomicCall(pass, n) {
					return true
				}
				sanctioned = append(sanctioned, posRange{n.Pos(), n.End()})
				for _, arg := range n.Args {
					unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || unary.Op != token.AND {
						continue
					}
					if obj := guardableObject(pass, unary.X); obj != nil {
						if _, have := guarded[obj]; !have {
							p := pass.Fset.Position(n.Pos())
							guarded[obj] = fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
						}
					}
				}
			}
			return true
		})
	}

	// Export facts for this package's own objects (facts attach where the
	// object is declared; atomic use of a foreign object still guards it
	// within this unit through the local map). Sorted for a deterministic
	// walk, though the fact encoder sorts again itself.
	objs := make([]types.Object, 0, len(guarded))
	for obj := range guarded {
		if obj.Pkg() == pass.Pkg {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool {
		return reseedvet.ObjectPath(objs[i]) < reseedvet.ObjectPath(objs[j])
	})
	for _, obj := range objs {
		pass.ExportObjectFact(obj, &AtomicFact{Witness: guarded[obj]})
	}

	inSanctioned := func(pos token.Pos) bool {
		for _, r := range sanctioned {
			if r.lo <= pos && pos < r.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: every remaining use of a guarded object — local or imported
	// fact — is a mixed access.
	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || skipKeys[id] {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || inSanctioned(id.Pos()) {
				return true
			}
			witness, hit := guarded[obj]
			if !hit && obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
				var fact AtomicFact
				if pass.ImportObjectFact(obj, &fact) {
					witness, hit = fact.Witness, true
				}
			}
			if hit {
				pass.Reportf(id.Pos(),
					"%s is managed with sync/atomic (%s); this plain access can race with the atomic operations — use the matching sync/atomic call",
					displayName(obj), witness)
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call statically invokes a package-level
// function of sync/atomic.
func isAtomicCall(pass *reseedvet.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// guardableObject resolves the operand of an & argument to a guardable
// object: a struct field, or a package-level variable. Locals are skipped
// — they cannot be reached from another package and mixing on a local is
// visible within one screen of code.
func guardableObject(pass *reseedvet.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Qualified pkg.Var: Sel resolves directly.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// displayName renders the guarded object for a diagnostic:
// "pkg.Type.Field" or "pkg.Var".
func displayName(obj types.Object) string {
	if path := reseedvet.ObjectPath(obj); path != "" && obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + path
	}
	return obj.Name()
}
