package errpolicy_test

import (
	"testing"

	"repro/internal/analysis/vettest"
)

// TestErrpolicy vets the fixture module with only this analyzer enabled and
// matches the findings against the fixture's want comments, positive and
// negative cases both.
func TestErrpolicy(t *testing.T) {
	vettest.Check(t, "testdata/mod", "errpolicy")
}
