// Package errpolicy enforces the repository's error-discard policy: a
// blank-assigned error is only acceptable when the same line says why.
//
// An assignment that throws away a call's error result —
//
//	_ = enc.Encode(v)
//	_, _ = io.Copy(io.Discard, r)
//
// — must carry a same-line comment whose first word classifies the
// discard:
//
//	_ = w.Render(&b) // infallible: strings.Builder never errors
//	_ = conn.Close() // best-effort: already tearing down
//
// "infallible:" asserts the callee cannot return a non-nil error with
// these arguments (document why). "best-effort:" concedes the error is
// real but consciously dropped — which is only policy-clean when no
// client is waiting on the result; errors a client could observe must
// instead be counted (a Stats/metrics counter) or returned. Discards
// with no justification, or with a bare comment that doesn't use one of
// the two markers, are flagged. The analyzer runs module-wide; test
// files are exempt.
package errpolicy

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis/reseedvet"
)

var Analyzer = &reseedvet.Analyzer{
	Name: "errpolicy",
	Doc:  "requires a same-line 'infallible:' or 'best-effort:' justification on blank-assigned errors",
	Run:  run,
}

func run(pass *reseedvet.Pass) error {
	for _, file := range pass.SourceFiles() {
		// Line → trailing comment text for same-line justification lookup.
		comments := make(map[int]string)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				line := pass.Fset.Position(c.Pos()).Line
				if _, ok := comments[line]; !ok {
					comments[line] = c.Text
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || asg.Tok != token.ASSIGN {
				return true
			}
			if !allBlank(asg.Lhs) || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok || !returnsError(pass, call) {
				return true
			}
			line := pass.Fset.Position(asg.Pos()).Line
			if justified(comments[line]) {
				return true
			}
			pass.Reportf(asg.Pos(),
				"discarded error needs a same-line justification comment ('// infallible: ...' or '// best-effort: ...'), a counter, or a return")
			return true
		})
	}
	return nil
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// returnsError reports whether any of call's results is of type error.
func returnsError(pass *reseedvet.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return reseedvet.HasErrorResult(tv.Type)
}

// justified reports whether a comment's text starts with one of the two
// policy markers. c is the comment with // or /* */ markers stripped
// (ast.Comment.Text form).
func justified(c string) bool {
	c = strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(strings.TrimSpace(c), "//"), "/*"))
	return strings.HasPrefix(c, "infallible:") || strings.HasPrefix(c, "best-effort:")
}
