// Package discard is an errpolicy fixture (the analyzer is module-wide).
package discard

import (
	"errors"
	"strings"
)

func fail() error { return errors.New("boom") }

func both() (int, error) { return 0, errors.New("no") }

func value() int { return 1 }

func write(b *strings.Builder) error {
	_, err := b.WriteString("x")
	return err
}

// Bad discards an error with no justification.
func Bad() {
	_ = fail() // want "discarded error needs a same-line justification"
}

// BadPair discards a multi-value result that includes an error.
func BadPair() {
	_, _ = both() // want "discarded error needs a same-line justification"
}

// BadComment has a comment, but not one of the two policy markers.
func BadComment() {
	_ = fail() // nothing to see here // want "discarded error needs a same-line justification"
}

// BestEffort carries the accepted best-effort marker.
func BestEffort() {
	_ = fail() // best-effort: fixture exercises the accepted marker
}

// Infallible carries the accepted infallible marker.
func Infallible() {
	var b strings.Builder
	_ = write(&b) // infallible: strings.Builder never errors
}

// NotError discards a non-error value; no policy applies.
func NotError() {
	_ = value()
}

// Acknowledged uses the suppression directive instead of a marker.
func Acknowledged() {
	//reseedvet:ignore errpolicy -- fixture: acknowledged via directive
	_ = fail()
}
