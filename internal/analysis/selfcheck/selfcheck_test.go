// Package selfcheck pins the CI gate's ground truth: the repository's own
// tree produces zero reseedvet diagnostics. Every analyzer finding on the
// real code must be fixed or explicitly acknowledged before it lands —
// this test is what keeps that claim from rotting between CI config and
// reality.
package selfcheck_test

import (
	"os/exec"
	"strings"
	"testing"

	"repro/internal/analysis/vettest"
)

func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole repository; skipped in -short mode")
	}
	tool := vettest.Tool(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = vettest.Root(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("reseedvet reported findings on the repository tree (run `go build -o /tmp/reseedvet ./cmd/reseedvet && go vet -vettool=/tmp/reseedvet ./...`):\n%s", out)
	}
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Fatalf("expected silent vet run, got:\n%s", s)
	}
}
