package setcover

// Tests of the unified branch-and-bound engine: the parallel determinism
// guarantee, the anytime budgets, and the sibling-exclusion pruning fix.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/bitvec"
)

// engineDegrees is the acceptance sweep: serial, two explicit pool sizes,
// and one worker per processor.
var engineDegrees = []int{1, 2, 4, 0}

// TestExactParallelEquivalence pins the determinism contract: Rows, Cost
// and Optimal are bit-identical for every Parallelism value, for both the
// cardinality and the weighted solver. Runs under -race in CI.
func TestExactParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		p := randomCoverable(rng, 12+rng.Intn(18), 20+rng.Intn(40))
		weights := make([]int, p.NumRows())
		for i := range weights {
			weights[i] = rng.Intn(8) // zero weights included
		}
		var refCard, refWeighted *Solution
		for _, j := range engineDegrees {
			card, err := p.SolveExact(ExactOptions{Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			wsol, err := p.SolveExactWeighted(weights, ExactOptions{Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			if !p.Verify(card.Rows) || !p.Verify(wsol.Rows) {
				t.Fatalf("trial %d j=%d: invalid cover", trial, j)
			}
			card.Nodes, wsol.Nodes = 0, 0 // effort counters are timing dependent
			if refCard == nil {
				refCard, refWeighted = &card, &wsol
				continue
			}
			if !reflect.DeepEqual(*refCard, card) {
				t.Errorf("trial %d: cardinality solve at Parallelism %d differs: %+v vs %+v",
					trial, j, card, *refCard)
			}
			if !reflect.DeepEqual(*refWeighted, wsol) {
				t.Errorf("trial %d: weighted solve at Parallelism %d differs: %+v vs %+v",
					trial, j, wsol, *refWeighted)
			}
		}
	}
}

// TestSiblingExclusionReducesNodes asserts the duplicate-sibling-subtree
// fix on the benchmark instance (the seed-3 medium instance of
// BenchmarkExactMediumInstance): banning already-tried rows in later
// branches must shrink the tree without changing the optimum.
func TestSiblingExclusionReducesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomCoverable(rng, 30, 80)
	dup, err := p.SolveExact(ExactOptions{Parallelism: 1, noSiblingExclusion: true})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := p.SolveExact(ExactOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Optimal || !fixed.Optimal {
		t.Fatalf("both solves must complete: dup=%+v fixed=%+v", dup, fixed)
	}
	if fixed.Cost != dup.Cost {
		t.Errorf("sibling exclusion changed the optimum: %d vs %d", fixed.Cost, dup.Cost)
	}
	if fixed.Nodes >= dup.Nodes {
		t.Errorf("sibling exclusion did not reduce nodes: %d with vs %d without",
			fixed.Nodes, dup.Nodes)
	}
	t.Logf("nodes: %d without exclusion, %d with (%.1f%% drop)",
		dup.Nodes, fixed.Nodes, 100*(1-float64(fixed.Nodes)/float64(dup.Nodes)))
}

// TestContextCancelAnytime: a cancelled context returns the best-so-far
// (the greedy incumbent at worst) with Optimal=false and no error.
func TestContextCancelAnytime(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(9))
	p := randomCoverable(rng, 40, 120)
	for _, weights := range [][]int{nil, constWeights(p.NumRows(), 3)} {
		var sol Solution
		var err error
		if weights == nil {
			sol, err = p.SolveExact(ExactOptions{Context: ctx})
		} else {
			sol, err = p.SolveExactWeighted(weights, ExactOptions{Context: ctx})
		}
		if err != nil {
			t.Fatal(err)
		}
		if sol.Optimal {
			t.Error("cancelled solve must not claim optimality")
		}
		if !p.Verify(sol.Rows) {
			t.Error("cancelled solve must still return a valid cover")
		}
		if sol.Cost != coverCost(weights, sol.Rows) {
			t.Errorf("cost %d does not match rows (%d)", sol.Cost, coverCost(weights, sol.Rows))
		}
	}
}

// TestTimeBudgetAnytime: an already-expired wall-clock budget truncates at
// the root pre-check, returning the incumbent with Optimal=false.
func TestTimeBudgetAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomCoverable(rng, 40, 120)
	sol, err := p.SolveExact(ExactOptions{TimeBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Error("expired budget must not claim optimality")
	}
	if !p.Verify(sol.Rows) {
		t.Error("expired budget must still return a valid cover")
	}
	// A generous budget must not truncate.
	sol, err = p.SolveExact(ExactOptions{TimeBudget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Error("solve well inside its budget must prove optimality")
	}
}

// TestSolutionCost pins the new Cost field across solver entry points.
func TestSolutionCost(t *testing.T) {
	p := mk(4, []int{0, 1}, []int{2, 3}, []int{0, 1, 2, 3})
	weights := []int{2, 2, 10}
	g, err := p.SolveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if g.Cost != len(g.Rows) {
		t.Errorf("greedy Cost = %d, want %d", g.Cost, len(g.Rows))
	}
	e, err := p.SolveExact(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Cost != 1 { // row 2 covers everything
		t.Errorf("exact Cost = %d (%v), want 1", e.Cost, e.Rows)
	}
	w, err := p.SolveExactWeighted(weights, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Cost != 4 || w.Cost != totalWeight(weights, w.Rows) {
		t.Errorf("weighted Cost = %d (%v), want 4", w.Cost, w.Rows)
	}
	m, _, err := p.SolveMinimalWeighted(weights, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost != 4 {
		t.Errorf("pipeline Cost = %d (%v), want 4", m.Cost, m.Rows)
	}
}

func constWeights(n, w int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = w
	}
	return out
}

// BenchmarkExactParallel is the CI solver smoke: the medium instance at
// j ∈ {1, 4}. On multi-core hardware j=4 should win once the instance is
// hard enough; on one core it measures pool overhead.
func BenchmarkExactParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := randomCoverable(rng, 30, 80)
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			b.ReportAllocs()
			var nodes int64
			for i := 0; i < b.N; i++ {
				sol, err := p.SolveExact(ExactOptions{Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				nodes = sol.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkExactHardInstance stresses the pruning machinery (sibling
// exclusion, per-node re-reduction, banned-aware bound) on a denser
// instance whose tree runs a few thousand nodes deep.
func BenchmarkExactHardInstance(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := randomCoverable(rng, 70, 60)
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		sol, err := p.SolveExact(ExactOptions{})
		if err != nil {
			b.Fatal(err)
		}
		nodes = sol.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// TestOnIncumbentContract pins the anytime observer: the first snapshot is
// the greedy seed (Nodes 0), costs never increase across snapshots even
// with a parallel fan-out (an equal-cost snapshot marks the deterministic
// merge replacing the witness), and the last snapshot equals the returned
// optimum. Runs under -race in CI (callbacks are serialized by the engine).
func TestOnIncumbentContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		p := randomCoverable(rng, 14+rng.Intn(16), 30+rng.Intn(30))
		for _, j := range engineDegrees {
			var snaps []Incumbent
			sol, err := p.SolveExact(ExactOptions{
				Parallelism: j,
				OnIncumbent: func(inc Incumbent) { snaps = append(snaps, inc) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) == 0 {
				t.Fatalf("trial %d j=%d: no snapshot at all (greedy seed missing)", trial, j)
			}
			if snaps[0].Nodes != 0 {
				t.Errorf("trial %d j=%d: first snapshot is not the seed: %+v", trial, j, snaps[0])
			}
			for i := 1; i < len(snaps); i++ {
				if snaps[i].Cost > snaps[i-1].Cost {
					t.Errorf("trial %d j=%d: snapshot costs increased: %+v", trial, j, snaps)
					break
				}
			}
			last := snaps[len(snaps)-1]
			if last.Cost != sol.Cost || last.Rows != len(sol.Rows) {
				t.Errorf("trial %d j=%d: last snapshot %+v does not match the solution (cost %d, %d rows)",
					trial, j, last, sol.Cost, len(sol.Rows))
			}
			// Unit weights: cost and cardinality coincide in every snapshot.
			for _, s := range snaps {
				if s.Cost != s.Rows {
					t.Errorf("trial %d j=%d: unit-weight snapshot with cost != rows: %+v", trial, j, s)
				}
			}
		}
	}
}

// TestOnIncumbentOffsets pins the pipeline wrapping: observers of the
// SolveMinimal pipelines see whole-solution totals (essential rows
// included), for both the unit-cost and the weighted variants.
func TestOnIncumbentOffsets(t *testing.T) {
	// Column 3 is covered only by row 3 (essential). Columns 0..2 form a
	// 3-cycle over rows 0..2 — pairwise incomparable, nothing essential,
	// nothing dominated — so reduction leaves a genuine residual for the
	// exact solver (optimum: any 2 of the 3 cycle rows, plus the
	// essential).
	p := NewProblem(4)
	add := func(cols ...int) {
		s := bitvec.NewSet(4)
		for _, c := range cols {
			s.Add(c)
		}
		p.AddRow(s)
	}
	add(0, 1)
	add(1, 2)
	add(2, 0)
	add(3)

	var last *Incumbent
	opts := ExactOptions{OnIncumbent: func(inc Incumbent) { last = &inc }}
	sol, _, err := p.SolveMinimal(opts)
	if err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no snapshot from SolveMinimal")
	}
	if last.Cost != sol.Cost || last.Rows != len(sol.Rows) {
		t.Errorf("SolveMinimal snapshot %+v does not include essentials (solution cost %d, %d rows)",
			*last, sol.Cost, len(sol.Rows))
	}

	weights := []int{3, 1, 2, 2}
	last = nil
	wsol, _, err := p.SolveMinimalWeighted(weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no snapshot from SolveMinimalWeighted")
	}
	if last.Cost != wsol.Cost || last.Rows != len(wsol.Rows) {
		t.Errorf("SolveMinimalWeighted snapshot %+v does not match solution (cost %d, %d rows)",
			*last, wsol.Cost, len(wsol.Rows))
	}
}
