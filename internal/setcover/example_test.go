package setcover_test

// Runnable godoc examples for the unate covering engine, executed by
// `go test`.

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/setcover"
)

func set(universe int, cols ...int) *bitvec.Set {
	s := bitvec.NewSet(universe)
	for _, c := range cols {
		s.Add(c)
	}
	return s
}

// ExampleNewProblem builds a tiny covering instance — rows are candidate
// triplets, columns are faults — and solves it to provable optimality.
func ExampleNewProblem() {
	p := setcover.NewProblem(5)  // five columns (faults) to cover
	p.AddRow(set(5, 0, 1))       // row 0
	p.AddRow(set(5, 2, 3))       // row 1
	p.AddRow(set(5, 1, 2))       // row 2
	p.AddRow(set(5, 4))          // row 3: the only row covering column 4
	p.AddRow(set(5, 0, 1, 2, 3)) // row 4: dominates rows 0, 1 and 2

	sol, red, err := p.SolveMinimal(setcover.ExactOptions{})
	if err != nil {
		panic(err)
	}
	rows := append([]int(nil), sol.Rows...)
	sort.Ints(rows)
	fmt.Println("essential rows:", red.Essential)
	fmt.Println("minimum cover:", rows)
	fmt.Println("optimal:", sol.Optimal, "verified:", p.Verify(sol.Rows))
	// Output:
	// essential rows: [3 4]
	// minimum cover: [3 4]
	// optimal: true verified: true
}

// ExampleProblem_SolveGreedy contrasts the classical greedy heuristic with
// the exact solve on an instance where greedy is led astray by the largest
// row.
func ExampleProblem_SolveGreedy() {
	p := setcover.NewProblem(6)
	p.AddRow(set(6, 0, 1, 2, 3)) // biggest row: greedy takes it first
	p.AddRow(set(6, 0, 1, 4))
	p.AddRow(set(6, 2, 3, 5))

	greedy, err := p.SolveGreedy()
	if err != nil {
		panic(err)
	}
	exact, _, err := p.SolveMinimal(setcover.ExactOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("greedy picks:", len(greedy.Rows), "rows")
	fmt.Println("exact needs:", len(exact.Rows), "rows")
	// Output:
	// greedy picks: 3 rows
	// exact needs: 2 rows
}
