package setcover

// Randomized cross-check of every exact entry point against brute-force
// enumeration on small instances (≤ 12 rows), including the awkward
// corners: zero weights, duplicate rows, and uncoverable columns.

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bitvec"
)

// randomInstance builds a small instance WITHOUT patching coverage, so some
// instances have uncoverable columns. Half the time a row is duplicated.
func randomInstance(rng *rand.Rand) (*Problem, []int) {
	nRows := 1 + rng.Intn(12)
	nCols := 1 + rng.Intn(10)
	p := NewProblem(nCols)
	for i := 0; i < nRows; i++ {
		s := bitvec.NewSet(nCols)
		for j := 0; j < nCols; j++ {
			if rng.Intn(3) == 0 {
				s.Add(j)
			}
		}
		p.AddRow(s)
	}
	if nRows > 1 && rng.Intn(2) == 0 {
		p.AddRow(p.Row(rng.Intn(nRows)).Clone()) // duplicate row
	}
	weights := make([]int, p.NumRows())
	for i := range weights {
		weights[i] = rng.Intn(6) // zero weights common
	}
	return p, weights
}

func TestCrossCheckBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	coverable, uncoverable := 0, 0
	for trial := 0; trial < 250; trial++ {
		p, weights := randomInstance(rng)
		if p.UncoverableColumns() != nil {
			uncoverable++
			if _, err := p.SolveExact(ExactOptions{}); err == nil {
				t.Fatalf("trial %d: exact accepted uncoverable instance", trial)
			}
			if _, err := p.SolveExactWeighted(weights, ExactOptions{}); err == nil {
				t.Fatalf("trial %d: weighted exact accepted uncoverable instance", trial)
			}
			if _, _, err := p.SolveMinimal(ExactOptions{}); err == nil {
				t.Fatalf("trial %d: SolveMinimal accepted uncoverable instance", trial)
			}
			if _, _, err := p.SolveMinimalWeighted(weights, ExactOptions{}); err == nil {
				t.Fatalf("trial %d: SolveMinimalWeighted accepted uncoverable instance", trial)
			}
			continue
		}
		coverable++
		wantCard := bruteForceOptimum(p)
		wantWeight := bruteForceWeighted(p, weights)

		exact, err := p.SolveExact(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		minimal, _, err := p.SolveMinimal(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wexact, err := p.SolveExactWeighted(weights, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wminimal, _, err := p.SolveMinimalWeighted(weights, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for name, sol := range map[string]Solution{
			"SolveExact": exact, "SolveMinimal": minimal,
			"SolveExactWeighted": wexact, "SolveMinimalWeighted": wminimal,
		} {
			if !p.Verify(sol.Rows) {
				t.Fatalf("trial %d: %s returned an invalid cover %v", trial, name, sol.Rows)
			}
			if !sol.Optimal {
				t.Errorf("trial %d: %s did not prove optimality on a tiny instance", trial, name)
			}
		}
		// Both bound modes must return bit-identical solutions: the bound
		// only prunes, it never changes what the search finds.
		for name, base := range map[string]Solution{"SolveExact": exact, "SolveExactWeighted": wexact} {
			w := weights
			if name == "SolveExact" {
				w = nil
			}
			for _, mode := range []BoundMode{BoundCounting, BoundLagrangian} {
				var got Solution
				var err error
				if w == nil {
					got, err = p.SolveExact(ExactOptions{Bound: mode})
				} else {
					got, err = p.SolveExactWeighted(w, ExactOptions{Bound: mode})
				}
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != base.Cost || got.Optimal != base.Optimal || !slices.Equal(got.Rows, base.Rows) {
					t.Fatalf("trial %d: %s bound=%v diverged: rows %v cost %d optimal %v, want rows %v cost %d optimal %v",
						trial, name, mode, got.Rows, got.Cost, got.Optimal, base.Rows, base.Cost, base.Optimal)
				}
			}
		}
		// The dual bound is a true lower bound on the brute-force optimum.
		if lb, err := p.DualBound(nil, 0); err != nil {
			t.Fatal(err)
		} else if lb > wantCard {
			t.Errorf("trial %d: DualBound %d exceeds optimum %d", trial, lb, wantCard)
		}
		if lb, err := p.DualBound(weights, 0); err != nil {
			t.Fatal(err)
		} else if lb > wantWeight {
			t.Errorf("trial %d: weighted DualBound %d exceeds optimum %d", trial, lb, wantWeight)
		}

		if exact.Cost != wantCard || len(exact.Rows) != wantCard {
			t.Errorf("trial %d: SolveExact cost %d, brute force %d", trial, exact.Cost, wantCard)
		}
		if len(minimal.Rows) != wantCard {
			t.Errorf("trial %d: SolveMinimal %d rows, brute force %d", trial, len(minimal.Rows), wantCard)
		}
		if wexact.Cost != wantWeight {
			t.Errorf("trial %d: SolveExactWeighted cost %d, brute force %d", trial, wexact.Cost, wantWeight)
		}
		if wminimal.Cost != wantWeight {
			t.Errorf("trial %d: SolveMinimalWeighted cost %d, brute force %d", trial, wminimal.Cost, wantWeight)
		}
	}
	if coverable == 0 || uncoverable == 0 {
		t.Fatalf("instance generator lost a corner: %d coverable, %d uncoverable", coverable, uncoverable)
	}
}

// FuzzCrossCheck drives the same cross-check from fuzzed seeds, so `go test`
// exercises the corpus and `go test -fuzz=FuzzCrossCheck` explores further.
func FuzzCrossCheck(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p, weights := randomInstance(rng)
		if p.UncoverableColumns() != nil {
			if _, err := p.SolveExact(ExactOptions{}); err == nil {
				t.Fatal("exact accepted uncoverable instance")
			}
			return
		}
		exact, err := p.SolveExact(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForceOptimum(p); exact.Cost != want {
			t.Fatalf("SolveExact cost %d, brute force %d", exact.Cost, want)
		}
		wexact, err := p.SolveExactWeighted(weights, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantWeight := bruteForceWeighted(p, weights)
		if wexact.Cost != wantWeight {
			t.Fatalf("SolveExactWeighted cost %d, brute force %d", wexact.Cost, wantWeight)
		}
		if !p.Verify(exact.Rows) || !p.Verify(wexact.Rows) {
			t.Fatal("invalid cover")
		}
		for _, mode := range []BoundMode{BoundCounting, BoundLagrangian} {
			got, err := p.SolveExact(ExactOptions{Bound: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != exact.Cost || got.Optimal != exact.Optimal || !slices.Equal(got.Rows, exact.Rows) {
				t.Fatalf("bound=%v diverged: rows %v cost %d, want rows %v cost %d",
					mode, got.Rows, got.Cost, exact.Rows, exact.Cost)
			}
		}
		if lb, err := p.DualBound(weights, 0); err != nil {
			t.Fatal(err)
		} else if lb > wantWeight {
			t.Fatalf("DualBound %d exceeds optimum %d", lb, wantWeight)
		}
	})
}
