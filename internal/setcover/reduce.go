package setcover

import (
	"sort"

	"repro/internal/bitvec"
)

// Reduction records the effect of iterated essentiality and dominance on a
// covering problem, and carries the residual subproblem left for an exact
// solver. Row/column indices in the report refer to the original problem.
type Reduction struct {
	// Essential rows must appear in every irredundant cover (each uniquely
	// covers some column). They are part of the final solution.
	Essential []int
	// DominatedRows were deleted because another row covers a superset of
	// their remaining columns.
	DominatedRows []int
	// ImpliedCols counts columns deleted because covering some other column
	// implies covering them (column dominance, including duplicates).
	ImpliedCols int
	// CoveredCols counts columns removed because an essential row covers
	// them.
	CoveredCols int
	// Iterations is the number of reduction sweeps until the fixpoint.
	Iterations int

	// Residual is the reduced problem (possibly empty), with RowMap/ColMap
	// translating residual indices back to original ones.
	Residual *Problem
	RowMap   []int
	ColMap   []int
}

// Empty reports whether reduction alone solved the instance (the residual
// matrix has no columns left): the cover is exactly the essential rows.
func (r *Reduction) Empty() bool {
	return r.Residual == nil || r.Residual.NumCols() == 0
}

// Reduce applies essentiality, row dominance and column dominance until none
// of them changes the table, in the style of classical covering-table
// minimization. The input problem is not modified.
//
// Every column of the input must be coverable; call UncoverableColumns
// first if that is not guaranteed.
func (p *Problem) Reduce() *Reduction { return p.reduceImpl(nil) }

// reduceImpl is the shared reduction engine. With non-nil weights, row
// dominance only deletes a row in favour of a dominator that is not
// heavier, preserving weighted optimality.
func (p *Problem) reduceImpl(weights []int) *Reduction {
	red := &Reduction{}
	nRows, nCols := len(p.rows), p.numCols

	activeRow := make([]bool, nRows)
	for i := range activeRow {
		activeRow[i] = true
	}
	activeCol := bitvec.NewSet(nCols)
	activeCol.Fill()

	// Column view: colRows[j] = set of rows covering column j.
	colRows := make([]*bitvec.Set, nCols)
	for j := range colRows {
		colRows[j] = bitvec.NewSet(nRows)
	}
	for i, r := range p.rows {
		r.ForEach(func(j int) { colRows[j].Add(i) })
	}

	// masked returns row i's coverage restricted to active columns.
	scratch := bitvec.NewSet(nCols)
	masked := func(i int) *bitvec.Set {
		scratch.Clear()
		scratch.Or(p.rows[i])
		scratch.And(activeCol)
		return scratch
	}

	deactivateRow := func(i int) {
		activeRow[i] = false
		p.rows[i].ForEach(func(j int) { colRows[j].Remove(i) })
	}

	for changed := true; changed; {
		changed = false
		red.Iterations++

		// Essentiality: a column covered by exactly one active row forces
		// that row into the solution; all columns it covers disappear.
		for _, j := range activeCol.Elements() {
			if !activeCol.Contains(j) {
				continue // removed by an earlier essential this sweep
			}
			cr := colRows[j]
			if cr.Len() != 1 {
				continue // 0 would mean an uncoverable column; left for the solver to report
			}
			r := cr.First()
			red.Essential = append(red.Essential, r)
			red.CoveredCols += p.rows[r].IntersectionLen(activeCol)
			activeCol.AndNot(p.rows[r])
			deactivateRow(r)
			changed = true
		}
		if activeCol.Empty() {
			break
		}

		// Row dominance: drop any active row whose active coverage is a
		// subset of another active row's. Group by hash first so identical
		// rows collapse cheaply; ties keep the lower index.
		type rowInfo struct {
			idx  int
			set  *bitvec.Set
			size int
		}
		var infos []rowInfo
		for i := range p.rows {
			if !activeRow[i] {
				continue
			}
			m := masked(i).Clone()
			infos = append(infos, rowInfo{idx: i, set: m, size: m.Len()})
		}
		// A row with empty active coverage is useless.
		for _, ri := range infos {
			if ri.size == 0 {
				deactivateRow(ri.idx)
				red.DominatedRows = append(red.DominatedRows, ri.idx)
				changed = true
			}
		}
		sort.Slice(infos, func(a, b int) bool {
			if infos[a].size != infos[b].size {
				return infos[a].size < infos[b].size
			}
			return infos[a].idx > infos[b].idx
		})
		for a := 0; a < len(infos); a++ {
			ra := infos[a]
			if !activeRow[ra.idx] || ra.size == 0 {
				continue
			}
			for b := len(infos) - 1; b > a; b-- {
				rb := infos[b]
				if !activeRow[rb.idx] || rb.size < ra.size {
					continue
				}
				if rb.idx == ra.idx {
					continue
				}
				if ra.set.SubsetOf(rb.set) {
					victim := dominanceVictim(ra.idx, rb.idx, ra.size == rb.size, weights)
					if victim < 0 {
						continue // dominator is heavier: deletion unsafe
					}
					deactivateRow(victim)
					red.DominatedRows = append(red.DominatedRows, victim)
					changed = true
					if victim == ra.idx {
						break
					}
				}
			}
		}

		// Column dominance: if every row covering column l also covers
		// column j (l's row set ⊆ j's), then any cover of l covers j, so j
		// is implied and removed. Duplicate columns collapse to one.
		// Group columns by row-set hash to keep this near-linear: matrices
		// from fault simulation contain large plateaus of identical columns.
		groups := make(map[uint64][]int)
		for _, j := range activeCol.Elements() {
			groups[colRows[j].Hash()] = append(groups[colRows[j].Hash()], j)
		}
		var uniq []int
		for _, g := range groups {
			// Collapse duplicates within the hash group.
			for len(g) > 0 {
				rep := g[0]
				rest := g[:0]
				for _, j := range g[1:] {
					if colRows[j].Equal(colRows[rep]) {
						activeCol.Remove(j)
						red.ImpliedCols++
						changed = true
					} else {
						rest = append(rest, j)
					}
				}
				uniq = append(uniq, rep)
				g = rest
			}
		}
		sort.Ints(uniq)
		for a := 0; a < len(uniq); a++ {
			ja := uniq[a]
			if !activeCol.Contains(ja) {
				continue
			}
			for b := 0; b < len(uniq); b++ {
				jb := uniq[b]
				if a == b || !activeCol.Contains(jb) || !activeCol.Contains(ja) {
					continue
				}
				// ja implied by jb: rows(jb) ⊆ rows(ja) and not equal.
				if colRows[jb].Len() < colRows[ja].Len() && colRows[jb].SubsetOf(colRows[ja]) {
					activeCol.Remove(ja)
					red.ImpliedCols++
					changed = true
					break
				}
			}
		}
	}

	// Assemble the residual problem.
	red.ColMap = assembleColMap(activeCol)
	colIndex := make(map[int]int, len(red.ColMap))
	for k, j := range red.ColMap {
		colIndex[j] = k
	}
	red.Residual = NewProblem(len(red.ColMap))
	for i := range p.rows {
		if !activeRow[i] {
			continue
		}
		s := bitvec.NewSet(len(red.ColMap))
		p.rows[i].ForEach(func(j int) {
			if k, ok := colIndex[j]; ok {
				s.Add(k)
			}
		})
		if s.Empty() {
			continue
		}
		red.RowMap = append(red.RowMap, i)
		red.Residual.AddRow(s)
	}
	sort.Ints(red.Essential)
	sort.Ints(red.DominatedRows)
	return red
}

func assembleColMap(activeCol *bitvec.Set) []int { return activeCol.Elements() }

// dominanceVictim decides which of two rows (a ⊆ b as column sets) may be
// deleted. equal reports set equality. It returns -1 when no deletion is
// safe under the weights.
func dominanceVictim(a, b int, equal bool, weights []int) int {
	if weights == nil {
		if equal && a < b {
			return b
		}
		return a
	}
	wa, wb := weights[a], weights[b]
	if equal {
		// Identical coverage: drop the heavier row (ties: higher index).
		if wa < wb || (wa == wb && a < b) {
			return b
		}
		return a
	}
	if wb <= wa {
		return a // strictly larger coverage at no extra weight
	}
	return -1
}
