package setcover

// Unit tests of the Lagrangian dual bound: validity, determinism, the
// option conventions, and the RootLB report. The corpus-level properties
// (golden costs, node reduction, cross-mode identity at scale) live in
// internal/setcover/corpus.

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

func TestBoundModeString(t *testing.T) {
	cases := map[BoundMode]string{
		BoundAuto:       "auto",
		BoundLagrangian: "lagrangian",
		BoundCounting:   "counting",
		BoundMode(42):   "BoundMode(42)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("BoundMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

func TestAscentBudgets(t *testing.T) {
	cases := []struct {
		opts          ExactOptions
		root, perNode int
	}{
		{ExactOptions{}, defaultAscentIters, defaultAscentPerNode},
		{ExactOptions{AscentIters: 10, AscentPerNode: 3}, 10, 3},
		{ExactOptions{AscentIters: -1, AscentPerNode: -1}, 0, 0},
		{ExactOptions{AscentIters: -1}, 0, defaultAscentPerNode},
	}
	for _, c := range cases {
		root, perNode := c.opts.ascentBudgets()
		if root != c.root || perNode != c.perNode {
			t.Errorf("ascentBudgets(%+v) = (%d, %d), want (%d, %d)",
				c.opts, root, perNode, c.root, c.perNode)
		}
	}
}

func TestDualRound(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{
		{0, 0},
		{-3.5, 0},         // never negative
		{2.0, 2},          // exact integer stays (slack absorbs it)
		{2.0000000001, 2}, // float wobble above an integer must not overstate
		{2.1, 3},          // genuinely fractional rounds up
		{1.999999, 2},     // just under: slack is 1e-6, 1.999999-1e-6 still ceils to 2
	}
	for _, c := range cases {
		if got := dualRound(c.in); got != c.want {
			t.Errorf("dualRound(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// chainProblem builds the N-column, N-row identity instance: row i covers
// exactly column i, so the optimum is N and the dual bound should reach it.
func chainProblem(n int) *Problem {
	p := NewProblem(n)
	for i := 0; i < n; i++ {
		s := bitvec.NewSet(n)
		s.Add(i)
		p.AddRow(s)
	}
	return p
}

func TestDualBoundTightOnIdentity(t *testing.T) {
	p := chainProblem(8)
	lb, err := p.DualBound(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 8 {
		t.Fatalf("DualBound on 8-column identity = %d, want 8", lb)
	}
	weights := []int{3, 1, 4, 1, 5, 9, 2, 6}
	lb, err = p.DualBound(weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + 1 + 4 + 1 + 5 + 9 + 2 + 6; lb != want {
		t.Fatalf("weighted DualBound on identity = %d, want %d", lb, want)
	}
}

func TestDualBoundErrors(t *testing.T) {
	p := NewProblem(3)
	s := bitvec.NewSet(3)
	s.Add(0)
	p.AddRow(s)
	if _, err := p.DualBound(nil, 0); err == nil {
		t.Fatal("DualBound accepted an instance with uncoverable columns")
	}
	if _, err := p.DualBound([]int{1, 2}, 0); err == nil {
		t.Fatal("DualBound accepted a weights slice of the wrong length")
	}
	empty := NewProblem(0)
	lb, err := empty.DualBound(nil, 0)
	if err != nil || lb != 0 {
		t.Fatalf("DualBound on empty universe = (%d, %v), want (0, nil)", lb, err)
	}
}

func TestDualBoundDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p, weights := randomInstance(rng)
		if p.UncoverableColumns() != nil {
			continue
		}
		a, err := p.DualBound(weights, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.DualBound(weights, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: DualBound not deterministic: %d then %d", trial, a, b)
		}
	}
}

// TestRootLBNeverExceedsOptimum pins the Solution.RootLB contract on small
// brute-forceable instances, for both bound modes, and checks it does not
// depend on Parallelism.
func TestRootLBNeverExceedsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		p, weights := randomInstance(rng)
		if p.UncoverableColumns() != nil {
			continue
		}
		for _, mode := range []BoundMode{BoundCounting, BoundLagrangian} {
			var serial Solution
			for _, par := range []int{1, 4} {
				sol, err := p.SolveExactWeighted(weights, ExactOptions{Bound: mode, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if sol.RootLB > sol.Cost {
					t.Fatalf("trial %d bound=%v par=%d: RootLB %d exceeds optimal cost %d",
						trial, mode, par, sol.RootLB, sol.Cost)
				}
				if par == 1 {
					serial = sol
				} else if sol.RootLB != serial.RootLB {
					t.Fatalf("trial %d bound=%v: RootLB depends on Parallelism: %d (serial) vs %d (par=4)",
						trial, mode, serial.RootLB, sol.RootLB)
				}
			}
		}
	}
}

// TestLagrangianTighterRoot asserts the dual root bound dominates the
// counting root bound on a dense instance where counting degenerates.
func TestLagrangianTighterRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewProblem(40)
	for i := 0; i < 60; i++ {
		s := bitvec.NewSet(40)
		for j := 0; j < 40; j++ {
			if rng.Intn(2) == 0 {
				s.Add(j)
			}
		}
		if s.Len() == 0 {
			s.Add(rng.Intn(40))
		}
		p.AddRow(s)
	}
	counting, err := p.SolveExact(ExactOptions{Bound: BoundCounting})
	if err != nil {
		t.Fatal(err)
	}
	lagrangian, err := p.SolveExact(ExactOptions{Bound: BoundLagrangian})
	if err != nil {
		t.Fatal(err)
	}
	if lagrangian.RootLB <= counting.RootLB {
		t.Errorf("dense instance: lagrangian RootLB %d not tighter than counting %d",
			lagrangian.RootLB, counting.RootLB)
	}
	if lagrangian.Nodes >= counting.Nodes {
		t.Errorf("dense instance: lagrangian %d nodes, counting %d — no pruning win",
			lagrangian.Nodes, counting.Nodes)
	}
	if lagrangian.Cost != counting.Cost {
		t.Fatalf("bound modes disagree on optimal cost: %d vs %d", lagrangian.Cost, counting.Cost)
	}
}
