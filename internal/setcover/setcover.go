// Package setcover implements unate set covering: reduction by essentiality
// and dominance, an exact branch-and-bound solver, and the classical greedy
// heuristic.
//
// This is the paper's optimization core. The Detection Matrix (rows =
// candidate triplets, columns = faults) is reduced with the two classical
// covering-table techniques — essential rows are forced into the solution,
// dominated rows and implied columns are deleted — and the residual matrix
// is solved exactly. The exact solver replaces the commercial ILP package
// LINGO used in the paper; both deliver a provably minimum cover of the
// residual, which is all the experiment requires.
//
// The package is deliberately independent of testing concepts: rows cover
// columns, nothing more, mirroring how the paper leans on generic
// two-level-minimization theory (McCluskey-style essentiality/dominance).
package setcover

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Problem is a unate covering instance: choose a minimum set of rows whose
// union covers every column.
type Problem struct {
	numCols int
	rows    []*bitvec.Set
}

// NewProblem returns an empty problem over the given column universe.
func NewProblem(numCols int) *Problem {
	if numCols < 0 {
		panic(fmt.Sprintf("setcover: negative column count %d", numCols))
	}
	return &Problem{numCols: numCols}
}

// AddRow adds a row covering the given column set and returns its index.
// The set is cloned; later mutation of the argument does not affect the
// problem.
func (p *Problem) AddRow(covers *bitvec.Set) int {
	if covers.Universe() != p.numCols {
		panic(fmt.Sprintf("setcover: row universe %d != %d columns", covers.Universe(), p.numCols))
	}
	p.rows = append(p.rows, covers.Clone())
	return len(p.rows) - 1
}

// NumRows returns the number of rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// NumCols returns the column universe size.
func (p *Problem) NumCols() int { return p.numCols }

// Row returns the column set of row i. The returned set is owned by the
// problem and must not be modified.
func (p *Problem) Row(i int) *bitvec.Set { return p.rows[i] }

// UncoverableColumns returns the columns no row covers. A covering exists
// iff the result is empty.
func (p *Problem) UncoverableColumns() []int {
	u := bitvec.NewSet(p.numCols)
	u.Fill()
	for _, r := range p.rows {
		u.AndNot(r)
		if u.Empty() {
			break
		}
	}
	if u.Empty() {
		return nil
	}
	return u.Elements()
}

// Verify reports whether the given rows cover every column.
func (p *Problem) Verify(rows []int) bool {
	covered := bitvec.NewSet(p.numCols)
	for _, r := range rows {
		if r < 0 || r >= len(p.rows) {
			return false
		}
		covered.Or(p.rows[r])
	}
	return covered.Len() == p.numCols
}

// Minimal reports whether the cover is irredundant: removing any single row
// breaks coverage. This is the paper's definition of a minimal solution.
func (p *Problem) Minimal(rows []int) bool {
	if !p.Verify(rows) {
		return false
	}
	for skip := range rows {
		covered := bitvec.NewSet(p.numCols)
		for i, r := range rows {
			if i != skip {
				covered.Or(p.rows[r])
			}
		}
		if covered.Len() == p.numCols {
			return false
		}
	}
	return true
}

// Solution is the outcome of a solver run.
type Solution struct {
	// Rows are the selected row indices (into the problem they were solved
	// on), sorted ascending.
	Rows []int
	// Optimal reports whether the solver proved minimality of Rows' size.
	Optimal bool
	// Nodes counts branch-and-bound nodes explored (0 for greedy).
	Nodes int64
}

// SolveGreedy runs Chvátal's greedy heuristic: repeatedly take the row
// covering the most uncovered columns. Ties break toward lower row index,
// making the result deterministic.
func (p *Problem) SolveGreedy() (Solution, error) {
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	var sol Solution
	for !uncovered.Empty() {
		best, bestGain := -1, 0
		for i, r := range p.rows {
			gain := r.IntersectionLen(uncovered)
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return Solution{}, fmt.Errorf("setcover: internal: no progress with %d columns uncovered", uncovered.Len())
		}
		sol.Rows = append(sol.Rows, best)
		uncovered.AndNot(p.rows[best])
	}
	sort.Ints(sol.Rows)
	return sol, nil
}
