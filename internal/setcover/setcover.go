// Package setcover implements unate set covering: reduction by essentiality
// and dominance, a parallel anytime branch-and-bound solver, and the
// classical greedy heuristic.
//
// This is the paper's optimization core. The Detection Matrix (rows =
// candidate triplets, columns = faults) is reduced with the two classical
// covering-table techniques — essential rows are forced into the solution,
// dominated rows and implied columns are deleted — and the residual matrix
// is solved exactly. The exact solver replaces the commercial ILP package
// LINGO used in the paper; both deliver a provably minimum cover of the
// residual, which is all the experiment requires.
//
// Cardinality (SolveExact) and weighted (SolveExactWeighted) solves share
// one branch-and-bound engine — cardinality is the nil-weights (unit cost)
// instantiation. The engine fans its top-level branches out across the
// internal/parallel pool and prunes with a shared atomic incumbent, sibling
// -row exclusion and per-node essentiality re-reduction; see engine.go.
//
// # Determinism
//
// For solves that complete within their budgets, Solution.Rows is
// bit-identical for every ExactOptions.Parallelism value (the same
// contract as internal/fsim and internal/dmatrix): each worker reports the
// first optimum of its subtree in depth-first order, and the merge
// tie-breaks equal costs toward the lower top-level branch. Only
// Solution.Nodes — an effort counter, like wall-clock time — depends on
// worker timing when Parallelism > 1.
//
// # Anytime contract
//
// ExactOptions.MaxNodes, TimeBudget and Context bound the search; a
// truncated solve returns the best cover found so far (never worse than the
// greedy incumbent, always a valid cover) with Optimal = false and a nil
// error. Exceeding a budget is not an error: it is the anytime trade the
// caller asked for. Truncated results are outside the bit-identical
// guarantee — which covers were found before the budget won the race is as
// timing-dependent as the budget itself; Optimal = false is the signal.
//
// The package is deliberately independent of testing concepts: rows cover
// columns, nothing more, mirroring how the paper leans on generic
// two-level-minimization theory (McCluskey-style essentiality/dominance).
package setcover

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Problem is a unate covering instance: choose a minimum set of rows whose
// union covers every column.
type Problem struct {
	numCols int
	rows    []*bitvec.Set
}

// NewProblem returns an empty problem over the given column universe.
func NewProblem(numCols int) *Problem {
	if numCols < 0 {
		panic(fmt.Sprintf("setcover: negative column count %d", numCols))
	}
	return &Problem{numCols: numCols}
}

// AddRow adds a row covering the given column set and returns its index.
// The set is cloned; later mutation of the argument does not affect the
// problem.
func (p *Problem) AddRow(covers *bitvec.Set) int {
	if covers.Universe() != p.numCols {
		panic(fmt.Sprintf("setcover: row universe %d != %d columns", covers.Universe(), p.numCols))
	}
	p.rows = append(p.rows, covers.Clone())
	return len(p.rows) - 1
}

// NumRows returns the number of rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// NumCols returns the column universe size.
func (p *Problem) NumCols() int { return p.numCols }

// Row returns the column set of row i. The returned set is owned by the
// problem and must not be modified.
func (p *Problem) Row(i int) *bitvec.Set { return p.rows[i] }

// UncoverableColumns returns the columns no row covers. A covering exists
// iff the result is empty.
func (p *Problem) UncoverableColumns() []int {
	u := bitvec.NewSet(p.numCols)
	u.Fill()
	for _, r := range p.rows {
		u.AndNot(r)
		if u.Empty() {
			break
		}
	}
	if u.Empty() {
		return nil
	}
	return u.Elements()
}

// Verify reports whether the given rows cover every column.
func (p *Problem) Verify(rows []int) bool {
	covered := bitvec.NewSet(p.numCols)
	for _, r := range rows {
		if r < 0 || r >= len(p.rows) {
			return false
		}
		covered.Or(p.rows[r])
	}
	return covered.Len() == p.numCols
}

// Minimal reports whether the cover is irredundant: removing any single row
// breaks coverage. This is the paper's definition of a minimal solution.
func (p *Problem) Minimal(rows []int) bool {
	if !p.Verify(rows) {
		return false
	}
	for skip := range rows {
		covered := bitvec.NewSet(p.numCols)
		for i, r := range rows {
			if i != skip {
				covered.Or(p.rows[r])
			}
		}
		if covered.Len() == p.numCols {
			return false
		}
	}
	return true
}

// Solution is the outcome of a solver run.
type Solution struct {
	// Rows are the selected row indices (into the problem they were solved
	// on), sorted ascending.
	Rows []int
	// Cost is the total cost of Rows: their summed weights for weighted
	// solves, their count for cardinality solves.
	Cost int
	// Optimal reports whether the solver proved minimality of Rows' cost.
	// It is false when a budget (MaxNodes, TimeBudget, Context) truncated
	// the search; Rows is then the best cover found so far.
	Optimal bool
	// Nodes counts branch-and-bound nodes explored (0 for greedy). It is an
	// effort counter: with ExactOptions.Parallelism > 1 it depends on worker
	// timing — pruning races against the shared incumbent — and is excluded
	// from the bit-identical guarantee that covers Rows, Cost and Optimal.
	Nodes int64
	// RootLB is the exact solver's root lower bound on the optimal cost —
	// the stronger of the counting bound and (in Lagrangian modes) the dual
	// value after the root multiplier ascent, plus any cost the root
	// re-reduction committed. It never exceeds the optimal cost, so the
	// corpus harness reports RootLB/Cost as bound tightness. 0 for greedy
	// solves and solves truncated before the root bound was computed. It
	// depends on ExactOptions.Bound (that is its point) but not on
	// Parallelism.
	RootLB int
}

// SolveGreedy runs Chvátal's greedy heuristic: repeatedly take the row
// covering the most uncovered columns. Ties break toward lower row index,
// making the result deterministic.
func (p *Problem) SolveGreedy() (Solution, error) {
	return p.solveGreedyImpl(nil)
}

// solveGreedyImpl is the greedy heuristic shared by SolveGreedy (weights
// nil: maximize gain) and SolveGreedyWeighted (minimize weight per newly
// covered column). Ratio comparisons use cross-multiplication so the
// outcome is exact. It also seeds the branch-and-bound incumbent.
func (p *Problem) solveGreedyImpl(weights []int) (Solution, error) {
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	var sol Solution
	if weights != nil {
		// Zero-weight rows with any gain are free: take them up front,
		// highest gain first (ties toward the lower index). Covering only
		// ever shrinks gains, so once no free row gains, none will again.
		for !uncovered.Empty() {
			best, bestGain := -1, 0
			for i, w := range weights {
				if w != 0 {
					continue
				}
				if gain := p.rows[i].IntersectionLen(uncovered); gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best < 0 {
				break
			}
			sol.Rows = append(sol.Rows, best)
			uncovered.AndNot(p.rows[best])
		}
	}
	for !uncovered.Empty() {
		best, bestGain, bestCost := -1, 0, 0
		for i, r := range p.rows {
			gain := r.IntersectionLen(uncovered)
			if gain == 0 {
				continue
			}
			cost := 1
			if weights != nil {
				cost = weights[i]
			}
			// cost/gain < bestCost/bestGain ⇔ cost*bestGain < bestCost*gain.
			if best < 0 || cost*bestGain < bestCost*gain {
				best, bestGain, bestCost = i, gain, cost
			}
		}
		if best < 0 {
			return Solution{}, fmt.Errorf("setcover: internal: no progress with %d columns uncovered", uncovered.Len())
		}
		sol.Rows = append(sol.Rows, best)
		uncovered.AndNot(p.rows[best])
	}
	sort.Ints(sol.Rows)
	sol.Cost = coverCost(weights, sol.Rows)
	return sol, nil
}

// coverCost is the total cost of a row selection: its summed weights, or
// its cardinality when weights is nil.
func coverCost(weights []int, rows []int) int {
	if weights == nil {
		return len(rows)
	}
	return totalWeight(weights, rows)
}
