package setcover

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// ExactOptions tunes the branch-and-bound solver.
type ExactOptions struct {
	// MaxNodes bounds the search; 0 means 50 million nodes. If the bound is
	// hit the best cover found so far is returned with Optimal = false.
	MaxNodes int64
}

// SolveExact finds a minimum-cardinality cover by branch and bound, playing
// the role of the paper's LINGO run on the reduced Detection Matrix.
//
// Branching follows the classical covering-table search: pick the uncovered
// column with the fewest covering rows and branch on each of those rows in
// decreasing coverage order. The incumbent starts from the greedy cover; a
// maximal-independent-set lower bound (pairwise row-disjoint columns each
// demand a distinct row) prunes the tree.
func (p *Problem) SolveExact(opts ExactOptions) (Solution, error) {
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	if p.numCols == 0 {
		return Solution{Rows: nil, Optimal: true}, nil
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50_000_000
	}

	greedy, err := p.SolveGreedy()
	if err != nil {
		return Solution{}, err
	}

	s := &bbState{
		p:        p,
		best:     append([]int(nil), greedy.Rows...),
		maxNodes: maxNodes,
	}
	// Column view for branching.
	s.colRows = make([][]int, p.numCols)
	for i, r := range p.rows {
		r.ForEach(func(j int) { s.colRows[j] = append(s.colRows[j], i) })
	}
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	s.search(nil, uncovered)

	sol := Solution{
		Rows:    append([]int(nil), s.best...),
		Optimal: !s.truncated,
		Nodes:   s.nodes,
	}
	sort.Ints(sol.Rows)
	return sol, nil
}

type bbState struct {
	p         *Problem
	colRows   [][]int
	best      []int
	nodes     int64
	maxNodes  int64
	truncated bool
}

func (s *bbState) search(chosen []int, uncovered *bitvec.Set) {
	s.nodes++
	if s.nodes > s.maxNodes {
		s.truncated = true
		return
	}
	if uncovered.Empty() {
		if len(chosen) < len(s.best) {
			s.best = append(s.best[:0], chosen...)
		}
		return
	}
	// Prune on the independent-set lower bound.
	if len(chosen)+s.lowerBound(uncovered) >= len(s.best) {
		return
	}
	// Branch on the hardest uncovered column (fewest covering rows).
	bestCol, bestCount := -1, int(^uint(0)>>1)
	uncovered.ForEach(func(j int) {
		if n := len(s.colRows[j]); n < bestCount {
			bestCol, bestCount = j, n
		}
	})
	if bestCol < 0 {
		return
	}
	// Try covering rows in decreasing gain order.
	rows := append([]int(nil), s.colRows[bestCol]...)
	sort.Slice(rows, func(a, b int) bool {
		ga := s.p.rows[rows[a]].IntersectionLen(uncovered)
		gb := s.p.rows[rows[b]].IntersectionLen(uncovered)
		if ga != gb {
			return ga > gb
		}
		return rows[a] < rows[b]
	})
	for _, r := range rows {
		if s.truncated {
			return
		}
		next := uncovered.Clone()
		next.AndNot(s.p.rows[r])
		s.search(append(chosen, r), next)
	}
}

// lowerBound greedily builds a set of pairwise row-disjoint uncovered
// columns; each needs its own row, so the count is a valid lower bound on
// the rows still required.
func (s *bbState) lowerBound(uncovered *bitvec.Set) int {
	usedRows := bitvec.NewSet(s.p.NumRows())
	lb := 0
	// Visit columns in increasing covering-row count: rare columns first
	// maximizes the independent set found.
	cols := uncovered.Elements()
	sort.Slice(cols, func(a, b int) bool {
		na, nb := len(s.colRows[cols[a]]), len(s.colRows[cols[b]])
		if na != nb {
			return na < nb
		}
		return cols[a] < cols[b]
	})
	for _, j := range cols {
		disjoint := true
		for _, r := range s.colRows[j] {
			if usedRows.Contains(r) {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		for _, r := range s.colRows[j] {
			usedRows.Add(r)
		}
		lb++
	}
	return lb
}

// SolveMinimal runs the full covering pipeline of the paper: reduction by
// essentiality and dominance, then an exact solve of the residual. The
// returned rows are indices into the original problem: the essential rows
// plus the residual cover. The second return value reports the reduction for
// analysis (Table 2 of the paper).
func (p *Problem) SolveMinimal(opts ExactOptions) (Solution, *Reduction, error) {
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, nil, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	red := p.Reduce()
	sol := Solution{Rows: append([]int(nil), red.Essential...), Optimal: true}
	if !red.Empty() {
		sub, err := red.Residual.SolveExact(opts)
		if err != nil {
			return Solution{}, nil, err
		}
		for _, r := range sub.Rows {
			sol.Rows = append(sol.Rows, red.RowMap[r])
		}
		sol.Optimal = sub.Optimal
		sol.Nodes = sub.Nodes
	}
	sort.Ints(sol.Rows)
	return sol, red, nil
}
