package setcover

import (
	"fmt"
	"sort"
)

// SolveExact finds a minimum-cardinality cover with the branch-and-bound
// engine, playing the role of the paper's LINGO run on the reduced
// Detection Matrix. It is the unit-weight instantiation of the unified
// covering core (see engine.go): the incumbent starts from the greedy
// cover, top-level branches fan out across ExactOptions.Parallelism
// workers, and the anytime budgets (MaxNodes, TimeBudget, Context) return
// the best cover found so far with Optimal = false when exceeded.
func (p *Problem) SolveExact(opts ExactOptions) (Solution, error) {
	return p.solveBB(nil, opts)
}

// SolveMinimal runs the full covering pipeline of the paper: reduction by
// essentiality and dominance, then an exact solve of the residual. The
// returned rows are indices into the original problem: the essential rows
// plus the residual cover. The second return value reports the reduction for
// analysis (Table 2 of the paper).
func (p *Problem) SolveMinimal(opts ExactOptions) (Solution, *Reduction, error) {
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, nil, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	red := p.Reduce()
	sol := Solution{Rows: append([]int(nil), red.Essential...), Optimal: true}
	if !red.Empty() {
		sub, err := red.Residual.SolveExact(
			opts.WithIncumbentOffset(len(red.Essential), len(red.Essential)))
		if err != nil {
			return Solution{}, nil, err
		}
		for _, r := range sub.Rows {
			sol.Rows = append(sol.Rows, red.RowMap[r])
		}
		sol.Optimal = sub.Optimal
		sol.Nodes = sub.Nodes
	}
	sort.Ints(sol.Rows)
	sol.Cost = len(sol.Rows)
	return sol, red, nil
}
