package setcover

// The distributed face of the branch-and-bound engine. A coordinator
// calls PlanExact once to compute the deterministic root of the search
// tree — the greedy seed, the root-forced rows, the root bound with its
// Lagrangian multipliers, and the canonical top-level branch list — and
// then farms the branches out as independent subtree leases (any
// process holding the same plan inputs computes the same plan, so a
// lease is fully described by its branch index). SolveSubtree executes
// one lease; Merge folds the completed results back into a Solution.
//
// # Determinism across processes
//
// Each subtree runs exactly the search the in-process fan-out would run
// for that branch index: the task-local bound starts at the greedy cost
// and lowers only with the subtree's own finds, so a subtree's reported
// witness is the first optimum of its branch in DFS order — a value
// independent of every other subtree, every peer, and every external
// bound report. The external bound (SubtreeOptions.Bound) feeds the
// strictly-greater shared-cost prune only, which never cuts a subtree
// containing an optimal cover as long as the reported value is a real
// cover's cost (hence >= the global optimum). Merge replicates the
// in-process incumbent rule — lower cost first, then lower branch index
// — so a completed distributed solve returns Rows/Cost/Optimal
// bit-identical to the single-process solver at any Parallelism, no
// matter how leases were scheduled, retried, or duplicated.
//
// Truncated or missing subtrees degrade the merge to the anytime
// contract: the best cover known (at worst the greedy seed) with
// Optimal = false.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitvec"
)

// ExactPlan is the deterministic root state of an exact solve, ready to
// be fanned out as subtree leases. Create it with PlanExact. The plan is
// immutable and safe for concurrent SolveSubtree calls.
type ExactPlan struct {
	p       *Problem
	weights []int
	opts    ExactOptions
	greedy  Solution

	root     rootState
	rootMult []float64
	rootLB   int
	// terminal is non-nil when the root resolved the solve by itself
	// (root-forced rows cover everything, or the root bound proves the
	// greedy seed optimal): there is nothing to distribute.
	terminal *Solution

	// The static column view, computed once and shared read-only by every
	// subtree engine.
	colRows [][]int
	colSets []*bitvec.Set
}

// PlanExact computes the distributed plan of an exact solve: everything
// deterministic that precedes the top-level fan-out. opts.Parallelism,
// Context, TimeBudget, MaxNodes and OnIncumbent are ignored at plan time
// (subtree budgets are per-lease, see SubtreeOptions); the bound mode and
// ascent budgets are captured because they shape the tree. Two processes
// calling PlanExact with equal problems, weights and options obtain
// equal plans — the property subtree leasing by branch index relies on.
func (p *Problem) PlanExact(weights []int, opts ExactOptions) (*ExactPlan, error) {
	if weights != nil {
		if err := p.validateWeights(weights); err != nil {
			return nil, err
		}
	}
	if bad := p.UncoverableColumns(); bad != nil {
		return nil, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	// Strip the per-run knobs so the plan depends only on tree-shaping
	// options.
	opts.Parallelism = 1
	opts.Context = nil
	opts.TimeBudget = 0
	opts.MaxNodes = 0
	opts.OnIncumbent = nil

	pl := &ExactPlan{p: p, weights: weights, opts: opts}
	if p.numCols == 0 {
		pl.terminal = &Solution{Optimal: true}
		return pl, nil
	}
	greedy, err := p.solveGreedyImpl(weights)
	if err != nil {
		return nil, err
	}
	pl.greedy = greedy
	e := newEngine(p, weights, greedy, greedy.Cost, opts)
	r := e.root(greedy)
	pl.rootMult = e.rootMult
	pl.rootLB = e.rootLB
	if r.done {
		sol := e.finish()
		pl.terminal = &sol
		return pl, nil
	}
	pl.root = r
	pl.colRows = e.colRows
	pl.colSets = e.colSets
	return pl, nil
}

// NumBranches reports the number of independent subtree leases; 0 for a
// terminal plan.
func (pl *ExactPlan) NumBranches() int { return len(pl.root.branchRows) }

// Terminal returns the root-resolved solution, or nil when the plan has
// branches to solve.
func (pl *ExactPlan) Terminal() *Solution {
	if pl.terminal == nil {
		return nil
	}
	sol := *pl.terminal
	sol.Rows = append([]int(nil), pl.terminal.Rows...)
	return &sol
}

// Greedy returns the plan's greedy seed — the upper bound every subtree
// starts from, and the anytime fallback when every lease is lost.
func (pl *ExactPlan) Greedy() Solution {
	sol := pl.greedy
	sol.Rows = append([]int(nil), pl.greedy.Rows...)
	sol.RootLB = pl.rootLB
	return sol
}

// RootLB returns the root lower bound of the plan (Solution.RootLB of
// the eventual merge).
func (pl *ExactPlan) RootLB() int { return pl.rootLB }

// SubtreeOptions tunes one subtree lease.
type SubtreeOptions struct {
	// MaxNodes bounds this subtree's search; 0 means the engine default.
	// Exhaustion truncates (the result is flagged Truncated and the merge
	// loses its optimality proof).
	MaxNodes int64
	// TimeBudget, when positive, truncates the subtree after roughly this
	// much wall-clock time.
	TimeBudget time.Duration
	// Context, when non-nil, cancels the subtree (truncation, not error).
	Context context.Context
	// Bound, when non-nil, is polled at the search's node cadence for the
	// best cover cost known anywhere else — the coordinator's current
	// incumbent in a distributed solve. It must be the cost of a real
	// cover (hence never below the global optimum); non-positive values
	// mean "none known". It only accelerates pruning: completed subtree
	// results are bit-identical with or without it.
	Bound func() int
	// OnImprove observes every strict improvement this subtree finds, in
	// whole-solution terms (root-forced rows included). Calls are
	// serialized with non-increasing costs. It runs on the solver
	// goroutine under an internal lock: return quickly, don't call back.
	OnImprove func(Incumbent)
}

// SubtreeResult is the outcome of one subtree lease. Results are
// deterministic for completed (non-truncated) leases: re-running a lease
// anywhere reproduces it bit-identically.
type SubtreeResult struct {
	// Branch is the lease's top-level branch index.
	Branch int `json:"branch"`
	// Found reports that the subtree improved on the greedy seed; Rows
	// and Cost are meaningful only then.
	Found bool `json:"found"`
	// Rows is the improving cover (sorted, whole-solution: root-forced
	// rows included).
	Rows []int `json:"rows,omitempty"`
	// Cost is the improving cover's total cost.
	Cost int `json:"cost,omitempty"`
	// Nodes is the subtree's node count (effort; deterministic, since a
	// lease runs serially).
	Nodes int64 `json:"nodes"`
	// Truncated reports the subtree was cut off by a budget or
	// cancellation: its result is a best-so-far, and the merge cannot
	// prove optimality.
	Truncated bool `json:"truncated"`
}

// SolveSubtree executes one subtree lease serially. branch must be in
// [0, NumBranches); a terminal plan has none.
func (pl *ExactPlan) SolveSubtree(branch int, sub SubtreeOptions) (SubtreeResult, error) {
	if pl.terminal != nil {
		return SubtreeResult{}, fmt.Errorf("setcover: plan is terminal, no subtrees to solve")
	}
	if branch < 0 || branch >= len(pl.root.branchRows) {
		return SubtreeResult{}, fmt.Errorf("setcover: subtree branch %d out of range [0,%d)", branch, len(pl.root.branchRows))
	}
	opts := pl.opts
	opts.MaxNodes = sub.MaxNodes
	opts.TimeBudget = sub.TimeBudget
	opts.Context = sub.Context
	e := newEngine(pl.p, pl.weights, pl.greedy, pl.greedy.Cost, opts)
	// Share the plan's static column view and published multipliers; both
	// are read-only during search.
	e.colRows = pl.colRows
	e.colSets = pl.colSets
	e.rootMult = pl.rootMult
	e.rootLB = pl.rootLB
	e.externalBound = sub.Bound
	if sub.OnImprove != nil {
		e.onIncumbent = sub.OnImprove
	}
	// The subtree's node count starts at zero: the root node is accounted
	// once by the coordinator's merge, not once per lease.
	e.runBranch(pl.root, branch, pl.greedy.Cost)

	res := SubtreeResult{
		Branch:    branch,
		Nodes:     e.nodes.Load(),
		Truncated: e.truncated.Load(),
	}
	e.mu.Lock()
	if e.bestBranch != unsetBranch {
		res.Found = true
		res.Cost = e.bestCost
		res.Rows = append([]int(nil), e.bestRows...)
	}
	e.mu.Unlock()
	sort.Ints(res.Rows)
	return res, nil
}

// Merge folds subtree results into the final Solution, replicating the
// in-process incumbent rule exactly: lower cost wins, ties resolve
// toward the lower branch index, and the greedy seed stands when nothing
// improved on it. Duplicate results for one branch are tolerated
// (completed leases are deterministic, so duplicates agree; for a
// truncated duplicate the completed one is preferred). Optimal is
// proven only when every branch has a completed result. Nodes is the
// root node plus every distinct branch's maximal observed effort.
func (pl *ExactPlan) Merge(results []SubtreeResult) Solution {
	if pl.terminal != nil {
		return *pl.Terminal()
	}
	best := pl.Greedy()
	bestBranch := unsetBranch
	nodes := make(map[int]int64, len(results))
	completed := make(map[int]bool, len(results))
	for _, r := range results {
		if r.Branch < 0 || r.Branch >= len(pl.root.branchRows) {
			continue
		}
		if n := nodes[r.Branch]; r.Nodes > n {
			nodes[r.Branch] = r.Nodes
		}
		if !r.Truncated {
			completed[r.Branch] = true
		}
		if r.Found && (r.Cost < best.Cost || (r.Cost == best.Cost && r.Branch < bestBranch)) {
			best.Cost = r.Cost
			best.Rows = append([]int(nil), r.Rows...)
			bestBranch = r.Branch
		}
	}
	best.Nodes = 1
	for _, n := range nodes {
		best.Nodes += n
	}
	best.Optimal = len(completed) == len(pl.root.branchRows)
	best.RootLB = pl.rootLB
	sort.Ints(best.Rows)
	return best
}
