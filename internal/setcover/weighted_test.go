package setcover

import (
	"math/rand"
	"testing"
)

func TestWeightedPrefersCheapCover(t *testing.T) {
	// One expensive row covers everything; two cheap rows split it.
	p := mk(4,
		[]int{0, 1, 2, 3}, // weight 10
		[]int{0, 1},       // weight 2
		[]int{2, 3},       // weight 2
	)
	weights := []int{10, 2, 2}
	sol, err := p.SolveExactWeighted(weights, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := totalWeight(weights, sol.Rows); got != 4 {
		t.Errorf("weighted optimum cost %d (%v), want 4", got, sol.Rows)
	}
	// Unweighted optimum is the single big row.
	unw, err := p.SolveExact(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unw.Rows) != 1 {
		t.Errorf("cardinality optimum = %v, want the single row", unw.Rows)
	}
}

func TestWeightedGreedyRatioRule(t *testing.T) {
	p := mk(3,
		[]int{0, 1, 2}, // ratio 9/3 = 3
		[]int{0},       // ratio 1
		[]int{1, 2},    // ratio 1
	)
	weights := []int{9, 1, 2}
	sol, err := p.SolveGreedyWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(sol.Rows) {
		t.Fatal("greedy weighted cover invalid")
	}
	if got := totalWeight(weights, sol.Rows); got != 3 {
		t.Errorf("greedy cost %d (%v), want 3", got, sol.Rows)
	}
}

func TestWeightedValidation(t *testing.T) {
	p := mk(2, []int{0, 1})
	if _, err := p.SolveGreedyWeighted([]int{1, 2}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := p.SolveExactWeighted([]int{-1}, ExactOptions{}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, _, err := p.SolveMinimalWeighted([]int{1, 2}, ExactOptions{}); err == nil {
		t.Error("wrong weight count accepted by pipeline")
	}
}

// Exact weighted must match brute force on random instances.
func TestWeightedExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		p := randomCoverable(rng, 4+rng.Intn(8), 5+rng.Intn(10))
		weights := make([]int, p.NumRows())
		for i := range weights {
			weights[i] = 1 + rng.Intn(9)
		}
		sol, err := p.SolveExactWeighted(weights, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(sol.Rows) {
			t.Fatalf("trial %d: invalid cover", trial)
		}
		want := bruteForceWeighted(p, weights)
		if got := totalWeight(weights, sol.Rows); got != want {
			t.Errorf("trial %d: cost %d, brute force %d", trial, got, want)
		}
		// The full pipeline (weighted reduction + exact) must agree.
		pipe, _, err := p.SolveMinimalWeighted(weights, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := totalWeight(weights, pipe.Rows); got != want {
			t.Errorf("trial %d: pipeline cost %d, brute force %d", trial, got, want)
		}
	}
}

func bruteForceWeighted(p *Problem, weights []int) int {
	n := p.NumRows()
	best := 1 << 30
	for mask := 0; mask < 1<<uint(n); mask++ {
		cost := 0
		var rows []int
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				cost += weights[i]
				rows = append(rows, i)
			}
		}
		if cost < best && p.Verify(rows) {
			best = cost
		}
	}
	return best
}

// Weight-aware dominance must never delete a cheap row in favour of a
// heavier superset.
func TestWeightedReductionSafety(t *testing.T) {
	p := mk(2,
		[]int{0},    // cheap, weight 1
		[]int{0, 1}, // heavy superset, weight 10
		[]int{1},    // cheap, weight 1
	)
	weights := []int{1, 10, 1}
	red, err := p.ReduceWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range red.DominatedRows {
		if r == 0 || r == 2 {
			t.Errorf("cheap row %d deleted under a heavier dominator", r)
		}
	}
	sol, _, err := p.SolveMinimalWeighted(weights, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := totalWeight(weights, sol.Rows); got != 2 {
		t.Errorf("weighted optimum cost %d (%v), want 2", got, sol.Rows)
	}
}

func TestWeightedEqualRowsKeepLighter(t *testing.T) {
	p := mk(2,
		[]int{0, 1}, // weight 5
		[]int{0, 1}, // weight 3: identical coverage, cheaper
	)
	weights := []int{5, 3}
	sol, _, err := p.SolveMinimalWeighted(weights, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rows) != 1 || sol.Rows[0] != 1 {
		t.Errorf("solution %v, want the lighter duplicate (row 1)", sol.Rows)
	}
}

// Regression for the free-row bug: SolveGreedyWeighted documented "take
// zero-weight rows immediately" but scanned them by ratio, where every free
// row ties at 0 and the lowest index wins regardless of gain. Free rows are
// now taken up front, highest gain first, so the big free row 1 preempts
// the small free row 0 (which then gains nothing and is dropped).
func TestWeightedGreedyTakesFreeRowsByGain(t *testing.T) {
	p := mk(5,
		[]int{0},       // free, gain 1 — the old code took this first
		[]int{0, 1, 2}, // free, gain 3 — must come first now
		[]int{3, 4},    // weight 5
		[]int{4},       // weight 1
	)
	weights := []int{0, 0, 5, 1}
	sol, err := p.SolveGreedyWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(sol.Rows) != len(want) {
		t.Fatalf("rows = %v, want %v", sol.Rows, want)
	}
	for i, r := range want {
		if sol.Rows[i] != r {
			t.Fatalf("rows = %v, want %v", sol.Rows, want)
		}
	}
	if sol.Cost != 6 {
		t.Errorf("cost = %d, want 6", sol.Cost)
	}
	if !p.Verify(sol.Rows) {
		t.Error("cover invalid")
	}
}

func TestWeightedZeroWeights(t *testing.T) {
	// All-zero weights: any cover is optimal at cost 0; solver must not
	// divide by zero or loop.
	p := mk(3, []int{0, 1}, []int{1, 2}, []int{2})
	weights := []int{0, 0, 0}
	sol, err := p.SolveExactWeighted(weights, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(sol.Rows) {
		t.Error("invalid cover with zero weights")
	}
}

func TestUnweightedReductionUnchanged(t *testing.T) {
	// Guard: the weighted refactor must not alter unweighted behaviour.
	p := mk(3,
		[]int{0, 1},
		[]int{0, 1, 2},
		[]int{2},
	)
	red := p.Reduce()
	if len(red.DominatedRows) != 2 || len(red.Essential) != 1 || red.Essential[0] != 1 {
		t.Errorf("unweighted reduction changed: %+v", red)
	}
}
