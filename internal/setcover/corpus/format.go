package corpus

// The canonical ".scp" text form of an instance. The format is
// deliberately line-oriented and whitespace-exact, so "byte-identical" is
// a meaningful determinism contract for the generator and the committed
// corpus files:
//
//	c reseedcover scp v1
//	c params rows=R cols=C density=D costs=unit|uniform maxcost=M seed=S
//	p scp <numRows> <numCols>
//	w <cost per row, numRows integers>
//	r <ascending column indices>        (one line per row, in row order)
//
// Comment lines other than the recognized header/params are ignored on
// parse, but Format never emits any — Format ∘ Parse is the identity on
// canonical bytes.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/setcover"
)

const formatHeader = "c reseedcover scp v1"

// Format renders the instance in canonical .scp form. The bytes depend
// only on the instance contents, never on the environment.
func Format(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "c params rows=%d cols=%d density=%s costs=%s maxcost=%d seed=%d\n",
		inst.Params.Rows, inst.Params.Cols,
		strconv.FormatFloat(inst.Params.Density, 'g', -1, 64),
		inst.Params.Costs, inst.Params.maxCost(), inst.Params.Seed)
	fmt.Fprintf(bw, "p scp %d %d\n", inst.Problem.NumRows(), inst.Problem.NumCols())
	bw.WriteString("w")
	for _, c := range inst.Costs {
		fmt.Fprintf(bw, " %d", c)
	}
	bw.WriteByte('\n')
	for i := 0; i < inst.Problem.NumRows(); i++ {
		bw.WriteString("r")
		inst.Problem.Row(i).ForEach(func(j int) { fmt.Fprintf(bw, " %d", j) })
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// FormatString is Format into a string.
func FormatString(inst *Instance) string {
	var sb strings.Builder
	_ = Format(&sb, inst) // infallible: strings.Builder writes cannot fail
	return sb.String()
}

// Parse reads an instance in .scp form. The name is the caller's label
// (typically the file stem); the embedded params line, when present,
// restores Instance.Params so determinism tests can regenerate and
// compare.
func Parse(name string, r io.Reader) (*Instance, error) {
	inst := &Instance{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		numRows, numCols int
		rowsSeen         int
		sawProblem       bool
	)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c":
			if len(fields) >= 2 && fields[1] == "params" {
				if err := inst.parseParams(fields[2:]); err != nil {
					return nil, fmt.Errorf("corpus: %s:%d: %v", name, line, err)
				}
			}
		case "p":
			if sawProblem {
				return nil, fmt.Errorf("corpus: %s:%d: duplicate problem line", name, line)
			}
			if len(fields) != 4 || fields[1] != "scp" {
				return nil, fmt.Errorf("corpus: %s:%d: malformed problem line %q", name, line, text)
			}
			var err1, err2 error
			numRows, err1 = strconv.Atoi(fields[2])
			numCols, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || numRows < 0 || numCols < 0 {
				return nil, fmt.Errorf("corpus: %s:%d: bad problem dimensions %q", name, line, text)
			}
			sawProblem = true
			inst.Problem = setcover.NewProblem(numCols)
		case "w":
			if !sawProblem {
				return nil, fmt.Errorf("corpus: %s:%d: weights before problem line", name, line)
			}
			if len(fields)-1 != numRows {
				return nil, fmt.Errorf("corpus: %s:%d: %d weights for %d rows", name, line, len(fields)-1, numRows)
			}
			inst.Costs = make([]int, 0, numRows)
			for _, f := range fields[1:] {
				c, err := strconv.Atoi(f)
				if err != nil || c < 1 {
					return nil, fmt.Errorf("corpus: %s:%d: bad cost %q", name, line, f)
				}
				inst.Costs = append(inst.Costs, c)
			}
		case "r":
			if !sawProblem {
				return nil, fmt.Errorf("corpus: %s:%d: row before problem line", name, line)
			}
			if rowsSeen == numRows {
				return nil, fmt.Errorf("corpus: %s:%d: more than %d rows", name, line, numRows)
			}
			set := bitvec.NewSet(numCols)
			prev := -1
			for _, f := range fields[1:] {
				j, err := strconv.Atoi(f)
				if err != nil || j < 0 || j >= numCols {
					return nil, fmt.Errorf("corpus: %s:%d: bad column %q", name, line, f)
				}
				if j <= prev {
					return nil, fmt.Errorf("corpus: %s:%d: columns not strictly ascending at %d", name, line, j)
				}
				prev = j
				set.Add(j)
			}
			inst.Problem.AddRow(set)
			rowsSeen++
		default:
			return nil, fmt.Errorf("corpus: %s:%d: unknown line kind %q", name, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: %s: %v", name, err)
	}
	switch {
	case !sawProblem:
		return nil, fmt.Errorf("corpus: %s: no problem line", name)
	case rowsSeen != numRows:
		return nil, fmt.Errorf("corpus: %s: %d rows declared, %d given", name, numRows, rowsSeen)
	case inst.Costs == nil:
		return nil, fmt.Errorf("corpus: %s: no weights line", name)
	}
	return inst, nil
}

func (inst *Instance) parseParams(kvs []string) error {
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("malformed param %q", kv)
		}
		var err error
		switch k {
		case "rows":
			inst.Params.Rows, err = strconv.Atoi(v)
		case "cols":
			inst.Params.Cols, err = strconv.Atoi(v)
		case "density":
			inst.Params.Density, err = strconv.ParseFloat(v, 64)
		case "costs":
			switch v {
			case "unit":
				inst.Params.Costs = CostUnit
			case "uniform":
				inst.Params.Costs = CostUniform
			default:
				err = fmt.Errorf("unknown cost class %q", v)
			}
		case "maxcost":
			inst.Params.MaxCost, err = strconv.Atoi(v)
		case "seed":
			inst.Params.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return fmt.Errorf("unknown param %q", k)
		}
		if err != nil {
			return fmt.Errorf("param %q: %v", kv, err)
		}
	}
	return nil
}
