package corpus

// The bounds harness: every corpus instance solved under both lower-bound
// modes, the measurements serialized as the repository's first committed
// perf-trajectory file, BENCH_bounds.json. Node counts and costs are
// deterministic at Parallelism 1; wall times are environmental and
// recorded for trend reading only.

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"time"

	"repro/internal/setcover"
)

// BenchSchema identifies the BENCH_bounds.json format.
const BenchSchema = "reseedcover-bench-bounds/v1"

// DefaultOpenNodeBudget bounds each open-tier solve: enough tree to make
// the anytime best-so-far meaningful, small enough to keep the harness
// seconds-fast.
const DefaultOpenNodeBudget = 50_000

// BenchOptions tunes a RunBounds sweep.
type BenchOptions struct {
	// Parallelism is handed to every solve (1 = serial, the deterministic
	// node-count setting the committed file uses; 0 = one worker per
	// processor).
	Parallelism int
	// OpenNodeBudget truncates open-tier solves (0 = DefaultOpenNodeBudget).
	OpenNodeBudget int64
	// Tiers restricts the sweep (nil = every tier).
	Tiers []Tier
}

// BoundRun is one (instance, bound mode) measurement.
type BoundRun struct {
	// Nodes is the branch-and-bound node count of the solve.
	Nodes int64 `json:"nodes"`
	// WallMS is the solve's wall-clock time in milliseconds (environment
	// dependent; read trends, not digits).
	WallMS float64 `json:"wall_ms"`
	// Cost is the returned cover's cost.
	Cost int `json:"cost"`
	// Optimal reports whether optimality was proven within the budget.
	Optimal bool `json:"optimal"`
	// RootLB is the root lower bound of the solve (see
	// setcover.Solution.RootLB).
	RootLB int `json:"root_lb"`
	// Tightness is RootLB/Cost — 1.0 means the root bound alone proved
	// the optimum.
	Tightness float64 `json:"tightness"`
}

// InstanceResult is one instance's row of the trajectory file.
type InstanceResult struct {
	ID      string `json:"id"`
	Tier    Tier   `json:"tier"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Density string `json:"density"`
	Costs   string `json:"costs"`
	// Golden is the committed optimal cost (absent for open instances).
	Golden *int `json:"golden,omitempty"`
	// Counting and Lagrangian are the two bound modes' measurements over
	// the same instance.
	Counting   BoundRun `json:"counting"`
	Lagrangian BoundRun `json:"lagrangian"`
}

// BenchSummary aggregates the acceptance numbers.
type BenchSummary struct {
	// HardNodesCounting / HardNodesLagrangian are total nodes over the
	// hard tier; HardNodeReduction is their ratio — the ≥5x acceptance
	// criterion of the Lagrangian bound.
	HardNodesCounting   int64   `json:"hard_nodes_counting"`
	HardNodesLagrangian int64   `json:"hard_nodes_lagrangian"`
	HardNodeReduction   float64 `json:"hard_node_reduction"`
	// TotalNodesCounting / TotalNodesLagrangian cover every solved
	// instance in the sweep.
	TotalNodesCounting   int64 `json:"total_nodes_counting"`
	TotalNodesLagrangian int64 `json:"total_nodes_lagrangian"`
}

// Bench is the whole trajectory document.
type Bench struct {
	Schema string `json:"schema"`
	// GeneratedAt is the RFC3339 run timestamp.
	GeneratedAt string `json:"generated_at"`
	// Parallelism echoes BenchOptions.Parallelism.
	Parallelism int `json:"parallelism"`
	// OpenNodeBudget echoes the open-tier truncation budget.
	OpenNodeBudget int64            `json:"open_node_budget"`
	Instances      []InstanceResult `json:"instances"`
	Summary        BenchSummary     `json:"summary"`
}

// solveOne runs one instance under one bound mode.
func solveOne(inst *Instance, mode setcover.BoundMode, maxNodes int64, parallelism int) (setcover.Solution, time.Duration, error) {
	opts := setcover.ExactOptions{
		Bound:       mode,
		MaxNodes:    maxNodes,
		Parallelism: parallelism,
	}
	//reseedvet:ignore detsource -- wall-clock measurement only: WallMS is reporting output, excluded from the solver cross-check and the CI trajectory diff
	start := time.Now()
	var (
		sol setcover.Solution
		err error
	)
	if w := inst.Weights(); w != nil {
		sol, err = inst.Problem.SolveExactWeighted(w, opts)
	} else {
		sol, err = inst.Problem.SolveExact(opts)
	}
	//reseedvet:ignore detsource -- wall-clock measurement only: WallMS is reporting output, excluded from the solver cross-check and the CI trajectory diff
	return sol, time.Since(start), err
}

func toRun(sol setcover.Solution, wall time.Duration) BoundRun {
	r := BoundRun{
		Nodes:   sol.Nodes,
		WallMS:  float64(wall.Microseconds()) / 1000,
		Cost:    sol.Cost,
		Optimal: sol.Optimal,
		RootLB:  sol.RootLB,
	}
	if sol.Cost > 0 {
		r.Tightness = float64(sol.RootLB) / float64(sol.Cost)
	}
	return r
}

// RunBounds sweeps the committed corpus under both bound modes and
// returns the trajectory document. It is also a cross-check: completed
// solves must agree with each other (bit-identical rows — the bound only
// prunes) and with the golden manifest; any disagreement is an error, so
// the CI harness run doubles as a solver gate.
func RunBounds(opts BenchOptions) (*Bench, error) {
	if opts.OpenNodeBudget == 0 {
		opts.OpenNodeBudget = DefaultOpenNodeBudget
	}
	golden, err := GoldenManifest()
	if err != nil {
		return nil, err
	}
	bench := &Bench{
		Schema: BenchSchema,
		//reseedvet:ignore detsource -- generated_at is a provenance timestamp, excluded from the CI trajectory diff
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Parallelism:    opts.Parallelism,
		OpenNodeBudget: opts.OpenNodeBudget,
	}
	for _, spec := range Specs() {
		if opts.Tiers != nil && !slices.Contains(opts.Tiers, spec.Tier) {
			continue
		}
		inst, err := Load(spec.Name)
		if err != nil {
			return nil, err
		}
		var budget int64
		if spec.Tier == TierOpen {
			budget = opts.OpenNodeBudget
		}
		res := InstanceResult{
			ID:      spec.Name,
			Tier:    spec.Tier,
			Rows:    inst.Problem.NumRows(),
			Cols:    inst.Problem.NumCols(),
			Density: fmt.Sprintf("%g", spec.Params.Density),
			Costs:   spec.Params.Costs.String(),
		}
		cSol, cWall, err := solveOne(inst, setcover.BoundCounting, budget, opts.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s counting: %w", spec.Name, err)
		}
		lSol, lWall, err := solveOne(inst, setcover.BoundLagrangian, budget, opts.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s lagrangian: %w", spec.Name, err)
		}
		if cSol.Optimal && lSol.Optimal {
			if cSol.Cost != lSol.Cost || !slices.Equal(cSol.Rows, lSol.Rows) {
				return nil, fmt.Errorf("corpus: %s: bound modes disagree: counting %v (cost %d) vs lagrangian %v (cost %d)",
					spec.Name, cSol.Rows, cSol.Cost, lSol.Rows, lSol.Cost)
			}
		}
		if g, ok := golden[spec.Name]; ok && g.Optimal != nil {
			if cSol.Optimal && cSol.Cost != *g.Optimal {
				return nil, fmt.Errorf("corpus: %s: counting solve cost %d != golden %d", spec.Name, cSol.Cost, *g.Optimal)
			}
			if lSol.Optimal && lSol.Cost != *g.Optimal {
				return nil, fmt.Errorf("corpus: %s: lagrangian solve cost %d != golden %d", spec.Name, lSol.Cost, *g.Optimal)
			}
			opt := *g.Optimal
			res.Golden = &opt
		}
		res.Counting = toRun(cSol, cWall)
		res.Lagrangian = toRun(lSol, lWall)
		bench.Instances = append(bench.Instances, res)

		bench.Summary.TotalNodesCounting += cSol.Nodes
		bench.Summary.TotalNodesLagrangian += lSol.Nodes
		if spec.Tier == TierHard {
			bench.Summary.HardNodesCounting += cSol.Nodes
			bench.Summary.HardNodesLagrangian += lSol.Nodes
		}
	}
	if bench.Summary.HardNodesLagrangian > 0 {
		bench.Summary.HardNodeReduction =
			float64(bench.Summary.HardNodesCounting) / float64(bench.Summary.HardNodesLagrangian)
	}
	return bench, nil
}

// WriteJSON renders the document in the committed two-space-indent form.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseBench reads a BENCH_bounds.json document and checks its schema.
func ParseBench(r io.Reader) (*Bench, error) {
	var b Bench
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("corpus: bench document: %w", err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("corpus: bench document schema %q, want %q", b.Schema, BenchSchema)
	}
	return &b, nil
}
