package corpus

// The committed graded corpus: tier specs, the embedded canonical .scp
// files they generate, and the golden-cost manifest. The files under
// instances/ and golden.json are committed artifacts — regenerate them
// with `benchgen -cover-corpus` after changing Specs, and let
// TestCorpusGolden/TestCommittedCorpusMatchesGenerator tell you if they
// drift.

import (
	"embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/parallel"
)

// Tier grades the corpus by hardness for the exact solver.
type Tier string

const (
	// TierEasy instances are solved in microseconds by either bound;
	// they pin correctness, not performance.
	TierEasy Tier = "easy"
	// TierMedium instances take the counting bound thousands of nodes —
	// enough tree for pruning differences to show, still instant.
	TierMedium Tier = "medium"
	// TierHard instances are dense, where the counting bound collapses
	// (nearly all columns pairwise intersect) and the Lagrangian bound
	// carries the search. The ≥5x node-reduction acceptance target is
	// summed over this tier.
	TierHard Tier = "hard"
	// TierOpen instances are not solved to proven optimality by the
	// current solver within corpus budgets: golden records the best known
	// cost, and harness runs exercise the anytime contract.
	TierOpen Tier = "open"
)

// Tiers lists the tiers in grading order.
func Tiers() []Tier { return []Tier{TierEasy, TierMedium, TierHard, TierOpen} }

// Spec names one corpus instance and the parameters that generate it.
type Spec struct {
	Name   string
	Tier   Tier
	Params Params
}

// Specs returns the corpus definition in canonical order (the order of
// instances/ and of every harness report). Dense hard-tier instances are
// where the counting bound degenerates; the open tier is sized beyond the
// corpus node budgets on purpose.
func Specs() []Spec {
	return []Spec{
		{"easy-1", TierEasy, Params{Rows: 25, Cols: 20, Density: 0.2, Costs: CostUnit, Seed: 101}},
		{"easy-2", TierEasy, Params{Rows: 30, Cols: 25, Density: 0.25, Costs: CostUnit, Seed: 102}},
		{"easy-3", TierEasy, Params{Rows: 30, Cols: 25, Density: 0.25, Costs: CostUniform, MaxCost: 20, Seed: 103}},
		{"easy-4", TierEasy, Params{Rows: 40, Cols: 30, Density: 0.3, Costs: CostUniform, Seed: 104}},
		{"medium-1", TierMedium, Params{Rows: 60, Cols: 40, Density: 0.3, Costs: CostUnit, Seed: 201}},
		{"medium-2", TierMedium, Params{Rows: 60, Cols: 45, Density: 0.35, Costs: CostUnit, Seed: 202}},
		{"medium-3", TierMedium, Params{Rows: 70, Cols: 50, Density: 0.3, Costs: CostUniform, MaxCost: 50, Seed: 203}},
		{"medium-4", TierMedium, Params{Rows: 80, Cols: 50, Density: 0.35, Costs: CostUniform, Seed: 204}},
		{"hard-1", TierHard, Params{Rows: 100, Cols: 60, Density: 0.45, Costs: CostUnit, Seed: 301}},
		{"hard-2", TierHard, Params{Rows: 110, Cols: 65, Density: 0.5, Costs: CostUnit, Seed: 302}},
		{"hard-3", TierHard, Params{Rows: 110, Cols: 70, Density: 0.4, Costs: CostUniform, Seed: 303}},
		{"hard-4", TierHard, Params{Rows: 120, Cols: 70, Density: 0.5, Costs: CostUnit, Seed: 304}},
		{"open-1", TierOpen, Params{Rows: 260, Cols: 180, Density: 0.3, Costs: CostUnit, Seed: 401}},
		{"open-2", TierOpen, Params{Rows: 340, Cols: 240, Density: 0.25, Costs: CostUniform, Seed: 402}},
	}
}

// GenerateAll generates every spec'd instance, fanning out across the
// internal/parallel pool. Each instance is produced from its own seeded
// generator, so the result — and its Format bytes — is identical for
// every parallelism value (1 forces serial, 0 one worker per processor).
func GenerateAll(parallelism int) ([]*Instance, error) {
	specs := Specs()
	out := make([]*Instance, len(specs))
	err := parallel.ForEach(parallel.Degree(parallelism), len(specs), func(_, i int) error {
		inst, err := Generate(specs[i].Name, specs[i].Params)
		if err != nil {
			return fmt.Errorf("corpus: generating %s: %w", specs[i].Name, err)
		}
		out[i] = inst
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

//go:embed instances/*.scp golden.json
var corpusFS embed.FS

// Load parses the committed corpus instance with the given name.
func Load(name string) (*Instance, error) {
	f, err := corpusFS.Open("instances/" + name + ".scp")
	if err != nil {
		return nil, fmt.Errorf("corpus: unknown instance %q: %w", name, err)
	}
	defer f.Close()
	return Parse(name, f)
}

// RawInstance returns the committed canonical bytes of an instance, for
// byte-identity checks against the generator.
func RawInstance(name string) ([]byte, error) {
	return corpusFS.ReadFile("instances/" + name + ".scp")
}

// LoadAll parses every committed instance, in Specs order.
func LoadAll() ([]*Instance, error) {
	out := make([]*Instance, 0, len(Specs()))
	for _, s := range Specs() {
		inst, err := Load(s.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// Golden is one instance's committed reference entry.
type Golden struct {
	// Tier echoes the instance's tier, so consumers of golden.json alone
	// can grade without importing the specs.
	Tier Tier `json:"tier"`
	// Optimal is the proven optimal cover cost, or nil for open-tier
	// instances, where BestKnown records the best cost any run has found.
	Optimal *int `json:"optimal"`
	// BestKnown is the best cover cost ever recorded (equal to *Optimal
	// when Optimal is set). An open instance solved better than this is a
	// result worth committing.
	BestKnown int `json:"best_known"`
}

// GoldenManifest parses the committed golden.json: instance name →
// reference costs.
func GoldenManifest() (map[string]Golden, error) {
	raw, err := corpusFS.ReadFile("golden.json")
	if err != nil {
		return nil, fmt.Errorf("corpus: golden manifest: %w", err)
	}
	var m map[string]Golden
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("corpus: golden manifest: %w", err)
	}
	return m, nil
}

// FormatGolden renders a golden manifest in its canonical committed form
// (sorted keys, two-space indent, trailing newline).
func FormatGolden(m map[string]Golden) ([]byte, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(m[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "  %q: %s", name, entry)
		if i < len(names)-1 {
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")
	return []byte(sb.String()), nil
}
