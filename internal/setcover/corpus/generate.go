// Package corpus is the committed set-covering instance corpus and its
// Balas–Ho-style generator: graded random instances (easy → medium → hard →
// open) with golden optimal costs, the standing measuring stick for the
// exact solver's lower bounds.
//
// The generator follows the recipe of Balas and Ho ("Set covering
// algorithms using cutting planes, heuristics, and subgradient
// optimization", Math. Programming 1980) as popularized by the Gasse et
// al. benchmark generators: a rows×cols 0/1 matrix of target density where
// every column is coverable by at least two rows and every row covers at
// least one column, with unit or uniformly random integer row costs.
// Generation is seeded and byte-reproducible: the same Params always
// produce the same instance, the canonical text form (Format) is stable
// down to the byte, and generating a whole tier fans out across the
// internal/parallel pool with per-instance seeds, so the output is
// identical for every Parallelism value.
//
// Terminology matches internal/setcover: ROWS cover COLUMNS (the
// transpose of the LP literature, where rows are covering constraints).
package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/setcover"
)

// CostClass selects the row-cost distribution of a generated instance.
type CostClass int

const (
	// CostUnit gives every row cost 1 (minimum-cardinality covering).
	CostUnit CostClass = iota
	// CostUniform draws integer row costs uniformly from [1, MaxCost]
	// (minimum-weight covering).
	CostUniform
)

func (c CostClass) String() string {
	switch c {
	case CostUnit:
		return "unit"
	case CostUniform:
		return "uniform"
	default:
		return fmt.Sprintf("CostClass(%d)", int(c))
	}
}

// Params fully determine one generated instance.
type Params struct {
	// Rows is the number of covering rows (sets). At least 2, so every
	// column can get the two covering rows Balas–Ho instances guarantee.
	Rows int
	// Cols is the number of columns to cover (elements).
	Cols int
	// Density is the target fraction of ones in the Rows×Cols incidence
	// matrix, in (0, 1]. The guarantee floors (two rows per column, one
	// column per row) may push the real density slightly above tiny
	// targets.
	Density float64
	// Costs selects the row-cost class.
	Costs CostClass
	// MaxCost is the inclusive cost ceiling for CostUniform (ignored for
	// CostUnit); 0 means 100, the Balas–Ho convention.
	MaxCost int
	// Seed drives the deterministic generation.
	Seed int64
}

func (p Params) maxCost() int {
	if p.MaxCost == 0 {
		return 100
	}
	return p.MaxCost
}

func (p Params) validate() error {
	switch {
	case p.Rows < 2:
		return fmt.Errorf("corpus: need at least 2 rows, got %d", p.Rows)
	case p.Cols < 1:
		return fmt.Errorf("corpus: need at least 1 column, got %d", p.Cols)
	case !(p.Density > 0 && p.Density <= 1):
		return fmt.Errorf("corpus: density %v outside (0, 1]", p.Density)
	case p.Costs != CostUnit && p.Costs != CostUniform:
		return fmt.Errorf("corpus: unknown cost class %d", int(p.Costs))
	case p.MaxCost < 0:
		return fmt.Errorf("corpus: negative max cost %d", p.MaxCost)
	}
	return nil
}

// Instance is one set-covering instance of the corpus: the problem, its
// per-row costs, and the parameters that generated it (zero Params for
// instances parsed from a source that omitted them).
type Instance struct {
	Name    string
	Params  Params
	Costs   []int // one positive cost per row; all 1 for CostUnit
	Problem *setcover.Problem
}

// Weights returns the cost slice in the form the solvers take: nil for a
// unit-cost instance (SolveExact), the per-row costs otherwise
// (SolveExactWeighted).
func (inst *Instance) Weights() []int {
	for _, c := range inst.Costs {
		if c != 1 {
			return inst.Costs
		}
	}
	return nil
}

// Generate builds the instance determined by params. The same params
// always yield the same instance; Format renders it to canonical bytes.
func Generate(name string, params Params) (*Instance, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(params.Seed))
	R, C := params.Rows, params.Cols

	// Distribute the nonzeros over the columns: two per column guaranteed,
	// the remainder spread uniformly (rejecting full columns).
	nnz := int(math.Round(params.Density * float64(R) * float64(C)))
	if nnz < 2*C {
		nnz = 2 * C
	}
	if nnz > R*C {
		nnz = R * C
	}
	perCol := make([]int, C)
	for j := range perCol {
		perCol[j] = 2
	}
	full := 0
	for extra := nnz - 2*C; extra > 0 && full < C; {
		j := rng.Intn(C)
		if perCol[j] < R {
			perCol[j]++
			extra--
			if perCol[j] == R {
				full++
			}
		}
	}

	// Pick each column's rows by partial Fisher–Yates over a reusable
	// permutation — perCol[j] distinct rows, order-independent because the
	// row sets are bit sets.
	rowCols := make([][]int, R)
	perm := make([]int, R)
	for j := 0; j < C; j++ {
		for i := range perm {
			perm[i] = i
		}
		for k := 0; k < perCol[j]; k++ {
			i := k + rng.Intn(R-k)
			perm[k], perm[i] = perm[i], perm[k]
			rowCols[perm[k]] = append(rowCols[perm[k]], j)
		}
	}
	// Balas–Ho guarantee: no useless rows. A row that covers nothing gets
	// one uniformly chosen column (it cannot already contain it).
	for r := range rowCols {
		if len(rowCols[r]) == 0 {
			rowCols[r] = append(rowCols[r], rng.Intn(C))
		}
	}

	costs := make([]int, R)
	for r := range costs {
		costs[r] = 1
	}
	if params.Costs == CostUniform {
		for r := range costs {
			costs[r] = 1 + rng.Intn(params.maxCost())
		}
	}

	p := setcover.NewProblem(C)
	set := bitvec.NewSet(C)
	for _, cols := range rowCols {
		set.Clear()
		for _, j := range cols {
			set.Add(j)
		}
		p.AddRow(set)
	}
	return &Instance{Name: name, Params: params, Costs: costs, Problem: p}, nil
}
