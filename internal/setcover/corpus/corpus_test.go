package corpus

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/setcover"
)

// TestSpecsWellFormed pins the corpus definition itself: unique names,
// known tiers, valid params, and at least one instance per tier.
func TestSpecsWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	seeds := make(map[int64]bool)
	perTier := make(map[Tier]int)
	for _, s := range Specs() {
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if seeds[s.Params.Seed] {
			t.Errorf("%s: duplicate seed %d", s.Name, s.Params.Seed)
		}
		seeds[s.Params.Seed] = true
		if err := s.Params.validate(); err != nil {
			t.Errorf("%s: invalid params: %v", s.Name, err)
		}
		if !strings.HasPrefix(s.Name, string(s.Tier)+"-") {
			t.Errorf("%s: name does not carry its tier %q", s.Name, s.Tier)
		}
		perTier[s.Tier]++
	}
	for _, tier := range Tiers() {
		if perTier[tier] == 0 {
			t.Errorf("tier %q has no instances", tier)
		}
	}
}

// TestCommittedCorpusMatchesGenerator regenerates every instance from its
// spec and requires byte-identity with the committed .scp file — the
// committed corpus IS the generator output, nothing hand-edited.
func TestCommittedCorpusMatchesGenerator(t *testing.T) {
	for _, spec := range Specs() {
		inst, err := Generate(spec.Name, spec.Params)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RawInstance(spec.Name)
		if err != nil {
			t.Fatalf("%s: missing committed instance (run benchgen -cover-corpus): %v", spec.Name, err)
		}
		if got := FormatString(inst); !bytes.Equal([]byte(got), want) {
			t.Errorf("%s: committed bytes differ from generator output — regenerate with benchgen -cover-corpus", spec.Name)
		}
	}
}

// TestGenerateDeterminism: the same params must produce byte-identical
// output across repeated calls and across GenerateAll parallelism values.
func TestGenerateDeterminism(t *testing.T) {
	params := Params{Rows: 50, Cols: 35, Density: 0.3, Costs: CostUniform, MaxCost: 9, Seed: 777}
	a, err := Generate("det", params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("det", params)
	if err != nil {
		t.Fatal(err)
	}
	if FormatString(a) != FormatString(b) {
		t.Fatal("same params produced different bytes across calls")
	}

	var baseline []string
	for _, par := range []int{1, 2, 0} {
		instances, err := GenerateAll(par)
		if err != nil {
			t.Fatal(err)
		}
		rendered := make([]string, len(instances))
		for i, inst := range instances {
			rendered[i] = FormatString(inst)
		}
		if baseline == nil {
			baseline = rendered
			continue
		}
		for i := range rendered {
			if rendered[i] != baseline[i] {
				t.Fatalf("parallelism %d: instance %s bytes differ from serial generation", par, instances[i].Name)
			}
		}
	}
}

// checkWellFormed asserts the Balas–Ho instance guarantees.
func checkWellFormed(t *testing.T, inst *Instance) {
	t.Helper()
	p := inst.Problem
	if len(inst.Costs) != p.NumRows() {
		t.Fatalf("%s: %d costs for %d rows", inst.Name, len(inst.Costs), p.NumRows())
	}
	for i, c := range inst.Costs {
		if c < 1 {
			t.Fatalf("%s: row %d has non-positive cost %d", inst.Name, i, c)
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		if p.Row(i).Len() == 0 {
			t.Fatalf("%s: row %d covers nothing", inst.Name, i)
		}
	}
	cover := make([]int, p.NumCols())
	for i := 0; i < p.NumRows(); i++ {
		p.Row(i).ForEach(func(j int) { cover[j]++ })
	}
	for j, n := range cover {
		if n < 2 {
			t.Fatalf("%s: column %d covered by %d rows, Balas–Ho guarantees 2", inst.Name, j, n)
		}
	}
}

func TestGenerateWellFormed(t *testing.T) {
	for _, spec := range Specs() {
		inst, err := Generate(spec.Name, spec.Params)
		if err != nil {
			t.Fatal(err)
		}
		checkWellFormed(t, inst)
	}
}

// FuzzBalasHo explores the parameter space: every accepted parameter set
// must yield a well-formed instance whose canonical form round-trips
// byte-identically through Parse.
func FuzzBalasHo(f *testing.F) {
	f.Add(10, 8, 0.3, false, 0, int64(1))
	f.Add(2, 1, 1.0, true, 1, int64(-5))
	f.Add(40, 30, 0.05, true, 200, int64(12345))
	f.Fuzz(func(t *testing.T, rows, cols int, density float64, uniform bool, maxCost int, seed int64) {
		if rows > 200 || cols > 200 {
			t.Skip("keep fuzz instances small")
		}
		costs := CostUnit
		if uniform {
			costs = CostUniform
		}
		params := Params{Rows: rows, Cols: cols, Density: density, Costs: costs, MaxCost: maxCost, Seed: seed}
		inst, err := Generate("fuzz", params)
		if err != nil {
			return // invalid params are rejected, not generated badly
		}
		checkWellFormed(t, inst)
		text := FormatString(inst)
		parsed, err := Parse("fuzz", strings.NewReader(text))
		if err != nil {
			t.Fatalf("canonical form does not parse: %v\n%s", err, text)
		}
		if FormatString(parsed) != text {
			t.Fatal("Parse ∘ Format is not the identity on canonical bytes")
		}
		// Format records the effective cost ceiling, so MaxCost comes back
		// normalized (0 → 100); everything else round-trips verbatim.
		want := params
		want.MaxCost = params.maxCost()
		if parsed.Params != want {
			t.Fatalf("params did not round-trip: %+v vs %+v", parsed.Params, want)
		}
	})
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no problem line":    "w 1\nr 0\n",
		"row before problem": "r 0\np scp 1 1\nw 1\n",
		"bad dimensions":     "p scp -1 2\n",
		"duplicate problem":  "p scp 1 1\np scp 1 1\nw 1\nr 0\n",
		"wrong weight count": "p scp 2 1\nw 1\nr 0\nr 0\n",
		"zero cost":          "p scp 1 1\nw 0\nr 0\n",
		"column overflow":    "p scp 1 2\nw 1\nr 0 2\n",
		"descending columns": "p scp 1 3\nw 1\nr 1 0\n",
		"too many rows":      "p scp 1 1\nw 1\nr 0\nr 0\n",
		"missing rows":       "p scp 2 1\nw 1 1\nr 0\n",
		"unknown line kind":  "p scp 1 1\nw 1\nr 0\nx 1\n",
		"no weights":         "p scp 1 1\nr 0\n",
	}
	for name, text := range cases {
		if _, err := Parse(name, strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

// TestGoldenManifestComplete: every spec has a golden entry of its tier;
// non-open tiers carry a proven optimum, open tiers only a best-known.
func TestGoldenManifestComplete(t *testing.T) {
	golden, err := GoldenManifest()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Specs() {
		g, ok := golden[spec.Name]
		if !ok {
			t.Errorf("%s: no golden entry", spec.Name)
			continue
		}
		if g.Tier != spec.Tier {
			t.Errorf("%s: golden tier %q, spec tier %q", spec.Name, g.Tier, spec.Tier)
		}
		if spec.Tier == TierOpen {
			if g.Optimal != nil {
				t.Errorf("%s: open-tier instance claims a proven optimum %d", spec.Name, *g.Optimal)
			}
			if g.BestKnown < 1 {
				t.Errorf("%s: open-tier instance has no best-known cost", spec.Name)
			}
		} else {
			if g.Optimal == nil {
				t.Errorf("%s: %s-tier instance lacks a proven optimum", spec.Name, spec.Tier)
			} else if g.BestKnown != *g.Optimal {
				t.Errorf("%s: best_known %d != optimal %d", spec.Name, g.BestKnown, *g.Optimal)
			}
		}
	}
	if len(golden) != len(Specs()) {
		t.Errorf("golden manifest has %d entries for %d specs", len(golden), len(Specs()))
	}
}

// solveInstance runs one committed instance under the given options.
func solveInstance(t *testing.T, inst *Instance, opts setcover.ExactOptions) setcover.Solution {
	t.Helper()
	var (
		sol setcover.Solution
		err error
	)
	if w := inst.Weights(); w != nil {
		sol, err = inst.Problem.SolveExactWeighted(w, opts)
	} else {
		sol, err = inst.Problem.SolveExact(opts)
	}
	if err != nil {
		t.Fatalf("%s: %v", inst.Name, err)
	}
	if !inst.Problem.Verify(sol.Rows) {
		t.Fatalf("%s: solver returned an invalid cover %v", inst.Name, sol.Rows)
	}
	return sol
}

// TestCorpusGolden is the corpus acceptance test. Easy and medium tiers
// are solved to proven optimality on every run; the hard tier joins them
// outside -short; the open tier always runs under a node budget and must
// honour the anytime contract (valid best-so-far cover, Optimal=false,
// cost no worse than the committed best-known).
func TestCorpusGolden(t *testing.T) {
	golden, err := GoldenManifest()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if spec.Tier == TierHard && testing.Short() {
				t.Skip("hard tier full solve skipped in -short")
			}
			inst, err := Load(spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			g := golden[spec.Name]
			if spec.Tier == TierOpen {
				sol := solveInstance(t, inst, setcover.ExactOptions{MaxNodes: 2000})
				if sol.Optimal {
					t.Fatalf("open instance proved optimal within a 2000-node budget — it is not open, retier it")
				}
				if g.BestKnown > 0 && sol.Cost < g.BestKnown {
					t.Errorf("anytime solve beat best_known (%d < %d) — update golden.json", sol.Cost, g.BestKnown)
				}
				return
			}
			if g.Optimal == nil {
				t.Fatalf("no golden optimum for %s", spec.Name)
			}
			sol := solveInstance(t, inst, setcover.ExactOptions{})
			if !sol.Optimal {
				t.Fatalf("did not prove optimality (%d nodes)", sol.Nodes)
			}
			if sol.Cost != *g.Optimal {
				t.Fatalf("optimal cost %d, golden %d", sol.Cost, *g.Optimal)
			}
			if sol.RootLB > sol.Cost {
				t.Fatalf("RootLB %d exceeds optimal cost %d", sol.RootLB, sol.Cost)
			}
		})
	}
}

// TestDualBoundNeverExceedsGolden: the public DualBound is a true lower
// bound on every instance with a proven optimum.
func TestDualBoundNeverExceedsGolden(t *testing.T) {
	golden, err := GoldenManifest()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Specs() {
		g := golden[spec.Name]
		if g.Optimal == nil {
			continue
		}
		inst, err := Load(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := inst.Problem.DualBound(inst.Weights(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if lb > *g.Optimal {
			t.Errorf("%s: DualBound %d exceeds golden optimum %d", spec.Name, lb, *g.Optimal)
		}
	}
}

// TestLagrangianNodeReduction is the tentpole acceptance criterion: summed
// over the hard tier, the Lagrangian bound must shrink the search tree by
// at least 5x against the counting bound, with bit-identical solutions.
func TestLagrangianNodeReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("hard-tier double solve skipped in -short")
	}
	bench, err := RunBounds(BenchOptions{Parallelism: 1, Tiers: []Tier{TierHard}})
	if err != nil {
		t.Fatal(err)
	}
	s := bench.Summary
	if s.HardNodesLagrangian == 0 {
		t.Fatal("no hard-tier lagrangian nodes recorded")
	}
	if s.HardNodeReduction < 5 {
		t.Errorf("hard-tier node reduction %.2fx (counting %d, lagrangian %d), acceptance floor is 5x",
			s.HardNodeReduction, s.HardNodesCounting, s.HardNodesLagrangian)
	}
}

// TestCommittedBenchCurrent: the committed BENCH_bounds.json parses, covers
// every corpus instance, and already demonstrates the 5x criterion.
func TestCommittedBenchCurrent(t *testing.T) {
	f, err := os.Open("../../../BENCH_bounds.json")
	if err != nil {
		t.Fatalf("committed BENCH_bounds.json missing (run benchgen -cover-bench): %v", err)
	}
	defer f.Close()
	bench, err := ParseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]InstanceResult, len(bench.Instances))
	for _, r := range bench.Instances {
		byID[r.ID] = r
	}
	for _, spec := range Specs() {
		r, ok := byID[spec.Name]
		if !ok {
			t.Errorf("%s: no entry in committed BENCH_bounds.json — regenerate it", spec.Name)
			continue
		}
		if r.Tier != spec.Tier {
			t.Errorf("%s: bench tier %q, spec tier %q", spec.Name, r.Tier, spec.Tier)
		}
		if r.Counting.Nodes <= 0 || r.Lagrangian.Nodes <= 0 {
			t.Errorf("%s: missing node counts in committed bench", spec.Name)
		}
	}
	if len(bench.Instances) != len(Specs()) {
		t.Errorf("committed bench has %d instances for %d specs — regenerate it", len(bench.Instances), len(Specs()))
	}
	if bench.Summary.HardNodeReduction < 5 {
		t.Errorf("committed bench records %.2fx hard-tier reduction, below the 5x floor", bench.Summary.HardNodeReduction)
	}
}

// TestRunBoundsSubset exercises the harness itself on the cheap tier so
// plain `go test -short` still covers the reporting path.
func TestRunBoundsSubset(t *testing.T) {
	bench, err := RunBounds(BenchOptions{Parallelism: 1, Tiers: []Tier{TierEasy}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Instances) != 4 {
		t.Fatalf("easy tier swept %d instances, want 4", len(bench.Instances))
	}
	for _, r := range bench.Instances {
		if !r.Counting.Optimal || !r.Lagrangian.Optimal {
			t.Errorf("%s: easy instance not solved to optimality", r.ID)
		}
		if r.Golden == nil || r.Lagrangian.Cost != *r.Golden {
			t.Errorf("%s: harness cost disagrees with golden", r.ID)
		}
		if r.Lagrangian.Tightness <= 0 || r.Lagrangian.Tightness > 1 {
			t.Errorf("%s: tightness %v outside (0, 1]", r.ID, r.Lagrangian.Tightness)
		}
	}
	var buf bytes.Buffer
	if err := bench.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instances) != len(bench.Instances) {
		t.Fatal("WriteJSON/ParseBench did not round-trip")
	}
}

// TestLoadAll parses every committed instance and checks well-formedness.
func TestLoadAll(t *testing.T) {
	instances, err := LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != len(Specs()) {
		t.Fatalf("LoadAll returned %d instances for %d specs", len(instances), len(Specs()))
	}
	for _, inst := range instances {
		checkWellFormed(t, inst)
	}
}

// TestGenerateRejectsBadParams nails the validation boundary.
func TestGenerateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Rows: 1, Cols: 5, Density: 0.5},
		{Rows: 5, Cols: 0, Density: 0.5},
		{Rows: 5, Cols: 5, Density: 0},
		{Rows: 5, Cols: 5, Density: 1.1},
		{Rows: 5, Cols: 5, Density: 0.5, Costs: CostClass(9)},
		{Rows: 5, Cols: 5, Density: 0.5, MaxCost: -1},
	}
	for _, params := range bad {
		if _, err := Generate("bad", params); err == nil {
			t.Errorf("Generate accepted %+v", params)
		}
	}
}

// TestWeights pins the nil-for-unit convention the solvers rely on.
func TestWeights(t *testing.T) {
	unit := &Instance{Costs: []int{1, 1, 1}}
	if unit.Weights() != nil {
		t.Error("unit-cost instance should have nil Weights")
	}
	weighted := &Instance{Costs: []int{1, 2, 1}}
	if got := weighted.Weights(); len(got) != 3 {
		t.Errorf("weighted instance Weights = %v", got)
	}
}
