package setcover_test

// Equivalence tests of the distributed plan API: a solve fanned out as
// subtree leases — in any order, with or without external bound feeds,
// with duplicated leases — must merge to exactly the single-process
// solver's answer. These are the process-local half of the distributed
// determinism contract; internal/cluster adds the cross-process half.

import (
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/setcover"
	"repro/internal/setcover/corpus"
)

// randomCovered builds a random instance where every column is coverable.
func randomCovered(rng *rand.Rand) (*setcover.Problem, []int) {
	cols := 8 + rng.Intn(24)
	rows := 6 + rng.Intn(30)
	p := setcover.NewProblem(cols)
	weights := make([]int, rows)
	for i := 0; i < rows; i++ {
		s := bitvec.NewSet(cols)
		for j := 0; j < cols; j++ {
			if rng.Intn(4) == 0 {
				s.Add(j)
			}
		}
		// Guarantee coverability: row i claims column i%cols.
		s.Add(i % cols)
		p.AddRow(s)
		weights[i] = 1 + rng.Intn(9)
	}
	if rows < cols {
		// Remaining columns go to row 0... impossible to mutate a added row;
		// instead add one sweeper row covering them all.
		s := bitvec.NewSet(cols)
		for j := rows; j < cols; j++ {
			s.Add(j)
		}
		if rows < cols {
			p.AddRow(s)
			weights = append(weights, 1+rng.Intn(9))
		}
	}
	return p, weights
}

// planSolveAll runs every lease of a plan (in the given order, possibly
// with duplicates) and merges, feeding each lease the merge-so-far cost
// as its external bound — exactly the coordinator's loop.
func planSolveAll(t *testing.T, pl *setcover.ExactPlan, order []int) setcover.Solution {
	t.Helper()
	if term := pl.Terminal(); term != nil {
		return *term
	}
	var bound atomic.Int64
	bound.Store(int64(pl.Greedy().Cost))
	var results []setcover.SubtreeResult
	for _, b := range order {
		res, err := pl.SolveSubtree(b, setcover.SubtreeOptions{
			Bound: func() int { return int(bound.Load()) },
			OnImprove: func(inc setcover.Incumbent) {
				for {
					cur := bound.Load()
					if int64(inc.Cost) >= cur || bound.CompareAndSwap(cur, int64(inc.Cost)) {
						return
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	return pl.Merge(results)
}

func orders(n int) [][]int {
	fwd := make([]int, n)
	rev := make([]int, n)
	dup := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		fwd[i] = i
		rev[i] = n - 1 - i
		dup = append(dup, i, i) // every lease executed twice
	}
	return [][]int{fwd, rev, dup}
}

// A plan fanned out in any order, with external bounds and duplicated
// leases, merges to the single-process answer bit-identically — on random
// unit-weight and weighted instances, in both bound modes.
func TestPlanMergeMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		p, weights := randomCovered(rng)
		for _, mode := range []setcover.BoundMode{setcover.BoundLagrangian, setcover.BoundCounting} {
			for _, weighted := range []bool{false, true} {
				opts := setcover.ExactOptions{Bound: mode, Parallelism: 1}
				var want setcover.Solution
				var err error
				var w []int
				if weighted {
					w = weights
					want, err = p.SolveExactWeighted(weights, opts)
				} else {
					want, err = p.SolveExact(opts)
				}
				if err != nil {
					t.Fatal(err)
				}
				pl, err := p.PlanExact(w, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, order := range orders(pl.NumBranches()) {
					got := planSolveAll(t, pl, order)
					if got.Cost != want.Cost || got.Optimal != want.Optimal || !slices.Equal(got.Rows, want.Rows) {
						t.Fatalf("trial %d mode %v weighted %v order %v: merge %v (cost %d, opt %v) != solve %v (cost %d, opt %v)",
							trial, mode, weighted, order, got.Rows, got.Cost, got.Optimal, want.Rows, want.Cost, want.Optimal)
					}
					if got.RootLB != want.RootLB {
						t.Fatalf("trial %d: merge RootLB %d != solve %d", trial, got.RootLB, want.RootLB)
					}
				}
			}
		}
	}
}

// The same equivalence over the committed corpus, hard tier included —
// the instances the distributed fabric exists for. Open-tier instances
// are excluded: their solves are budget-truncated, and truncation is
// timing-dependent by contract.
func TestPlanMergeMatchesSolveCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	for _, spec := range corpus.Specs() {
		if spec.Tier == corpus.TierOpen {
			continue
		}
		inst, err := corpus.Load(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		opts := setcover.ExactOptions{Parallelism: 1}
		w := inst.Weights()
		var want setcover.Solution
		if w != nil {
			want, err = inst.Problem.SolveExactWeighted(w, opts)
		} else {
			want, err = inst.Problem.SolveExact(opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		pl, err := inst.Problem.PlanExact(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Reverse order exercises scheduling independence without tripling
		// the sweep's cost.
		n := pl.NumBranches()
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i
		}
		got := planSolveAll(t, pl, order)
		if got.Cost != want.Cost || got.Optimal != want.Optimal || !slices.Equal(got.Rows, want.Rows) {
			t.Errorf("%s: merge (cost %d, opt %v) != solve (cost %d, opt %v)",
				spec.Name, got.Cost, got.Optimal, want.Cost, want.Optimal)
		}
	}
}

// Lost and truncated leases degrade the merge to anytime: a valid cover
// (at worst the greedy seed), never an optimality claim.
func TestPlanMergeDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	degradations, truncations := 0, 0
	for trial := 0; trial < 40; trial++ {
		p, _ := randomCovered(rng)
		pl, err := p.PlanExact(nil, setcover.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if pl.Terminal() != nil {
			continue
		}
		degradations++

		// No results at all: the greedy seed, not optimal.
		sol := pl.Merge(nil)
		if !p.Verify(sol.Rows) {
			t.Fatalf("trial %d: empty merge is not a cover: %v", trial, sol.Rows)
		}
		if sol.Optimal {
			t.Fatalf("trial %d: empty merge claims optimality", trial)
		}

		// A truncated lease (1-node budget) plus a lost lease: still a
		// cover, still no optimality claim, cost never above greedy.
		res, err := pl.SolveSubtree(0, setcover.SubtreeOptions{MaxNodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			truncations++ // a 1-node subtree may legitimately complete; most won't
		}
		partial := pl.Merge([]setcover.SubtreeResult{res})
		if !p.Verify(partial.Rows) {
			t.Fatalf("trial %d: partial merge is not a cover", trial)
		}
		if partial.Optimal {
			t.Fatalf("trial %d: partial merge claims optimality", trial)
		}
		if partial.Cost > pl.Greedy().Cost {
			t.Fatalf("trial %d: partial merge cost %d above greedy %d", trial, partial.Cost, pl.Greedy().Cost)
		}
	}
	if degradations == 0 {
		t.Fatal("every trial planned terminal; the test exercised nothing")
	}
	if truncations == 0 {
		t.Fatal("no trial hit the 1-node budget; truncation untested")
	}
}

// Out-of-range leases are errors; terminal plans refuse leases.
func TestPlanSubtreeErrors(t *testing.T) {
	p := setcover.NewProblem(4)
	for i := 0; i < 4; i++ {
		s := bitvec.NewSet(4)
		s.Add(i)
		p.AddRow(s)
	}
	// Every row is essential: the root resolves the whole problem.
	pl, err := p.PlanExact(nil, setcover.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	term := pl.Terminal()
	if term == nil {
		t.Fatal("fully-essential problem did not plan terminal")
	}
	if !term.Optimal || term.Cost != 4 {
		t.Fatalf("terminal solution: %+v", term)
	}
	if pl.NumBranches() != 0 {
		t.Fatalf("terminal plan advertises %d branches", pl.NumBranches())
	}
	if _, err := pl.SolveSubtree(0, setcover.SubtreeOptions{}); err == nil {
		t.Error("terminal plan accepted a lease")
	}
	if got := pl.Merge(nil); got.Cost != term.Cost || !got.Optimal {
		t.Errorf("terminal merge: %+v", got)
	}
}
