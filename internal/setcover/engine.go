package setcover

// The unified branch-and-bound engine behind SolveExact and
// SolveExactWeighted. Cardinality covering is the weights == nil
// instantiation (every row costs 1); minimum-weight covering passes the
// per-row weight slice. One core means every bound, every pruning rule and
// every bugfix applies to both solvers at once.
//
// # Search shape
//
// Each node picks the uncovered column with the fewest still-available rows
// and branches on those rows, cheapest-per-newly-covered-column first.
// Branch i commits row r_i and bans rows r_0..r_{i-1} from its entire
// subtree: every cover contains some row of the column, so the bans
// partition the solution space and no cover is enumerated twice (the
// duplicate-sibling-subtree fix). Before branching, a node re-reduces its
// residual: a column with no available row kills the branch, a column with
// exactly one forces that row without spending a branch node — the
// classical essentiality rule re-applied under the current bans.
//
// # Parallelism and determinism
//
// The top-level branches fan out across the internal/parallel pool. All
// workers prune against a shared atomic incumbent cost, and complete covers
// merge into the incumbent rows under a mutex. Solution.Rows is
// nevertheless bit-identical for every Parallelism value, because of how
// the two bounds are combined:
//
//   - against the task-local bound (greedy seed cost, lowered only by the
//     task's own finds) a node prunes when cost+lb >= bound — the classical
//     rule, so each task reports the first optimum of its subtree in DFS
//     order, a value independent of the other workers;
//   - against the shared bound a node prunes only when cost+lb is STRICTLY
//     greater. The shared bound never drops below the global optimum C*, so
//     strict pruning can never cut a subtree containing a cost-C* cover: the
//     foreign bound accelerates the search without changing any task's
//     reported result.
//
// The merge prefers lower cost, then the lower top-level branch index, so
// the surviving incumbent is the first-discovered optimum of the lowest
// optimal branch — no matter how worker completion interleaves. Only
// Solution.Nodes (an effort counter) depends on timing when Parallelism > 1,
// exactly as wall-clock time does.
//
// The guarantee covers solves that COMPLETE. A truncated solve (node
// budget, time budget or cancellation) returns whatever best-so-far the
// workers had recorded when the stop flag won the race, which is as
// timing-dependent as the budget itself; it is flagged Optimal = false.
//
// # Anytime contract
//
// A node budget (MaxNodes, shared across workers), a wall-clock budget
// (TimeBudget) and a cancellation Context all raise one stop flag; workers
// drain quickly and the best cover found so far — at worst the greedy seed,
// always a valid cover — is returned with Optimal = false and a nil error.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ExactOptions tunes the branch-and-bound engine shared by SolveExact,
// SolveExactWeighted and the SolveMinimal pipelines.
type ExactOptions struct {
	// MaxNodes bounds the search; 0 means 50 million nodes. The budget is
	// shared by all workers. If it is exhausted the best cover found so far
	// is returned with Optimal = false.
	MaxNodes int64
	// Parallelism bounds the worker pool exploring the top-level branches.
	// 1 forces the serial path; 0 (and any negative value) means one worker
	// per available processor. For solves that complete within their
	// budgets, Solution.Rows is bit-identical for every value
	// (Solution.Nodes is not; see its doc). Truncated solves return a
	// timing-dependent best-so-far, flagged Optimal = false.
	Parallelism int
	// TimeBudget, when positive, makes the solve anytime: the search stops
	// after roughly this much wall-clock time and the best cover found so
	// far is returned with Optimal = false.
	TimeBudget time.Duration
	// Context, when non-nil, is the other anytime trigger: cancellation
	// stops the search, returning the best cover found so far with
	// Optimal = false and a nil error.
	Context context.Context
	// OnIncumbent, when non-nil, observes the anytime progress of the
	// solve: it is invoked once for the greedy seed before the search
	// starts and again every time the shared incumbent is replaced — a
	// strictly better cost, or an equal-cost witness from a lower branch
	// (the deterministic merge). Calls are serialized (never concurrent),
	// costs are non-increasing across them, and the last snapshot always
	// describes the cover the solve returns. The callback runs on solver
	// goroutines while an internal lock is held: it must return quickly
	// and must not call back into the solver. The SolveMinimal pipelines
	// offset snapshots by the essential rows chosen outside the residual
	// solve, so observers see whole-solution totals.
	OnIncumbent func(Incumbent)
	// OnSample, when non-nil, observes the search's progress at a coarse,
	// engine-chosen node cadence: each call carries the nodes expanded so
	// far, the best cover cost known so far, and the root lower bound —
	// the raw material of a bound-gap / nodes-per-second timeline. One
	// sample always fires right after the root node, so even tiny solves
	// produce a timeline point. Calls are serialized; the callback runs
	// on solver goroutines and must return quickly without calling back
	// into the solver. Samples are telemetry only: their values (like
	// Solution.Nodes) may vary run to run under Parallelism > 1, and
	// registering the callback never changes the returned Solution. The
	// SolveMinimal pipelines offset samples like incumbents.
	OnSample func(Sample)

	// Bound selects the lower bound the search prunes with: BoundAuto (the
	// default) and BoundLagrangian use the Lagrangian dual bound — root
	// subgradient multipliers priced into every node's residual, combined
	// with the counting bound by max — while BoundCounting keeps the
	// combinatorial bound alone (the corpus harness's baseline). The mode
	// changes Nodes and wall time only: completed solves return
	// bit-identical Rows/Cost/Optimal in every mode.
	Bound BoundMode
	// AscentIters is the subgradient budget of the root multiplier ascent
	// (Lagrangian modes only). 0 means the default (64); negative means no
	// ascent — the warm-start multipliers are used as-is.
	AscentIters int
	// AscentPerNode is the number of task-local refinement steps applied to
	// the root multipliers at every branch node before its dual value is
	// read (Lagrangian modes only). 0 means the default (2); negative means
	// evaluation only.
	AscentPerNode int

	// noSiblingExclusion disables the duplicate-sibling-subtree fix so its
	// node-count reduction is assertable. Test hook only.
	noSiblingExclusion bool
}

// ascentBudgets resolves the zero-default/negative-disable convention of
// the two ascent knobs.
func (o ExactOptions) ascentBudgets() (root, perNode int) {
	root, perNode = o.AscentIters, o.AscentPerNode
	if root == 0 {
		root = defaultAscentIters
	} else if root < 0 {
		root = 0
	}
	if perNode == 0 {
		perNode = defaultAscentPerNode
	} else if perNode < 0 {
		perNode = 0
	}
	return root, perNode
}

// WithIncumbentOffset returns options whose OnIncumbent and OnSample
// snapshots are shifted by the given cost and cardinality before
// reaching the original callbacks. The reduction pipelines use it to
// account for the essential rows committed outside the residual solve,
// so observers see totals for the whole problem; options without
// callbacks pass through unchanged.
func (o ExactOptions) WithIncumbentOffset(cost, rows int) ExactOptions {
	if (o.OnIncumbent == nil && o.OnSample == nil) || (cost == 0 && rows == 0) {
		return o
	}
	if inner := o.OnIncumbent; inner != nil {
		o.OnIncumbent = func(inc Incumbent) {
			inc.Cost += cost
			inc.Rows += rows
			inner(inc)
		}
	}
	if inner := o.OnSample; inner != nil {
		o.OnSample = func(s Sample) {
			s.Best += cost
			s.RootLB += cost
			inner(s)
		}
	}
	return o
}

// Sample is one periodic search-progress snapshot delivered to
// ExactOptions.OnSample. It deliberately carries no timestamp — the
// receiver stamps samples on arrival, so the solver core stays free of
// wall-clock reads.
type Sample struct {
	// Nodes is the number of branch-and-bound nodes expanded so far.
	Nodes int64
	// Best is the best cover cost known so far (the shared incumbent,
	// offset like OnIncumbent snapshots).
	Best int
	// RootLB is the root lower bound on the optimal cost (see
	// Solution.RootLB), offset like Best. Best-RootLB is the proven
	// optimality gap's upper bound at sample time.
	RootLB int
}

// Incumbent is one anytime progress snapshot of an exact covering solve:
// the best cover known so far. For unit-weight solves Cost equals Rows.
type Incumbent struct {
	// Cost is the incumbent cover's total cost (its cardinality for
	// unit-weight solves, its total weight for weighted ones).
	Cost int `json:"cost"`
	// Rows is the incumbent cover's cardinality.
	Rows int `json:"rows"`
	// Nodes is the number of branch-and-bound nodes expanded when the
	// incumbent was recorded; 0 identifies the greedy seed.
	Nodes int64 `json:"nodes"`
}

const defaultMaxNodes = 50_000_000

// unsetBranch orders the greedy seed after every real branch index, so a
// solver find at equal cost from any branch would win the merge — which
// cannot happen, since tasks record strict improvements only.
const unsetBranch = int(^uint(0) >> 1)

type engine struct {
	p       *Problem
	weights []int   // nil ⇒ every row costs 1
	colRows [][]int // static column view: colRows[j] = rows covering j
	colSets []*bitvec.Set
	exclude bool // sibling-row exclusion enabled

	maxNodes int64
	deadline time.Time
	timed    bool
	ctx      context.Context

	// Lagrangian dual bound state. rootMult is written once by the root
	// ascent before the parallel fan-out and read-only afterwards; each
	// task refines a private copy.
	dual          bool
	ascentRoot    int
	ascentPerNode int
	rootMult      []float64
	rootLB        int // rootCost + root lower bound: a global LB on the optimum

	nodes     atomic.Int64 // shared node budget and effort counter
	stop      atomic.Bool  // raised by budget, deadline or context
	truncated atomic.Bool  // some subtree was cut off: optimality unproven

	// sharedCost is the global incumbent cost every worker prunes against.
	// It only decreases; a stale read merely delays a prune.
	sharedCost atomic.Int64

	// externalBound, when non-nil, is polled at the node cadence for the
	// best cover cost known OUTSIDE this engine — another process's
	// incumbent in a distributed solve. It can only lower sharedCost, and
	// sharedCost prunes on strictly-greater only, so a correct external
	// value (never below the global optimum) accelerates the search without
	// changing any completed result — the same argument that makes the
	// in-process shared incumbent deterministic.
	externalBound func() int

	mu          sync.Mutex
	bestRows    []int           // guarded by mu
	bestCost    int             // guarded by mu
	bestBranch  int             // guarded by mu
	onIncumbent func(Incumbent) // set once at construction, fired under mu

	sampleMu sync.Mutex
	onSample func(Sample) // set once at construction, fired under sampleMu
}

func newEngine(p *Problem, weights []int, seed Solution, seedCost int, opts ExactOptions) *engine {
	e := &engine{
		p:           p,
		weights:     weights,
		colRows:     make([][]int, p.numCols),
		exclude:     !opts.noSiblingExclusion,
		maxNodes:    opts.MaxNodes,
		ctx:         opts.Context,
		bestRows:    append([]int(nil), seed.Rows...),
		bestCost:    seedCost,
		bestBranch:  unsetBranch,
		onIncumbent: opts.OnIncumbent,
		onSample:    opts.OnSample,
	}
	if e.maxNodes == 0 {
		e.maxNodes = defaultMaxNodes
	}
	e.dual = opts.Bound != BoundCounting
	e.ascentRoot, e.ascentPerNode = opts.ascentBudgets()
	if opts.TimeBudget > 0 {
		//reseedvet:ignore detsource -- TimeBudget deadline is timing-only: expiry truncates the search and is recorded in Solution.Optimal; the rows selected stay deterministic
		e.deadline = time.Now().Add(opts.TimeBudget)
		e.timed = true
	}
	for i, r := range p.rows {
		r.ForEach(func(j int) { e.colRows[j] = append(e.colRows[j], i) })
	}
	e.colSets = make([]*bitvec.Set, p.numCols)
	for j, rows := range e.colRows {
		s := bitvec.NewSet(p.NumRows())
		for _, r := range rows {
			s.Add(r)
		}
		e.colSets[j] = s
	}
	e.sharedCost.Store(int64(seedCost))
	return e
}

func (e *engine) rowCost(r int) int {
	if e.weights == nil {
		return 1
	}
	return e.weights[r]
}

// expired reports whether the wall-clock budget or the context has run out.
func (e *engine) expired() bool {
	//reseedvet:ignore detsource -- wall-clock budget check is timing-only: it can only stop the search early, and truncation is recorded in Solution.Optimal
	if e.timed && !time.Now().Before(e.deadline) {
		return true
	}
	if e.ctx != nil {
		select {
		case <-e.ctx.Done():
			return true
		default:
		}
	}
	return false
}

// halt raises the stop flag; every worker drains at its next node.
func (e *engine) halt() {
	e.truncated.Store(true)
	e.stop.Store(true)
}

// record merges a complete cover into the shared incumbent. branch is the
// top-level branch that found it (rootBranch for covers the root itself
// resolves); cost ties resolve toward the lower branch, which makes the
// final incumbent independent of worker timing.
func (e *engine) record(cost int, rows []int, branch int) {
	e.mu.Lock()
	if cost < e.bestCost || (cost == e.bestCost && branch < e.bestBranch) {
		e.bestCost = cost
		e.bestBranch = branch
		e.bestRows = append(e.bestRows[:0], rows...)
		if e.onIncumbent != nil {
			// Under e.mu, so snapshots are serialized; fired on every
			// replacement — including an equal-cost witness from a lower
			// branch — so the last snapshot always describes the cover the
			// solve will return.
			e.onIncumbent(Incumbent{Cost: cost, Rows: len(rows), Nodes: e.nodes.Load()})
		}
	}
	e.mu.Unlock()
	for {
		cur := e.sharedCost.Load()
		if int64(cost) >= cur || e.sharedCost.CompareAndSwap(cur, int64(cost)) {
			return
		}
	}
}

// sample delivers one OnSample snapshot. rootLB is written once before
// the fan-out and read-only afterwards; sampleMu serializes the
// callback itself.
func (e *engine) sample(n int64) {
	if e.onSample == nil {
		return
	}
	s := Sample{Nodes: n, Best: int(e.sharedCost.Load()), RootLB: e.rootLB}
	e.sampleMu.Lock()
	e.onSample(s)
	e.sampleMu.Unlock()
}

// pullBound folds the external incumbent (when configured) into
// sharedCost. Non-positive reports mean "no incumbent known" and are
// ignored.
func (e *engine) pullBound() {
	if e.externalBound == nil {
		return
	}
	b := int64(e.externalBound())
	if b <= 0 {
		return
	}
	for {
		cur := e.sharedCost.Load()
		if b >= cur || e.sharedCost.CompareAndSwap(cur, b) {
			return
		}
	}
}

// colAvail is one uncovered column of a node's stable residual with its
// available-row count, computed once by the final propagation scan and
// reused by the lower bound.
type colAvail struct{ col, avail int }

// scanColumns inspects every uncovered column under the current bans. It
// reports infeasible when some column has no available row left (a forced
// row cannot fix that: it would itself be an available row of the column);
// otherwise every single-available-row column, in ascending order, whose
// one row is in every cover of this subproblem; otherwise — on a clean
// scan — the branch column with the fewest available rows (ties toward the
// lower column index) with the per-column counts appended to *infos for
// the caller's lower bound. Availability is one word-level intersection
// per column, not a per-row probe.
func (e *engine) scanColumns(uncovered, banned *bitvec.Set, infos *[]colAvail) (infeasible bool, forcedCols []int, branchCol int) {
	branchCol = -1
	bestAvail := int(^uint(0) >> 1)
	*infos = (*infos)[:0]
	uncovered.ForEach(func(j int) {
		if infeasible {
			return
		}
		avail := len(e.colRows[j]) - e.colSets[j].IntersectionLen(banned)
		switch {
		case avail == 0:
			infeasible = true
		case avail == 1:
			forcedCols = append(forcedCols, j)
		default:
			*infos = append(*infos, colAvail{j, avail})
			if avail < bestAvail {
				bestAvail, branchCol = avail, j
			}
		}
	})
	return infeasible, forcedCols, branchCol
}

// propagate applies per-node re-reduction: it takes forced rows until the
// fixpoint, mutating chosen/cost/uncovered in place. It returns the new
// path state, infeasible when a column became uncoverable, and the branch
// column of the stable residual (-1 when uncovered emptied); infos then
// holds the residual's per-column availability for the lower bound.
//
// Availability depends only on banned, which propagate never mutates, so
// taking every collected forced column in one batch (skipping those a
// just-taken row already covered) reaches the fixpoint: the follow-up scan
// can force nothing new and only rebuilds infos/branchCol for the residual.
func (e *engine) propagate(chosen []int, cost int, uncovered, banned *bitvec.Set, infos *[]colAvail) (newChosen []int, newCost int, infeasible bool, branchCol int) {
	for {
		if uncovered.Empty() {
			return chosen, cost, false, -1
		}
		bad, forcedCols, col := e.scanColumns(uncovered, banned, infos)
		if bad {
			return chosen, cost, true, -1
		}
		if forcedCols == nil {
			return chosen, cost, false, col
		}
		for _, j := range forcedCols {
			if !uncovered.Contains(j) {
				continue
			}
			r := e.colSets[j].FirstNotIn(banned)
			chosen = append(chosen, r)
			cost += e.rowCost(r)
			uncovered.AndNot(e.p.rows[r])
		}
	}
}

// lowerBound greedily accumulates pairwise row-disjoint uncovered columns;
// each demands a distinct available row, so summing every picked column's
// cheapest available row bounds the remaining cost from below (with unit
// weights: the number of rows still required). Rare columns are visited
// first to maximize the disjoint set.
// lowerBound consumes the stable residual's availability counts computed by
// the final propagation scan (no recount) and sorts a scratch copy rare
// columns first. The cheapest available row of a picked column is computed
// lazily — and is the constant 1 for unit weights.
func (e *engine) lowerBound(infos []colAvail, banned *bitvec.Set) int {
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].avail != infos[b].avail {
			return infos[a].avail < infos[b].avail
		}
		return infos[a].col < infos[b].col
	})
	// usedRows accumulates the available rows of picked columns, so it
	// never contains a banned row and one Intersects call per column is an
	// exact available-row disjointness test.
	usedRows := bitvec.NewSet(e.p.NumRows())
	lb := 0
	for _, ci := range infos {
		if usedRows.Intersects(e.colSets[ci.col]) {
			continue
		}
		usedRows.Or(e.colSets[ci.col])
		usedRows.AndNot(banned)
		if e.weights == nil {
			lb++
			continue
		}
		min, first := 0, true
		for _, r := range e.colRows[ci.col] {
			if banned.Contains(r) {
				continue
			}
			if w := e.weights[r]; first || w < min {
				min, first = w, false
			}
		}
		lb += min
	}
	return lb
}

// branchCandidates lists the available rows of the branch column ordered
// cheapest-per-newly-covered-column first (for unit weights: decreasing
// gain), ties toward the lower row index. Ratios compare by
// cross-multiplication, so the order is exact and platform independent.
func (e *engine) branchCandidates(col int, uncovered, banned *bitvec.Set) []int {
	type cand struct{ row, gain int }
	cands := make([]cand, 0, len(e.colRows[col]))
	for _, r := range e.colRows[col] {
		if !banned.Contains(r) {
			cands = append(cands, cand{r, e.p.rows[r].IntersectionLen(uncovered)})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		l := e.rowCost(cands[a].row) * cands[b].gain
		r := e.rowCost(cands[b].row) * cands[a].gain
		if l != r {
			return l < r
		}
		return cands[a].row < cands[b].row
	})
	rows := make([]int, len(cands))
	for i, c := range cands {
		rows[i] = c.row
	}
	return rows
}

// bbTask is one top-level branch explored serially by one worker.
type bbTask struct {
	e      *engine
	branch int // merge tie-breaker
	// localBound is the task-local incumbent cost: recording is strict
	// improvement against it, which pins the task's reported witness to the
	// first optimum in its own DFS order regardless of the other workers.
	localBound int
	// infos is the column-scan scratch, reused across the task's DFS: a
	// node is done with it before its children run.
	infos []colAvail
	// ds is the task's dual workspace (Lagrangian modes only, allocated on
	// first use): a private multiplier copy refined per node.
	ds *dualScratch
}

// dualBound re-prices the node's residual with the shared root multipliers,
// refines a task-private copy with a few conservative ascent steps, and
// returns the rounded dual value. It depends only on the node's state and
// the task-local incumbent, so serial node counts are deterministic.
func (t *bbTask) dualBound(cost int, uncovered, banned *bitvec.Set) int {
	e := t.e
	if t.ds == nil {
		t.ds = newDualScratch(e.p.numCols)
	}
	copy(t.ds.u, e.rootMult)
	best := e.dualAscend(t.ds, uncovered, banned, float64(t.localBound-cost), e.ascentPerNode, nodeAgility)
	return dualRound(best)
}

// search explores a subtree. chosen/cost describe the committed path,
// uncovered the remaining columns (owned by this call), banned the rows
// excluded by earlier sibling branches (owned by the caller, read-only
// here; descendants receive a clone before it is extended).
func (t *bbTask) search(chosen []int, cost int, uncovered, banned *bitvec.Set) {
	e := t.e
	if e.stop.Load() {
		return
	}
	n := e.nodes.Add(1)
	if n > e.maxNodes {
		e.halt()
		return
	}
	if n&127 == 0 {
		if e.expired() {
			e.halt()
			return
		}
		e.pullBound()
	}
	// Telemetry sampling at a much coarser cadence than the budget
	// checks: cheap enough to leave always-on, frequent enough for a
	// useful nodes/sec trajectory.
	if n&4095 == 0 {
		e.sample(n)
	}

	chosen, cost, infeasible, branchCol := e.propagate(chosen, cost, uncovered, banned, &t.infos)
	if infeasible {
		return
	}
	if branchCol < 0 { // covered
		if cost < t.localBound {
			t.localBound = cost
			e.record(cost, chosen, t.branch)
		}
		return
	}
	// The counting bound is cheap; the dual bound is evaluated only when
	// counting fails to prune, and the stronger of the two rules the node.
	lb := e.lowerBound(t.infos, banned)
	if cost+lb >= t.localBound || int64(cost+lb) > e.sharedCost.Load() {
		return
	}
	if e.dual {
		if dlb := t.dualBound(cost, uncovered, banned); dlb > lb {
			lb = dlb
			if cost+lb >= t.localBound || int64(cost+lb) > e.sharedCost.Load() {
				return
			}
		}
	}

	rows := e.branchCandidates(branchCol, uncovered, banned)
	branchBanned := banned
	if e.exclude {
		branchBanned = banned.Clone()
	}
	for _, r := range rows {
		if e.stop.Load() {
			return
		}
		next := uncovered.Clone()
		next.AndNot(e.p.rows[r])
		t.search(append(chosen, r), cost+e.rowCost(r), next, branchBanned)
		if e.exclude {
			branchBanned.Add(r)
		}
	}
}

// finish snapshots the engine's incumbent into a Solution. Workers may
// still be draining when an expired solve returns, so even this final
// read of the incumbent takes the lock.
func (e *engine) finish() Solution {
	e.mu.Lock()
	sol := Solution{
		Rows: append([]int(nil), e.bestRows...),
		Cost: e.bestCost,
	}
	e.mu.Unlock()
	sol.Optimal = !e.truncated.Load()
	sol.Nodes = e.nodes.Load()
	sol.RootLB = e.rootLB
	sort.Ints(sol.Rows)
	return sol
}

// rootState is the deterministic root of the branch-and-bound tree:
// everything the search decides before the top-level fan-out. It is
// computed identically by the in-process solve and by PlanExact (the
// distributed coordinator), which is what makes a distributed solve
// bit-identical to a local one.
type rootState struct {
	chosen     []int       // rows forced at the root (in every cover)
	cost       int         // their total cost
	uncovered  *bitvec.Set // residual columns (read-only after root)
	branchRows []int       // top-level branch rows, in canonical order
	// done reports that the root resolved the solve by itself — the
	// engine's incumbent already holds the answer; there is nothing to
	// fan out.
	done bool
}

// root runs the root node: the cheap anytime pre-check, re-reduction,
// the root lower bound with its optional multiplier ascent, and either a
// terminal resolution (done = true) or the top-level branch list.
func (e *engine) root(greedy Solution) rootState {
	p := e.p
	e.nodes.Store(1)
	if e.expired() {
		e.halt()
		return rootState{done: true}
	}
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	banned := bitvec.NewSet(p.NumRows())
	var rootInfos []colAvail
	rootChosen, rootCost, infeasible, branchCol := e.propagate(nil, 0, uncovered, banned, &rootInfos)
	if infeasible {
		// Cannot happen: every column is coverable and the root bans nothing.
		return rootState{done: true}
	}
	if branchCol < 0 {
		// Essential rows alone cover everything; they are in every cover,
		// so this is the optimum. The greedy seed can only tie or lose.
		e.rootLB = rootCost
		e.record(rootCost, rootChosen, -1)
		return rootState{done: true}
	}
	rootBound := e.lowerBound(rootInfos, banned)
	if e.dual {
		// Root multiplier ascent: warm-start from the cheapest-row shares,
		// climb toward the greedy upper bound, and publish the multipliers
		// for every task to re-price its residuals with.
		s := newDualScratch(p.numCols)
		e.dualInit(s.u, uncovered, banned)
		best := e.dualAscend(s, uncovered, banned, float64(greedy.Cost-rootCost), e.ascentRoot, rootAgility)
		e.rootMult = s.u
		if d := dualRound(best); d > rootBound {
			rootBound = d
		}
	}
	e.rootLB = rootCost + rootBound
	// The incumbent is still the greedy seed here — nothing has recorded
	// yet — so compare against greedy.Cost rather than reading e.bestCost
	// outside its lock.
	if rootCost+rootBound >= greedy.Cost {
		return rootState{done: true} // the greedy seed is proven optimal
	}
	return rootState{
		chosen:     rootChosen,
		cost:       rootCost,
		uncovered:  uncovered,
		branchRows: e.branchCandidates(branchCol, uncovered, banned),
	}
}

// runBranch explores one top-level subtree serially: branch index i of
// root state r, pruning against greedyCost as the task-local bound. It is
// the unit of work the in-process fan-out and the distributed subtree
// lease both execute, so both walk bit-identical trees.
func (e *engine) runBranch(r rootState, i int, greedyCost int) {
	t := &bbTask{e: e, branch: i, localBound: greedyCost}
	taskBanned := bitvec.NewSet(e.p.NumRows())
	if e.exclude {
		for _, row := range r.branchRows[:i] {
			taskBanned.Add(row)
		}
	}
	next := r.uncovered.Clone()
	next.AndNot(e.p.rows[r.branchRows[i]])
	chosen := make([]int, len(r.chosen), len(r.chosen)+8)
	copy(chosen, r.chosen)
	t.search(append(chosen, r.branchRows[i]), r.cost+e.rowCost(r.branchRows[i]), next, taskBanned)
}

// solveBB is the shared entry point of SolveExact (weights == nil) and
// SolveExactWeighted. Callers have validated weights already.
func (p *Problem) solveBB(weights []int, opts ExactOptions) (Solution, error) {
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	if p.numCols == 0 {
		return Solution{Optimal: true}, nil
	}
	greedy, err := p.solveGreedyImpl(weights)
	if err != nil {
		return Solution{}, err
	}
	e := newEngine(p, weights, greedy, greedy.Cost, opts)
	if e.onIncumbent != nil {
		e.onIncumbent(Incumbent{Cost: greedy.Cost, Rows: len(greedy.Rows)})
	}

	_, asp := obs.StartSpan(opts.Context, "ascent")
	r := e.root(greedy)
	asp.SetInt("root_lb", int64(e.rootLB))
	asp.SetInt("greedy_cost", int64(greedy.Cost))
	asp.End()
	// One sample right after the root, so even a solve the root resolves
	// produces a timeline point.
	e.sample(e.nodes.Load())
	if r.done {
		return e.finish(), nil
	}
	_, bsp := obs.StartSpan(opts.Context, "bb")
	bsp.SetInt("branches", int64(len(r.branchRows)))
	workers := parallel.Degree(opts.Parallelism)
	_ = parallel.ForEach(workers, len(r.branchRows), func(_, i int) error { // infallible: the worker fn below always returns nil
		if e.stop.Load() {
			return nil
		}
		e.runBranch(r, i, greedy.Cost)
		return nil
	})
	sol := e.finish()
	bsp.SetInt("nodes", sol.Nodes)
	bsp.SetInt("cost", int64(sol.Cost))
	bsp.SetInt("optimal", b2i(sol.Optimal))
	bsp.End()
	return sol, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
