package setcover

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Weighted covering: choose rows minimizing total weight rather than
// cardinality. In the reseeding flow the weight of a candidate triplet is
// its trimmed test length, so the weighted solve minimizes global test time
// instead of ROM area — the other end of the trade-off the paper's Figure 2
// explores.

// validateWeights checks one non-negative weight per row.
func (p *Problem) validateWeights(weights []int) error {
	if len(weights) != len(p.rows) {
		return fmt.Errorf("setcover: %d weights for %d rows", len(weights), len(p.rows))
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("setcover: negative weight %d for row %d", w, i)
		}
	}
	return nil
}

// SolveGreedyWeighted runs the weighted Chvátal heuristic: repeatedly take
// the row minimizing weight per newly covered column. Ties break toward the
// lower row index.
func (p *Problem) SolveGreedyWeighted(weights []int) (Solution, error) {
	if err := p.validateWeights(weights); err != nil {
		return Solution{}, err
	}
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	var sol Solution
	for !uncovered.Empty() {
		best := -1
		var bestRatio float64
		for i, r := range p.rows {
			gain := r.IntersectionLen(uncovered)
			if gain == 0 {
				continue
			}
			// Zero-weight rows with any gain are free: take immediately.
			ratio := float64(weights[i]) / float64(gain)
			if best < 0 || ratio < bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best < 0 {
			return Solution{}, fmt.Errorf("setcover: internal: no progress with %d columns uncovered", uncovered.Len())
		}
		sol.Rows = append(sol.Rows, best)
		uncovered.AndNot(p.rows[best])
	}
	sort.Ints(sol.Rows)
	return sol, nil
}

// SolveExactWeighted finds a minimum-total-weight cover by branch and
// bound. The incumbent starts from the weighted greedy cover; the lower
// bound sums, over a greedily built set of pairwise row-disjoint uncovered
// columns, each column's cheapest covering row.
func (p *Problem) SolveExactWeighted(weights []int, opts ExactOptions) (Solution, error) {
	if err := p.validateWeights(weights); err != nil {
		return Solution{}, err
	}
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	if p.numCols == 0 {
		return Solution{Optimal: true}, nil
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50_000_000
	}
	greedy, err := p.SolveGreedyWeighted(weights)
	if err != nil {
		return Solution{}, err
	}
	s := &wbbState{
		p:        p,
		weights:  weights,
		best:     append([]int(nil), greedy.Rows...),
		bestCost: totalWeight(weights, greedy.Rows),
		maxNodes: maxNodes,
	}
	s.colRows = make([][]int, p.numCols)
	for i, r := range p.rows {
		r.ForEach(func(j int) { s.colRows[j] = append(s.colRows[j], i) })
	}
	// Cheapest covering row per column, for the lower bound.
	s.colMin = make([]int, p.numCols)
	for j, rows := range s.colRows {
		min := int(^uint(0) >> 1)
		for _, r := range rows {
			if weights[r] < min {
				min = weights[r]
			}
		}
		s.colMin[j] = min
	}
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	s.search(nil, 0, uncovered)

	sol := Solution{
		Rows:    append([]int(nil), s.best...),
		Optimal: !s.truncated,
		Nodes:   s.nodes,
	}
	sort.Ints(sol.Rows)
	return sol, nil
}

func totalWeight(weights []int, rows []int) int {
	t := 0
	for _, r := range rows {
		t += weights[r]
	}
	return t
}

type wbbState struct {
	p         *Problem
	weights   []int
	colRows   [][]int
	colMin    []int
	best      []int
	bestCost  int
	nodes     int64
	maxNodes  int64
	truncated bool
}

func (s *wbbState) search(chosen []int, cost int, uncovered *bitvec.Set) {
	s.nodes++
	if s.nodes > s.maxNodes {
		s.truncated = true
		return
	}
	if uncovered.Empty() {
		if cost < s.bestCost {
			s.bestCost = cost
			s.best = append(s.best[:0], chosen...)
		}
		return
	}
	if cost+s.lowerBound(uncovered) >= s.bestCost {
		return
	}
	// Branch on the uncovered column with the fewest covering rows.
	bestCol, bestCount := -1, int(^uint(0)>>1)
	uncovered.ForEach(func(j int) {
		if n := len(s.colRows[j]); n < bestCount {
			bestCol, bestCount = j, n
		}
	})
	if bestCol < 0 {
		return
	}
	rows := append([]int(nil), s.colRows[bestCol]...)
	// Cheapest-per-gain first.
	sort.Slice(rows, func(a, b int) bool {
		ga := s.p.rows[rows[a]].IntersectionLen(uncovered)
		gb := s.p.rows[rows[b]].IntersectionLen(uncovered)
		ra := float64(s.weights[rows[a]]) / float64(maxI(ga, 1))
		rb := float64(s.weights[rows[b]]) / float64(maxI(gb, 1))
		if ra != rb {
			return ra < rb
		}
		return rows[a] < rows[b]
	})
	for _, r := range rows {
		if s.truncated {
			return
		}
		next := uncovered.Clone()
		next.AndNot(s.p.rows[r])
		s.search(append(chosen, r), cost+s.weights[r], next)
	}
}

// lowerBound sums each disjoint column's cheapest covering row.
func (s *wbbState) lowerBound(uncovered *bitvec.Set) int {
	usedRows := bitvec.NewSet(s.p.NumRows())
	lb := 0
	cols := uncovered.Elements()
	sort.Slice(cols, func(a, b int) bool {
		na, nb := len(s.colRows[cols[a]]), len(s.colRows[cols[b]])
		if na != nb {
			return na < nb
		}
		return cols[a] < cols[b]
	})
	for _, j := range cols {
		disjoint := true
		for _, r := range s.colRows[j] {
			if usedRows.Contains(r) {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		for _, r := range s.colRows[j] {
			usedRows.Add(r)
		}
		lb += s.colMin[j]
	}
	return lb
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ReduceWeighted is Reduce with weight-aware row dominance: a row may only
// be deleted in favour of a superset row that is not heavier, preserving
// weighted optimality. Essentiality and column dominance are weight
// independent.
func (p *Problem) ReduceWeighted(weights []int) (*Reduction, error) {
	if err := p.validateWeights(weights); err != nil {
		return nil, err
	}
	return p.reduceImpl(weights), nil
}

// SolveMinimalWeighted runs the full weighted pipeline: weight-aware
// reduction followed by an exact weighted solve of the residual. Row
// indices in the result refer to the original problem.
func (p *Problem) SolveMinimalWeighted(weights []int, opts ExactOptions) (Solution, *Reduction, error) {
	if err := p.validateWeights(weights); err != nil {
		return Solution{}, nil, err
	}
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, nil, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	red := p.reduceImpl(weights)
	sol := Solution{Rows: append([]int(nil), red.Essential...), Optimal: true}
	if !red.Empty() {
		subWeights := make([]int, len(red.RowMap))
		for i, r := range red.RowMap {
			subWeights[i] = weights[r]
		}
		sub, err := red.Residual.SolveExactWeighted(subWeights, opts)
		if err != nil {
			return Solution{}, nil, err
		}
		for _, r := range sub.Rows {
			sol.Rows = append(sol.Rows, red.RowMap[r])
		}
		sol.Optimal = sub.Optimal
		sol.Nodes = sub.Nodes
	}
	sort.Ints(sol.Rows)
	return sol, red, nil
}
