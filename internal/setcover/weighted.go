package setcover

import (
	"fmt"
	"sort"
)

// Weighted covering: choose rows minimizing total weight rather than
// cardinality. In the reseeding flow the weight of a candidate triplet is
// its trimmed test length, so the weighted solve minimizes global test time
// instead of ROM area — the other end of the trade-off the paper's Figure 2
// explores. The exact solve is the weights != nil instantiation of the
// unified branch-and-bound engine in engine.go.

// validateWeights checks one non-negative weight per row.
func (p *Problem) validateWeights(weights []int) error {
	if len(weights) != len(p.rows) {
		return fmt.Errorf("setcover: %d weights for %d rows", len(weights), len(p.rows))
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("setcover: negative weight %d for row %d", w, i)
		}
	}
	return nil
}

// SolveGreedyWeighted runs the weighted Chvátal heuristic: zero-weight rows
// with any gain are free and taken up front (highest gain first), then the
// scan repeatedly takes the row minimizing weight per newly covered column.
// Ties break toward the lower row index.
func (p *Problem) SolveGreedyWeighted(weights []int) (Solution, error) {
	if err := p.validateWeights(weights); err != nil {
		return Solution{}, err
	}
	return p.solveGreedyImpl(weights)
}

// SolveExactWeighted finds a minimum-total-weight cover with the
// branch-and-bound engine. The incumbent starts from the weighted greedy
// cover; the lower bound sums, over a greedily built set of pairwise
// row-disjoint uncovered columns, each column's cheapest available row. The
// parallel fan-out and the anytime budgets behave exactly as in SolveExact.
func (p *Problem) SolveExactWeighted(weights []int, opts ExactOptions) (Solution, error) {
	if err := p.validateWeights(weights); err != nil {
		return Solution{}, err
	}
	return p.solveBB(weights, opts)
}

func totalWeight(weights []int, rows []int) int {
	t := 0
	for _, r := range rows {
		t += weights[r]
	}
	return t
}

// ReduceWeighted is Reduce with weight-aware row dominance: a row may only
// be deleted in favour of a superset row that is not heavier, preserving
// weighted optimality. Essentiality and column dominance are weight
// independent.
func (p *Problem) ReduceWeighted(weights []int) (*Reduction, error) {
	if err := p.validateWeights(weights); err != nil {
		return nil, err
	}
	return p.reduceImpl(weights), nil
}

// SolveMinimalWeighted runs the full weighted pipeline: weight-aware
// reduction followed by an exact weighted solve of the residual. Row
// indices in the result refer to the original problem.
func (p *Problem) SolveMinimalWeighted(weights []int, opts ExactOptions) (Solution, *Reduction, error) {
	if err := p.validateWeights(weights); err != nil {
		return Solution{}, nil, err
	}
	if bad := p.UncoverableColumns(); bad != nil {
		return Solution{}, nil, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	red := p.reduceImpl(weights)
	sol := Solution{Rows: append([]int(nil), red.Essential...), Optimal: true}
	if !red.Empty() {
		subWeights := make([]int, len(red.RowMap))
		for i, r := range red.RowMap {
			subWeights[i] = weights[r]
		}
		sub, err := red.Residual.SolveExactWeighted(subWeights,
			opts.WithIncumbentOffset(totalWeight(weights, red.Essential), len(red.Essential)))
		if err != nil {
			return Solution{}, nil, err
		}
		for _, r := range sub.Rows {
			sol.Rows = append(sol.Rows, red.RowMap[r])
		}
		sol.Optimal = sub.Optimal
		sol.Nodes = sub.Nodes
	}
	sort.Ints(sol.Rows)
	sol.Cost = totalWeight(weights, sol.Rows)
	return sol, red, nil
}
