package setcover

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitvec"
)

// mk builds a problem from explicit rows.
func mk(numCols int, rows ...[]int) *Problem {
	p := NewProblem(numCols)
	for _, r := range rows {
		s := bitvec.NewSet(numCols)
		for _, c := range r {
			s.Add(c)
		}
		p.AddRow(s)
	}
	return p
}

func TestVerifyAndMinimal(t *testing.T) {
	p := mk(4, []int{0, 1}, []int{2, 3}, []int{1, 2}, []int{0, 1, 2, 3})
	if !p.Verify([]int{0, 1}) {
		t.Error("rows {0,1} cover everything")
	}
	if p.Verify([]int{0, 2}) {
		t.Error("rows {0,2} miss column 3")
	}
	if !p.Minimal([]int{0, 1}) {
		t.Error("{0,1} is minimal")
	}
	if p.Minimal([]int{0, 1, 2}) {
		t.Error("{0,1,2} is redundant")
	}
	if p.Verify([]int{-1}) || p.Verify([]int{99}) {
		t.Error("out-of-range rows must not verify")
	}
}

func TestUncoverable(t *testing.T) {
	p := mk(3, []int{0}, []int{1})
	bad := p.UncoverableColumns()
	if len(bad) != 1 || bad[0] != 2 {
		t.Errorf("UncoverableColumns = %v, want [2]", bad)
	}
	if _, err := p.SolveGreedy(); err == nil {
		t.Error("greedy must reject uncoverable instance")
	}
	if _, err := p.SolveExact(ExactOptions{}); err == nil {
		t.Error("exact must reject uncoverable instance")
	}
	if _, _, err := p.SolveMinimal(ExactOptions{}); err == nil {
		t.Error("SolveMinimal must reject uncoverable instance")
	}
}

func TestGreedyKnownInstance(t *testing.T) {
	// Classic greedy trap: greedy takes the big row then needs 2 more;
	// optimum is the two disjoint rows.
	p := mk(6,
		[]int{0, 1, 2, 3}, // greedy bait
		[]int{0, 1, 4},
		[]int{2, 3, 5},
	)
	g, err := p.SolveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(g.Rows) {
		t.Fatal("greedy result does not cover")
	}
	e, err := p.SolveExact(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Rows) != 2 || !e.Optimal {
		t.Errorf("exact = %v (optimal=%v), want 2 rows", e.Rows, e.Optimal)
	}
	if len(g.Rows) != 3 {
		t.Errorf("greedy = %v, expected the 3-row trap", g.Rows)
	}
}

func TestExactBeatsOrMatchesGreedyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		p := randomCoverable(rng, 4+rng.Intn(8), 6+rng.Intn(12))
		g, err := p.SolveGreedy()
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.SolveExact(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(e.Rows) {
			t.Fatalf("trial %d: exact cover invalid", trial)
		}
		if len(e.Rows) > len(g.Rows) {
			t.Errorf("trial %d: exact %d rows > greedy %d rows", trial, len(e.Rows), len(g.Rows))
		}
		if !e.Optimal {
			t.Errorf("trial %d: tiny instance not proven optimal", trial)
		}
		// Cross-check optimality against brute force.
		if want := bruteForceOptimum(p); len(e.Rows) != want {
			t.Errorf("trial %d: exact found %d rows, brute force %d", trial, len(e.Rows), want)
		}
	}
}

// bruteForceOptimum enumerates all row subsets (rows ≤ ~16).
func bruteForceOptimum(p *Problem) int {
	n := p.NumRows()
	best := n + 1
	for mask := 0; mask < 1<<uint(n); mask++ {
		covered := bitvec.NewSet(p.NumCols())
		size := 0
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				covered.Or(p.Row(i))
				size++
			}
		}
		if size < best && covered.Len() == p.NumCols() {
			best = size
		}
	}
	return best
}

func randomCoverable(rng *rand.Rand, nRows, nCols int) *Problem {
	p := NewProblem(nCols)
	for i := 0; i < nRows; i++ {
		s := bitvec.NewSet(nCols)
		for j := 0; j < nCols; j++ {
			if rng.Intn(3) == 0 {
				s.Add(j)
			}
		}
		p.AddRow(s)
	}
	// Ensure coverage: add leftover columns to random rows.
	for _, j := range p.UncoverableColumns() {
		p.rows[rng.Intn(nRows)].Add(j)
	}
	return p
}

func TestReduceEssential(t *testing.T) {
	// Column 3 is covered only by row 1, so row 1 is essential and its
	// columns vanish; the rest reduces away entirely.
	p := mk(4,
		[]int{0, 1},
		[]int{2, 3},
		[]int{0, 1, 2},
	)
	red := p.Reduce()
	if len(red.Essential) != 2 {
		t.Fatalf("essential = %v, want rows 1 and 2 (or equivalent)", red.Essential)
	}
	if !red.Empty() {
		t.Errorf("residual should be empty, has %d cols", red.Residual.NumCols())
	}
}

func TestReduceRowDominance(t *testing.T) {
	// No column is uniquely covered, so essentiality cannot fire first;
	// rows 0 and 2 are strict subsets of row 1 and must be dominated,
	// after which row 1 becomes essential.
	p := mk(3,
		[]int{0, 1},
		[]int{0, 1, 2},
		[]int{2},
	)
	red := p.Reduce()
	if len(red.DominatedRows) != 2 || red.DominatedRows[0] != 0 || red.DominatedRows[1] != 2 {
		t.Errorf("dominated rows = %v, want [0 2] (%+v)", red.DominatedRows, red)
	}
	if len(red.Essential) != 1 || red.Essential[0] != 1 {
		t.Errorf("essential = %v, want [1]", red.Essential)
	}
	if !red.Empty() {
		t.Errorf("residual should be empty")
	}
}

func TestReduceColumnDominance(t *testing.T) {
	// Every row covering col 0 also covers col 1 (rows(0) ⊆ rows(1)), so
	// col 1 is implied. With col 1 gone, rows 0 and 1 tie.
	p := mk(2,
		[]int{0, 1},
		[]int{0, 1},
		[]int{1},
	)
	red := p.Reduce()
	if red.ImpliedCols == 0 {
		t.Errorf("expected implied/duplicate columns: %+v", red)
	}
	sol, _, err := p.SolveMinimal(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rows) != 1 {
		t.Errorf("minimal cover = %v, want 1 row", sol.Rows)
	}
}

func TestSolveMinimalMatchesPlainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		p := randomCoverable(rng, 5+rng.Intn(10), 8+rng.Intn(20))
		plain, err := p.SolveExact(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		viaReduce, red, err := p.SolveMinimal(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(viaReduce.Rows) {
			t.Fatalf("trial %d: reduced solution does not cover original", trial)
		}
		if len(viaReduce.Rows) != len(plain.Rows) {
			t.Errorf("trial %d: reduction changed optimum: %d vs %d (reduction %+v)",
				trial, len(viaReduce.Rows), len(plain.Rows), red)
		}
		if !p.Minimal(viaReduce.Rows) {
			t.Errorf("trial %d: solution is redundant", trial)
		}
	}
}

func TestReductionAloneSolvesDisjointMatrix(t *testing.T) {
	// Disjoint rows: every column has a unique covering row, so the whole
	// solution is essential (the paper's "empty matrix after reduction").
	p := mk(6, []int{0, 1}, []int{2, 3}, []int{4, 5})
	sol, red, err := p.SolveMinimal(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !red.Empty() || len(red.Essential) != 3 {
		t.Errorf("reduction should solve outright: %+v", red)
	}
	if len(sol.Rows) != 3 || sol.Nodes != 0 {
		t.Errorf("solution = %+v", sol)
	}
}

func TestCyclicCoreNeedsSolver(t *testing.T) {
	// The classic 2-cover cycle: no essentials, no dominance; the solver
	// must work (paper's "no necessary triplets" circuits).
	p := mk(3,
		[]int{0, 1},
		[]int{1, 2},
		[]int{2, 0},
	)
	sol, red, err := p.SolveMinimal(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Essential) != 0 {
		t.Errorf("cyclic core has no essentials: %v", red.Essential)
	}
	if red.Empty() {
		t.Error("cyclic core should survive reduction")
	}
	if len(sol.Rows) != 2 || !sol.Optimal {
		t.Errorf("minimal cover = %+v, want 2 rows", sol)
	}
}

func TestNodeLimitTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomCoverable(rng, 40, 120)
	sol, err := p.SolveExact(ExactOptions{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Error("1-node budget cannot prove optimality")
	}
	if !p.Verify(sol.Rows) {
		t.Error("truncated solve must still return the greedy incumbent cover")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(0)
	sol, err := p.SolveExact(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rows) != 0 || !sol.Optimal {
		t.Errorf("empty problem solution = %+v", sol)
	}
}

func TestAddRowUniverseMismatchPanics(t *testing.T) {
	p := NewProblem(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong universe")
		}
	}()
	p.AddRow(bitvec.NewSet(5))
}

// Larger randomized stress: reduction + exact equals brute force on
// instances with heavy duplication (like fault-simulation matrices).
func TestDuplicateHeavyMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		base := randomCoverable(rng, 4+rng.Intn(6), 5+rng.Intn(6))
		// Duplicate columns heavily by widening: each original column is
		// repeated 1-4 times.
		reps := make([]int, base.NumCols())
		total := 0
		for j := range reps {
			reps[j] = 1 + rng.Intn(4)
			total += reps[j]
		}
		p := NewProblem(total)
		for i := 0; i < base.NumRows(); i++ {
			s := bitvec.NewSet(total)
			k := 0
			for j := 0; j < base.NumCols(); j++ {
				for r := 0; r < reps[j]; r++ {
					if base.Row(i).Contains(j) {
						s.Add(k)
					}
					k++
				}
			}
			p.AddRow(s)
		}
		sol, red, err := p.SolveMinimal(ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForceOptimum(base); len(sol.Rows) != want {
			t.Errorf("trial %d: got %d rows, want %d", trial, len(sol.Rows), want)
		}
		// When the instance is not solved outright by essentiality, the
		// duplicated columns must have been collapsed by column dominance.
		if !red.Empty() && red.ImpliedCols == 0 && total > base.NumCols() {
			t.Errorf("trial %d: duplicates not collapsed", trial)
		}
	}
}

func BenchmarkReduceDuplicateHeavy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	base := randomCoverable(rng, 60, 200)
	p := NewProblem(4000)
	for i := 0; i < base.NumRows(); i++ {
		s := bitvec.NewSet(4000)
		for j := 0; j < 4000; j++ {
			if base.Row(i).Contains(j % 200) {
				s.Add(j)
			}
		}
		p.AddRow(s)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Reduce()
	}
}

func BenchmarkExactMediumInstance(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := randomCoverable(rng, 30, 80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveExact(ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolutionRowsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := randomCoverable(rng, 10, 20)
	sol, _, err := p.SolveMinimal(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(sol.Rows) {
		t.Errorf("rows not sorted: %v", sol.Rows)
	}
}
