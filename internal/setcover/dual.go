package setcover

// The Lagrangian dual lower bound of the branch-and-bound engine.
//
// Relaxing the covering constraints of
//
//	min Σ_r c_r x_r   s.t.  Σ_{r covers j} x_r >= 1 (for every column j)
//
// with one multiplier u_j >= 0 per column prices each row down by the
// multipliers of the columns it covers. For ANY non-negative u the
// Lagrangian value
//
//	L(u) = Σ_{j uncovered} u_j + Σ_{r available} min(0, c_r − Σ_{j∈r, uncovered} u_j)
//
// is a lower bound on the cheapest way to cover the uncovered columns with
// the available (non-banned) rows: every cover x satisfies
// Σ c_r x_r >= Σ c_r x_r + Σ_j u_j (1 − Σ_{r∋j} x_r) = Σ_j u_j +
// Σ_r (c_r − Σ_{j∈r} u_j) x_r >= L(u). Because validity does not depend on
// how u was obtained, the engine can compute multipliers once at the root by
// projected subgradient ascent (Held–Karp step sizes toward the greedy upper
// bound) and re-price any node's residual with them — plus a few cheap
// task-local refinement steps — without ever risking a wrong prune. Costs
// are integral, so ceil(L(u)) is also valid; dualRound subtracts a slack
// far above the accumulated float error before rounding up, so a float
// wobble can only weaken the bound, never overstate it.
//
// The ascent itself is deterministic: rows and columns are visited in
// ascending order, the root runs before the parallel fan-out, and per-node
// refinements start from the shared root multipliers and depend only on the
// node's (uncovered, banned) state and the task-local incumbent — never on
// another worker's timing.

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
)

// BoundMode selects the lower bound the branch-and-bound engine prunes
// with. Both modes return bit-identical Rows/Cost/Optimal for solves that
// complete — a valid lower bound only ever removes subtrees that contain no
// improvement — and differ only in Nodes and wall time.
type BoundMode int

const (
	// BoundAuto is the engine default: the Lagrangian dual bound.
	BoundAuto BoundMode = iota
	// BoundLagrangian prunes with max(dual value, counting bound) at every
	// node: per-column multipliers from a root subgradient ascent priced
	// into the residual's row costs, refined by a few task-local steps.
	BoundLagrangian
	// BoundCounting prunes with the combinatorial bound alone (greedily
	// accumulated pairwise row-disjoint columns). It is the pre-dual
	// engine's behaviour, kept for comparison runs and the corpus
	// harness's baseline column.
	BoundCounting
)

func (m BoundMode) String() string {
	switch m {
	case BoundAuto:
		return "auto"
	case BoundLagrangian:
		return "lagrangian"
	case BoundCounting:
		return "counting"
	default:
		return fmt.Sprintf("BoundMode(%d)", int(m))
	}
}

const (
	// defaultAscentIters is the root subgradient budget when
	// ExactOptions.AscentIters is zero.
	defaultAscentIters = 64
	// defaultAscentPerNode is the per-node refinement budget when
	// ExactOptions.AscentPerNode is zero.
	defaultAscentPerNode = 2
	// dualSlack is subtracted before rounding a float dual value up to an
	// integer bound. It is orders of magnitude above the accumulated
	// floating-point error of the summations, so rounding can only lose
	// tightness, never validity.
	dualSlack = 1e-6
)

// dualRound converts a float Lagrangian value into a valid integer lower
// bound (costs are integral, so the optimum is an integer >= L).
func dualRound(l float64) int {
	b := int(math.Ceil(l - dualSlack))
	if b < 0 {
		return 0
	}
	return b
}

// dualScratch is the reusable workspace of one dual evaluation site (the
// root ascent, or one bbTask): multipliers and subgradient, both sized to
// the column universe.
type dualScratch struct {
	u []float64 // per-column multipliers
	g []float64 // subgradient workspace
}

func newDualScratch(numCols int) *dualScratch {
	return &dualScratch{u: make([]float64, numCols), g: make([]float64, numCols)}
}

// dualEval computes the Lagrangian value of the residual (uncovered,
// banned) at multipliers u. When grad is non-nil it also fills the
// projected subgradient — g_j = 1 − (negative-reduced-cost rows covering j)
// for uncovered j — and returns its squared norm. Rows and columns are
// visited in ascending order, so the result is a pure deterministic
// function of its inputs.
func (e *engine) dualEval(u []float64, uncovered, banned *bitvec.Set, grad []float64) (val, gnorm2 float64) {
	if grad != nil {
		uncovered.ForEach(func(j int) { grad[j] = 1 })
	}
	uncovered.ForEach(func(j int) { val += u[j] })
	for r, row := range e.p.rows {
		if banned.Contains(r) {
			continue
		}
		rc := float64(e.rowCost(r))
		row.ForEachIn(uncovered, func(j int) { rc -= u[j] })
		if rc < 0 {
			val += rc
			if grad != nil {
				row.ForEachIn(uncovered, func(j int) { grad[j]-- })
			}
		}
	}
	if grad != nil {
		uncovered.ForEach(func(j int) { gnorm2 += grad[j] * grad[j] })
	}
	return val, gnorm2
}

// dualInit seeds the multipliers: u_j = (cheapest available row covering j)
// / (that row's column count). The classical warm start — each column
// claims an equal share of its cheapest row — lands the ascent in the right
// region immediately, which matters when the per-node budget is tiny.
func (e *engine) dualInit(u []float64, uncovered, banned *bitvec.Set) {
	uncovered.ForEach(func(j int) {
		best := math.Inf(1)
		for _, r := range e.colRows[j] {
			if banned.Contains(r) {
				continue
			}
			if v := float64(e.rowCost(r)) / float64(e.p.rows[r].Len()); v < best {
				best = v
			}
		}
		u[j] = best
	})
}

// dualAscend runs projected subgradient ascent from the multipliers in
// s.u, mutating them in place, and returns the best Lagrangian value seen.
// target is the upper bound the Held–Karp step size aims at (the residual's
// incumbent cost); agility is the initial step scale, decayed by 5% per
// iteration. The ascent stops early when the subgradient vanishes (u is
// dual-optimal) or the value reaches target (the caller will prune on it
// anyway). s.u holds the multipliers of the best value when it returns.
func (e *engine) dualAscend(s *dualScratch, uncovered, banned *bitvec.Set, target float64, iters int, agility float64) float64 {
	best := math.Inf(-1)
	var bestU []float64 // lazily cloned only when an iteration improves
	f := agility
	for it := 0; it <= iters; it++ {
		val, gnorm2 := e.dualEval(s.u, uncovered, banned, s.g)
		if val > best {
			best = val
			if iters > 0 {
				bestU = append(bestU[:0], s.u...)
			}
		}
		if it == iters || gnorm2 == 0 || best >= target {
			break
		}
		step := f * (target - val) / gnorm2
		if step <= 0 {
			break
		}
		uncovered.ForEach(func(j int) {
			if u := s.u[j] + step*s.g[j]; u > 0 {
				s.u[j] = u
			} else {
				s.u[j] = 0
			}
		})
		f *= 0.95
	}
	if bestU != nil {
		copy(s.u, bestU)
	}
	return best
}

// DualBound computes a provable lower bound on the optimal cover cost by
// Lagrangian subgradient ascent — the root bound the engine's
// BoundLagrangian mode prunes with, exposed for corpus tightness reports
// and for tests asserting the bound never exceeds a known optimum. A nil
// weights slice means unit costs; iters <= 0 uses the engine default
// ascent budget. The bound is deterministic for a given problem.
func (p *Problem) DualBound(weights []int, iters int) (int, error) {
	if weights != nil {
		if err := p.validateWeights(weights); err != nil {
			return 0, err
		}
	}
	if bad := p.UncoverableColumns(); bad != nil {
		return 0, fmt.Errorf("setcover: %d columns uncoverable (first: %d)", len(bad), bad[0])
	}
	if p.numCols == 0 {
		return 0, nil
	}
	greedy, err := p.solveGreedyImpl(weights)
	if err != nil {
		return 0, err
	}
	if iters <= 0 {
		iters = defaultAscentIters
	}
	e := newEngine(p, weights, greedy, greedy.Cost, ExactOptions{})
	uncovered := bitvec.NewSet(p.numCols)
	uncovered.Fill()
	banned := bitvec.NewSet(p.NumRows())
	s := newDualScratch(p.numCols)
	e.dualInit(s.u, uncovered, banned)
	best := e.dualAscend(s, uncovered, banned, float64(greedy.Cost), iters, rootAgility)
	b := dualRound(best)
	if b > greedy.Cost {
		// Cannot happen (the ascent stops at target), but never report a
		// "lower bound" above a known-feasible cost.
		b = greedy.Cost
	}
	return b, nil
}

// rootAgility and nodeAgility are the initial Held–Karp step scales of the
// root ascent (many iterations, decaying) and the per-node refinements (a
// couple of conservative steps from the root multipliers).
const (
	rootAgility = 1.5
	nodeAgility = 0.7
)
