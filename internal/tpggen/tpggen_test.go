package tpggen

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

// runNetlist drives a synthesized TPG netlist for n cycles: the state
// register is loaded with delta, the theta inputs are held constant, and
// the primary outputs (the state register) are sampled each cycle.
func runNetlist(t *testing.T, c *netlist.Circuit, delta, theta bitvec.Vector, n int) []bitvec.Vector {
	t.Helper()
	sim, err := logicsim.NewSequential(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetState(delta); err != nil {
		t.Fatal(err)
	}
	in := bitvec.New(len(c.Inputs))
	for i := 0; i < len(c.Inputs); i++ {
		in.SetBit(i, theta.Bit(i))
	}
	out := make([]bitvec.Vector, n)
	for cyc := 0; cyc < n; cyc++ {
		// Output vector bit order equals state bit order by construction.
		o, err := sim.StepOne(in)
		if err != nil {
			t.Fatal(err)
		}
		out[cyc] = o
	}
	return out
}

// expandBehavioral runs the behavioral model for the same triplet.
func expandBehavioral(t *testing.T, g tpg.Generator, delta, theta bitvec.Vector, n int) []bitvec.Vector {
	t.Helper()
	ts, err := tpg.Expand(g, tpg.Triplet{Delta: delta, Theta: theta, Cycles: n})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestAdderMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 7, 8, 16, 33} {
		hw, err := Adder(width)
		if err != nil {
			t.Fatal(err)
		}
		beh, err := tpg.NewAdder(width)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			delta := bitvec.Random(width, rng)
			theta := bitvec.Random(width, rng)
			want := expandBehavioral(t, beh, delta, theta, 12)
			got := runNetlist(t, hw, delta, theta, 12)
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("width %d trial %d cycle %d: netlist %s, behavioral %s",
						width, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSubtracterMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{1, 3, 8, 21} {
		hw, err := Subtracter(width)
		if err != nil {
			t.Fatal(err)
		}
		beh, err := tpg.NewSubtracter(width)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			delta := bitvec.Random(width, rng)
			theta := bitvec.Random(width, rng)
			want := expandBehavioral(t, beh, delta, theta, 12)
			got := runNetlist(t, hw, delta, theta, 12)
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("width %d trial %d cycle %d: netlist %s, behavioral %s",
						width, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMultiplierMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, width := range []int{1, 2, 4, 8, 12} {
		hw, err := Multiplier(width)
		if err != nil {
			t.Fatal(err)
		}
		beh, err := tpg.NewMultiplier(width)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			delta := bitvec.Random(width, rng)
			theta := beh.RandomTheta(rng) // odd, as the flow would use
			want := expandBehavioral(t, beh, delta, theta, 8)
			got := runNetlist(t, hw, delta, theta, 8)
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("width %d trial %d cycle %d: netlist %s, behavioral %s",
						width, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestLFSRMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, width := range []int{2, 4, 8, 16, 31} {
		taps := tpg.DefaultPolynomials(width, 1, 1)[0]
		hw, err := LFSR(width, taps)
		if err != nil {
			t.Fatal(err)
		}
		beh, err := tpg.NewLFSR(width, []bitvec.Vector{taps})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			delta := bitvec.Random(width, rng)
			theta := bitvec.New(width) // selects polynomial 0
			want := expandBehavioral(t, beh, delta, theta, 20)
			got := runNetlist(t, hw, delta, theta, 20)
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("width %d trial %d cycle %d: netlist %s, behavioral %s",
						width, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFromKindAllKinds(t *testing.T) {
	for _, kind := range tpg.Kinds() {
		c, err := FromKind(kind, 8)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if len(c.Outputs) != 8 || len(c.DFFs) != 8 {
			t.Errorf("%s: %d outputs, %d DFFs", kind, len(c.Outputs), len(c.DFFs))
		}
	}
	if _, err := FromKind("bogus", 8); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestInvalidArguments(t *testing.T) {
	if _, err := Adder(0); err == nil {
		t.Error("Adder(0) should fail")
	}
	if _, err := Multiplier(-1); err == nil {
		t.Error("Multiplier(-1) should fail")
	}
	if _, err := LFSR(8, bitvec.New(7)); err == nil {
		t.Error("LFSR with wrong tap width should fail")
	}
	noTop := bitvec.New(8)
	if _, err := LFSR(8, noTop); err == nil {
		t.Error("LFSR without top tap should fail")
	}
}

func TestNetlistsRoundTripBenchFormat(t *testing.T) {
	c, err := Adder(8)
	if err != nil {
		t.Fatal(err)
	}
	text := netlist.Format(c)
	c2, err := netlist.ParseString("rt", text)
	if err != nil {
		t.Fatalf("re-parse synthesized netlist: %v", err)
	}
	if c2.NumLogicGates() != c.NumLogicGates() || len(c2.DFFs) != len(c.DFFs) {
		t.Error("round trip changed the netlist")
	}
}

func TestMultiplierGateCountQuadratic(t *testing.T) {
	small, _ := Multiplier(4)
	large, _ := Multiplier(8)
	// Doubling the width should roughly quadruple the array.
	ratio := float64(large.NumLogicGates()) / float64(small.NumLogicGates())
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("gate growth ratio %.2f (4-bit: %d, 8-bit: %d)",
			ratio, small.NumLogicGates(), large.NumLogicGates())
	}
}
