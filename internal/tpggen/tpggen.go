// Package tpggen synthesizes the test pattern generators of package tpg as
// gate-level netlists: the hardware a Functional BIST insertion flow would
// actually place next to the unit under test.
//
// Each generated circuit follows the same register model as the behavioral
// generators: the state register is a bank of DFFs (one per output bit),
// the input register θ appears as primary inputs held constant during a
// session, and every state bit is a primary output, so the circuit's
// primary output vector at cycle j is exactly the behavioral generator's
// j-th pattern. Equivalence against the behavioral models is established
// by the package tests via logicsim.SeqSimulator.
package tpggen

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

// Adder synthesizes an adder-based accumulator: a width-bit state register
// updated through a ripple-carry adder, S ← S + θ mod 2^width.
//
// Interface: inputs theta0..theta{n-1}; outputs s0..s{n-1} (the state
// register); DFFs s{i} in bit order.
func Adder(width int) (*netlist.Circuit, error) {
	return accumulator("tpg_adder", width, false)
}

// Subtracter synthesizes S ← S − θ using the two's-complement identity
// S + ~θ + 1: the θ operand enters inverted and the ripple carry-in is 1.
func Subtracter(width int) (*netlist.Circuit, error) {
	return accumulator("tpg_subtracter", width, true)
}

func accumulator(name string, width int, subtract bool) (*netlist.Circuit, error) {
	if width <= 0 {
		return nil, fmt.Errorf("tpggen: invalid width %d", width)
	}
	c := netlist.New(name)
	for i := 0; i < width; i++ {
		if _, err := c.AddInput(sig("theta", i)); err != nil {
			return nil, err
		}
	}
	// State register; D inputs are forward references resolved below.
	for i := 0; i < width; i++ {
		if _, err := c.AddGate(sig("s", i), netlist.DFF, sig("d", i)); err != nil {
			return nil, err
		}
		if err := c.MarkOutput(sig("s", i)); err != nil {
			return nil, err
		}
	}
	// Operand conditioning: the subtracter complements θ.
	operand := func(i int) string { return sig("theta", i) }
	if subtract {
		for i := 0; i < width; i++ {
			if _, err := c.AddGate(sig("nt", i), netlist.Not, sig("theta", i)); err != nil {
				return nil, err
			}
		}
		operand = func(i int) string { return sig("nt", i) }
	}
	// Carry-in: 0 for addition, 1 for two's-complement subtraction.
	carryKind := netlist.Const0
	if subtract {
		carryKind = netlist.Const1
	}
	if _, err := c.AddGate("c0", carryKind); err != nil {
		return nil, err
	}
	// Ripple-carry full adders: d_i = s_i ⊕ b_i ⊕ c_i,
	// c_{i+1} = (s_i ∧ b_i) ∨ (c_i ∧ (s_i ⊕ b_i)).
	for i := 0; i < width; i++ {
		p := sig("p", i) // propagate: s_i ⊕ b_i
		if _, err := c.AddGate(p, netlist.Xor, sig("s", i), operand(i)); err != nil {
			return nil, err
		}
		if _, err := c.AddGate(sig("d", i), netlist.Xor, p, sig("c", i)); err != nil {
			return nil, err
		}
		if i == width-1 {
			break // top carry-out is discarded (mod 2^width)
		}
		g := sig("g", i) // generate: s_i ∧ b_i
		if _, err := c.AddGate(g, netlist.And, sig("s", i), operand(i)); err != nil {
			return nil, err
		}
		cp := sig("cp", i) // carry propagate term: c_i ∧ p_i
		if _, err := c.AddGate(cp, netlist.And, sig("c", i), p); err != nil {
			return nil, err
		}
		if _, err := c.AddGate(sig("c", i+1), netlist.Or, g, cp); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// Multiplier synthesizes S ← S × θ mod 2^width as a shift-and-add array:
// width rows of conditional ripple-carry adders. Gate count grows
// quadratically (≈ 6·width²), matching the real cost of reusing a
// combinational multiplier as a TPG.
func Multiplier(width int) (*netlist.Circuit, error) {
	if width <= 0 {
		return nil, fmt.Errorf("tpggen: invalid width %d", width)
	}
	c := netlist.New("tpg_multiplier")
	for i := 0; i < width; i++ {
		if _, err := c.AddInput(sig("theta", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < width; i++ {
		if _, err := c.AddGate(sig("s", i), netlist.DFF, sig("d", i)); err != nil {
			return nil, err
		}
		if err := c.MarkOutput(sig("s", i)); err != nil {
			return nil, err
		}
	}
	if _, err := c.AddGate("zero", netlist.Const0); err != nil {
		return nil, err
	}

	// acc holds the running partial sum names; row r adds (S ∧ θ_r) << r.
	// Only bits < width matter (mod 2^width).
	acc := make([]string, width)
	for i := range acc {
		acc[i] = "zero"
	}
	for r := 0; r < width; r++ {
		// Partial product row: pp_{r,i} = s_i ∧ θ_r, contributing to bit r+i.
		// Positions below r keep the accumulator unchanged.
		carry := "zero"
		next := make([]string, width)
		copy(next, acc)
		for i := 0; r+i < width; i++ {
			pp := sig2("pp", r, i)
			if _, err := c.AddGate(pp, netlist.And, sig("s", i), sig("theta", r)); err != nil {
				return nil, err
			}
			pos := r + i
			p := sig2("mp", r, pos)
			if _, err := c.AddGate(p, netlist.Xor, acc[pos], pp); err != nil {
				return nil, err
			}
			sum := sig2("ms", r, pos)
			if _, err := c.AddGate(sum, netlist.Xor, p, carry); err != nil {
				return nil, err
			}
			next[pos] = sum
			if pos == width-1 {
				break // carry out of the top bit is discarded
			}
			g := sig2("mg", r, pos)
			if _, err := c.AddGate(g, netlist.And, acc[pos], pp); err != nil {
				return nil, err
			}
			cp := sig2("mc", r, pos)
			if _, err := c.AddGate(cp, netlist.And, carry, p); err != nil {
				return nil, err
			}
			co := sig2("mo", r, pos)
			if _, err := c.AddGate(co, netlist.Or, g, cp); err != nil {
				return nil, err
			}
			carry = co
		}
		acc = next
	}
	for i := 0; i < width; i++ {
		if _, err := c.AddGate(sig("d", i), netlist.Buf, acc[i]); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// LFSR synthesizes a Galois (one-to-many) LFSR with a fixed tap mask: on
// each clock the register shifts right and the tap positions XOR in the
// old bit 0. The mask must have its top bit set, as in tpg.NewLFSR.
func LFSR(width int, taps bitvec.Vector) (*netlist.Circuit, error) {
	if width <= 0 {
		return nil, fmt.Errorf("tpggen: invalid width %d", width)
	}
	if taps.Width() != width {
		return nil, fmt.Errorf("tpggen: tap mask width %d, want %d", taps.Width(), width)
	}
	if !taps.Bit(width - 1) {
		return nil, fmt.Errorf("tpggen: tap mask lacks the top tap")
	}
	c := netlist.New("tpg_lfsr")
	for i := 0; i < width; i++ {
		if _, err := c.AddGate(sig("s", i), netlist.DFF, sig("d", i)); err != nil {
			return nil, err
		}
		if err := c.MarkOutput(sig("s", i)); err != nil {
			return nil, err
		}
	}
	if _, err := c.AddGate("zero", netlist.Const0); err != nil {
		return nil, err
	}
	// next[i] = s[i+1] ⊕ (taps[i] ∧ s[0]); s[width] = 0.
	for i := 0; i < width; i++ {
		shifted := sig("s", i+1)
		if i == width-1 {
			shifted = "zero"
		}
		if taps.Bit(i) {
			if _, err := c.AddGate(sig("d", i), netlist.Xor, shifted, sig("s", 0)); err != nil {
				return nil, err
			}
		} else {
			if _, err := c.AddGate(sig("d", i), netlist.Buf, shifted); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// FromKind synthesizes the named generator kind ("adder", "subtracter",
// "multiplier", "lfsr"). The LFSR uses the first default polynomial of
// package tpg, so behaviour matches tpg.ByName with θ = 0.
func FromKind(kind string, width int) (*netlist.Circuit, error) {
	switch kind {
	case "adder", "add":
		return Adder(width)
	case "subtracter", "sub":
		return Subtracter(width)
	case "multiplier", "mul":
		return Multiplier(width)
	case "lfsr":
		return LFSR(width, defaultTaps(width))
	default:
		return nil, fmt.Errorf("tpggen: unknown generator kind %q", kind)
	}
}

// defaultTaps matches tpg.ByName("lfsr", width) with θ = 0, which selects
// the first of the default polynomial bank.
func defaultTaps(width int) bitvec.Vector {
	return tpg.DefaultPolynomials(width, 1, 1)[0]
}

func sig(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

func sig2(prefix string, r, i int) string { return fmt.Sprintf("%s_%d_%d", prefix, r, i) }
