package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// newTableWithJobs builds a table of n jobs directly (no HTTP, no solver):
// the table-level invariants under test are independent of how jobs run.
func newTableWithJobs(t *testing.T, limit, n int) (*jobTable, []*job) {
	t.Helper()
	tbl := &jobTable{}
	tbl.init(limit)
	jobs := make([]*job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, tbl.create(engine.Request{}, func() {}))
	}
	return tbl, jobs
}

func (j *job) setFinished(t *testing.T, st jobState, at time.Time) {
	t.Helper()
	if !st.finished() {
		t.Fatalf("setFinished called with non-final state %q", st)
	}
	j.mu.Lock()
	j.state, j.finished = st, at
	j.mu.Unlock()
}

// TestJobListDeterministicOrder pins the listing contract: ids ascending,
// which for zero-padded creation counters is creation order — regardless
// of map iteration order, so the same table always serializes the same.
func TestJobListDeterministicOrder(t *testing.T) {
	tbl, _ := newTableWithJobs(t, 100, 17)
	for trial := 0; trial < 10; trial++ {
		views := tbl.list()
		if len(views) != 17 {
			t.Fatalf("list returned %d jobs, want 17", len(views))
		}
		for i, v := range views {
			want := fmt.Sprintf("job-%06d", i+1)
			if v.ID != want {
				t.Fatalf("trial %d: views[%d].ID = %q, want %q", trial, i, v.ID, want)
			}
		}
	}
}

// TestJobEvictionOldestFinishedFirst pins the eviction contract: when the
// table is over its limit, finished jobs leave in (finish time, id) order
// and running jobs are untouchable.
func TestJobEvictionOldestFinishedFirst(t *testing.T) {
	tbl, jobs := newTableWithJobs(t, 4, 4)
	base := time.Now()
	// Finish times deliberately disagree with creation order: job 3
	// finished first, then job 1; jobs 2 and 4 still run.
	jobs[2].setFinished(t, jobDone, base.Add(1*time.Second))
	jobs[0].setFinished(t, jobFailed, base.Add(2*time.Second))

	// One more job pushes the table to 5 > 4: exactly one eviction, and it
	// must be job 3 (earliest finish), not job 1 (earliest creation).
	tbl.create(engine.Request{}, func() {})
	if _, ok := tbl.get(jobs[2].id); ok {
		t.Fatalf("%s has the oldest finish time and should have been evicted", jobs[2].id)
	}
	if _, ok := tbl.get(jobs[0].id); !ok {
		t.Fatalf("%s was evicted out of finish-time order", jobs[0].id)
	}
	for _, j := range []*job{jobs[1], jobs[3]} {
		if _, ok := tbl.get(j.id); !ok {
			t.Fatalf("running job %s was evicted", j.id)
		}
	}
}

// TestJobEvictionFinishTimeTies pins the tie-break: equal finish times
// evict in id order.
func TestJobEvictionFinishTimeTies(t *testing.T) {
	tbl, jobs := newTableWithJobs(t, 2, 4)
	at := time.Now()
	for _, j := range jobs {
		j.setFinished(t, jobCancelled, at)
	}
	tbl.create(engine.Request{}, func() {}) // 5 jobs, limit 2 → evict 3
	var left []string
	for _, v := range tbl.list() {
		left = append(left, v.ID)
	}
	want := []string{"job-000004", "job-000005"}
	if strings.Join(left, ",") != strings.Join(want, ",") {
		t.Fatalf("surviving jobs = %v, want %v (ties broken by id)", left, want)
	}
}

// TestJobCountsDeterministic pins that the aggregate views agree with the
// sorted snapshot they are built from.
func TestJobCountsDeterministic(t *testing.T) {
	tbl, jobs := newTableWithJobs(t, 100, 6)
	jobs[1].setFinished(t, jobDone, time.Now())
	jobs[4].setFinished(t, jobFailed, time.Now())
	counts := tbl.countByState()
	if counts[string(jobQueued)] != 4 || counts[string(jobDone)] != 1 || counts[string(jobFailed)] != 1 {
		t.Fatalf("countByState = %v", counts)
	}
	if got := tbl.active(); got != 4 {
		t.Fatalf("active = %d, want 4", got)
	}
}
