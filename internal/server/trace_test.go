package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

// c499Req is a request whose reduction leaves a nonempty residual, so the
// exact solver genuinely branches (root LB, nodes, incumbents) — the
// telemetry tests need a solve with search activity.
func c499Req() engine.Request {
	return engine.Request{Circuit: "c499", TPG: "adder", Cycles: 8, Seed: 2, ATPGSeed: 1}
}

// postTraced posts a solve with an explicit Traceparent header (empty =
// no header) and returns the response.
func postTraced(t *testing.T, url, traceparent string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// A malformed (or absent) Traceparent header must degrade to a fresh root
// trace — never a 400. Pinned by the observability acceptance criteria.
func TestTraceparentDegradesToFreshRoot(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, header string
	}{
		{"absent", ""},
		{"garbage", "not-a-traceparent"},
		{"short-fields", "00-123-456-01"},
		{"non-hex", "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-xxxxxxxxxxxxxxxx-01"},
		{"bad-version", "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postTraced(t, ts.URL+"/v1/solve", tc.header, s420Req())
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
			}
			tid, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
			if !ok {
				t.Fatalf("response Traceparent %q does not parse", resp.Header.Get("Traceparent"))
			}
			if strings.Contains(tc.header, tid) {
				t.Errorf("trace ID %s reused from the malformed header %q", tid, tc.header)
			}
		})
	}
}

// A well-formed incoming Traceparent is continued: the solve joins the
// caller's trace instead of starting a fresh one.
func TestTraceparentContinuesCallerTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	resp := postTraced(t, ts.URL+"/v1/solve", parent, s420Req())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	tid, spanID, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || tid != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("response Traceparent %q does not continue the caller's trace", resp.Header.Get("Traceparent"))
	}
	if spanID == "b7ad6b7169203331" {
		t.Error("response span ID echoes the caller's instead of naming the server's root span")
	}
	var body engine.Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Timing == nil || body.Timing.TraceID != tid {
		t.Errorf("Response.Timing does not carry the continued trace ID %s: %+v", tid, body.Timing)
	}
}

// One traced solve: Response.Timing carries the phase breakdown, the
// flight recorder serves the full trace back over /v1/traces, and the
// solve lands in every telemetry histogram on /metrics.
func TestSolveTraceRoundTripAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hres, body := postJSON(t, ts.URL+"/v1/solve", c499Req())
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", hres.StatusCode, body)
	}
	var resp engine.Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Timing == nil || resp.Timing.TraceID == "" {
		t.Fatal("Response.Timing missing from a served solve")
	}
	if tid, _, _ := obs.ParseTraceparent(hres.Header.Get("Traceparent")); tid != resp.Timing.TraceID {
		t.Errorf("Traceparent header trace %s != Timing trace %s", tid, resp.Timing.TraceID)
	}

	var td obs.TraceData
	if r := getJSON(t, ts.URL+"/v1/traces/"+resp.Timing.TraceID, &td); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id}: %d", r.StatusCode)
	}
	names := make(map[string]bool, len(td.Spans))
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	// The recorded trace holds the HTTP request span (named by route) plus
	// the solve subtree — more than Response.Timing, which is solve-only.
	for _, want := range []string{"/v1/solve", "solve", "covering", "bb"} {
		if !names[want] {
			t.Errorf("recorded trace missing span %q (have %v)", want, names)
		}
	}
	if len(td.Spans) <= len(resp.Timing.Spans) {
		t.Errorf("recorded trace (%d spans) should extend Timing (%d spans) with the request span",
			len(td.Spans), len(resp.Timing.Spans))
	}

	var list struct {
		Traces []traceSummary `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/traces", &list)
	found := false
	for _, s := range list.Traces {
		if s.TraceID == resp.Timing.TraceID {
			found = true
			if s.Root != "/v1/solve" {
				t.Errorf("trace summary root %q, want /v1/solve", s.Root)
			}
		}
	}
	if !found {
		t.Errorf("trace %s absent from GET /v1/traces", resp.Timing.TraceID)
	}
	if r := getJSON(t, ts.URL+"/v1/traces/no-such-trace", new(obs.TraceData)); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: %d, want 404", r.StatusCode)
	}

	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	text, err := io.ReadAll(mres.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`reseedd_solve_duration_seconds_bucket{route="/v1/solve",le="+Inf"} 1`,
		`reseedd_solve_duration_seconds_count{route="/v1/solve"} 1`,
		`reseedd_solve_phase_duration_seconds_bucket{phase="bb",le="+Inf"} 1`,
		`reseedd_solve_phase_duration_seconds_bucket{phase="atpg",le="+Inf"} 1`,
		"reseedd_solve_nodes_count 1",
		"reseedd_solve_root_lb_gap_count 1",
		// c499's exact solve closes at the root bound, so the gap sample
		// lands in the le="0" bucket — the gap math is RootLB-consistent.
		`reseedd_solve_root_lb_gap_bucket{le="0"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// An asynchronous job records a search timeline (incumbents + samples)
// and its trace — which continues the creating request's trace ID —
// stays fetchable after the job goroutine exits.
func TestJobTimelineAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hres, body := postJSON(t, ts.URL+"/v1/jobs", c499Req())
	if hres.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", hres.StatusCode, body)
	}
	createTrace, _, ok := obs.ParseTraceparent(hres.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("job create response has no Traceparent header")
	}
	var created jobView
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	final := waitJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.State != jobDone {
		t.Fatalf("job state %s, want done (%s)", final.State, final.Error)
	}
	if len(final.Timeline) == 0 {
		t.Fatal("finished job has an empty timeline")
	}
	kinds := map[string]int{}
	for _, p := range final.Timeline {
		kinds[p.Kind]++
		if p.Kind != "incumbent" && p.Kind != "sample" {
			t.Errorf("timeline point with unknown kind %q", p.Kind)
		}
		if p.T.IsZero() {
			t.Error("timeline point without a timestamp")
		}
	}
	if kinds["incumbent"] == 0 {
		t.Errorf("no incumbent points in timeline: %v", kinds)
	}
	if kinds["sample"] == 0 {
		t.Errorf("no sample points in timeline: %v", kinds)
	}
	for _, p := range final.Timeline {
		if p.Kind == "sample" && p.RootLB > 0 && p.Cost > 0 {
			want := float64(p.Cost-p.RootLB) / float64(p.Cost)
			if p.Gap != want {
				t.Errorf("sample gap %g, want %g (cost %d, root LB %d)", p.Gap, want, p.Cost, p.RootLB)
			}
		}
	}

	// The job's solve spans merged into the creating request's trace.
	if final.Response == nil || final.Response.Timing == nil {
		t.Fatal("done job lacks Response.Timing")
	}
	if final.Response.Timing.TraceID != createTrace {
		t.Errorf("job trace %s does not continue the create request's trace %s",
			final.Response.Timing.TraceID, createTrace)
	}
	var td obs.TraceData
	if r := getJSON(t, ts.URL+"/v1/traces/"+createTrace, &td); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/{job trace}: %d", r.StatusCode)
	}
	names := make(map[string]bool, len(td.Spans))
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"/v1/jobs", "solve", "bb"} {
		if !names[want] {
			t.Errorf("job trace missing span %q", want)
		}
	}
}

// Every batch member reports its own wall-clock and lands in the batch
// route's histograms.
func TestBatchPerRequestTiming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqs := []engine.Request{s420Req(), c499Req(), {Circuit: "bogus", TPG: "adder", Cycles: 8}}
	hres, body := postJSON(t, ts.URL+"/v1/batch", batchRequest{Requests: reqs})
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch: %d: %s", hres.StatusCode, body)
	}
	var out struct {
		Results []batchResult `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(out.Results), len(reqs))
	}
	for i, res := range out.Results {
		if res.ElapsedMS <= 0 {
			t.Errorf("result %d: elapsed_ms %g, want > 0 (errors are timed too)", i, res.ElapsedMS)
		}
		if res.Error == "" && (res.Response == nil || res.Response.Timing == nil) {
			t.Errorf("result %d: successful batch member lacks Response.Timing", i)
		}
	}

	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	text, err := io.ReadAll(mres.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := `reseedd_solve_duration_seconds_count{route="/v1/batch"} 2`; !strings.Contains(string(text), want) {
		t.Errorf("metrics exposition missing %q (only successful members count)", want)
	}
}
