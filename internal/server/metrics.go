package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/store"
)

// metrics holds the HTTP request counters; everything else on /metrics is
// read live from the engine and the server gauges at scrape time. The
// exposition is hand-rolled Prometheus text format — one small daemon does
// not need a client library dependency.
type metrics struct {
	mu           sync.Mutex
	requests     map[requestKey]int64 // guarded by mu
	encodeErrors int64                // guarded by mu; response bodies that failed to encode mid-write
}

type requestKey struct {
	route string
	code  int
}

func (m *metrics) incRequest(route string, code int) {
	m.mu.Lock()
	if m.requests == nil {
		m.requests = make(map[requestKey]int64)
	}
	m.requests[requestKey{route, code}]++
	m.mu.Unlock()
}

// incEncodeError counts a response body that failed to encode after the
// status line was sent — unreportable to that client, so it surfaces here.
func (m *metrics) incEncodeError() {
	m.mu.Lock()
	m.encodeErrors++
	m.mu.Unlock()
}

func (m *metrics) totalEncodeErrors() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.encodeErrors
}

func (m *metrics) totalRequests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, v := range m.requests {
		n += v
	}
	return n
}

func (m *metrics) snapshotRequests() map[requestKey]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[requestKey]int64, len(m.requests))
	for k, v := range m.requests {
		out[k] = v
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP reseedd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE reseedd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "reseedd_uptime_seconds %g\n", time.Since(s.start).Seconds())

	fmt.Fprintf(w, "# HELP reseedd_http_requests_total HTTP requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE reseedd_http_requests_total counter\n")
	reqs := s.metrics.snapshotRequests()
	keys := make([]requestKey, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].route != keys[b].route {
			return keys[a].route < keys[b].route
		}
		return keys[a].code < keys[b].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "reseedd_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, reqs[k])
	}

	fmt.Fprintf(w, "# HELP reseedd_response_encode_errors_total Response bodies that failed to encode after the status line was sent.\n")
	fmt.Fprintf(w, "# TYPE reseedd_response_encode_errors_total counter\n")
	fmt.Fprintf(w, "reseedd_response_encode_errors_total %d\n", s.metrics.totalEncodeErrors())

	fmt.Fprintf(w, "# HELP reseedd_solves_in_flight Solves currently holding an admission slot.\n")
	fmt.Fprintf(w, "# TYPE reseedd_solves_in_flight gauge\n")
	fmt.Fprintf(w, "reseedd_solves_in_flight %d\n", len(s.sem))
	fmt.Fprintf(w, "# HELP reseedd_solves_queued Synchronous solves waiting for an admission slot.\n")
	fmt.Fprintf(w, "# TYPE reseedd_solves_queued gauge\n")
	fmt.Fprintf(w, "reseedd_solves_queued %d\n", s.queued.Load())

	fmt.Fprintf(w, "# HELP reseedd_jobs Jobs retained in the job table, by state.\n")
	fmt.Fprintf(w, "# TYPE reseedd_jobs gauge\n")
	counts := s.jobs.countByState()
	for _, st := range []jobState{jobQueued, jobRunning, jobDone, jobFailed, jobCancelled} {
		fmt.Fprintf(w, "reseedd_jobs{state=%q} %d\n", st, counts[string(st)])
	}

	st := s.eng.Stats()
	for _, c := range []struct {
		name, help string
		value      int64
	}{
		{"engine_prepare_builds", "ATPG preparations executed.", st.PrepareBuilds},
		{"engine_prepare_hits", "Preparations served from the in-memory cache.", st.PrepareHits},
		{"engine_matrix_builds", "Detection Matrices built.", st.MatrixBuilds},
		{"engine_matrix_hits", "Matrices served from the in-memory cache.", st.MatrixHits},
		{"engine_solves", "Covering solves performed.", st.Solves},
		{"engine_flow_store_loads", "Preparations served from the persistent store.", st.FlowStoreLoads},
		{"engine_matrix_store_loads", "Matrices served from the persistent store.", st.MatrixStoreLoads},
		{"engine_store_errors", "Failed persistent-store reads and writes.", st.StoreErrors},
		{"engine_store_read_errors", "Failed or corrupt persistent-store reads.", st.StoreReadErrors},
		{"engine_store_write_errors", "Failed persistent-store writes.", st.StoreWriteErrors},
		{"engine_store_misses", "Persistent-store lookups that found nothing.", st.StoreMisses},
	} {
		fmt.Fprintf(w, "# HELP reseedd_%s_total %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE reseedd_%s_total counter\n", c.name)
		fmt.Fprintf(w, "reseedd_%s_total %d\n", c.name, c.value)
	}

	// Backend liveness is probed at scrape time: a probe is a stat or one
	// small HTTP round trip, bounded well under any scraper's timeout, and
	// scrape-time truth beats a cached mark going stale between scrapes.
	if backends := s.storeBackends(); len(backends) > 0 {
		fmt.Fprintf(w, "# HELP reseedd_store_up Artifact-store backend health (1 = last probe succeeded).\n")
		fmt.Fprintf(w, "# TYPE reseedd_store_up gauge\n")
		ctx, cancel := context.WithTimeout(r.Context(), storeProbeTimeout)
		defer cancel()
		for _, b := range backends {
			up := 1
			if err := b.Probe(ctx); err != nil {
				up = 0
			}
			fmt.Fprintf(w, "reseedd_store_up{backend=%q} %d\n", b.Name, up)
		}
	}
}

// storeProbeTimeout bounds the per-scrape backend probes.
const storeProbeTimeout = 2 * time.Second

// storeBackends resolves the backends the store_up gauge covers:
// Config.Backends when the daemon set them (a tiered engine store has
// two), otherwise the observational store's own.
func (s *Server) storeBackends() []store.Backend {
	if s.cfg.Backends != nil {
		return s.cfg.Backends
	}
	if s.cfg.Store != nil {
		return s.cfg.Store.Backends()
	}
	return nil
}
