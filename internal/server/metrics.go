package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

// metrics holds the HTTP request counters and the solve histograms;
// everything else on /metrics is read live from the engine and the server
// gauges at scrape time. The exposition is hand-rolled Prometheus text
// format — one small daemon does not need a client library dependency.
type metrics struct {
	mu           sync.Mutex
	requests     map[requestKey]int64 // guarded by mu
	encodeErrors int64                // guarded by mu; response bodies that failed to encode mid-write

	solveDur   map[string]*histogram // guarded by mu; solve latency by route
	phaseDur   map[string]*histogram // guarded by mu; phase latency by span name
	solveNodes *histogram            // guarded by mu; B&B nodes per solve
	rootGap    *histogram            // guarded by mu; (cost − root LB) / cost per exact solve
}

// A histogram is one fixed-bucket Prometheus histogram. Buckets hold
// per-bucket (not cumulative) counts; the exposition accumulates.
type histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; the last slot is the +Inf bucket
	sum    float64
	n      int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, so v lands in bucket le=bounds[i]
	h.counts[i]++
	h.sum += v
	h.n++
}

func (h *histogram) clone() *histogram {
	cp := &histogram{bounds: h.bounds, counts: make([]int64, len(h.counts)), sum: h.sum, n: h.n}
	copy(cp.counts, h.counts)
	return cp
}

// Bucket layouts: latencies follow the usual power-of-roughly-2.5 ladder,
// node counts are decades (a B&B search spans seven orders of magnitude
// across the corpus), and the gap buckets resolve the region near
// optimality where the Lagrangian bound usually lands.
var (
	durationBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	nodeBuckets     = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}
	gapBuckets      = []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5, 1}
)

// observeSolve folds one finished solve into the telemetry histograms:
// end-to-end latency by route, per-phase latency walked from the
// response's trace subtree, the B&B node count, and the root lower-bound
// gap relative to the objective actually minimized.
func (m *metrics) observeSolve(route string, req engine.Request, resp *engine.Response, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.solveDur == nil {
		m.solveDur = make(map[string]*histogram)
	}
	h := m.solveDur[route]
	if h == nil {
		h = newHistogram(durationBuckets)
		m.solveDur[route] = h
	}
	h.observe(d.Seconds())
	if resp == nil || resp.Solution == nil {
		return
	}
	sol := resp.Solution
	if m.solveNodes == nil {
		m.solveNodes = newHistogram(nodeBuckets)
	}
	m.solveNodes.observe(float64(sol.SolverNodes))
	if sol.RootLB > 0 {
		cost := len(sol.Triplets)
		if req.Objective == "testlength" {
			cost = sol.TestLength
		}
		if cost > 0 {
			if m.rootGap == nil {
				m.rootGap = newHistogram(gapBuckets)
			}
			m.rootGap.observe(float64(cost-sol.RootLB) / float64(cost))
		}
	}
	if resp.Timing != nil {
		if m.phaseDur == nil {
			m.phaseDur = make(map[string]*histogram)
		}
		for _, sp := range resp.Timing.Spans {
			ph := m.phaseDur[sp.Name]
			if ph == nil {
				ph = newHistogram(durationBuckets)
				m.phaseDur[sp.Name] = ph
			}
			ph.observe(float64(sp.Duration) / 1e9)
		}
	}
}

// snapshotHistograms copies the histogram state out under the lock, so the
// exposition writes without holding it.
func (m *metrics) snapshotHistograms() (solveDur, phaseDur map[string]*histogram, nodes, gap *histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	solveDur = make(map[string]*histogram, len(m.solveDur))
	for k, h := range m.solveDur {
		solveDur[k] = h.clone()
	}
	phaseDur = make(map[string]*histogram, len(m.phaseDur))
	for k, h := range m.phaseDur {
		phaseDur[k] = h.clone()
	}
	if m.solveNodes != nil {
		nodes = m.solveNodes.clone()
	}
	if m.rootGap != nil {
		gap = m.rootGap.clone()
	}
	return solveDur, phaseDur, nodes, gap
}

type requestKey struct {
	route string
	code  int
}

func (m *metrics) incRequest(route string, code int) {
	m.mu.Lock()
	if m.requests == nil {
		m.requests = make(map[requestKey]int64)
	}
	m.requests[requestKey{route, code}]++
	m.mu.Unlock()
}

// incEncodeError counts a response body that failed to encode after the
// status line was sent — unreportable to that client, so it surfaces here.
func (m *metrics) incEncodeError() {
	m.mu.Lock()
	m.encodeErrors++
	m.mu.Unlock()
}

func (m *metrics) totalEncodeErrors() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.encodeErrors
}

func (m *metrics) totalRequests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, v := range m.requests {
		n += v
	}
	return n
}

func (m *metrics) snapshotRequests() map[requestKey]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[requestKey]int64, len(m.requests))
	for k, v := range m.requests {
		out[k] = v
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP reseedd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE reseedd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "reseedd_uptime_seconds %g\n", time.Since(s.start).Seconds())

	fmt.Fprintf(w, "# HELP reseedd_http_requests_total HTTP requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE reseedd_http_requests_total counter\n")
	reqs := s.metrics.snapshotRequests()
	keys := make([]requestKey, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].route != keys[b].route {
			return keys[a].route < keys[b].route
		}
		return keys[a].code < keys[b].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "reseedd_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, reqs[k])
	}

	fmt.Fprintf(w, "# HELP reseedd_response_encode_errors_total Response bodies that failed to encode after the status line was sent.\n")
	fmt.Fprintf(w, "# TYPE reseedd_response_encode_errors_total counter\n")
	fmt.Fprintf(w, "reseedd_response_encode_errors_total %d\n", s.metrics.totalEncodeErrors())

	fmt.Fprintf(w, "# HELP reseedd_solves_in_flight Solves currently holding an admission slot.\n")
	fmt.Fprintf(w, "# TYPE reseedd_solves_in_flight gauge\n")
	fmt.Fprintf(w, "reseedd_solves_in_flight %d\n", len(s.sem))
	fmt.Fprintf(w, "# HELP reseedd_solves_queued Synchronous solves waiting for an admission slot.\n")
	fmt.Fprintf(w, "# TYPE reseedd_solves_queued gauge\n")
	fmt.Fprintf(w, "reseedd_solves_queued %d\n", s.queued.Load())

	fmt.Fprintf(w, "# HELP reseedd_jobs Jobs retained in the job table, by state.\n")
	fmt.Fprintf(w, "# TYPE reseedd_jobs gauge\n")
	counts := s.jobs.countByState()
	for _, st := range []jobState{jobQueued, jobRunning, jobDone, jobFailed, jobCancelled} {
		fmt.Fprintf(w, "reseedd_jobs{state=%q} %d\n", st, counts[string(st)])
	}

	st := s.eng.Stats()
	for _, c := range []struct {
		name, help string
		value      int64
	}{
		{"engine_prepare_builds", "ATPG preparations executed.", st.PrepareBuilds},
		{"engine_prepare_hits", "Preparations served from the in-memory cache.", st.PrepareHits},
		{"engine_matrix_builds", "Detection Matrices built.", st.MatrixBuilds},
		{"engine_matrix_hits", "Matrices served from the in-memory cache.", st.MatrixHits},
		{"engine_solves", "Covering solves performed.", st.Solves},
		{"engine_flow_store_loads", "Preparations served from the persistent store.", st.FlowStoreLoads},
		{"engine_matrix_store_loads", "Matrices served from the persistent store.", st.MatrixStoreLoads},
		{"engine_store_errors", "Failed persistent-store reads and writes.", st.StoreErrors},
		{"engine_store_read_errors", "Failed or corrupt persistent-store reads.", st.StoreReadErrors},
		{"engine_store_write_errors", "Failed persistent-store writes.", st.StoreWriteErrors},
		{"engine_store_misses", "Persistent-store lookups that found nothing.", st.StoreMisses},
	} {
		fmt.Fprintf(w, "# HELP reseedd_%s_total %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE reseedd_%s_total counter\n", c.name)
		fmt.Fprintf(w, "reseedd_%s_total %d\n", c.name, c.value)
	}

	solveDur, phaseDur, nodes, gap := s.metrics.snapshotHistograms()
	if len(solveDur) > 0 {
		fmt.Fprintf(w, "# HELP reseedd_solve_duration_seconds End-to-end solve latency, by route.\n")
		fmt.Fprintf(w, "# TYPE reseedd_solve_duration_seconds histogram\n")
		for _, route := range sortedKeys(solveDur) {
			writeHistogram(w, "reseedd_solve_duration_seconds", fmt.Sprintf("route=%q", route), solveDur[route])
		}
	}
	if len(phaseDur) > 0 {
		fmt.Fprintf(w, "# HELP reseedd_solve_phase_duration_seconds Per-phase solve latency, by trace span name.\n")
		fmt.Fprintf(w, "# TYPE reseedd_solve_phase_duration_seconds histogram\n")
		for _, phase := range sortedKeys(phaseDur) {
			writeHistogram(w, "reseedd_solve_phase_duration_seconds", fmt.Sprintf("phase=%q", phase), phaseDur[phase])
		}
	}
	if nodes != nil {
		fmt.Fprintf(w, "# HELP reseedd_solve_nodes Branch-and-bound nodes expanded per solve.\n")
		fmt.Fprintf(w, "# TYPE reseedd_solve_nodes histogram\n")
		writeHistogram(w, "reseedd_solve_nodes", "", nodes)
	}
	if gap != nil {
		fmt.Fprintf(w, "# HELP reseedd_solve_root_lb_gap Relative gap between the returned cost and the root lower bound, per exact solve.\n")
		fmt.Fprintf(w, "# TYPE reseedd_solve_root_lb_gap histogram\n")
		writeHistogram(w, "reseedd_solve_root_lb_gap", "", gap)
	}

	// Backend liveness is probed at scrape time: a probe is a stat or one
	// small HTTP round trip, bounded well under any scraper's timeout, and
	// scrape-time truth beats a cached mark going stale between scrapes.
	if backends := s.storeBackends(); len(backends) > 0 {
		fmt.Fprintf(w, "# HELP reseedd_store_up Artifact-store backend health (1 = last probe succeeded).\n")
		fmt.Fprintf(w, "# TYPE reseedd_store_up gauge\n")
		ctx, cancel := context.WithTimeout(r.Context(), storeProbeTimeout)
		defer cancel()
		for _, b := range backends {
			up := 1
			if err := b.Probe(ctx); err != nil {
				up = 0
			}
			fmt.Fprintf(w, "reseedd_store_up{backend=%q} %d\n", b.Name, up)
		}
	}
}

// writeHistogram emits one Prometheus histogram series. label is either
// empty or one `name="value"` pair shared by every sample of the series.
func writeHistogram(w io.Writer, name, label string, h *histogram) {
	brace := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + label + "}"
		default:
			return "{" + label + "," + extra + "}"
		}
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(fmt.Sprintf("le=%q", strconv.FormatFloat(b, 'g', -1, 64))), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, brace(""), h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace(""), h.n)
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// exposition output.
func sortedKeys(m map[string]*histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// storeProbeTimeout bounds the per-scrape backend probes.
const storeProbeTimeout = 2 * time.Second

// storeBackends resolves the backends the store_up gauge covers:
// Config.Backends when the daemon set them (a tiered engine store has
// two), otherwise the observational store's own.
func (s *Server) storeBackends() []store.Backend {
	if s.cfg.Backends != nil {
		return s.cfg.Backends
	}
	if s.cfg.Store != nil {
		return s.cfg.Store.Backends()
	}
	return nil
}
