package server

import (
	"net/http"

	"repro/internal/obs"
)

// traceSummary is one row of GET /v1/traces: enough to pick a trace out
// of the flight recorder without shipping every span.
type traceSummary struct {
	TraceID string `json:"trace_id"`
	Process string `json:"process,omitempty"`
	Spans   int    `json:"spans"`
	Dropped int    `json:"dropped_spans,omitempty"`
	// Root and DurationNanos describe the trace's root span (the span
	// with no locally recorded parent; best-effort — a trace continued
	// from another process may hold none of its own).
	Root          string `json:"root,omitempty"`
	DurationNanos int64  `json:"duration_nanos,omitempty"`
}

// handleTraceList serves the flight recorder's retained traces, newest
// first, as summaries.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	traces := s.recorder.List()
	out := make([]traceSummary, 0, len(traces))
	for _, td := range traces {
		out = append(out, summarize(td))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTraceGet serves one full trace by ID.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td, ok := s.recorder.Get(id)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown trace " + id})
		return
	}
	s.writeJSON(w, http.StatusOK, td)
}

func summarize(td *obs.TraceData) traceSummary {
	sum := traceSummary{
		TraceID: td.TraceID,
		Process: td.Process,
		Spans:   len(td.Spans),
		Dropped: td.Dropped,
	}
	// The root is the earliest-started span whose parent is not recorded
	// locally (or absent entirely): for a fresh trace that is the request
	// span, for a continued one the first local span under the remote
	// parent.
	local := make(map[string]bool, len(td.Spans))
	for _, sp := range td.Spans {
		local[sp.SpanID] = true
	}
	var root *obs.SpanData
	for i := range td.Spans {
		sp := &td.Spans[i]
		if sp.Parent != "" && local[sp.Parent] {
			continue
		}
		if root == nil || sp.Start < root.Start {
			root = sp
		}
	}
	if root != nil {
		sum.Root = root.Name
		sum.DurationNanos = root.Duration
	}
	return sum
}
