package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/ctxutil"
	"repro/internal/engine"
	"repro/internal/obs"
)

// A job is one asynchronous solve: created by POST /v1/jobs, observed by
// GET /v1/jobs/{id}, cancelled by DELETE. Its life is
//
//	queued → running → done | failed | cancelled
//
// with "done" covering both a completed solve and a cancellation that
// reached the anytime covering phase (the Response then carries the best
// cover found with Interrupted set — a usable incumbent, per the paper's
// operational framing). "cancelled" means the job was stopped before any
// solution existed; "failed" means the solve itself errored.
type jobState string

const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

func (st jobState) finished() bool {
	return st == jobDone || st == jobFailed || st == jobCancelled
}

type job struct {
	id      string
	req     engine.Request
	created time.Time
	cancel  context.CancelFunc

	mu         sync.Mutex
	state      jobState          // guarded by mu
	started    time.Time         // guarded by mu
	finished   time.Time         // guarded by mu
	best       *engine.Incumbent // guarded by mu; latest anytime snapshot, nil before the first
	bestAt     time.Time         // guarded by mu
	resp       *engine.Response  // guarded by mu
	errMsg     string            // guarded by mu
	timeline   []timelinePoint   // guarded by mu; incumbent + sample history, bounded
	lastSample *timelinePoint    // guarded by mu; previous sample, for the nodes/sec delta
}

// A timelinePoint is one entry of a job's search-progress timeline: an
// "incumbent" point for every improvement of the best cover, a "sample"
// point at the solver's coarse progress cadence carrying the bound gap
// and the node throughput since the previous sample.
type timelinePoint struct {
	T    time.Time `json:"t"`
	Kind string    `json:"kind"` // "incumbent" or "sample"
	// Cost is the best cover's cost at this point (whole-solution totals,
	// essential rows included).
	Cost int `json:"cost"`
	// Rows is the incumbent cover's cardinality (incumbent points only).
	Rows  int   `json:"rows,omitempty"`
	Nodes int64 `json:"nodes"`
	// RootLB and Gap report the root lower bound and the relative gap
	// (cost − root LB) / cost (sample points only; the bound exists once
	// the Lagrangian root ascent has run).
	RootLB int     `json:"root_lb,omitempty"`
	Gap    float64 `json:"gap,omitempty"`
	// NodesPerSec is the search throughput since the previous sample.
	NodesPerSec float64 `json:"nodes_per_sec,omitempty"`
}

// maxTimeline bounds a job's retained timeline. Once full, the final slot
// tracks the newest point, so the latest state is always visible even on
// very long solves.
const maxTimeline = 256

func (j *job) appendPointLocked(p timelinePoint) {
	if len(j.timeline) < maxTimeline {
		j.timeline = append(j.timeline, p)
		return
	}
	j.timeline[len(j.timeline)-1] = p
}

// observe is the incumbent callback threaded into the exact solver; it
// runs under the solver's lock and therefore only swaps a snapshot.
func (j *job) observe(inc engine.Incumbent) {
	j.mu.Lock()
	j.best, j.bestAt = &inc, time.Now()
	j.appendPointLocked(timelinePoint{
		T: j.bestAt, Kind: "incumbent", Cost: inc.Cost, Rows: inc.Rows, Nodes: inc.Nodes,
	})
	j.mu.Unlock()
}

// observeSample is the periodic search-progress callback: it derives the
// bound gap from the sample and the throughput from the previous one.
func (j *job) observeSample(sm engine.Sample) {
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	p := timelinePoint{T: now, Kind: "sample", Cost: sm.Best, Nodes: sm.Nodes, RootLB: sm.RootLB}
	if sm.Best > 0 && sm.RootLB > 0 {
		p.Gap = float64(sm.Best-sm.RootLB) / float64(sm.Best)
	}
	if ls := j.lastSample; ls != nil {
		if dt := now.Sub(ls.T).Seconds(); dt > 0 {
			p.NodesPerSec = float64(sm.Nodes-ls.Nodes) / dt
		}
	}
	j.appendPointLocked(p)
	cp := p
	j.lastSample = &cp
}

// jobView is the wire form of a job's status.
type jobView struct {
	ID      string         `json:"id"`
	State   jobState       `json:"state"`
	Request engine.Request `json:"request"`
	Created time.Time      `json:"created"`
	Started *time.Time     `json:"started,omitempty"`
	Ended   *time.Time     `json:"ended,omitempty"`
	// Best is the most recent best-so-far snapshot of the exact covering
	// solve (whole-solution triplet counts); it appears once the solve has
	// a greedy incumbent and tightens as the search proves better covers.
	Best   *engine.Incumbent `json:"best,omitempty"`
	BestAt *time.Time        `json:"best_at,omitempty"`
	// Response is present once State is "done".
	Response *engine.Response `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
	// Timeline is the bounded incumbent/sample history of the search —
	// cost improvements, bound gaps and node throughput over time.
	Timeline []timelinePoint `json:"timeline,omitempty"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:      j.id,
		State:   j.state,
		Request: j.req,
		Created: j.created,
		Best:    j.best,
		Error:   j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Ended = &t
	}
	if j.best != nil {
		t := j.bestAt
		v.BestAt = &t
	}
	if len(j.timeline) > 0 {
		v.Timeline = append([]timelinePoint(nil), j.timeline...)
	}
	if j.state == jobDone {
		v.Response = j.resp
	}
	return v
}

// jobTable owns every live job. Finished jobs are retained (so their
// Response stays fetchable) up to the configured bound, then evicted in
// order of finish time.
type jobTable struct {
	mu     sync.Mutex
	jobs   map[string]*job // guarded by mu
	nextID int             // guarded by mu
	limit  int             // guarded by mu
}

func (t *jobTable) init(limit int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs = make(map[string]*job)
	t.limit = limit
}

func (t *jobTable) create(req engine.Request, cancel context.CancelFunc) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%06d", t.nextID),
		req:     req,
		created: time.Now(),
		cancel:  cancel,
		state:   jobQueued,
	}
	t.jobs[j.id] = j
	t.evictLocked()
	return j
}

// evictLocked drops finished jobs — oldest finish time first, ids
// breaking ties — while the table is over the limit. Queued and running
// jobs are never evicted, so the table can transiently exceed the limit
// when more than limit jobs are active at once.
func (t *jobTable) evictLocked() {
	if len(t.jobs) <= t.limit {
		return
	}
	type ended struct {
		id  string
		end time.Time
	}
	var done []ended
	for id, j := range t.jobs {
		if st, end := j.snapshotFinish(); st.finished() {
			done = append(done, ended{id, end})
		}
	}
	sort.Slice(done, func(a, b int) bool {
		if !done[a].end.Equal(done[b].end) {
			return done[a].end.Before(done[b].end)
		}
		return done[a].id < done[b].id
	})
	for _, d := range done {
		if len(t.jobs) <= t.limit {
			break
		}
		delete(t.jobs, d.id)
	}
}

func (j *job) snapshotState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// snapshotFinish returns the state together with the finish time, so the
// eviction pass reads both under one acquisition.
func (j *job) snapshotFinish() (jobState, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.finished
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// snapshot returns the table's jobs in id order. Ids are zero-padded
// creation counters, so this is also creation order; every reader goes
// through here to keep list output and aggregate scans deterministic.
func (t *jobTable) snapshot() []*job {
	t.mu.Lock()
	jobs := make([]*job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	return jobs
}

func (t *jobTable) list() []jobView {
	jobs := t.snapshot()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	return views
}

func (t *jobTable) countByState() map[string]int {
	out := map[string]int{}
	for _, j := range t.snapshot() {
		out[string(j.snapshotState())]++
	}
	return out
}

// active counts jobs not yet finished (the drain condition).
func (t *jobTable) active() int {
	n := 0
	for _, j := range t.snapshot() {
		if !j.snapshotState().finished() {
			n++
		}
	}
	return n
}

// runJob executes one job to completion on its own goroutine: wait for an
// admission slot (unbounded — the job table is the queue), then solve with
// the anytime observer attached.
func (s *Server) runJob(ctx context.Context, j *job) {
	// Release the job's context resources however it ends, or every
	// finished job would stay registered as a child of the server's base
	// context for the daemon's lifetime. DELETE calling j.cancel again is
	// a no-op.
	defer j.cancel()
	release, err := s.acquire(ctx, false)
	if err != nil {
		// Cancelled (or the server drained) while still queued: no work
		// was lost because none had started.
		j.mu.Lock()
		j.state, j.errMsg, j.finished = jobCancelled, err.Error(), time.Now()
		j.mu.Unlock()
		return
	}
	defer release()

	j.mu.Lock()
	j.state, j.started = jobRunning, time.Now()
	j.mu.Unlock()

	resp, err := s.eng.SolveWithObserver(ctx, j.req, engine.SolveObserver{
		OnIncumbent: j.observe,
		OnSample:    j.observeSample,
	})
	// The job's trace completes here, on the job goroutine — record it so
	// GET /v1/traces serves the solve's phase breakdown (merged by trace
	// ID with the creating request's span).
	if tr := obs.FromContext(ctx); tr != nil {
		s.recorder.Record(tr.Data())
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		// Includes cancellation that reached the covering phase: the
		// Response carries the best-so-far with Interrupted set.
		j.state, j.resp = jobDone, resp
	case ctxutil.Err(ctx) != nil:
		j.state, j.errMsg = jobCancelled, err.Error()
	default:
		j.state, j.errMsg = jobFailed, err.Error()
	}
}

// ---- job handlers ----

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, errBusy)
		return
	}
	var req engine.Request
	if err := decodeRequest(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	// The job outlives the creating request, so it gets its own Trace
	// continuing the request's trace ID: the recorder merges both by ID,
	// stitching the accept span and the solve's phase spans together.
	var jtr *obs.Trace
	if tid, pid, ok := obs.ParseTraceparent(obs.Traceparent(r.Context())); ok {
		jtr = obs.NewTraceWithParent(tid, pid, s.cfg.ProcessName)
	} else {
		jtr = obs.NewTrace(s.cfg.ProcessName)
	}
	ctx = obs.ContextWithTrace(ctx, jtr)
	j := s.jobs.create(req, cancel)
	go s.runJob(ctx, j)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	s.writeJSON(w, http.StatusOK, j.view())
}

// handleJobDelete cancels a job. Cancelling a finished job is a no-op that
// reports the final state, so DELETE is idempotent.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	j.cancel()
	s.writeJSON(w, http.StatusOK, j.view())
}
