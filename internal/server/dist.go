package server

// The cluster-facing endpoints: the remote artifact store surface
// (GET/PUT /v1/store/...) and the distributed solve fabric
// (POST /v1/dist/...). Everything here is replica-to-replica traffic —
// internal/store.Remote and internal/cluster are the clients — but the
// handlers trust nothing: content addresses are verified on write, lease
// bodies are strictly decoded, and admission control still applies to
// anything that solves.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/store"
)

// handleStoreGet serves one raw artifact record. Absence is 404 (the
// remote store client's miss signal), a malformed address is 400, and a
// replica running without a store has nothing — everything is absent.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	kind, ok := store.ParseKind(r.PathValue("kind"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown artifact kind " + r.PathValue("kind")})
		return
	}
	if s.cfg.Store == nil {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "no artifact store on this replica"})
		return
	}
	data, err := s.cfg.Store.GetRaw(kind, r.PathValue("hash"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if data == nil {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "no such record"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		s.metrics.incEncodeError()
	}
}

// handleStorePut accepts one raw artifact record. PutRaw verifies that
// the record's embedded key hashes to the claimed address, so a confused
// or malicious peer cannot poison another circuit's artifacts.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	kind, ok := store.ParseKind(r.PathValue("kind"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown artifact kind " + r.PathValue("kind")})
		return
	}
	if s.cfg.Store == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no artifact store on this replica"})
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading record: %v", err)})
		return
	}
	if err := s.cfg.Store.PutRaw(kind, r.PathValue("hash"), data); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDistSolve coordinates one distributed exact solve: plan locally,
// lease top-level subtrees to local workers and configured peers, merge.
// It is admission-controlled like any synchronous solve — the whole
// fan-out holds one slot, mirroring /v1/batch.
func (s *Server) handleDistSolve(w http.ResponseWriter, r *http.Request) {
	var req cluster.DistSolveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &engine.RequestError{Field: "problem", Msg: fmt.Sprintf("malformed JSON: %v", err)})
		return
	}
	p, weights, err := req.Problem.Decode()
	if err != nil {
		s.writeError(w, &engine.RequestError{Field: "problem", Msg: err.Error()})
		return
	}
	opts, err := req.Opts.Decode()
	if err != nil {
		s.writeError(w, &engine.RequestError{Field: "opts", Msg: err.Error()})
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	release, err := s.acquire(ctx, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	sol, err := s.coord.Solve(ctx, p, weights, opts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, cluster.EncodeSolution(sol))
}

// handleDistSubtree executes one leased subtree for a peer coordinator.
// Leases acquire a slot jobs-style — unbounded wait, never 429 — because
// the coordinator already bounds how many leases exist (one per
// top-level branch) and a shed lease would just be requeued against
// someone else. A draining replica refuses instead, so its coordinator
// moves the branch promptly.
func (s *Server) handleDistSubtree(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	var req cluster.SubtreeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &engine.RequestError{Field: "lease", Msg: fmt.Sprintf("malformed JSON: %v", err)})
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	release, err := s.acquire(ctx, false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	resp, err := cluster.ExecuteSubtree(ctx, &req, s.distClient)
	if err != nil {
		s.writeError(w, &engine.RequestError{Field: "lease", Msg: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleDistIncumbent folds a peer's reported cover cost into the named
// solve's incumbent and answers with the best known after the fold. No
// admission control: the exchange is a mutex-guarded min, cheaper than
// the JSON around it.
func (s *Server) handleDistIncumbent(w http.ResponseWriter, r *http.Request) {
	var msg cluster.IncumbentMsg
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&msg); err != nil {
		s.writeError(w, &engine.RequestError{Field: "incumbent", Msg: fmt.Sprintf("malformed JSON: %v", err)})
		return
	}
	best := s.board.Exchange(msg.SolveID, msg.Cost)
	s.writeJSON(w, http.StatusOK, cluster.IncumbentMsg{SolveID: msg.SolveID, Cost: best})
}
