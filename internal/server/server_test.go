package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// newTestServer boots a Server over a fresh Engine behind httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(engine.New(engine.Options{}), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// s420Req is the small deterministic request most tests use. Parallelism 1
// pins even the SolverNodes effort counter, so whole responses compare
// bit-for-bit.
func s420Req() engine.Request {
	return engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2, Parallelism: 1}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// The PR's acceptance criterion: a solve answered over HTTP is
// bit-identical to the same Request answered by a direct Engine.Solve
// call.
func TestHTTPSolveBitIdenticalToDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := s420Req()

	hres, body := postJSON(t, ts.URL+"/v1/solve", req)
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve: %d: %s", hres.StatusCode, body)
	}
	var viaHTTP engine.Response
	if err := json.Unmarshal(body, &viaHTTP); err != nil {
		t.Fatal(err)
	}

	direct, err := engine.New(engine.Options{}).Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical means the stable JSON forms agree byte for byte.
	hj, err := json.Marshal(viaHTTP.Solution)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := json.Marshal(direct.Solution)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hj, dj) {
		t.Errorf("HTTP solution differs from direct solution:\n http: %s\n direct: %s", hj, dj)
	}
	if viaHTTP.Circuit != direct.Circuit {
		t.Errorf("circuit info differs: %+v vs %+v", viaHTTP.Circuit, direct.Circuit)
	}
	if viaHTTP.ATPG != direct.ATPG {
		t.Errorf("ATPG info differs: %+v vs %+v", viaHTTP.ATPG, direct.ATPG)
	}
	if viaHTTP.PrepareCached != direct.PrepareCached || viaHTTP.MatrixCached != direct.MatrixCached {
		t.Errorf("cache flags differ: %+v vs %+v", viaHTTP, direct)
	}
}

// Invalid requests map to 400 with the offending field named; the engine
// is never invoked.
func TestInvalidRequestsMapTo400(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"no circuit", `{"tpg":"adder"}`, "request"},
		{"both sources", `{"circuit":"s420","bench":"INPUT(a)","tpg":"adder"}`, "request"},
		{"unknown benchmark", `{"circuit":"s9999","tpg":"adder"}`, "circuit"},
		{"no tpg", `{"circuit":"s420"}`, "tpg"},
		{"unknown tpg", `{"circuit":"s420","tpg":"quantum"}`, "tpg"},
		{"unknown solver", `{"circuit":"s420","tpg":"adder","solver":"simplex"}`, "solver"},
		{"unknown objective", `{"circuit":"s420","tpg":"adder","objective":"latency"}`, "objective"},
		{"negative cycles", `{"circuit":"s420","tpg":"adder","cycles":-3}`, "cycles"},
		{"negative budget", `{"circuit":"s420","tpg":"adder","solve_budget":-1}`, "solve_budget"},
		{"negative max nodes", `{"circuit":"s420","tpg":"adder","max_nodes":-1}`, "max_nodes"},
		{"malformed json", `{"circuit":`, "request"},
		{"unknown field", `{"circuit":"s420","tpg":"adder","cycels":64}`, "request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%+v)", resp.StatusCode, eb)
			}
			if eb.Field != tc.field {
				t.Errorf("field %q, want %q (error: %s)", eb.Field, tc.field, eb.Error)
			}
		})
	}
	if st := srv.eng.Stats(); st.PrepareBuilds != 0 || st.Solves != 0 {
		t.Errorf("invalid requests reached the engine: %+v", st)
	}
}

// A batch fans out and reports per-item outcomes: one invalid instance
// does not fail its siblings, and valid instances share artifacts.
func TestBatchFanOut(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	reqs := []engine.Request{
		s420Req(),
		{Circuit: "s420", TPG: "adder", Cycles: 96, Seed: 2, Parallelism: 1},
		{Circuit: "s420", TPG: "quantum"}, // invalid
	}
	hres, body := postJSON(t, ts.URL+"/v1/batch", batchRequest{Requests: reqs})
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch: %d: %s", hres.StatusCode, body)
	}
	var out struct {
		Results []batchResult `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	for i := 0; i < 2; i++ {
		if out.Results[i].Error != "" || out.Results[i].Response == nil {
			t.Errorf("result %d: %+v", i, out.Results[i])
		}
	}
	if out.Results[2].Error == "" || out.Results[2].Response != nil {
		t.Errorf("invalid instance not reported: %+v", out.Results[2])
	}
	// Both valid instances name the same circuit: exactly one ATPG ran.
	if st := srv.eng.Stats(); st.PrepareBuilds != 1 {
		t.Errorf("batch did not share the preparation: %+v", st)
	}

	// Empty and oversized batches are client errors.
	if hres, _ := postJSON(t, ts.URL+"/v1/batch", batchRequest{}); hres.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", hres.StatusCode)
	}
}

// waitJob polls a job until it reaches a finished state.
func waitJob(t *testing.T, url string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v jobView
		if resp := getJSON(t, url, &v); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		if v.State.finished() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The asynchronous job lifecycle: accepted with an id, observable while it
// runs, terminal with the full Response and at least one best-so-far
// snapshot (the greedy seed) once done — and the result matches the
// synchronous path bit for bit.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// s820 leaves a nonempty residual, so the exact solver genuinely runs
	// and anytime snapshots exist.
	req := engine.Request{Circuit: "s820", TPG: "adder", Cycles: 64, Seed: 2, Parallelism: 1}

	hres, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if hres.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", hres.StatusCode, body)
	}
	var created jobView
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" {
		t.Fatalf("no job id: %s", body)
	}
	if loc := hres.Header.Get("Location"); loc != "/v1/jobs/"+created.ID {
		t.Errorf("Location = %q", loc)
	}

	final := waitJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.State != jobDone {
		t.Fatalf("terminal state %q (error %q), want done", final.State, final.Error)
	}
	if final.Response == nil || final.Response.Solution.NumTriplets() == 0 {
		t.Fatalf("done job has no usable response: %+v", final)
	}
	if !final.Response.Solution.Optimal {
		t.Errorf("uninterrupted job not optimal: %+v", final.Response.Solution)
	}
	if final.Best == nil {
		t.Error("no best-so-far snapshot recorded")
	} else if final.Best.Rows != final.Response.Solution.NumTriplets() {
		t.Errorf("last snapshot has %d rows, solution has %d triplets",
			final.Best.Rows, final.Response.Solution.NumTriplets())
	}
	if final.Started == nil || final.Ended == nil {
		t.Errorf("missing timestamps: %+v", final)
	}

	// The job's result equals the synchronous result for the same request.
	direct, err := engine.New(engine.Options{}).Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	jj, _ := json.Marshal(final.Response.Solution)
	dj, _ := json.Marshal(direct.Solution)
	if !bytes.Equal(jj, dj) {
		t.Errorf("job solution differs from direct solution:\n job: %s\n direct: %s", jj, dj)
	}

	// The job list includes it.
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != created.ID {
		t.Errorf("job list: %+v", list)
	}
}

// DELETE cancels a queued job deterministically: with every admission slot
// occupied the job cannot start, so cancellation must resolve it without
// ever running the solve.
func TestJobCancelWhileQueued(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1})
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()

	_, body := postJSON(t, ts.URL+"/v1/jobs", s420Req())
	var created jobView
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	var got jobView
	getJSON(t, ts.URL+"/v1/jobs/"+created.ID, &got)
	if got.State != jobQueued {
		t.Fatalf("state %q, want queued", got.State)
	}

	hres, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(hres); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %v %v", resp, err)
	}
	final := waitJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.State != jobCancelled {
		t.Fatalf("state %q, want cancelled", final.State)
	}
	if st := srv.eng.Stats(); st.Solves != 0 {
		t.Errorf("cancelled-before-start job reached the engine: %+v", st)
	}
}

// Unknown job ids are 404.
func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: %d, want 404", resp.StatusCode)
	}
}

// Request bodies are bounded before any handler buffers them: an
// oversized inline .bench is a 400, not an allocation.
func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	req := engine.Request{Bench: strings.Repeat("# padding\n", 100), TPG: "adder"}
	hres, body := postJSON(t, ts.URL+"/v1/solve", req)
	if hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400: %s", hres.StatusCode, body)
	}
	if !strings.Contains(string(body), "too large") {
		t.Errorf("error does not name the cause: %s", body)
	}
}

// With every slot held and no queue, a synchronous solve is shed with 429
// and a Retry-After hint instead of piling up.
func TestBackpressure429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1})
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	hres, body := postJSON(t, ts.URL+"/v1/solve", s420Req())
	if hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", hres.StatusCode, body)
	}
	if hres.Header.Get("Retry-After") == "" {
		t.Error("no Retry-After header on 429")
	}
}

// The health, stats and metrics endpoints answer and reflect served work.
func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	if hres, body := postJSON(t, ts.URL+"/v1/solve", s420Req()); hres.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", hres.StatusCode, body)
	}

	var stats struct {
		Engine engine.Stats `json:"engine"`
		Server struct {
			Requests int64 `json:"requests_total"`
		} `json:"server"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Engine.Solves != 1 || stats.Engine.PrepareBuilds != 1 {
		t.Errorf("stats do not reflect the solve: %+v", stats.Engine)
	}
	if stats.Server.Requests == 0 {
		t.Error("request counter empty")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"reseedd_uptime_seconds",
		`reseedd_http_requests_total{route="/v1/solve",code="200"} 1`,
		"reseedd_engine_prepare_builds_total 1",
		"reseedd_engine_solves_total 1",
		`reseedd_jobs{state="running"} 0`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// Shutdown cancels queued jobs and returns once nothing is active.
func TestShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1})
	srv.sem <- struct{}{} // park a fake in-flight solve
	_, body := postJSON(t, ts.URL+"/v1/jobs", s420Req())
	var created jobView
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	<-srv.sem // release the fake solve as the drain begins

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	final := waitJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if !final.State.finished() {
		t.Errorf("job still active after drain: %+v", final)
	}
	// A draining server refuses new jobs.
	if hres, _ := postJSON(t, ts.URL+"/v1/jobs", s420Req()); hres.StatusCode != http.StatusTooManyRequests {
		t.Errorf("job accepted while draining: %d", hres.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "draining" {
		t.Errorf("health = %q, want draining", health.Status)
	}
}
