// Package server exposes the reseeding Engine over an HTTP JSON API — the
// daemon layer of the reproduction (cmd/reseedd). The operational model
// follows the covering literature's service settings: many related
// covering instances solved against shared, warm artifacts, plus
// long-running exact solves that must yield usable incumbents at any time.
//
// # Endpoints
//
//	GET    /healthz        liveness (also the boot-complete signal)
//	POST   /v1/solve       one Request, answered synchronously
//	POST   /v1/batch       several Requests fanned out on the worker pool
//	POST   /v1/jobs        start an asynchronous anytime solve
//	GET    /v1/jobs        list jobs
//	GET    /v1/jobs/{id}   job status: best-so-far snapshot, then the Response
//	DELETE /v1/jobs/{id}   cancel (a job in its covering phase keeps its
//	                       best-so-far and completes with Interrupted set)
//	GET    /v1/stats       engine cache counters + server gauges
//	GET    /metrics        the same, as Prometheus text exposition
//
// Cluster endpoints (the distributed fabric, internal/cluster):
//
//	GET    /v1/store/{kind}/{hash}  read one artifact record (remote store)
//	PUT    /v1/store/{kind}/{hash}  write one artifact record (verified)
//	POST   /v1/dist/solve           coordinate a distributed exact solve
//	POST   /v1/dist/subtree         execute one leased B&B subtree
//	POST   /v1/dist/incumbent       exchange incumbents for a running solve
//
// # Admission control
//
// At most Config.MaxInFlight solves run concurrently; synchronous requests
// beyond that wait in a bounded queue (Config.MaxQueue) and overflow is
// refused with 429 and a Retry-After hint, so a saturated daemon degrades
// by shedding load instead of by collapsing. Jobs are their own queue:
// they wait for a slot without bound (Config.MaxJobs bounds how many are
// retained) and never 429.
//
// # Error mapping
//
// Invalid requests — engine.RequestError, malformed JSON, unknown fields —
// are 400 with a JSON body naming the offending field where known; unknown
// job ids are 404; queue overflow is 429; everything else is 500. The
// error body is always {"error": "..."} (plus "field" when typed).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/store"
)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for a small daemon.
type Config struct {
	// MaxInFlight bounds the solves running concurrently across /v1/solve,
	// /v1/batch and jobs (a batch holds one slot). Default: 2 × GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds how many synchronous requests may wait for a slot
	// before the server answers 429. Default 64; negative means no queue
	// (shed immediately when saturated).
	MaxQueue int
	// MaxJobs bounds the jobs retained in memory; when exceeded, the
	// oldest finished jobs are evicted (a job still queued or running is
	// never evicted). Default 256.
	MaxJobs int
	// MaxBatch bounds the requests accepted in one /v1/batch call.
	// Default 64.
	MaxBatch int
	// BatchParallelism bounds the worker pool fanning a batch out; 0 means
	// one worker per processor (the repository-wide convention).
	BatchParallelism int
	// MaxBodyBytes caps every request body (an inline .bench source can be
	// arbitrarily large, and jobs retain their Request in memory). Default
	// 8 MiB — far beyond any benchmark netlist; oversized bodies are 400.
	MaxBodyBytes int64
	// Store, when the daemon runs one, lets /v1/stats report the persisted
	// artifact counts and backs the HTTP store endpoints
	// (GET/PUT /v1/store/{kind}/{hash}), which turn this replica into a
	// remote artifact backend for its siblings. The Engine holds its own
	// reference for solving.
	Store *store.Store
	// Backends names the artifact-store backends /metrics probes for the
	// reseedd_store_up gauge — set it to the engine store's Backends()
	// when the engine runs a tiered store, so the gauge covers both
	// layers. Nil defaults to Config.Store's backend.
	Backends []store.Backend
	// Peers are base URLs of sibling replicas accepting subtree leases;
	// POST /v1/dist/solve fans the exact search's top-level subtrees out
	// to them. Empty means distributed solves run on local workers only.
	Peers []string
	// DistParallelism caps the in-process workers draining a distributed
	// solve's branch queue (0 = one per processor). Lowering it shifts
	// branches toward the configured Peers.
	DistParallelism int
	// Advertise is this replica's own base URL as peers reach it. Workers
	// holding one of our leases exchange incumbents with it; empty
	// disables the exchange (leases still run, pruning is just local).
	Advertise string
	// ProcessName labels the spans this server records (obs.SpanData's
	// process field), so a stitched cross-process trace names which hop
	// did what. Default "reseedd".
	ProcessName string
	// TraceCapacity bounds the traces the in-memory flight recorder
	// behind GET /v1/traces retains; non-positive means
	// obs.DefaultRecorderCapacity.
	TraceCapacity int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ProcessName == "" {
		c.ProcessName = "reseedd"
	}
	return c
}

// Server is the HTTP front end of one Engine. Create it with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	eng   *engine.Engine
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// baseCtx parents every job; Shutdown cancels it, turning running
	// exact solves anytime.
	baseCtx context.Context
	cancel  context.CancelFunc

	sem      chan struct{} // in-flight solve slots
	queued   atomic.Int64  // synchronous requests waiting for a slot
	draining atomic.Bool

	jobs     jobTable
	metrics  metrics
	recorder *obs.Recorder // flight recorder behind GET /v1/traces

	board      *cluster.Board       // incumbent blackboard for distributed solves
	coord      *cluster.Coordinator // fans /v1/dist/solve out across Peers
	distClient *http.Client         // short-timeout client for incumbent exchange
}

// New returns a Server over eng.
func New(eng *engine.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:   eng,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
	}
	s.recorder = obs.NewRecorder(cfg.TraceCapacity)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.jobs.init(cfg.MaxJobs)
	s.board = cluster.NewBoard()
	s.distClient = &http.Client{Timeout: 5 * time.Second}
	s.coord = &cluster.Coordinator{
		Peers:       cfg.Peers,
		Self:        cfg.Advertise,
		Board:       s.board,
		Parallelism: cfg.DistParallelism,
	}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/store/{kind}/{hash}", s.handleStoreGet)
	s.mux.HandleFunc("PUT /v1/store/{kind}/{hash}", s.handleStorePut)
	s.mux.HandleFunc("POST /v1/dist/solve", s.handleDistSolve)
	s.mux.HandleFunc("POST /v1/dist/subtree", s.handleDistSubtree)
	s.mux.HandleFunc("POST /v1/dist/incumbent", s.handleDistIncumbent)
	return s
}

// ServeHTTP dispatches to the API, recording per-route/per-code request
// counters for /metrics and a per-request trace for /v1/traces. A request
// arriving with a valid W3C traceparent header continues that trace (the
// root span here parents to the caller's span); a malformed or absent
// header degrades to a fresh root trace, never to an error.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	// Bound every body before any handler buffers it: an unvalidated
	// multi-gigabyte inline .bench must not be able to exhaust memory.
	r.Body = http.MaxBytesReader(rw, r.Body, s.cfg.MaxBodyBytes)
	var tr *obs.Trace
	var sp *obs.Span
	if tracedPath(r.URL.Path) {
		if tid, pid, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
			tr = obs.NewTraceWithParent(tid, pid, s.cfg.ProcessName)
		} else {
			tr = obs.NewTrace(s.cfg.ProcessName)
		}
		ctx := obs.ContextWithTrace(r.Context(), tr)
		ctx, sp = obs.StartSpan(ctx, "request")
		r = r.WithContext(ctx)
		// Expose the server-side position so a caller without its own
		// tracing can still fetch the trace from /v1/traces.
		rw.Header().Set("Traceparent", obs.FormatTraceparent(tr.ID(), sp.ID()))
	}
	s.mux.ServeHTTP(rw, r)
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	} else if i := strings.IndexByte(route, ' '); i >= 0 {
		route = route[i+1:] // drop the method; the path names the endpoint
	}
	s.metrics.incRequest(route, rw.code)
	if tr != nil {
		sp.SetName(route) // the dispatched route is the span's best name, known only now
		sp.SetStr("method", r.Method)
		sp.SetInt("code", int64(rw.code))
		sp.End()
		s.recorder.Record(tr.Data())
	}
}

// tracedPath excludes the read-side plumbing from tracing: scrapes and
// probes arrive every few seconds and would evict real solve traces from
// the bounded recorder, and tracing the trace API would do the same.
func tracedPath(p string) bool {
	return p != "/metrics" && p != "/healthz" && !strings.HasPrefix(p, "/v1/traces")
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Shutdown drains the server: jobs are cancelled (their exact solves turn
// anytime and finish with best-so-far), and Shutdown returns when no solve
// is in flight and no job is queued or running, or when ctx expires —
// whichever comes first. Call it after http.Server.Shutdown has stopped
// new requests from arriving.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancel()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if len(s.sem) == 0 && s.queued.Load() == 0 && s.jobs.active() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// acquire claims an in-flight slot. Synchronous callers (bounded true) are
// refused with errBusy once MaxQueue of them are already waiting; jobs
// (bounded false) wait as long as their context lives.
var errBusy = errors.New("server: saturated: in-flight and queue limits reached")

func (s *Server) acquire(ctx context.Context, bounded bool) (release func(), err error) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, nil
	default:
	}
	if bounded {
		if int(s.queued.Add(1)) > s.cfg.MaxQueue {
			s.queued.Add(-1)
			return nil, errBusy
		}
		defer s.queued.Add(-1)
	}
	select {
	case s.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// solveCtx derives the context of one synchronous solve: the client's,
// additionally cancelled when the server drains.
func (s *Server) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// ---- encoding helpers ----

// writeJSON writes one response body. The status line is already out by
// the time Encode can fail, so the error cannot reach the client — it is
// counted instead (reseedd_response_encode_errors_total in /metrics), per
// the repository's error policy: an error a client could care about must
// flow into a counter or a return, never a blank identifier.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.metrics.incEncodeError()
	}
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

// writeError maps an error to its HTTP status: typed request errors are the
// client's fault (400), saturation is 429, everything else is 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var reqErr *engine.RequestError
	switch {
	case errors.As(err, &reqErr):
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Field: reqErr.Field})
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// A solve cut off before any solution existed — a draining server
		// or a dropped client, not a solver failure. (When the client is
		// gone the code is moot; when the server drains it matters.)
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// decodeRequest reads one engine.Request, strictly: unknown fields are a
// client error, not a silent drop.
func decodeRequest(r *http.Request, req *engine.Request) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return &engine.RequestError{Field: "request", Msg: fmt.Sprintf("malformed JSON: %v", err)}
	}
	return nil
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req engine.Request
	if err := decodeRequest(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	release, err := s.acquire(ctx, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	start := time.Now()
	resp, err := s.eng.Solve(ctx, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.metrics.observeSolve("/v1/solve", req, resp, time.Since(start))
	s.writeJSON(w, http.StatusOK, resp)
}

// batchRequest and batchResult are the /v1/batch wire shapes. Results are
// positional: result i answers request i, carrying either a response or an
// error — one bad instance does not fail its siblings.
type batchRequest struct {
	Requests []engine.Request `json:"requests"`
}

type batchResult struct {
	Response *engine.Response `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
	// ElapsedMS is this member's wall-clock solve time in milliseconds;
	// the per-phase breakdown rides inside Response.Timing.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		s.writeError(w, &engine.RequestError{Field: "requests", Msg: fmt.Sprintf("malformed JSON: %v", err)})
		return
	}
	if len(batch.Requests) == 0 {
		s.writeError(w, &engine.RequestError{Field: "requests", Msg: "empty request list"})
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		s.writeError(w, &engine.RequestError{
			Field: "requests", Msg: fmt.Sprintf("%d requests exceed the batch limit %d", len(batch.Requests), s.cfg.MaxBatch)})
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	// One admission slot covers the whole batch; the fan-out below is the
	// worker pool every other phase of the repository uses.
	release, err := s.acquire(ctx, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	results := make([]batchResult, len(batch.Requests))
	workers := parallel.Degree(s.cfg.BatchParallelism)
	_ = parallel.ForEach(workers, len(batch.Requests), func(_, i int) error { // infallible: the worker fn below always returns nil
		start := time.Now()
		resp, err := s.eng.Solve(ctx, batch.Requests[i])
		elapsed := time.Since(start)
		ms := float64(elapsed) / float64(time.Millisecond)
		if err != nil {
			results[i] = batchResult{Error: err.Error(), ElapsedMS: ms}
		} else {
			results[i] = batchResult{Response: resp, ElapsedMS: ms}
			s.metrics.observeSolve("/v1/batch", batch.Requests[i], resp, elapsed)
		}
		return nil // sibling instances proceed regardless
	})
	s.writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type storeStats struct {
		Dir      string `json:"dir"`
		Flows    int    `json:"flows"`
		Matrices int    `json:"matrices"`
	}
	out := struct {
		Engine engine.Stats `json:"engine"`
		Server struct {
			UptimeSeconds float64        `json:"uptime_seconds"`
			InFlight      int            `json:"in_flight"`
			Queued        int64          `json:"queued"`
			MaxInFlight   int            `json:"max_in_flight"`
			Jobs          map[string]int `json:"jobs"`
			Requests      int64          `json:"requests_total"`
		} `json:"server"`
		Store *storeStats `json:"store,omitempty"`
	}{Engine: s.eng.Stats()}
	out.Server.UptimeSeconds = time.Since(s.start).Seconds()
	out.Server.InFlight = len(s.sem)
	out.Server.Queued = s.queued.Load()
	out.Server.MaxInFlight = s.cfg.MaxInFlight
	out.Server.Jobs = s.jobs.countByState()
	out.Server.Requests = s.metrics.totalRequests()
	if s.cfg.Store != nil {
		flows, matrices, err := s.cfg.Store.Len()
		if err == nil {
			out.Store = &storeStats{Dir: s.cfg.Store.Dir(), Flows: flows, Matrices: matrices}
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}
