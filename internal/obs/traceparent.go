package obs

import "context"

// W3C trace-context propagation: the `traceparent` header ties the
// gateway's, a replica's and a distributed subtree worker's spans into
// one trace. Only version 00 of the format is understood:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Parsing is strict but failure is soft by contract: a malformed or
// absent header never rejects a request — the receiver just starts a
// fresh root trace.

// ParseTraceparent extracts the trace ID and parent span ID from a
// traceparent header value. ok is false for anything malformed: wrong
// shape, wrong lengths, non-hex digits, the forbidden all-zero IDs, or
// the reserved version ff.
func ParseTraceparent(s string) (traceID, spanID string, ok bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return "", "", false
	}
	version, tid, pid, flags := s[0:2], s[3:35], s[36:52], s[53:55]
	if !isHex(version) || !isHex(tid) || !isHex(pid) || !isHex(flags) {
		return "", "", false
	}
	if version == "ff" || allZero(tid) || allZero(pid) {
		return "", "", false
	}
	return tid, pid, true
}

// FormatTraceparent renders a version-00 traceparent header value with
// the sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// Traceparent renders ctx's current trace position — the value an
// outbound request should carry so the receiver's spans become children
// of ctx's innermost span. It returns "" when ctx carries no trace or
// the trace has no current position to hang a child on.
func Traceparent(ctx context.Context) string {
	tr := FromContext(ctx)
	if tr == nil {
		return ""
	}
	pos := tr.rootParent
	if sp := CurrentSpan(ctx); sp != nil {
		pos = sp.id
	}
	if pos == "" {
		return ""
	}
	return FormatTraceparent(tr.traceID, pos)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
