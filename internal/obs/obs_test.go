package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("test")
	ctx := ContextWithTrace(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "solve")
	ctx2, prep := StartSpan(ctx1, "prepare")
	prep.SetInt("patterns", 42)
	prep.AddInt("faults", 10)
	prep.AddInt("faults", 5)
	prep.SetStr("circuit", "s1238")
	prep.End()
	_, bb := StartSpan(ctx2, "bb")
	bb.End()
	root.End()

	td := tr.Data()
	if td.TraceID != tr.ID() || len(td.TraceID) != 32 {
		t.Fatalf("trace id %q", td.TraceID)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	if byName["solve"].Parent != "" {
		t.Errorf("root span has parent %q", byName["solve"].Parent)
	}
	if byName["prepare"].Parent != byName["solve"].SpanID {
		t.Errorf("prepare parent = %q, want solve %q", byName["prepare"].Parent, byName["solve"].SpanID)
	}
	// bb was started from the context returned by StartSpan(prepare), so
	// prepare is its parent even though prepare already ended.
	if byName["bb"].Parent != byName["prepare"].SpanID {
		t.Errorf("bb parent = %q, want prepare %q", byName["bb"].Parent, byName["prepare"].SpanID)
	}
	attrs := byName["prepare"].Attrs
	if len(attrs) != 3 {
		t.Fatalf("prepare attrs = %v", attrs)
	}
	// Attrs are sorted by key at End.
	if attrs[0].Key != "circuit" || attrs[0].Str != "s1238" {
		t.Errorf("attr[0] = %v", attrs[0])
	}
	if attrs[1].Key != "faults" || attrs[1].Int != 15 {
		t.Errorf("attr[1] = %v", attrs[1])
	}
	if attrs[2].Key != "patterns" || attrs[2].Int != 42 {
		t.Errorf("attr[2] = %v", attrs[2])
	}
}

func TestSubtree(t *testing.T) {
	tr := NewTrace("test")
	ctx := ContextWithTrace(context.Background(), tr)
	_, other := StartSpan(ctx, "other")
	other.End()
	ctx1, solve := StartSpan(ctx, "solve")
	ctx2, prep := StartSpan(ctx1, "prepare")
	_, atpgSp := StartSpan(ctx2, "atpg")
	atpgSp.End()
	prep.End()
	solve.End()

	sub := tr.Subtree(solve.ID())
	if len(sub.Spans) != 3 {
		t.Fatalf("subtree has %d spans, want 3: %+v", len(sub.Spans), sub.Spans)
	}
	for _, sd := range sub.Spans {
		if sd.Name == "other" {
			t.Errorf("subtree leaked unrelated span %q", sd.Name)
		}
	}
	if empty := tr.Subtree("0123456789abcdef"); len(empty.Spans) != 0 {
		t.Errorf("unknown-span subtree has %d spans", len(empty.Spans))
	}
}

func TestNilSafety(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "no-trace")
	if sp != nil {
		t.Fatalf("span on traceless context: %v", sp)
	}
	sp.SetInt("x", 1)
	sp.AddInt("x", 1)
	sp.SetStr("y", "z")
	sp.End()
	if got := sp.ID(); got != "" {
		t.Errorf("nil span ID = %q", got)
	}
	if cur := CurrentSpan(ctx); cur != nil {
		t.Errorf("current span on traceless context: %v", cur)
	}
	var tr *Trace
	if tr.ID() != "" || tr.Data() != nil || tr.Snapshot() != nil || tr.Subtree("x") != nil {
		t.Error("nil trace methods not inert")
	}
	tr.AddSpans([]SpanData{{SpanID: "1"}})
	if got := Traceparent(context.Background()); got != "" {
		t.Errorf("traceparent on traceless context = %q", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("gw")
	ctx, sp := StartSpan(ContextWithTrace(context.Background(), tr), "proxy")
	hdr := Traceparent(ctx)
	tid, pid, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own header %q did not parse", hdr)
	}
	if tid != tr.ID() || pid != sp.ID() {
		t.Fatalf("parsed (%q,%q), want (%q,%q)", tid, pid, tr.ID(), sp.ID())
	}

	// A receiver continuing the trace hangs its first span off pid.
	child := NewTraceWithParent(tid, pid, "replica")
	_, rsp := StartSpan(ContextWithTrace(context.Background(), child), "request")
	rsp.End()
	spans := child.Snapshot()
	if len(spans) != 1 || spans[0].Parent != pid {
		t.Fatalf("remote root parent = %+v, want parent %q", spans, pid)
	}
	sp.End()
}

func TestParseTraceparentRejects(t *testing.T) {
	good := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, ok := ParseTraceparent(good); !ok {
		t.Fatal("canonical example rejected")
	}
	bad := []string{
		"",
		"garbage",
		good[:54],             // truncated
		good + "0",            // too long
		strings.ToUpper(good), // uppercase hex is invalid
		"ff" + good[2:],       // reserved version
		"00-" + strings.Repeat("0", 32) + "-b7ad6b7169203331-01",                 // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                // wrong separator
		"00-0af7651916cd43dd8448eb211c8031gg-b7ad6b7169203331-01",                // non-hex
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted malformed traceparent %q", s)
		}
	}
}

func TestRecorderBoundsAndMerge(t *testing.T) {
	r := NewRecorder(2)
	a := &TraceData{TraceID: "a", Spans: []SpanData{{SpanID: "1"}}}
	b := &TraceData{TraceID: "b", Spans: []SpanData{{SpanID: "2"}}}
	c := &TraceData{TraceID: "c", Spans: []SpanData{{SpanID: "3"}}}
	r.Record(a)
	r.Record(b)
	// Same ID merges rather than evicts.
	r.Record(&TraceData{TraceID: "b", Spans: []SpanData{{SpanID: "4"}}})
	if got, ok := r.Get("b"); !ok || len(got.Spans) != 2 {
		t.Fatalf("merged trace b = %+v, %v", got, ok)
	}
	r.Record(c) // evicts a
	if _, ok := r.Get("a"); ok {
		t.Error("oldest trace not evicted")
	}
	list := r.List()
	if len(list) != 2 || list[0].TraceID != "c" || list[1].TraceID != "b" {
		t.Fatalf("list = %+v", list)
	}
	// Ignored inputs.
	r.Record(nil)
	r.Record(&TraceData{})
	if len(r.List()) != 2 {
		t.Error("nil/unidentified traces were retained")
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTrace("test")
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	td := tr.Data()
	if len(td.Spans) != maxSpans {
		t.Errorf("retained %d spans, want cap %d", len(td.Spans), maxSpans)
	}
	if td.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", td.Dropped)
	}
}
