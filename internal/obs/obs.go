// Package obs is the repository's stdlib-only observability layer:
// phase-structured traces carried on a context.Context, W3C traceparent
// propagation between processes, and a bounded in-memory flight
// recorder.
//
// The design contract mirrors the determinism contract of the solver
// core: obs is strictly write-only with respect to solve results. A
// span records wall-clock timings and counters, but nothing read from a
// Trace or Span ever feeds back into a solve, a cache key, or a
// persisted artifact — tracing on and tracing off produce bit-identical
// Solutions (pinned by test). obs is deliberately outside reseedvet's
// determinism scope; the wall-clock reads below carry acknowledged
// timing-only carve-outs so the facts engine does not propagate them
// into the solver core.
package obs

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"
)

// maxSpans bounds the spans one Trace retains. Past the cap new spans
// are counted in Dropped rather than stored, so a runaway fan-out
// cannot grow a trace without bound.
const maxSpans = 512

// An Attr is one key/value annotation on a span. Exactly one of Int and
// Str is meaningful; a slice of Attrs (not a map) keeps serialization
// order deterministic.
type Attr struct {
	Key string `json:"key"`
	Int int64  `json:"int,omitempty"`
	Str string `json:"str,omitempty"`
}

// SpanData is the serializable record of one completed span.
type SpanData struct {
	SpanID   string `json:"span_id"`
	Parent   string `json:"parent_span_id,omitempty"`
	Name     string `json:"name"`
	Process  string `json:"process,omitempty"`
	Start    int64  `json:"start_unix_nano"`
	Duration int64  `json:"duration_nanos"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// TraceData is the serializable snapshot of a trace: the per-phase
// timing breakdown returned in Response.Timing and served by
// /v1/traces.
type TraceData struct {
	TraceID string     `json:"trace_id"`
	Process string     `json:"process,omitempty"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Spans   []SpanData `json:"spans"`
}

// A Trace accumulates completed spans for one logical operation. It is
// safe for concurrent use; spans from parallel phases land in
// completion order (ordering is presentation-only — consumers key off
// parent links, not slice position).
type Trace struct {
	traceID    string
	process    string
	rootParent string // span position inherited from an incoming traceparent

	mu      sync.Mutex
	spans   []SpanData // guarded by mu
	dropped int        // guarded by mu
}

// NewTrace starts a fresh root trace owned by the named process.
func NewTrace(process string) *Trace {
	return &Trace{traceID: newTraceID(), process: process}
}

// NewTraceWithParent continues a trace started elsewhere: spans recorded
// here share traceID, and the first span opened without a local parent
// becomes a child of parentSpanID — so a remote collector can stitch
// the processes into one tree.
func NewTraceWithParent(traceID, parentSpanID, process string) *Trace {
	return &Trace{traceID: traceID, process: process, rootParent: parentSpanID}
}

// ID returns the 32-hex-digit trace ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Process returns the process label the trace stamps on its spans.
func (t *Trace) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

func (t *Trace) add(sd SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, sd)
}

// AddSpans folds externally recorded spans (e.g. shipped back from a
// distributed subtree worker) into the trace, subject to the same cap.
func (t *Trace) AddSpans(spans []SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sd := range spans {
		if len(t.spans) >= maxSpans {
			t.dropped++
			continue
		}
		t.spans = append(t.spans, sd)
	}
}

// Snapshot returns a copy of the spans recorded so far.
func (t *Trace) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// Data returns the full serializable snapshot of the trace.
func (t *Trace) Data() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]SpanData, len(t.spans))
	copy(spans, t.spans)
	return &TraceData{TraceID: t.traceID, Process: t.process, Dropped: t.dropped, Spans: spans}
}

// Subtree returns the snapshot restricted to the span with the given ID
// and its recorded descendants — the per-phase breakdown of one
// operation on a trace that may span several requests. A spanID not in
// the trace yields an empty span list (not nil TraceData).
func (t *Trace) Subtree(spanID string) *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	keep := map[string]bool{spanID: true}
	// Spans complete children-first, so one reverse sweep reaches every
	// descendant: a parent appears after (or, for shipped remote spans,
	// is re-scanned until the set stops growing).
	for changed := true; changed; {
		changed = false
		for _, sd := range t.spans {
			if !keep[sd.SpanID] && keep[sd.Parent] {
				keep[sd.SpanID] = true
				changed = true
			}
		}
	}
	var spans []SpanData
	for _, sd := range t.spans {
		if keep[sd.SpanID] {
			spans = append(spans, sd)
		}
	}
	if spans == nil {
		spans = []SpanData{}
	}
	return &TraceData{TraceID: t.traceID, Process: t.process, Dropped: t.dropped, Spans: spans}
}

// A Span is one in-progress phase of a trace. The zero of usefulness is
// a nil *Span: every method no-ops, so call sites need no trace-enabled
// branch.
type Span struct {
	tr     *Trace
	id     string
	parent string
	start  time.Time

	mu    sync.Mutex
	name  string // guarded by mu
	attrs []Attr // guarded by mu
	done  bool   // guarded by mu
}

// ID returns the span's 16-hex-digit ID ("" for a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetName replaces the span's name — for callers whose best name only
// resolves after the work ran (a server naming its root span by the
// dispatched route).
func (s *Span) SetName(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
}

// SetInt sets (replaces) an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Int = v
			s.attrs[i].Str = ""
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// AddInt accumulates into an integer attribute. Addition commutes, so
// concurrent workers folding counters into one span stay
// order-independent.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Int += v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// SetStr sets (replaces) a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Str = v
			s.attrs[i].Int = 0
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v})
}

// End completes the span and records it on its trace. Attrs are sorted
// by key so the serialized form does not depend on instrumentation call
// order. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	//reseedvet:ignore detsource -- span duration is timing-only telemetry; it never feeds a solve, cache key or artifact
	d := time.Since(s.start)
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	name := s.name
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	s.mu.Unlock()
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	s.tr.add(SpanData{
		SpanID:   s.id,
		Parent:   s.parent,
		Name:     name,
		Process:  s.tr.process,
		Start:    s.start.UnixNano(),
		Duration: int64(d),
		Attrs:    attrs,
	})
}

type traceKey struct{}
type spanKey struct{}

// ContextWithTrace returns a context carrying tr. Values survive
// context.WithoutCancel, so traces flow into shared cache flights
// unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// CurrentSpan returns the innermost span opened on ctx, or nil. A nil
// result is usable: every Span method no-ops on nil.
func CurrentSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a named span as a child of ctx's current span (or of
// the trace's inherited remote parent) and returns a context carrying
// it. On a context with no trace it returns (ctx, nil) — tracing-off
// call sites pay one context lookup and nothing else. The caller must
// End the span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := tr.rootParent
	// A current span only parents spans of its own trace: when a handler
	// swaps in a different trace (a distributed lease continuing the
	// coordinator's), the enclosing request's span must not leak across
	// the trace boundary as a dangling parent.
	if cur := CurrentSpan(ctx); cur != nil && cur.tr == tr {
		parent = cur.id
	}
	sp := &Span{
		tr:     tr,
		id:     newSpanID(),
		parent: parent,
		name:   name,
		//reseedvet:ignore detsource -- span start time is timing-only telemetry; it never feeds a solve, cache key or artifact
		start: time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// ID generation: a process-local seeded PRNG behind a mutex. IDs are
// opaque correlation labels — they need uniqueness within a recorder's
// retention window, not cryptographic strength, and they never touch a
// solve.
var idMu sync.Mutex

// idRand is guarded by idMu. Seeding from the clock and PID happens in
// a package-level initializer of an out-of-determinism-scope package:
// IDs must differ between processes precisely so cross-process traces
// stitch without collisions.
var idRand = rand.New(rand.NewSource(seedID()))

func seedID() int64 {
	//reseedvet:ignore detsource -- trace-ID seed is observability-only; IDs label telemetry and never influence solve results
	return time.Now().UnixNano() ^ int64(os.Getpid())<<32
}

func newTraceID() string {
	idMu.Lock()
	a, b := idRand.Uint64(), idRand.Uint64()
	idMu.Unlock()
	if a == 0 && b == 0 {
		a = 1 // the all-zero trace ID is invalid per W3C trace-context
	}
	return fmt.Sprintf("%016x%016x", a, b)
}

func newSpanID() string {
	idMu.Lock()
	v := idRand.Uint64()
	idMu.Unlock()
	if v == 0 {
		v = 1 // the all-zero parent ID is invalid per W3C trace-context
	}
	return fmt.Sprintf("%016x", v)
}
