package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns the net/http/pprof surface on a private mux, for
// daemons that expose profiling behind an opt-in flag. Serving it on its
// own listener (rather than mounting it on the API mux) keeps profiling
// off the service port entirely when the flag is unset, and off any
// port reachable by API clients when it is.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
