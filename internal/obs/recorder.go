package obs

import "sync"

// A Recorder is the bounded in-memory flight recorder behind
// GET /v1/traces: it retains the most recent completed traces, evicting
// the oldest once full. Recording a trace ID already present merges the
// new spans into the retained entry (that is how a gateway folds
// replica-side spans into its own view of a request, and how several
// requests continuing one trace accumulate).
type Recorder struct {
	capacity int

	mu   sync.Mutex
	ring []*TraceData          // guarded by mu; oldest first
	byID map[string]*TraceData // guarded by mu
}

// DefaultRecorderCapacity is the retention bound used when a Recorder
// is constructed with a non-positive capacity.
const DefaultRecorderCapacity = 128

// NewRecorder returns a Recorder retaining at most capacity traces.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{capacity: capacity, byID: make(map[string]*TraceData)}
}

// Record retains td (a snapshot — the Recorder takes ownership). A nil
// td, or one without a trace ID, is ignored.
func (r *Recorder) Record(td *TraceData) {
	if r == nil || td == nil || td.TraceID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.byID[td.TraceID]; ok {
		have.Spans = append(have.Spans, td.Spans...)
		have.Dropped += td.Dropped
		if len(have.Spans) > maxSpans {
			have.Dropped += len(have.Spans) - maxSpans
			have.Spans = have.Spans[:maxSpans]
		}
		return
	}
	if len(r.ring) >= r.capacity {
		evict := r.ring[0]
		r.ring = r.ring[1:]
		delete(r.byID, evict.TraceID)
	}
	r.ring = append(r.ring, td)
	r.byID[td.TraceID] = td
}

// Get returns a copy of the retained trace with the given ID (a copy,
// because a later Record for the same ID may merge more spans in while
// the caller is serializing).
func (r *Recorder) Get(id string) (*TraceData, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	td, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	return copyTrace(td), true
}

// List returns copies of the retained traces, newest first.
func (r *Recorder) List() []*TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceData, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, copyTrace(r.ring[i]))
	}
	return out
}

func copyTrace(td *TraceData) *TraceData {
	spans := make([]SpanData, len(td.Spans))
	copy(spans, td.Spans)
	cp := *td
	cp.Spans = spans
	return &cp
}
