package core

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/bitvec"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func prepC17(t *testing.T) *Flow {
	t.Helper()
	c, err := netlist.ParseString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Prepare(c, atpg.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSolveC17AllGenerators(t *testing.T) {
	f := prepC17(t)
	for _, kind := range tpg.Kinds() {
		gen, err := tpg.ByName(kind, len(f.Circuit.Inputs))
		if err != nil {
			t.Fatal(err)
		}
		sol, err := f.Solve(gen, Options{Cycles: 16, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sol.NumTriplets() == 0 {
			t.Errorf("%s: empty solution", kind)
		}
		if sol.NumTriplets() > len(f.Patterns) {
			t.Errorf("%s: more triplets than candidates", kind)
		}
		if !sol.Optimal {
			t.Errorf("%s: solution not proven optimal on a tiny matrix", kind)
		}
		if sol.TestLength <= 0 || sol.TestLength > sol.NumTriplets()*16 {
			t.Errorf("%s: test length %d out of range", kind, sol.TestLength)
		}
		if sol.NumNecessary+sol.NumFromSolver != sol.NumTriplets() {
			t.Errorf("%s: triplet accounting broken: %d + %d != %d",
				kind, sol.NumNecessary, sol.NumFromSolver, sol.NumTriplets())
		}
		if sol.ROMBits <= 0 {
			t.Errorf("%s: ROMBits = %d", kind, sol.ROMBits)
		}
	}
}

// Verify end to end: replaying the selected triplets through the generator
// and fault-simulating must detect every target fault. This is the paper's
// central guarantee.
func TestSolutionDetectsAllTargetFaults(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	sol, err := f.Solve(gen, Options{Cycles: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	verifyDetectsAll(t, f, sol)
}

func verifyDetectsAll(t *testing.T, f *Flow, sol *Solution) {
	t.Helper()
	gen, err := tpg.ByName(sol.Generator, len(f.Circuit.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	var patterns []bitvec.Vector
	for _, st := range sol.Triplets {
		tr := st.Triplet
		tr.Cycles = st.EffectiveCycles
		ts, err := tpg.Expand(gen, tr)
		if err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, ts...)
	}
	sim, err := fsim.New(f.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(f.TargetFaults, patterns, fsim.Options{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDetected != len(f.TargetFaults) {
		t.Errorf("solution detects %d of %d target faults",
			res.NumDetected, len(f.TargetFaults))
	}
}

func TestTrimmingShortensOrKeeps(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	trimmed, err := f.Solve(gen, Options{Cycles: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := f.Solve(gen, Options{Cycles: 24, Seed: 2, NoTrim: true})
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.TestLength > full.TestLength {
		t.Errorf("trimming grew test length: %d > %d", trimmed.TestLength, full.TestLength)
	}
	if full.TestLength != full.NumTriplets()*24 {
		t.Errorf("untrimmed length %d != triplets×T %d", full.TestLength, full.NumTriplets()*24)
	}
	// Trimmed solution must still detect everything.
	verifyDetectsAll(t, f, trimmed)
}

func TestSolverAblationOrdering(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	exact, err := f.Solve(gen, Options{Cycles: 16, Seed: 2, Solver: SolverExact})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := f.Solve(gen, Options{Cycles: 16, Seed: 2, Solver: SolverGreedy})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Solve(gen, Options{Cycles: 16, Seed: 2, Solver: SolverGreedyNoReduce})
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumTriplets() > greedy.NumTriplets() {
		t.Errorf("exact (%d) worse than greedy (%d)", exact.NumTriplets(), greedy.NumTriplets())
	}
	if exact.NumTriplets() > raw.NumTriplets() {
		t.Errorf("exact (%d) worse than unreduced greedy (%d)", exact.NumTriplets(), raw.NumTriplets())
	}
	verifyDetectsAll(t, f, greedy)
	verifyDetectsAll(t, f, raw)
}

// Figure 2 property: growing T can only shrink (or keep) the number of
// reseedings — each candidate's fault set grows monotonically with T.
func TestTradeoffMonotone(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	points, err := f.Tradeoff(gen, []int{1, 4, 16, 64}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Triplets > points[i-1].Triplets {
			t.Errorf("triplets grew with T: %+v -> %+v", points[i-1], points[i])
		}
	}
	// At T=1 the solution is a minimum subset of ATPG patterns, so the
	// count equals the covering optimum of the raw pattern set.
	if points[0].Triplets > len(f.Patterns) {
		t.Errorf("T=1 triplets %d > |ATPGTS| %d", points[0].Triplets, len(f.Patterns))
	}
}

func TestRunOnBenchmarkCircuit(t *testing.T) {
	s, err := bench.ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := tpg.NewAdder(len(s.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Run(s, gen, atpg.Options{Seed: 1}, Options{Cycles: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumTriplets() == 0 || sol.NumTriplets() >= sol.MatrixRows {
		t.Errorf("solution %d of %d candidates: covering achieved nothing",
			sol.NumTriplets(), sol.MatrixRows)
	}
	if sol.ResidualCols > sol.MatrixCols/2 {
		t.Errorf("reduction left %d of %d columns; expected heavy pruning",
			sol.ResidualCols, sol.MatrixCols)
	}
	t.Logf("s420/adder: %d triplets (%d necessary), length %d, matrix %dx%d -> %dx%d",
		sol.NumTriplets(), sol.NumNecessary, sol.TestLength,
		sol.MatrixRows, sol.MatrixCols, sol.ResidualRows, sol.ResidualCols)
}

func TestPrepareErrors(t *testing.T) {
	c, _ := netlist.ParseString("seq", `
INPUT(a)
OUTPUT(z)
z = AND(a, q)
q = DFF(z)
`)
	if _, err := Prepare(c, atpg.Options{}); err == nil {
		t.Fatal("expected error for sequential circuit")
	}
}

func TestSolveWidthMismatch(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(99)
	if _, err := f.Solve(gen, Options{Cycles: 4}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestDeterministicSolve(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	a, err := f.Solve(gen, Options{Cycles: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Solve(gen, Options{Cycles: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTriplets() != b.NumTriplets() || a.TestLength != b.TestLength {
		t.Errorf("same seed, different solutions: %d/%d vs %d/%d",
			a.NumTriplets(), a.TestLength, b.NumTriplets(), b.TestLength)
	}
}

func TestObjectiveMinimizeTestLength(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	byCount, err := f.Solve(gen, Options{Cycles: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	byLength, err := f.Solve(gen, Options{Cycles: 24, Seed: 2, Objective: MinimizeTestLength})
	if err != nil {
		t.Fatal(err)
	}
	// The weighted objective may use more triplets but never a longer test
	// than the cardinality objective achieved.
	if byLength.TestLength > byCount.TestLength {
		t.Errorf("min-testlength produced longer test: %d > %d",
			byLength.TestLength, byCount.TestLength)
	}
	if byLength.NumTriplets() < byCount.NumTriplets() {
		// Fewer triplets AND shorter test would mean the cardinality solve
		// was not optimal in count; sanity-check it.
		if byCount.Optimal {
			t.Errorf("weighted solve beat optimal cardinality: %d < %d triplets",
				byLength.NumTriplets(), byCount.NumTriplets())
		}
	}
	verifyDetectsAll(t, f, byLength)
}

func TestObjectiveString(t *testing.T) {
	if MinimizeTriplets.String() != "min-triplets" || MinimizeTestLength.String() != "min-testlength" {
		t.Error("objective names wrong")
	}
	if SolverExact.String() != "exact" || SolverGreedyNoReduce.String() != "greedy-noreduce" {
		t.Error("solver names wrong")
	}
}
