package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tpg"
)

func TestSolutionJSONRoundTrip(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	sol, err := f.Solve(gen, Options{Cycles: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSolutionJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Circuit != sol.Circuit || back.Generator != sol.Generator {
		t.Errorf("labels lost: %q %q", back.Circuit, back.Generator)
	}
	if back.TestLength != sol.TestLength || back.ROMBits != sol.ROMBits {
		t.Errorf("metrics lost: %d %d", back.TestLength, back.ROMBits)
	}
	if len(back.Triplets) != len(sol.Triplets) {
		t.Fatalf("triplet count %d != %d", len(back.Triplets), len(sol.Triplets))
	}
	for i := range sol.Triplets {
		if !back.Triplets[i].Delta.Equal(sol.Triplets[i].Delta) {
			t.Errorf("triplet %d delta mismatch", i)
		}
		if !back.Triplets[i].Theta.Equal(sol.Triplets[i].Theta) {
			t.Errorf("triplet %d theta mismatch", i)
		}
		if back.Triplets[i].EffectiveCycles != sol.Triplets[i].EffectiveCycles {
			t.Errorf("triplet %d cycles mismatch", i)
		}
	}
	if back.NumNecessary != sol.NumNecessary {
		t.Errorf("necessary count %d != %d", back.NumNecessary, sol.NumNecessary)
	}
}

// A replayed JSON solution must still detect every target fault.
func TestJSONSolutionReplays(t *testing.T) {
	f := prepC17(t)
	gen, _ := tpg.NewAdder(len(f.Circuit.Inputs))
	sol, err := f.Solve(gen, Options{Cycles: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSolutionJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	verifyDetectsAll(t, f, back)
}

func TestReadSolutionJSONErrors(t *testing.T) {
	if _, err := ReadSolutionJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	// Hex value wider than the declared width.
	bad := `{"width": 4, "triplets": [{"delta": "ff", "theta": "0", "cycles": 1}]}`
	if _, err := ReadSolutionJSON(strings.NewReader(bad)); err == nil {
		t.Error("overflowing hex accepted")
	}
	ugly := `{"width": 4, "triplets": [{"delta": "zz", "theta": "0", "cycles": 1}]}`
	if _, err := ReadSolutionJSON(strings.NewReader(ugly)); err == nil {
		t.Error("invalid hex digit accepted")
	}
}
