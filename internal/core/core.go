// Package core implements the paper's reseeding computation flow (Fig. 1):
//
//	Initial Reseeding Builder  →  Matrix Reducer  →  exact covering solve
//
// Prepare runs the gate-level ATPG once to obtain the target fault list F
// and the deterministic test set ATPGTS. Solve then builds the Detection
// Matrix for a chosen test pattern generator and evolution length, reduces
// it by essentiality and dominance, solves the residual exactly, and
// assembles the final reseeding solution: the necessary triplets plus the
// minimum cover of the residual, with per-triplet test lengths trimmed of
// trailing patterns that contribute no coverage.
package core

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/bitvec"
	"repro/internal/dmatrix"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/setcover"
	"repro/internal/tpg"
)

// SolverKind selects how the reduced matrix is post-processed.
type SolverKind int

const (
	// SolverExact reduces the matrix and solves the residual with branch
	// and bound (the paper's configuration, with the exact solver standing
	// in for LINGO).
	SolverExact SolverKind = iota
	// SolverGreedy reduces the matrix and covers the residual greedily
	// (ablation: value of the exact solve).
	SolverGreedy
	// SolverGreedyNoReduce covers the raw matrix greedily with no
	// reduction at all (ablation: value of essentiality/dominance).
	SolverGreedyNoReduce
)

func (k SolverKind) String() string {
	switch k {
	case SolverExact:
		return "exact"
	case SolverGreedy:
		return "greedy"
	case SolverGreedyNoReduce:
		return "greedy-noreduce"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(k))
	}
}

// Objective selects what the covering minimizes.
type Objective int

const (
	// MinimizeTriplets minimizes the number of reseedings — the paper's
	// objective, directly proportional to ROM area.
	MinimizeTriplets Objective = iota
	// MinimizeTestLength minimizes the summed trimmed test lengths using
	// the weighted covering solver: each candidate is weighted by the
	// trimmed length it would contribute. This explores the other axis of
	// the paper's area/test-time trade-off.
	MinimizeTestLength
)

func (o Objective) String() string {
	switch o {
	case MinimizeTriplets:
		return "min-triplets"
	case MinimizeTestLength:
		return "min-testlength"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// DefaultCycles is the evolution length T used when Options.Cycles is zero.
const DefaultCycles = 32

// Options configures a Solve run.
type Options struct {
	// Cycles is the evolution length T applied to every candidate triplet
	// (default DefaultCycles). The paper tunes this experimentally per
	// circuit; the trade-off between T and the number of reseedings is
	// Figure 2.
	Cycles int
	// Seed drives θ selection.
	Seed int64
	// Solver selects the covering strategy (default SolverExact). Ignored
	// when Objective is MinimizeTestLength, which always uses the weighted
	// reduction + exact pipeline.
	Solver SolverKind
	// Objective selects the quantity minimized (default MinimizeTriplets).
	Objective Objective
	// NoTrim keeps every selected triplet at full length instead of
	// deleting the trailing patterns that add no coverage.
	NoTrim bool
	// Parallelism bounds the worker pools building the Detection Matrix and
	// exploring the covering solver's branch-and-bound tree. 1 forces the
	// serial path; 0 (and any negative value) means one worker per
	// available processor. Solutions whose exact solve completes within its
	// budgets are bit-identical for any value (see internal/dmatrix,
	// internal/fsim and internal/setcover for the guarantee; only the
	// SolverNodes effort counter is timing dependent). A budget-truncated
	// solve (Optimal = false) returns a timing-dependent best-so-far.
	Parallelism int
	// Exact tunes the branch-and-bound covering solver: node budget,
	// wall-clock budget and cancellation context (the anytime contract:
	// truncated solves yield the best cover found with Optimal = false),
	// and its own Parallelism. A zero Exact.Parallelism inherits the
	// Parallelism field above; a nil Exact.Context inherits Context below.
	Exact setcover.ExactOptions
	// Context, when non-nil, cancels a Solve end to end: the Detection
	// Matrix build aborts with the context's error, and the exact covering
	// solve turns anytime — it returns the best cover found so far with
	// Optimal = false (the setcover contract), so a Solve cancelled after
	// the matrix exists still yields a valid, if unproven, solution.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.Cycles == 0 {
		o.Cycles = DefaultCycles
	}
	if o.Exact.Parallelism == 0 {
		o.Exact.Parallelism = o.Parallelism
	}
	if o.Exact.Context == nil {
		o.Exact.Context = o.Context
	}
	return o
}

// Flow holds the per-circuit artifacts shared by every generator and every
// evolution length: the collapsed fault list, the ATPG test set, and the
// target fault list F it detects.
type Flow struct {
	Circuit *netlist.Circuit
	// AllFaults is the collapsed stuck-at list of the circuit.
	AllFaults []fault.Fault
	// TargetFaults is F: the faults detected by the ATPG test set. The
	// reseeding solution guarantees detection of exactly this list.
	TargetFaults []fault.Fault
	// Patterns is ATPGTS, the compacted deterministic test set.
	Patterns []bitvec.Vector
	// ATPG is the full ATPG outcome (coverage, untestable faults, effort).
	ATPG *atpg.Result
}

// Prepare enumerates faults and runs the ATPG on the combinational circuit.
func Prepare(c *netlist.Circuit, opts atpg.Options) (*Flow, error) {
	all, _, err := fault.List(c)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res, err := atpg.Run(c, all, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewFlow(c, all, res), nil
}

// NewFlow assembles a Flow from already-computed artifacts — the circuit,
// its collapsed fault list and a finished ATPG result — deriving the target
// fault list exactly as Prepare does. It is the re-entry point for persisted
// preparations (internal/store): a Flow rebuilt from parts behaves
// identically to the one Prepare computed, including the order of
// TargetFaults, which fixes the Detection Matrix's column order.
func NewFlow(c *netlist.Circuit, all []fault.Fault, res *atpg.Result) *Flow {
	f := &Flow{Circuit: c, AllFaults: all, ATPG: res, Patterns: res.Patterns}
	for _, fi := range res.DetectedFaults() {
		f.TargetFaults = append(f.TargetFaults, all[fi])
	}
	return f
}

// SelectedTriplet is one reseeding of the final solution.
type SelectedTriplet struct {
	tpg.Triplet
	// EffectiveCycles is the trimmed evolution length actually needed.
	EffectiveCycles int
	// Necessary reports whether the triplet was forced by essentiality
	// (as opposed to chosen by the covering solver).
	Necessary bool
	// AssignedFaults is the number of target faults this triplet is
	// responsible for in the final solution (its ΔFC contribution).
	AssignedFaults int
}

// Solution is a computed reseeding solution and the flow statistics the
// paper reports about it.
type Solution struct {
	Circuit   string
	Generator string
	Cycles    int // candidate evolution length T

	Triplets      []SelectedTriplet
	NumNecessary  int
	NumFromSolver int
	// TestLength is the paper's global test length: the sum of trimmed
	// per-triplet lengths.
	TestLength int
	// UniformLength is the alternative storage scheme the paper mentions:
	// all triplets run for the same T = max trimmed length.
	UniformLength int
	// ROMBits estimates storage: per triplet 2×width seed bits plus a
	// length counter wide enough for the longest trimmed run.
	ROMBits int

	// Matrix and reduction anatomy (the paper's Table 2).
	MatrixRows     int
	MatrixCols     int
	ResidualRows   int
	ResidualCols   int
	DominatedRows  int
	ImpliedCols    int
	ReductionIters int
	SolverNodes    int64
	Optimal        bool
	// RootLB is the exact solver's root lower bound on the covering cost
	// of the whole solution (essential rows included): triplet count for
	// MinimizeTriplets, total weight for MinimizeTestLength. Cost-RootLB
	// bounds the optimality gap a truncated solve may have left open; 0
	// for greedy solves, which prove no bound.
	RootLB int

	// Effort counters.
	GateEvals   int64
	TripletSims int
}

// NumTriplets returns the solution cardinality (the paper's #Triplets).
func (s *Solution) NumTriplets() int { return len(s.Triplets) }

// Solve computes a reseeding solution for one generator and one evolution
// length. The generator's width must match the circuit's input count. It is
// BuildMatrix followed by SolveMatrix; callers that reuse one Detection
// Matrix across several solves (or cache it, as the reseeding Engine does)
// call the two halves directly.
func (f *Flow) Solve(gen tpg.Generator, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	m, err := f.BuildMatrix(gen, opts)
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(m, gen, opts)
}

// BuildMatrix constructs the Detection Matrix of this Flow for one
// generator and the evolution length in opts (first-detection indices are
// always recorded, so the matrix serves both objectives and trimming). The
// matrix depends only on the Flow's artifacts, the generator kind and
// width, opts.Cycles and opts.Seed — not on Parallelism, which is the
// basis on which the Engine caches it.
func (f *Flow) BuildMatrix(gen tpg.Generator, opts Options) (*dmatrix.Matrix, error) {
	opts = opts.withDefaults()
	if len(f.TargetFaults) == 0 {
		return nil, fmt.Errorf("core: %s: empty target fault list", f.Circuit.Name)
	}
	if len(f.Patterns) == 0 {
		return nil, fmt.Errorf("core: %s: empty ATPG test set", f.Circuit.Name)
	}
	m, err := dmatrix.Build(f.Circuit, f.TargetFaults, f.Patterns, gen, dmatrix.Options{
		Cycles:               opts.Cycles,
		Seed:                 opts.Seed,
		RecordFirstDetection: true,
		Parallelism:          opts.Parallelism,
		Context:              opts.Context,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if !m.CoversAll() {
		// Cannot happen when F comes from Prepare (δ_i = p_i guarantees
		// coverage); guard for callers passing custom fault lists.
		return nil, fmt.Errorf("core: %s: candidate triplets do not cover F (%d uncovered)",
			f.Circuit.Name, len(m.UncoveredFaults()))
	}
	return m, nil
}

// SolveMatrix reduces and solves a Detection Matrix previously built by
// BuildMatrix on this Flow and assembles the reseeding solution. The
// matrix is only read, never written, so one (possibly cached) matrix may
// serve any number of concurrent SolveMatrix calls. The evolution length
// is taken from the matrix itself; opts.Cycles is ignored here.
func (f *Flow) SolveMatrix(m *dmatrix.Matrix, gen tpg.Generator, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if m.NumTriplets() > 0 {
		opts.Cycles = m.Triplets[0].Cycles
	}

	problem := setcover.NewProblem(m.NumFaults)
	for _, row := range m.Rows {
		problem.AddRow(row)
	}

	sol := &Solution{
		Circuit:     f.Circuit.Name,
		Generator:   gen.Name(),
		Cycles:      opts.Cycles,
		MatrixRows:  m.NumTriplets(),
		MatrixCols:  m.NumFaults,
		GateEvals:   m.GateEvals,
		TripletSims: m.TripletSims,
	}

	// The covering span wraps reduction plus the covering solve; the
	// solver's own ascent/bb spans nest under it via Exact.Context. A nil
	// span (no trace on the context) leaves the options untouched.
	cctx, csp := obs.StartSpan(opts.Context, "covering")
	defer csp.End()
	if csp != nil {
		opts.Exact.Context = cctx
	}

	var chosen []int
	necessary := map[int]bool{}
	if opts.Objective == MinimizeTestLength {
		// Weight each candidate by the trimmed length it would contribute
		// if it had to cover everything it detects.
		weights := make([]int, m.NumTriplets())
		for i, row := range m.Rows {
			weights[i] = m.EffectiveLength(i, row.Elements())
		}
		sub, red, err := problem.SolveMinimalWeighted(weights, opts.Exact)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		sol.ResidualRows = red.Residual.NumRows()
		sol.ResidualCols = red.Residual.NumCols()
		sol.DominatedRows = len(red.DominatedRows)
		sol.ImpliedCols = red.ImpliedCols
		sol.ReductionIters = red.Iterations
		sol.SolverNodes = sub.Nodes
		sol.Optimal = sub.Optimal
		// Offset the residual solve's root bound by the essential rows'
		// weight, so RootLB bounds the whole solution's covering cost.
		essWeight := 0
		for _, r := range red.Essential {
			essWeight += weights[r]
		}
		sol.RootLB = sub.RootLB + essWeight
		for _, r := range red.Essential {
			necessary[r] = true
		}
		chosen = sub.Rows
		coveringAttrs(csp, sol, len(red.Essential))
		return f.assemble(sol, m, chosen, necessary, opts)
	}
	switch opts.Solver {
	case SolverGreedyNoReduce:
		g, err := problem.SolveGreedy()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		chosen = g.Rows
		sol.Optimal = false
		sol.ResidualRows = m.NumTriplets()
		sol.ResidualCols = m.NumFaults
	case SolverGreedy, SolverExact:
		_, rsp := obs.StartSpan(cctx, "reduce")
		red := problem.Reduce()
		rsp.SetInt("residual_rows", int64(red.Residual.NumRows()))
		rsp.SetInt("residual_cols", int64(red.Residual.NumCols()))
		rsp.SetInt("essential", int64(len(red.Essential)))
		rsp.End()
		sol.ResidualRows = red.Residual.NumRows()
		sol.ResidualCols = red.Residual.NumCols()
		sol.DominatedRows = len(red.DominatedRows)
		sol.ImpliedCols = red.ImpliedCols
		sol.ReductionIters = red.Iterations
		for _, r := range red.Essential {
			necessary[r] = true
			chosen = append(chosen, r)
		}
		if !red.Empty() {
			var sub setcover.Solution
			var err error
			if opts.Solver == SolverExact {
				sub, err = red.Residual.SolveExact(
					opts.Exact.WithIncumbentOffset(len(red.Essential), len(red.Essential)))
			} else {
				sub, err = red.Residual.SolveGreedy()
			}
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			for _, r := range sub.Rows {
				chosen = append(chosen, red.RowMap[r])
			}
			sol.SolverNodes = sub.Nodes
			sol.Optimal = opts.Solver == SolverExact && sub.Optimal
			if opts.Solver == SolverExact {
				// Essential rows are in every cover, so they shift the
				// residual's root bound one-for-one.
				sol.RootLB = sub.RootLB + len(red.Essential)
			}
		} else {
			sol.Optimal = true
			if opts.Solver == SolverExact {
				sol.RootLB = len(chosen) // essentials alone: the cover is proven
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown solver kind %d", int(opts.Solver))
	}
	coveringAttrs(csp, sol, len(necessary))
	return f.assemble(sol, m, chosen, necessary, opts)
}

// coveringAttrs annotates a covering span with the solve's anatomy (a
// nil span no-ops).
func coveringAttrs(csp *obs.Span, sol *Solution, essential int) {
	csp.SetInt("residual_rows", int64(sol.ResidualRows))
	csp.SetInt("residual_cols", int64(sol.ResidualCols))
	csp.SetInt("essential", int64(essential))
	csp.SetInt("nodes", sol.SolverNodes)
	csp.SetInt("optimal", b2i(sol.Optimal))
	csp.End()
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// assemble verifies the chosen rows, assigns faults, trims test lengths and
// fills the solution record.
func (f *Flow) assemble(sol *Solution, m *dmatrix.Matrix, chosen []int,
	necessary map[int]bool, opts Options) (*Solution, error) {

	covered := make([]bool, m.NumFaults)
	for _, row := range chosen {
		m.Rows[row].ForEach(func(fi int) { covered[fi] = true })
	}
	for fi, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: internal error: fault %d uncovered by computed solution", fi)
		}
	}

	// Assign each fault to the selected triplet that detects it earliest
	// (ties to the lower triplet index); the assignment defines each
	// triplet's ΔFC and its trimmed test length.
	assigned := make([][]int, len(chosen))
	for fi := 0; fi < m.NumFaults; fi++ {
		bestT, bestAt := -1, int32(1)<<30
		for ti, row := range chosen {
			if !m.Rows[row].Contains(fi) {
				continue
			}
			at := m.FirstDetection[row][fi]
			if at < bestAt {
				bestT, bestAt = ti, at
			}
		}
		if bestT < 0 {
			return nil, fmt.Errorf("core: internal error: fault %d unassigned", fi)
		}
		assigned[bestT] = append(assigned[bestT], fi)
	}

	maxEff := 0
	for ti, row := range chosen {
		eff := opts.Cycles
		if !opts.NoTrim {
			eff = m.EffectiveLength(row, assigned[ti])
		}
		if eff > maxEff {
			maxEff = eff
		}
		sol.Triplets = append(sol.Triplets, SelectedTriplet{
			Triplet:         m.Triplets[row],
			EffectiveCycles: eff,
			Necessary:       necessary[row],
			AssignedFaults:  len(assigned[ti]),
		})
		sol.TestLength += eff
		if necessary[row] {
			sol.NumNecessary++
		} else {
			sol.NumFromSolver++
		}
	}
	sol.UniformLength = maxEff * len(chosen)
	sol.ROMBits = romBits(len(chosen), len(f.Circuit.Inputs), maxEff)
	return sol, nil
}

// romBits models triplet storage: per reseeding both seed values (δ and θ,
// width bits each) plus the actual cycle count, as the paper assumes.
func romBits(triplets, width, maxCycles int) int {
	counter := 1
	for 1<<uint(counter) <= maxCycles {
		counter++
	}
	return triplets * (2*width + counter)
}

// Run is the one-shot convenience flow: Prepare followed by Solve.
func Run(c *netlist.Circuit, gen tpg.Generator, atpgOpts atpg.Options, opts Options) (*Solution, error) {
	f, err := Prepare(c, atpgOpts)
	if err != nil {
		return nil, err
	}
	return f.Solve(gen, opts)
}

// TradeoffPoint is one sample of the reseedings-vs-test-length curve
// (Figure 2 of the paper).
type TradeoffPoint struct {
	Cycles     int // candidate evolution length T
	Triplets   int // solution cardinality
	TestLength int // trimmed global test length
}

// Tradeoff computes the Figure 2 curve: the covering solution for each
// candidate evolution length in cyclesList. The ATPG work is shared; the
// matrix is rebuilt per point with the same seed so curves are comparable.
func (f *Flow) Tradeoff(gen tpg.Generator, cyclesList []int, opts Options) ([]TradeoffPoint, error) {
	var out []TradeoffPoint
	for _, t := range cyclesList {
		o := opts
		o.Cycles = t
		sol, err := f.Solve(gen, o)
		if err != nil {
			return nil, fmt.Errorf("core: tradeoff at T=%d: %w", t, err)
		}
		out = append(out, TradeoffPoint{
			Cycles:     t,
			Triplets:   sol.NumTriplets(),
			TestLength: sol.TestLength,
		})
	}
	return out, nil
}
