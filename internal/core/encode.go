package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bitvec"
)

// solutionJSON is the stable on-disk form of a Solution: seeds are hex
// strings with explicit widths so they survive any vector width.
type solutionJSON struct {
	Circuit   string        `json:"circuit"`
	Generator string        `json:"generator"`
	Cycles    int           `json:"cycles"`
	Width     int           `json:"width"`
	Triplets  []tripletJSON `json:"triplets"`

	TestLength    int `json:"test_length"`
	UniformLength int `json:"uniform_length"`
	ROMBits       int `json:"rom_bits"`

	MatrixRows     int   `json:"matrix_rows"`
	MatrixCols     int   `json:"matrix_cols"`
	ResidualRows   int   `json:"residual_rows"`
	ResidualCols   int   `json:"residual_cols"`
	DominatedRows  int   `json:"dominated_rows,omitempty"`
	ImpliedCols    int   `json:"implied_cols,omitempty"`
	ReductionIters int   `json:"reduction_iters,omitempty"`
	SolverNodes    int64 `json:"solver_nodes,omitempty"`
	RootLB         int   `json:"root_lb,omitempty"`
	Optimal        bool  `json:"optimal"`

	GateEvals   int64 `json:"gate_evals,omitempty"`
	TripletSims int   `json:"triplet_sims,omitempty"`
}

type tripletJSON struct {
	Delta     string `json:"delta"`
	Theta     string `json:"theta"`
	Cycles    int    `json:"cycles"`
	Necessary bool   `json:"necessary"`
	Faults    int    `json:"faults"`
}

// encode builds the stable JSON form of the solution.
func (s *Solution) encode() solutionJSON {
	width := 0
	out := solutionJSON{
		Circuit:        s.Circuit,
		Generator:      s.Generator,
		Cycles:         s.Cycles,
		TestLength:     s.TestLength,
		UniformLength:  s.UniformLength,
		ROMBits:        s.ROMBits,
		MatrixRows:     s.MatrixRows,
		MatrixCols:     s.MatrixCols,
		ResidualRows:   s.ResidualRows,
		ResidualCols:   s.ResidualCols,
		DominatedRows:  s.DominatedRows,
		ImpliedCols:    s.ImpliedCols,
		ReductionIters: s.ReductionIters,
		SolverNodes:    s.SolverNodes,
		RootLB:         s.RootLB,
		Optimal:        s.Optimal,
		GateEvals:      s.GateEvals,
		TripletSims:    s.TripletSims,
	}
	for _, t := range s.Triplets {
		width = t.Delta.Width()
		out.Triplets = append(out.Triplets, tripletJSON{
			Delta:     t.Delta.Hex(),
			Theta:     t.Theta.Hex(),
			Cycles:    t.EffectiveCycles,
			Necessary: t.Necessary,
			Faults:    t.AssignedFaults,
		})
	}
	out.Width = width
	return out
}

// WriteJSON serializes the solution, ROM-ready: each triplet carries its
// trimmed cycle count.
func (s *Solution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.encode())
}

// MarshalJSON renders the solution in the same stable form WriteJSON
// writes (seeds as hex strings with an explicit width), making any struct
// embedding a *Solution — notably the Engine's Response — serializable.
func (s *Solution) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.encode())
}

// UnmarshalJSON is the inverse of MarshalJSON; like ReadSolutionJSON, only
// the fields present in the stable form round-trip.
func (s *Solution) UnmarshalJSON(data []byte) error {
	var in solutionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: decode solution: %w", err)
	}
	dec, err := decodeSolution(in)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}

// ReadSolutionJSON deserializes a solution written by WriteJSON. Only the
// fields needed to replay the triplets are guaranteed round-trip.
func ReadSolutionJSON(r io.Reader) (*Solution, error) {
	var in solutionJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode solution: %w", err)
	}
	return decodeSolution(in)
}

func decodeSolution(in solutionJSON) (*Solution, error) {
	s := &Solution{
		Circuit:        in.Circuit,
		Generator:      in.Generator,
		Cycles:         in.Cycles,
		TestLength:     in.TestLength,
		UniformLength:  in.UniformLength,
		ROMBits:        in.ROMBits,
		MatrixRows:     in.MatrixRows,
		MatrixCols:     in.MatrixCols,
		ResidualRows:   in.ResidualRows,
		ResidualCols:   in.ResidualCols,
		DominatedRows:  in.DominatedRows,
		ImpliedCols:    in.ImpliedCols,
		ReductionIters: in.ReductionIters,
		SolverNodes:    in.SolverNodes,
		RootLB:         in.RootLB,
		Optimal:        in.Optimal,
		GateEvals:      in.GateEvals,
		TripletSims:    in.TripletSims,
	}
	for i, t := range in.Triplets {
		delta, err := bitvec.FromHex(in.Width, t.Delta)
		if err != nil {
			return nil, fmt.Errorf("core: triplet %d delta: %w", i, err)
		}
		theta, err := bitvec.FromHex(in.Width, t.Theta)
		if err != nil {
			return nil, fmt.Errorf("core: triplet %d theta: %w", i, err)
		}
		st := SelectedTriplet{
			EffectiveCycles: t.Cycles,
			Necessary:       t.Necessary,
			AssignedFaults:  t.Faults,
		}
		st.Delta = delta
		st.Theta = theta
		st.Triplet.Cycles = t.Cycles
		s.Triplets = append(s.Triplets, st)
		if t.Necessary {
			s.NumNecessary++
		} else {
			s.NumFromSolver++
		}
	}
	return s, nil
}
