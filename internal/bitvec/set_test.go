package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(200)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 63, 64, 128, 199} {
		s.Add(i)
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
	if !s.Contains(64) || s.Contains(65) {
		t.Error("Contains wrong")
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 4 {
		t.Error("Remove failed")
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear failed")
	}
}

func TestSetFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		s := NewSet(n)
		s.Fill()
		if s.Len() != n {
			t.Errorf("Fill universe %d: Len = %d", n, s.Len())
		}
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	s := NewSet(10)
	for _, op := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Remove(10) },
		func() { s.Contains(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range op did not panic")
				}
			}()
			op()
		}()
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(100)
	b := NewSet(100)
	for i := 0; i < 50; i++ {
		a.Add(i)
	}
	for i := 25; i < 75; i++ {
		b.Add(i)
	}

	u := a.Clone()
	u.Or(b)
	if u.Len() != 75 {
		t.Errorf("union len = %d, want 75", u.Len())
	}

	x := a.Clone()
	x.And(b)
	if x.Len() != 25 {
		t.Errorf("intersection len = %d, want 25", x.Len())
	}
	if got := a.IntersectionLen(b); got != 25 {
		t.Errorf("IntersectionLen = %d, want 25", got)
	}

	d := a.Clone()
	d.AndNot(b)
	if d.Len() != 25 || d.Contains(30) || !d.Contains(10) {
		t.Errorf("difference wrong: %v", d)
	}

	if !x.SubsetOf(a) || !x.SubsetOf(b) {
		t.Error("intersection must be subset of both")
	}
	if a.SubsetOf(b) {
		t.Error("a is not a subset of b")
	}
	if !a.Intersects(b) {
		t.Error("a and b intersect")
	}
	empty := NewSet(100)
	if a.Intersects(empty) {
		t.Error("nothing intersects the empty set")
	}
	if !empty.SubsetOf(a) {
		t.Error("empty set is a subset of everything")
	}
}

func TestSetUniverseMismatchPanics(t *testing.T) {
	a, b := NewSet(10), NewSet(11)
	defer func() {
		if recover() == nil {
			t.Error("Or with mismatched universes did not panic")
		}
	}()
	a.Or(b)
}

func TestSetForEachOrder(t *testing.T) {
	s := NewSet(300)
	want := []int{3, 64, 65, 127, 256}
	for _, i := range want {
		s.Add(i)
	}
	if got := s.Elements(); !reflect.DeepEqual(got, want) {
		t.Errorf("Elements = %v, want %v", got, want)
	}
	if s.First() != 3 {
		t.Errorf("First = %d, want 3", s.First())
	}
	if NewSet(10).First() != -1 {
		t.Error("First of empty set should be -1")
	}
}

func TestSetFirstNotIn(t *testing.T) {
	s, o := NewSet(300), NewSet(300)
	for _, i := range []int{3, 64, 65, 256} {
		s.Add(i)
	}
	if got := s.FirstNotIn(o); got != 3 {
		t.Errorf("FirstNotIn(empty) = %d, want 3", got)
	}
	o.Add(3)
	o.Add(64)
	if got := s.FirstNotIn(o); got != 65 {
		t.Errorf("FirstNotIn = %d, want 65", got)
	}
	o.Add(65)
	o.Add(256)
	if got := s.FirstNotIn(o); got != -1 {
		t.Errorf("FirstNotIn of covered set = %d, want -1", got)
	}
	if got := NewSet(300).FirstNotIn(o); got != -1 {
		t.Errorf("FirstNotIn of empty set = %d, want -1", got)
	}
}

func TestSetEqualAndHash(t *testing.T) {
	a, b := NewSet(128), NewSet(128)
	for _, i := range []int{1, 2, 99} {
		a.Add(i)
		b.Add(i)
	}
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal sets must hash identically")
	}
	b.Add(100)
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(10)
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := NewSet(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property test: set algebra matches a reference map implementation.
func TestSetMatchesMapModelQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	prop := func(uint8) bool {
		n := 1 + rng.Intn(250)
		s := NewSet(n)
		model := map[int]bool{}
		for op := 0; op < 100; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for _, e := range s.Elements() {
			if !model[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identities on random sets.
func TestSetIdentitiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	randomSet := func(n int) *Set {
		s := NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				s.Add(i)
			}
		}
		return s
	}
	prop := func(uint8) bool {
		n := 1 + rng.Intn(200)
		a, b := randomSet(n), randomSet(n)
		// |a ∪ b| = |a| + |b| - |a ∩ b|
		u := a.Clone()
		u.Or(b)
		if u.Len() != a.Len()+b.Len()-a.IntersectionLen(b) {
			return false
		}
		// (a \ b) ∪ (a ∩ b) = a
		d := a.Clone()
		d.AndNot(b)
		x := a.Clone()
		x.And(b)
		d.Or(x)
		return d.Equal(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetOr4096(b *testing.B) {
	x, y := NewSet(4096), NewSet(4096)
	for i := 0; i < 4096; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkSetSubsetOf4096(b *testing.B) {
	x, y := NewSet(4096), NewSet(4096)
	for i := 0; i < 4096; i += 3 {
		x.Add(i)
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.SubsetOf(y)
	}
}
