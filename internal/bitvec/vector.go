// Package bitvec provides fixed-width bit vectors with modular arithmetic
// and dense bit sets.
//
// Vectors are the patterns and seeds of the reseeding flow: a test pattern
// applied to a unit under test, the state register value δ of a test pattern
// generator, or its input register value θ. Because accumulator-based TPGs
// compute S ← S ∘ θ (∘ ∈ {+, −, ×}) modulo 2^width at the full width of the
// unit under test, Vector implements multi-limb modular arithmetic rather
// than capping widths at 64 bits.
//
// Sets are used for fault subsets: the rows and columns of the Detection
// Matrix and the working tables of the set covering engine.
package bitvec

import (
	"fmt"
	"math/rand"
	"strings"
)

const wordBits = 64

// Vector is a fixed-width bit vector backed by 64-bit limbs, least
// significant limb first. Bit 0 is the least significant bit. All arithmetic
// is performed modulo 2^Width.
//
// The zero value is a zero-width vector; use New or one of the From
// constructors to obtain a usable vector.
type Vector struct {
	width int
	limbs []uint64
}

func limbCount(width int) int {
	if width <= 0 {
		return 0
	}
	return (width + wordBits - 1) / wordBits
}

// New returns an all-zero vector of the given width. It panics if width is
// negative.
func New(width int) Vector {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return Vector{width: width, limbs: make([]uint64, limbCount(width))}
}

// FromUint64 returns a vector of the given width holding v mod 2^width.
func FromUint64(width int, v uint64) Vector {
	out := New(width)
	if len(out.limbs) > 0 {
		out.limbs[0] = v
	}
	out.mask()
	return out
}

// FromLimbs returns a vector of the given width initialized from the given
// limbs (least significant first). Extra limbs and bits beyond width are
// discarded.
func FromLimbs(width int, limbs []uint64) Vector {
	out := New(width)
	copy(out.limbs, limbs)
	out.mask()
	return out
}

// FromString parses a binary string written most-significant-bit first, such
// as "1010". It returns an error if s contains characters other than '0' and
// '1' or is empty.
func FromString(s string) (Vector, error) {
	if len(s) == 0 {
		return Vector{}, fmt.Errorf("bitvec: empty string")
	}
	out := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			out.SetBit(len(s)-1-i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q in %q", c, s)
		}
	}
	return out, nil
}

// MustFromString is like FromString but panics on error. It is intended for
// tests and compile-time-constant patterns.
func MustFromString(s string) Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Random returns a uniformly random vector of the given width drawn from rng.
func Random(width int, rng *rand.Rand) Vector {
	out := New(width)
	for i := range out.limbs {
		out.limbs[i] = rng.Uint64()
	}
	out.mask()
	return out
}

// mask clears any bits above width in the top limb.
func (v *Vector) mask() {
	if v.width == 0 || len(v.limbs) == 0 {
		return
	}
	rem := v.width % wordBits
	if rem != 0 {
		v.limbs[len(v.limbs)-1] &= (uint64(1) << rem) - 1
	}
}

// Width returns the vector's width in bits.
func (v Vector) Width() int { return v.width }

// Bit reports whether bit i is set. It panics if i is out of range.
func (v Vector) Bit(i int) bool {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: bit index %d out of range for width %d", i, v.width))
	}
	return v.limbs[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// SetBit sets bit i to b. It panics if i is out of range.
func (v *Vector) SetBit(i int, b bool) {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: bit index %d out of range for width %d", i, v.width))
	}
	if b {
		v.limbs[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.limbs[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := Vector{width: v.width, limbs: make([]uint64, len(v.limbs))}
	copy(out.limbs, v.limbs)
	return out
}

// Equal reports whether v and u have the same width and bits.
func (v Vector) Equal(u Vector) bool {
	if v.width != u.width {
		return false
	}
	for i := range v.limbs {
		if v.limbs[i] != u.limbs[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether all bits of v are zero.
func (v Vector) IsZero() bool {
	for _, w := range v.limbs {
		if w != 0 {
			return false
		}
	}
	return true
}

// Uint64 returns the low 64 bits of v.
func (v Vector) Uint64() uint64 {
	if len(v.limbs) == 0 {
		return 0
	}
	return v.limbs[0]
}

// Limbs returns a copy of the underlying limbs, least significant first.
func (v Vector) Limbs() []uint64 {
	out := make([]uint64, len(v.limbs))
	copy(out, v.limbs)
	return out
}

// OnesCount returns the number of set bits.
func (v Vector) OnesCount() int {
	n := 0
	for _, w := range v.limbs {
		n += popcount(w)
	}
	return n
}

// String renders v as a binary string, most significant bit first.
func (v Vector) String() string {
	if v.width == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(v.width)
	for i := v.width - 1; i >= 0; i-- {
		if v.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Hex renders v as a hexadecimal string, most significant digit first, with
// enough digits to cover the width.
func (v Vector) Hex() string {
	return hexString(v.width, v.limbs)
}

// hexString is the shared Hex rendering of Vector and Set: width bits from
// 64-bit words, least significant word first, as ceil(width/4) lowercase
// digits.
func hexString(width int, words []uint64) string {
	if width == 0 {
		return ""
	}
	digits := (width + 3) / 4
	var b strings.Builder
	for i := digits - 1; i >= 0; i-- {
		nibble := words[i/16] >> (uint(i%16) * 4) & 0xf
		b.WriteByte("0123456789abcdef"[nibble])
	}
	return b.String()
}

// FromHex parses a hexadecimal string written most-significant-digit first —
// the Hex rendering — into a vector of the given width. Upper- and lowercase
// digits are accepted, the string may be shorter or longer than the width
// needs, and a set bit at or beyond width is an error rather than silently
// dropped, so a persisted vector can never be truncated unnoticed.
func FromHex(width int, s string) (Vector, error) {
	v := New(width)
	for i := 0; i < len(s); i++ {
		c := s[len(s)-1-i]
		var nibble uint64
		switch {
		case c >= '0' && c <= '9':
			nibble = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			nibble = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			nibble = uint64(c-'A') + 10
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid hex digit %q", c)
		}
		for b := 0; b < 4; b++ {
			if nibble>>uint(b)&1 == 0 {
				continue
			}
			bit := 4*i + b
			if bit >= width {
				return Vector{}, fmt.Errorf("bitvec: hex value wider than %d bits", width)
			}
			v.SetBit(bit, true)
		}
	}
	return v, nil
}

func checkSameWidth(op string, a, b Vector) {
	if a.width != b.width {
		panic(fmt.Sprintf("bitvec: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// Add returns a+b mod 2^width. It panics if the widths differ.
func Add(a, b Vector) Vector {
	checkSameWidth("Add", a, b)
	out := New(a.width)
	var carry uint64
	for i := range a.limbs {
		s := a.limbs[i] + b.limbs[i]
		c1 := boolToWord(s < a.limbs[i])
		s2 := s + carry
		c2 := boolToWord(s2 < s)
		out.limbs[i] = s2
		carry = c1 | c2
	}
	out.mask()
	return out
}

// Sub returns a-b mod 2^width. It panics if the widths differ.
func Sub(a, b Vector) Vector {
	checkSameWidth("Sub", a, b)
	out := New(a.width)
	var borrow uint64
	for i := range a.limbs {
		d := a.limbs[i] - b.limbs[i]
		b1 := boolToWord(a.limbs[i] < b.limbs[i])
		d2 := d - borrow
		b2 := boolToWord(d < borrow)
		out.limbs[i] = d2
		borrow = b1 | b2
	}
	out.mask()
	return out
}

// Mul returns a*b mod 2^width using schoolbook multiplication over 32-bit
// half-limbs. It panics if the widths differ.
func Mul(a, b Vector) Vector {
	checkSameWidth("Mul", a, b)
	n := len(a.limbs)
	out := New(a.width)
	if n == 0 {
		return out
	}
	// Split into 32-bit halves to keep partial products within uint64.
	ha := toHalves(a.limbs)
	hb := toHalves(b.limbs)
	acc := make([]uint64, 2*n) // 32-bit halves of the result
	for i := 0; i < len(ha); i++ {
		if ha[i] == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < len(acc); j++ {
			var pb uint64
			if j < len(hb) {
				pb = hb[j]
			} else if carry == 0 {
				break
			}
			cur := acc[i+j] + ha[i]*pb + carry
			acc[i+j] = cur & 0xffffffff
			carry = cur >> 32
		}
	}
	for i := 0; i < n; i++ {
		out.limbs[i] = acc[2*i] | acc[2*i+1]<<32
	}
	out.mask()
	return out
}

// Xor returns the bitwise exclusive-or of a and b. It panics if the widths
// differ.
func Xor(a, b Vector) Vector {
	checkSameWidth("Xor", a, b)
	out := New(a.width)
	for i := range a.limbs {
		out.limbs[i] = a.limbs[i] ^ b.limbs[i]
	}
	return out
}

// And returns the bitwise and of a and b. It panics if the widths differ.
func And(a, b Vector) Vector {
	checkSameWidth("And", a, b)
	out := New(a.width)
	for i := range a.limbs {
		out.limbs[i] = a.limbs[i] & b.limbs[i]
	}
	return out
}

// Or returns the bitwise or of a and b. It panics if the widths differ.
func Or(a, b Vector) Vector {
	checkSameWidth("Or", a, b)
	out := New(a.width)
	for i := range a.limbs {
		out.limbs[i] = a.limbs[i] | b.limbs[i]
	}
	return out
}

// Not returns the bitwise complement of a within its width.
func Not(a Vector) Vector {
	out := New(a.width)
	for i := range a.limbs {
		out.limbs[i] = ^a.limbs[i]
	}
	out.mask()
	return out
}

// ShiftLeft returns a<<k mod 2^width. Shifting by k ≥ width yields zero.
func ShiftLeft(a Vector, k int) Vector {
	if k < 0 {
		panic(fmt.Sprintf("bitvec: negative shift %d", k))
	}
	out := New(a.width)
	if k >= a.width {
		return out
	}
	limbShift, bitShift := k/wordBits, uint(k%wordBits)
	for i := len(a.limbs) - 1; i >= limbShift; i-- {
		w := a.limbs[i-limbShift] << bitShift
		if bitShift > 0 && i-limbShift-1 >= 0 {
			w |= a.limbs[i-limbShift-1] >> (wordBits - bitShift)
		}
		out.limbs[i] = w
	}
	out.mask()
	return out
}

// ShiftRight returns a>>k (logical). Shifting by k ≥ width yields zero.
func ShiftRight(a Vector, k int) Vector {
	if k < 0 {
		panic(fmt.Sprintf("bitvec: negative shift %d", k))
	}
	out := New(a.width)
	if k >= a.width {
		return out
	}
	limbShift, bitShift := k/wordBits, uint(k%wordBits)
	for i := 0; i+limbShift < len(a.limbs); i++ {
		w := a.limbs[i+limbShift] >> bitShift
		if bitShift > 0 && i+limbShift+1 < len(a.limbs) {
			w |= a.limbs[i+limbShift+1] << (wordBits - bitShift)
		}
		out.limbs[i] = w
	}
	out.mask()
	return out
}

func toHalves(limbs []uint64) []uint64 {
	out := make([]uint64, 2*len(limbs))
	for i, w := range limbs {
		out[2*i] = w & 0xffffffff
		out[2*i+1] = w >> 32
	}
	return out
}

func boolToWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
