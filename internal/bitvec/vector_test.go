package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	for _, w := range []int{0, 1, 7, 63, 64, 65, 127, 128, 200} {
		v := New(w)
		if v.Width() != w {
			t.Errorf("New(%d).Width() = %d", w, v.Width())
		}
		if !v.IsZero() {
			t.Errorf("New(%d) not zero: %s", w, v)
		}
		if v.OnesCount() != 0 {
			t.Errorf("New(%d).OnesCount() = %d", w, v.OnesCount())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromUint64Masks(t *testing.T) {
	v := FromUint64(4, 0xff)
	if got := v.Uint64(); got != 0xf {
		t.Errorf("FromUint64(4, 0xff) = %#x, want 0xf", got)
	}
	v = FromUint64(64, 0xdeadbeefcafef00d)
	if got := v.Uint64(); got != 0xdeadbeefcafef00d {
		t.Errorf("FromUint64(64, x) = %#x", got)
	}
}

func TestFromLimbs(t *testing.T) {
	v := FromLimbs(100, []uint64{1, ^uint64(0)})
	if !v.Bit(0) {
		t.Error("bit 0 should be set")
	}
	if v.Bit(1) {
		t.Error("bit 1 should be clear")
	}
	for i := 64; i < 100; i++ {
		if !v.Bit(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	// Bits above width 100 must have been masked off.
	limbs := v.Limbs()
	if limbs[1] != (uint64(1)<<36)-1 {
		t.Errorf("top limb = %#x, want lower 36 bits only", limbs[1])
	}
}

func TestSetBitGetBit(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.SetBit(i, true)
	}
	for _, i := range idx {
		if !v.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.OnesCount() != len(idx) {
		t.Errorf("OnesCount = %d, want %d", v.OnesCount(), len(idx))
	}
	for _, i := range idx {
		v.SetBit(i, false)
	}
	if !v.IsZero() {
		t.Errorf("vector not zero after clearing: %s", v.Hex())
	}
}

func TestBitOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "1010", "11110000", "1" + zeros(70) + "1"}
	for _, s := range cases {
		v, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if got := v.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func zeros(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0'
	}
	return string(b)
}

func TestFromStringErrors(t *testing.T) {
	for _, s := range []string{"", "10x1", "2"} {
		if _, err := FromString(s); err == nil {
			t.Errorf("FromString(%q) succeeded, want error", s)
		}
	}
}

func TestStringMSBFirst(t *testing.T) {
	v := New(4)
	v.SetBit(3, true) // MSB
	if got := v.String(); got != "1000" {
		t.Errorf("String() = %q, want 1000", got)
	}
}

func TestHex(t *testing.T) {
	v := FromUint64(16, 0xbeef)
	if got := v.Hex(); got != "beef" {
		t.Errorf("Hex() = %q, want beef", got)
	}
	v = FromUint64(9, 0x1ff)
	if got := v.Hex(); got != "1ff" {
		t.Errorf("Hex() = %q, want 1ff", got)
	}
}

func TestAddSmall(t *testing.T) {
	cases := []struct {
		w          int
		a, b, want uint64
	}{
		{8, 200, 100, 44}, // wraps mod 256
		{8, 0, 0, 0},
		{8, 255, 1, 0},
		{16, 0xffff, 2, 1},
		{64, ^uint64(0), 1, 0},
	}
	for _, c := range cases {
		got := Add(FromUint64(c.w, c.a), FromUint64(c.w, c.b))
		if got.Uint64() != c.want {
			t.Errorf("Add(%d-bit, %d, %d) = %d, want %d", c.w, c.a, c.b, got.Uint64(), c.want)
		}
	}
}

func TestAddCarryAcrossLimbs(t *testing.T) {
	a := FromLimbs(128, []uint64{^uint64(0), 0})
	b := FromUint64(128, 1)
	got := Add(a, b)
	want := FromLimbs(128, []uint64{0, 1})
	if !got.Equal(want) {
		t.Errorf("carry not propagated: got %s", got.Hex())
	}
}

func TestSubBorrowAcrossLimbs(t *testing.T) {
	a := FromLimbs(128, []uint64{0, 1})
	b := FromUint64(128, 1)
	got := Sub(a, b)
	want := FromLimbs(128, []uint64{^uint64(0), 0})
	if !got.Equal(want) {
		t.Errorf("borrow not propagated: got %s", got.Hex())
	}
}

func TestMulSmall(t *testing.T) {
	cases := []struct {
		w          int
		a, b, want uint64
	}{
		{8, 7, 9, 63},
		{8, 16, 16, 0},   // 256 mod 256
		{8, 255, 255, 1}, // (-1)^2 mod 256
		{16, 300, 300, 90000 % 65536},
		{64, 1 << 32, 1 << 32, 0},
	}
	for _, c := range cases {
		got := Mul(FromUint64(c.w, c.a), FromUint64(c.w, c.b))
		if got.Uint64() != c.want {
			t.Errorf("Mul(%d-bit, %d, %d) = %d, want %d", c.w, c.a, c.b, got.Uint64(), c.want)
		}
	}
}

func TestMulWideMatchesShiftAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w := 65 + rng.Intn(200)
		a := Random(w, rng)
		b := Random(w, rng)
		// Reference: shift-and-add multiplication.
		want := New(w)
		for i := 0; i < w; i++ {
			if b.Bit(i) {
				want = Add(want, ShiftLeft(a, i))
			}
		}
		got := Mul(a, b)
		if !got.Equal(want) {
			t.Fatalf("width %d: Mul mismatch\n a=%s\n b=%s\n got=%s\nwant=%s",
				w, a.Hex(), b.Hex(), got.Hex(), want.Hex())
		}
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(8), New(9)
	ops := map[string]func(){
		"Add": func() { Add(a, b) },
		"Sub": func() { Sub(a, b) },
		"Mul": func() { Mul(a, b) },
		"Xor": func() { Xor(a, b) },
		"And": func() { And(a, b) },
		"Or":  func() { Or(a, b) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched widths did not panic", name)
				}
			}()
			op()
		}()
	}
}

func TestNotInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		v := Random(1+rng.Intn(190), rng)
		if !Not(Not(v)).Equal(v) {
			t.Fatalf("Not(Not(v)) != v for %s", v.Hex())
		}
		if And(v, Not(v)).OnesCount() != 0 {
			t.Fatalf("v & ~v != 0 for %s", v.Hex())
		}
		if Or(v, Not(v)).OnesCount() != v.Width() {
			t.Fatalf("v | ~v not all ones for %s", v.Hex())
		}
	}
}

func TestShifts(t *testing.T) {
	v := FromUint64(100, 1)
	v = ShiftLeft(v, 70)
	if !v.Bit(70) || v.OnesCount() != 1 {
		t.Fatalf("ShiftLeft(1, 70) = %s", v.Hex())
	}
	v = ShiftRight(v, 70)
	if !v.Bit(0) || v.OnesCount() != 1 {
		t.Fatalf("round-trip shift = %s", v.Hex())
	}
	if !ShiftLeft(v, 100).IsZero() {
		t.Error("shift past width should be zero")
	}
	if !ShiftRight(v, 100).IsZero() {
		t.Error("shift past width should be zero")
	}
}

func TestShiftLeftDropsHighBits(t *testing.T) {
	v := FromUint64(8, 0x81)
	got := ShiftLeft(v, 1)
	if got.Uint64() != 0x02 {
		t.Errorf("ShiftLeft(0x81, 1) in 8 bits = %#x, want 0x02", got.Uint64())
	}
}

// Property: Add is commutative and associative mod 2^w; Sub is its inverse.
func TestAddPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	rng := rand.New(rand.NewSource(11))
	gen := func() (Vector, Vector, Vector) {
		w := 1 + rng.Intn(180)
		return Random(w, rng), Random(w, rng), Random(w, rng)
	}
	prop := func(uint8) bool {
		a, b, c := gen()
		if !Add(a, b).Equal(Add(b, a)) {
			return false
		}
		if !Add(Add(a, b), c).Equal(Add(a, Add(b, c))) {
			return false
		}
		if !Sub(Add(a, b), b).Equal(a) {
			return false
		}
		return Sub(a, a).IsZero()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Mul distributes over Add mod 2^w.
func TestMulDistributesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	rng := rand.New(rand.NewSource(13))
	prop := func(uint8) bool {
		w := 1 + rng.Intn(150)
		a, b, c := Random(w, rng), Random(w, rng), Random(w, rng)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Xor is self-inverse and String round-trips.
func TestXorStringQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	rng := rand.New(rand.NewSource(17))
	prop := func(uint8) bool {
		w := 1 + rng.Intn(150)
		a, b := Random(w, rng), Random(w, rng)
		if !Xor(Xor(a, b), b).Equal(a) {
			return false
		}
		rt, err := FromString(a.String())
		return err == nil && rt.Equal(a)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromUint64(64, 5)
	c := v.Clone()
	c.SetBit(10, true)
	if v.Bit(10) {
		t.Error("Clone shares storage with original")
	}
}

func BenchmarkAdd256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := Random(256, rng), Random(256, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = Add(x, y)
	}
}

func BenchmarkMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := Random(256, rng), Random(256, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
}
