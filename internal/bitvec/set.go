package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

func popcount(w uint64) int { return bits.OnesCount64(w) }

// Set is a dense bit set over the universe {0, ..., n-1}. It is the fault-set
// representation used for Detection Matrix rows and the covering engine's
// tables.
//
// Unlike Vector, Set is a reference type with in-place mutating operations,
// because covering-table reduction performs many destructive updates on large
// sets.
type Set struct {
	n     int
	words []uint64
}

// NewSet returns an empty set over a universe of size n. It panics if n is
// negative.
func NewSet(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative universe size %d", n))
	}
	return &Set{n: n, words: make([]uint64, limbCount(n))}
}

// Universe returns the universe size the set was created with.
func (s *Set) Universe() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitvec: element %d out of range for universe %d", i, s.n))
	}
}

// Add inserts element i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes element i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += popcount(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill inserts every element of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	rem := s.n % wordBits
	if rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << rem) - 1
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	out := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

func (s *Set) checkSame(op string, o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitvec: %s universe mismatch %d vs %d", op, s.n, o.n))
	}
}

// Or adds every element of o to s (in place union).
func (s *Set) Or(o *Set) {
	s.checkSame("Or", o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// And removes every element of s not in o (in place intersection).
func (s *Set) And(o *Set) {
	s.checkSame("And", o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// AndNot removes every element of o from s (in place difference).
func (s *Set) AndNot(o *Set) {
	s.checkSame("AndNot", o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// SubsetOf reports whether every element of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.checkSame("SubsetOf", o)
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	s.checkSame("Intersects", o)
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionLen returns |s ∩ o| without allocating.
func (s *Set) IntersectionLen(o *Set) int {
	s.checkSame("IntersectionLen", o)
	n := 0
	for i := range s.words {
		n += popcount(s.words[i] & o.words[i])
	}
	return n
}

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// ForEachIn calls fn for every element of s ∩ o in ascending order, without
// materializing the intersection — the covering engine's "walk a row's
// still-uncovered columns" primitive (one AND per word, then bit scanning).
func (s *Set) ForEachIn(o *Set, fn func(i int)) {
	s.checkSame("ForEachIn", o)
	for wi, w := range s.words {
		w &= o.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elements returns the elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// First returns the smallest element, or -1 if the set is empty.
func (s *Set) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// FirstNotIn returns the smallest element of s \ o, or -1 if the difference
// is empty. It is First for a set difference, without materializing it —
// the covering engine's "find the forced row" primitive.
func (s *Set) FirstNotIn(o *Set) int {
	s.checkSame("FirstNotIn", o)
	for wi, w := range s.words {
		if d := w &^ o.words[wi]; d != 0 {
			return wi*wordBits + bits.TrailingZeros64(d)
		}
	}
	return -1
}

// Hex renders the set as a hexadecimal string over its universe — the same
// most-significant-digit-first encoding Vector.Hex uses (element i is bit i).
// It is the stable on-disk form of Detection Matrix rows (internal/store).
func (s *Set) Hex() string {
	return hexString(s.n, s.words)
}

// SetFromHex parses a set over a universe of size n from its Hex rendering.
// An element at or beyond n is an error, mirroring FromHex.
func SetFromHex(n int, str string) (*Set, error) {
	v, err := FromHex(n, str)
	if err != nil {
		return nil, err
	}
	return &Set{n: n, words: v.limbs}, nil
}

// Hash returns a 64-bit FNV-1a style hash of the set contents, used to group
// identical rows or columns before dominance checks.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		h ^= w
		h *= prime
	}
	return h
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
