package bitvec

import (
	"math/rand"
	"strings"
	"testing"
)

// Hex and FromHex are the persistence codec of internal/store: every
// random vector must survive a round trip at every awkward width.
func TestVectorHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{0, 1, 3, 4, 5, 63, 64, 65, 128, 130} {
		for trial := 0; trial < 20; trial++ {
			v := Random(width, rng)
			got, err := FromHex(width, v.Hex())
			if err != nil {
				t.Fatalf("width %d: %v", width, err)
			}
			if !got.Equal(v) {
				t.Errorf("width %d: round trip changed %s to %s", width, v.Hex(), got.Hex())
			}
		}
	}
}

func TestFromHexErrors(t *testing.T) {
	if _, err := FromHex(4, "zz"); err == nil {
		t.Error("invalid digit accepted")
	}
	// A set bit at or beyond the width must be an error, not a silent
	// truncation.
	if _, err := FromHex(4, "ff"); err == nil {
		t.Error("overflowing value accepted")
	}
	if _, err := FromHex(2, "4"); err == nil {
		t.Error("bit at index 2 accepted for width 2")
	}
	// Leading zero digits beyond the width are harmless.
	v, err := FromHex(4, "000f")
	if err != nil || v.OnesCount() != 4 {
		t.Errorf("leading zeros rejected: %v, %v", v, err)
	}
	// Uppercase digits parse.
	u, err := FromHex(8, "AB")
	if err != nil || u.Hex() != "ab" {
		t.Errorf("uppercase parse: got %q, %v", u.Hex(), err)
	}
}

func TestSetHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, 64, 65, 200} {
		for trial := 0; trial < 20; trial++ {
			s := NewSet(n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 1 {
					s.Add(i)
				}
			}
			got, err := SetFromHex(n, s.Hex())
			if err != nil {
				t.Fatalf("universe %d: %v", n, err)
			}
			if !got.Equal(s) {
				t.Errorf("universe %d: round trip changed the set", n)
			}
			// A rebuilt set must stay fully operational (word count
			// matches the universe).
			got.Or(s)
			if !got.Equal(s) {
				t.Errorf("universe %d: rebuilt set broken after Or", n)
			}
		}
	}
	if _, err := SetFromHex(4, "ff"); err == nil {
		t.Error("element beyond the universe accepted")
	}
}

// The empty string is the width-0 encoding, and the all-ones pattern pins
// the digit order (most significant first).
func TestHexConventions(t *testing.T) {
	if got := New(0).Hex(); got != "" {
		t.Errorf("width-0 hex = %q", got)
	}
	v := MustFromString("100110")
	if got := v.Hex(); got != "26" {
		t.Errorf("hex of 100110 = %q, want \"26\"", got)
	}
	s := NewSet(6)
	s.Add(1)
	s.Add(2)
	s.Add(5)
	if got := s.Hex(); got != "26" {
		t.Errorf("set hex = %q, want \"26\"", got)
	}
	if got := strings.ToLower(New(9).Hex()); got != "000" {
		t.Errorf("zero width-9 hex = %q, want \"000\"", got)
	}
}
