// Package ctxutil holds the one context helper shared by every
// long-running layer's cancellation checks.
package ctxutil

import "context"

// Err reports the context's error, tolerating a nil context (the zero
// value of every Options.Context field in this repository means "not
// cancellable").
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
