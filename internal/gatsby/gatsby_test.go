package gatsby

import (
	"errors"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// target returns c17 with its ATPG-detected fault list, the same F the
// covering flow would use.
func target(t *testing.T) (*netlist.Circuit, []fault.Fault) {
	t.Helper()
	c, err := netlist.ParseString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := fault.List(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := atpg.Run(c, all, atpg.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var faults []fault.Fault
	for _, fi := range res.DetectedFaults() {
		faults = append(faults, all[fi])
	}
	return c, faults
}

func TestFullCoverageOnC17(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	res, err := Run(c, faults, gen, Config{Seed: 1, Cycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1.0 {
		t.Errorf("coverage = %v (stalled=%v, %d triplets)", res.Coverage, res.Stalled, len(res.Triplets))
	}
	if len(res.Triplets) == 0 {
		t.Fatal("no triplets committed")
	}
	if res.TestLength <= 0 {
		t.Errorf("test length = %d", res.TestLength)
	}
	// Replay the committed triplets: they must detect everything claimed.
	sim, _ := fsim.New(c)
	var patterns []bitvec.Vector
	for _, tr := range res.Triplets {
		ts, err := tpg.Expand(gen, tr)
		if err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, ts...)
	}
	fres, err := sim.Run(faults, patterns, fsim.Options{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if fres.NumDetected != len(faults) {
		t.Errorf("replay detects %d of %d", fres.NumDetected, len(faults))
	}
}

func TestSimulationEffortTracked(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	res, err := Run(c, faults, gen, Config{Seed: 1, Cycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The GA pays one full population evaluation plus (generations-1)
	// rounds of (population-1) children per reseed, plus a commit
	// re-simulation; that simulation volume is its defining cost.
	minSims := len(res.Triplets) * (16 + 9*15 + 1)
	if res.TripletSims < minSims {
		t.Errorf("TripletSims = %d, expected at least %d", res.TripletSims, minSims)
	}
	if res.GateEvals == 0 {
		t.Error("GateEvals not tracked")
	}
}

func TestFeasibilityGate(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	_, err := Run(c, faults, gen, Config{Seed: 1, MaxFaults: 5})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestWidthMismatch(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs) + 3)
	if _, err := Run(c, faults, gen, Config{Seed: 1}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	a, err := Run(c, faults, gen, Config{Seed: 7, Cycles: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, faults, gen, Config{Seed: 7, Cycles: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Triplets) != len(b.Triplets) || a.TestLength != b.TestLength {
		t.Errorf("same seed, different results: %d/%d vs %d/%d",
			len(a.Triplets), a.TestLength, len(b.Triplets), b.TestLength)
	}
}

func TestEmptyFaultList(t *testing.T) {
	c, _ := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	res, err := Run(c, nil, gen, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1.0 || len(res.Triplets) != 0 {
		t.Errorf("empty fault list: %+v", res)
	}
}

func TestMaxReseedsBounds(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	res, err := Run(c, faults, gen, Config{Seed: 1, Cycles: 1, MaxReseeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triplets) > 2 {
		t.Errorf("%d triplets exceed MaxReseeds=2", len(res.Triplets))
	}
}
