package gatsby

import (
	"context"
	"errors"
	"testing"

	"repro/internal/tpg"
)

// A cancelled context must abort the search before the next fitness
// evaluation (the GA has no meaningful partial result to keep).
func TestRunCancelledContext(t *testing.T) {
	c, faults := target(t)
	gen, _ := tpg.NewAdder(len(c.Inputs))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(c, faults, gen, Config{Seed: 1, Cycles: 64, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
