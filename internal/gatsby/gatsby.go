// Package gatsby reimplements the behaviour of GATSBY, the genetic-
// algorithm-based reseeding tool the paper compares against (Chiusano,
// Prinetto, Wunderlich et al., DATE 2000).
//
// GATSBY computes reseedings incrementally: for each reseed it evolves a
// population of candidate triplets (δ, θ), grading every individual by
// fault simulation against the still-undetected faults, commits the fittest
// triplet, and repeats until the target coverage is reached. Because every
// fitness evaluation is a full fault simulation of a T-cycle test set, the
// approach is simulation-bound; the paper notes it "is not applicable to
// large circuits", which this implementation mirrors with an explicit
// feasibility gate (ErrTooLarge), reproducing the blank GATSBY entries for
// s13207 and s15850 in Table 1.
package gatsby

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/ctxutil"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

// ErrTooLarge reports that the circuit exceeds the configured simulation
// budget, as GATSBY's authors reported for the largest ISCAS'89 circuits.
var ErrTooLarge = errors.New("gatsby: circuit too large for simulation-based search")

// Config tunes the genetic search. The zero value selects defaults.
type Config struct {
	// Population is the number of individuals per generation (default 16).
	Population int
	// Generations per reseed (default 10).
	Generations int
	// MutationRate is the per-bit flip probability (default 0.02).
	MutationRate float64
	// Cycles is the evolution length T of every committed triplet
	// (default 2048; GATSBY trades long test sequences for storage).
	Cycles int
	// Seed drives all randomness.
	Seed int64
	// MaxReseeds bounds the solution size (default 512).
	MaxReseeds int
	// StallLimit stops the search after this many consecutive reseeds
	// without a new detection (default 20: the GA grinds hard faults out
	// one reseed at a time, so patience buys coverage).
	StallLimit int
	// MaxFaults is the feasibility gate: fault lists larger than this are
	// rejected with ErrTooLarge (default 25000, which admits every circuit
	// the paper ran GATSBY on and rejects s13207/s15850-class instances).
	MaxFaults int
	// Parallelism bounds the fault-simulation worker pool grading each
	// candidate's test set. 1 forces serial; 0 (and any negative value)
	// means one worker per available processor. The search itself is
	// sequential, so the result is bit-identical for any value.
	Parallelism int
	// Context, when non-nil, cancels the search: it is checked before every
	// fitness evaluation (each one a full test-set fault simulation). A
	// cancelled run returns the context's error — the GA has no meaningful
	// partial solution, matching the tool it models.
	Context context.Context
}

func (c Config) withDefaults() Config {
	if c.Population == 0 {
		c.Population = 16
	}
	if c.Generations == 0 {
		c.Generations = 10
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.02
	}
	if c.Cycles == 0 {
		c.Cycles = 2048
	}
	if c.MaxReseeds == 0 {
		c.MaxReseeds = 512
	}
	if c.StallLimit == 0 {
		c.StallLimit = 20
	}
	if c.MaxFaults == 0 {
		c.MaxFaults = 25000
	}
	return c
}

// Result is a GATSBY reseeding solution.
type Result struct {
	// Triplets are the committed reseedings with trimmed cycle counts.
	Triplets []tpg.Triplet
	// TestLength is the sum of trimmed triplet lengths.
	TestLength int
	// Detected[i] reports whether faults[i] was detected.
	Detected []bool
	// Coverage is detected / total over the target list.
	Coverage float64
	// TripletSims counts fitness evaluations (full test-set fault
	// simulations) — the effort measure the paper contrasts with the set
	// covering flow.
	TripletSims int
	// GateEvals accumulates fault-simulation work.
	GateEvals int64
	// Stalled reports whether the search ended by stalling rather than by
	// reaching full coverage.
	Stalled bool
}

type individual struct {
	delta   bitvec.Vector
	theta   bitvec.Vector
	fitness int
	length  int // trimmed length achieving that fitness
}

// Run evolves a reseeding solution for the target fault list on the given
// generator. The generator's width must equal the circuit's input count.
func Run(c *netlist.Circuit, faults []fault.Fault, gen tpg.Generator, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if gen.Width() != len(c.Inputs) {
		return nil, fmt.Errorf("gatsby: generator width %d != circuit inputs %d",
			gen.Width(), len(c.Inputs))
	}
	if len(faults) > cfg.MaxFaults {
		return nil, fmt.Errorf("%w: %d faults > budget %d", ErrTooLarge, len(faults), cfg.MaxFaults)
	}
	sim, err := fsim.New(c)
	if err != nil {
		return nil, fmt.Errorf("gatsby: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	width := gen.Width()

	res := &Result{Detected: make([]bool, len(faults))}
	remaining := make([]int, len(faults))
	for i := range faults {
		remaining[i] = i
	}

	evaluate := func(ind *individual) error {
		if err := ctxutil.Err(cfg.Context); err != nil {
			return err
		}
		ts, err := tpg.Expand(gen, tpg.Triplet{Delta: ind.delta, Theta: ind.theta, Cycles: cfg.Cycles})
		if err != nil {
			return err
		}
		sub := make([]fault.Fault, len(remaining))
		for i, fi := range remaining {
			sub[i] = faults[fi]
		}
		fres, err := sim.Run(sub, ts, fsim.Options{DropDetected: true, Parallelism: cfg.Parallelism, Context: cfg.Context})
		if err != nil {
			return err
		}
		res.TripletSims++
		res.GateEvals += fres.GateEvals
		ind.fitness = fres.NumDetected
		ind.length = 0
		for _, fp := range fres.FirstPattern {
			if fp+1 > ind.length {
				ind.length = fp + 1
			}
		}
		return nil
	}

	stalls := 0
	for len(remaining) > 0 && len(res.Triplets) < cfg.MaxReseeds && stalls < cfg.StallLimit {
		// Fresh population per reseed: random seeds plus mutations of the
		// previous winner would bias toward already-detected regions.
		pop := make([]*individual, cfg.Population)
		for i := range pop {
			pop[i] = &individual{delta: bitvec.Random(width, rng), theta: gen.RandomTheta(rng)}
			if err := evaluate(pop[i]); err != nil {
				return nil, fmt.Errorf("gatsby: %w", err)
			}
		}
		best := fittest(pop)
		for g := 1; g < cfg.Generations; g++ {
			next := []*individual{best} // elitism
			for len(next) < cfg.Population {
				a := tournament(pop, rng)
				b := tournament(pop, rng)
				child := crossover(a, b, rng)
				mutate(child, cfg.MutationRate, rng)
				child.theta = gen.RandomTheta(rng)
				if rng.Intn(2) == 0 {
					child.theta = a.theta.Clone()
				}
				if err := evaluate(child); err != nil {
					return nil, fmt.Errorf("gatsby: %w", err)
				}
				next = append(next, child)
			}
			pop = next
			if b := fittest(pop); b.fitness > best.fitness {
				best = b
			}
		}
		if best.fitness == 0 {
			stalls++
			continue
		}
		stalls = 0
		// Commit the winner: re-simulate to record exactly which faults it
		// detects, then drop them.
		ts, err := tpg.Expand(gen, tpg.Triplet{Delta: best.delta, Theta: best.theta, Cycles: best.length})
		if err != nil {
			return nil, fmt.Errorf("gatsby: %w", err)
		}
		sub := make([]fault.Fault, len(remaining))
		for i, fi := range remaining {
			sub[i] = faults[fi]
		}
		fres, err := sim.Run(sub, ts, fsim.Options{DropDetected: true, Parallelism: cfg.Parallelism, Context: cfg.Context})
		if err != nil {
			return nil, fmt.Errorf("gatsby: %w", err)
		}
		res.TripletSims++
		res.GateEvals += fres.GateEvals
		for si, d := range fres.Detected {
			if d {
				res.Detected[remaining[si]] = true
			}
		}
		n := 0
		for _, fi := range remaining {
			if !res.Detected[fi] {
				remaining[n] = fi
				n++
			}
		}
		remaining = remaining[:n]
		res.Triplets = append(res.Triplets, tpg.Triplet{
			Delta:  best.delta.Clone(),
			Theta:  best.theta.Clone(),
			Cycles: best.length,
		})
		res.TestLength += best.length
	}

	detected := 0
	for _, d := range res.Detected {
		if d {
			detected++
		}
	}
	if len(faults) > 0 {
		res.Coverage = float64(detected) / float64(len(faults))
	} else {
		res.Coverage = 1
	}
	res.Stalled = len(remaining) > 0
	return res, nil
}

func fittest(pop []*individual) *individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fitness > best.fitness {
			best = ind
		}
	}
	return best
}

// tournament picks the better of two random individuals.
func tournament(pop []*individual, rng *rand.Rand) *individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if a.fitness >= b.fitness {
		return a
	}
	return b
}

// crossover mixes the parents' state seeds word-wise (uniform crossover).
func crossover(a, b *individual, rng *rand.Rand) *individual {
	w := a.delta.Width()
	child := bitvec.New(w)
	for i := 0; i < w; i++ {
		var bit bool
		if rng.Intn(2) == 0 {
			bit = a.delta.Bit(i)
		} else {
			bit = b.delta.Bit(i)
		}
		child.SetBit(i, bit)
	}
	return &individual{delta: child}
}

// mutate flips each seed bit with the given probability.
func mutate(ind *individual, rate float64, rng *rand.Rand) {
	w := ind.delta.Width()
	for i := 0; i < w; i++ {
		if rng.Float64() < rate {
			ind.delta.SetBit(i, !ind.delta.Bit(i))
		}
	}
}
