// Package report renders experiment results as aligned text tables, CSV,
// and simple ASCII charts, matching the shape of the paper's Tables 1-2 and
// Figure 2.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := make([]string, len(t.Columns))
	head := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		head[i] = pad(c, widths[i])
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintf(&b, "%s\n%s\n", strings.Join(head, "  "), strings.Join(sep, "  "))
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			cells[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(&b, "%s\n", strings.TrimRight(strings.Join(cells, "  "), " "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting: cells are expected to be
// plain identifiers and numbers).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", strings.Join(t.Columns, ","))
	for _, row := range t.rows {
		fmt.Fprintf(&b, "%s\n", strings.Join(row, ","))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // infallible: strings.Builder writes never fail
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Point is one chart sample.
type Point struct {
	X, Y  float64
	Label string
}

// Chart renders an ASCII scatter of the points (Figure 2 style): X grows to
// the right, Y upward, each point marked with '*' and optionally labelled.
func Chart(w io.Writer, title, xLabel, yLabel string, points []Point) error {
	const width, height = 60, 16
	if len(points) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", title)
		return err
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX, maxX = minF(minX, p.X), maxF(maxX, p.X)
		minY, maxY = minF(minY, p.Y), maxF(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - y
		grid[row][x] = '*'
		for i, c := range []byte(p.Label) {
			cx := x + 1 + i
			if cx < width && grid[row][cx] == ' ' {
				grid[row][cx] = c
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s\n", yLabel)
	for _, line := range grid {
		fmt.Fprintf(&b, "  |%s\n", strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   %-10.4g%s%10.4g  (%s)\n", minX, strings.Repeat(" ", width-22), maxX, xLabel)
	_, err := io.WriteString(w, b.String())
	return err
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
