package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "A", "Longer", "C")
	tb.AddRow("1", "2", "3")
	tb.AddRow("wide-cell", "x")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Header and separator must align.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator misaligned:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Missing cell renders empty, extra cells dropped.
	tb2 := NewTable("", "A")
	tb2.AddRow("1", "dropped")
	if !strings.Contains(tb2.String(), "1") || strings.Contains(tb2.String(), "dropped") {
		t.Errorf("cell handling wrong:\n%s", tb2.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "A", "B")
	tb.AddRow("1", "2")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "A,B\n1,2\n" {
		t.Errorf("CSV = %q", b.String())
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	err := Chart(&b, "curve", "x", "y", []Point{
		{X: 0, Y: 10, Label: "10"},
		{X: 100, Y: 2, Label: "2"},
		{X: 50, Y: 5, Label: "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "*") != 3 {
		t.Errorf("expected 3 points:\n%s", out)
	}
	if !strings.Contains(out, "curve") || !strings.Contains(out, "(x)") {
		t.Errorf("labels missing:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, "t", "x", "y", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Error("empty chart should say so")
	}
	b.Reset()
	// Single point: ranges are degenerate but must not divide by zero.
	if err := Chart(&b, "t", "x", "y", []Point{{X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "*") != 1 {
		t.Error("single point lost")
	}
}
