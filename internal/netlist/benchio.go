package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Parse reads a circuit in the ISCAS ".bench" text format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G1)
//	G7  = DFF(G10)
//
// The returned circuit is finalized.
func Parse(name string, r io.Reader) (*Circuit, error) {
	c := New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseLine(c, line); err != nil {
			return nil, fmt.Errorf("netlist: %s line %d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %s: %w", name, err)
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseString is Parse over an in-memory netlist.
func ParseString(name, text string) (*Circuit, error) {
	return Parse(name, strings.NewReader(text))
}

func parseLine(c *Circuit, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT("):
		sig, err := insideParens(line[len("INPUT"):])
		if err != nil {
			return err
		}
		_, err = c.AddInput(sig)
		return err
	case strings.HasPrefix(upper, "OUTPUT("):
		sig, err := insideParens(line[len("OUTPUT"):])
		if err != nil {
			return err
		}
		return c.MarkOutput(sig)
	}
	// name = TYPE(args)
	eq := strings.Index(line, "=")
	if eq < 0 {
		return fmt.Errorf("unrecognized line %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return fmt.Errorf("malformed gate expression %q", rhs)
	}
	typeName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	t, ok := gateTypeByName[typeName]
	if !ok {
		return fmt.Errorf("unknown gate type %q", typeName)
	}
	argStr := rhs[open+1 : len(rhs)-1]
	var args []string
	if strings.TrimSpace(argStr) != "" {
		for _, a := range strings.Split(argStr, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return fmt.Errorf("empty fanin in %q", rhs)
			}
			args = append(args, a)
		}
	}
	_, err := c.AddGate(name, t, args...)
	return err
}

func insideParens(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("malformed declaration %q", s)
	}
	sig := strings.TrimSpace(s[1 : len(s)-1])
	if sig == "" {
		return "", fmt.Errorf("empty signal name in %q", s)
	}
	return sig, nil
}

// Write renders the circuit in .bench format. Gates are written in a
// deterministic order: inputs, outputs, then gates by ID.
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d DFFs, %d gates\n",
		len(c.Inputs), len(c.Outputs), len(c.DFFs), c.NumLogicGates())
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	ids := make([]int, 0, len(c.Gates))
	for _, g := range c.Gates {
		if g.Type != Input {
			ids = append(ids, g.ID)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		g := c.Gates[id]
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// Format renders the circuit as a .bench string.
func Format(c *Circuit) string {
	var b strings.Builder
	_ = Write(&b, c) // infallible: strings.Builder writes never fail
	return b.String()
}
