package netlist

import (
	"math/rand"
	"testing"
)

// TestFullScanSemanticEquivalence checks the invariant the whole reseeding
// flow rests on: one clock cycle of the sequential circuit equals one
// combinational evaluation of the full-scan view. For state S and input I,
// the scan view applied to (I, S) must produce the sequential outputs O and
// the next state S' on its real and pseudo outputs respectively.
func TestFullScanSemanticEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		c := randomSequential(t, rng)
		scan, err := c.FullScan()
		if err != nil {
			t.Fatal(err)
		}

		// Reference: evaluate the sequential circuit directly with a map.
		for rep := 0; rep < 5; rep++ {
			inputs := make(map[string]bool)
			for _, id := range c.Inputs {
				inputs[c.Gates[id].Name] = rng.Intn(2) == 1
			}
			state := make(map[string]bool)
			for _, id := range c.DFFs {
				state[c.Gates[id].Name] = rng.Intn(2) == 1
			}
			outs, nextState := stepSequential(c, inputs, state)

			// Scan view: same values through the pseudo inputs.
			vals := make(map[string]bool)
			for k, v := range inputs {
				vals[k] = v
			}
			for k, v := range state {
				vals[k] = v
			}
			scanOut := evalCombinational(scan, vals)

			// Real outputs come first, pseudo outputs (next state) after.
			for i, id := range c.Outputs {
				want := outs[c.Gates[id].Name]
				if scanOut[i] != want {
					t.Fatalf("trial %d rep %d: PO %s = %v, sequential %v",
						trial, rep, c.Gates[id].Name, scanOut[i], want)
				}
			}
			for i, id := range c.DFFs {
				want := nextState[c.Gates[id].Name]
				if scanOut[len(c.Outputs)+i] != want {
					t.Fatalf("trial %d rep %d: next state of %s = %v, sequential %v",
						trial, rep, c.Gates[id].Name, scanOut[len(c.Outputs)+i], want)
				}
			}
		}
	}
}

// stepSequential evaluates one cycle with plain map-based simulation.
func stepSequential(c *Circuit, inputs, state map[string]bool) (outs map[string]bool, next map[string]bool) {
	vals := make(map[int]bool)
	for _, id := range c.Inputs {
		vals[id] = inputs[c.Gates[id].Name]
	}
	for _, id := range c.DFFs {
		vals[id] = state[c.Gates[id].Name]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gates[id]
		if g.Type == Input || g.Type == DFF {
			continue
		}
		in := make([]uint64, len(g.Fanin))
		for k, f := range g.Fanin {
			if vals[f] {
				in[k] = 1
			}
		}
		vals[id] = Eval(g.Type, in)&1 == 1
	}
	outs = make(map[string]bool)
	for _, id := range c.Outputs {
		outs[c.Gates[id].Name] = vals[id]
	}
	next = make(map[string]bool)
	for _, id := range c.DFFs {
		next[c.Gates[id].Name] = vals[c.Gates[id].Fanin[0]]
	}
	return outs, next
}

func evalCombinational(c *Circuit, inputs map[string]bool) []bool {
	vals := make(map[int]bool)
	for _, id := range c.Inputs {
		vals[id] = inputs[c.Gates[id].Name]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gates[id]
		if g.Type == Input {
			continue
		}
		in := make([]uint64, len(g.Fanin))
		for k, f := range g.Fanin {
			if vals[f] {
				in[k] = 1
			}
		}
		vals[id] = Eval(g.Type, in)&1 == 1
	}
	out := make([]bool, len(c.Outputs))
	for i, id := range c.Outputs {
		out[i] = vals[id]
	}
	return out
}

// randomSequential builds a small random circuit with DFFs whose D inputs
// and outputs are wired like the benchmark generator does.
func randomSequential(t *testing.T, rng *rand.Rand) *Circuit {
	t.Helper()
	c := New("randseq")
	nIn, nFF, nGates := 3+rng.Intn(4), 2+rng.Intn(3), 10+rng.Intn(15)
	var signals []string
	for i := 0; i < nIn; i++ {
		name := "in" + itoa(i)
		if _, err := c.AddInput(name); err != nil {
			t.Fatal(err)
		}
		signals = append(signals, name)
	}
	for i := 0; i < nFF; i++ {
		signals = append(signals, "q"+itoa(i))
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not}
	for i := 0; i < nGates; i++ {
		tp := types[rng.Intn(len(types))]
		n := 2
		if tp == Not {
			n = 1
		}
		fanin := make([]string, n)
		for j := range fanin {
			fanin[j] = signals[rng.Intn(len(signals))]
		}
		name := "g" + itoa(i)
		if _, err := c.AddGate(name, tp, fanin...); err != nil {
			t.Fatal(err)
		}
		signals = append(signals, name)
	}
	for i := 0; i < nFF; i++ {
		d := signals[len(signals)-1-rng.Intn(5)]
		if _, err := c.AddGate("q"+itoa(i), DFF, d); err != nil {
			t.Fatal(err)
		}
	}
	// A couple of observable outputs.
	if err := c.MarkOutput(signals[len(signals)-1]); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput(signals[len(signals)-2]); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

// TestFormatParseRandomRoundTrip: the writer and parser are inverse on
// arbitrary generated circuits, including sequential ones.
func TestFormatParseRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		c := randomSequential(t, rng)
		text := Format(c)
		c2, err := ParseString("rt", text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if c2.NumLogicGates() != c.NumLogicGates() ||
			len(c2.Inputs) != len(c.Inputs) ||
			len(c2.Outputs) != len(c.Outputs) ||
			len(c2.DFFs) != len(c.DFFs) {
			t.Fatalf("trial %d: structure changed", trial)
		}
		// Stronger: same bench text when re-rendered (canonical order).
		if Format(c2) != text {
			// The gate IDs may differ (outputs declared up front), so
			// compare semantically: every gate by name with same type and
			// fanin names.
			for _, g := range c.Gates {
				g2, ok := c2.GateByName(g.Name)
				if !ok || g2.Type != g.Type || len(g2.Fanin) != len(g.Fanin) {
					t.Fatalf("trial %d: gate %s changed", trial, g.Name)
				}
				for k := range g.Fanin {
					if c2.Gates[g2.Fanin[k]].Name != c.Gates[g.Fanin[k]].Name {
						t.Fatalf("trial %d: gate %s fanin %d changed", trial, g.Name, k)
					}
				}
			}
		}
	}
}
