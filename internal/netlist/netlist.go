// Package netlist provides a gate-level circuit model in the style of the
// ISCAS'85/'89 benchmark netlists, with a text parser and writer for the
// classic ".bench" format, structural validation, levelization and
// connectivity analysis.
//
// A Circuit is a directed graph of gates. Primary inputs and D flip-flops
// are sources for the combinational logic; primary outputs and flip-flop
// data inputs are its sinks. FullScan converts a sequential circuit into the
// combinational test view used throughout the reseeding flow, exactly as the
// paper does for the ISCAS'89 circuits ("the full-scan version").
package netlist

import (
	"fmt"
	"sort"
)

// GateType identifies the logic function of a gate.
type GateType int

// Gate types. Input gates have no fanin; DFF gates have exactly one fanin
// (the D line) and act as sources for combinational levelization.
const (
	Input GateType = iota
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	DFF
	Const0
	Const1
)

var gateTypeNames = map[GateType]string{
	Input:  "INPUT",
	And:    "AND",
	Or:     "OR",
	Nand:   "NAND",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Not:    "NOT",
	Buf:    "BUFF",
	DFF:    "DFF",
	Const0: "CONST0",
	Const1: "CONST1",
}

var gateTypeByName = map[string]GateType{
	"AND": And, "OR": Or, "NAND": Nand, "NOR": Nor,
	"XOR": Xor, "XNOR": Xnor, "NOT": Not, "BUFF": Buf, "BUF": Buf,
	"DFF": DFF, "CONST0": Const0, "CONST1": Const1,
}

// String returns the canonical .bench name of the gate type.
func (t GateType) String() string {
	if s, ok := gateTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Not, Buf, DFF:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count for the type, or -1 for
// unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Not, Buf, DFF:
		return 1
	default:
		return -1
	}
}

// Gate is one node of the circuit graph. The output signal of the gate is
// identified with the gate itself; Fanin lists the IDs of the gates whose
// outputs feed this gate.
type Gate struct {
	ID     int
	Name   string
	Type   GateType
	Fanin  []int
	Fanout []int // computed by Finalize
	Level  int   // computed by Finalize; 0 for sources
}

// Circuit is a named gate-level netlist. Build one with New/AddGate/
// MarkOutput and call Finalize before using the analysis methods.
type Circuit struct {
	Name    string
	Gates   []*Gate
	Inputs  []int // primary input gate IDs, in declaration order
	Outputs []int // gate IDs whose output signals are primary outputs
	DFFs    []int // DFF gate IDs, in declaration order

	byName    map[string]int
	order     []int // topological order of combinational evaluation
	maxLevel  int
	finalized bool
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// NumGates returns the total number of gates, including inputs and DFFs.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumLogicGates returns the number of logic gates (everything that is not a
// primary input, constant, or DFF). This is the "gate count" reported for
// benchmark circuits.
func (c *Circuit) NumLogicGates() int {
	n := 0
	for _, g := range c.Gates {
		switch g.Type {
		case Input, DFF, Const0, Const1:
		default:
			n++
		}
	}
	return n
}

// GateByName returns the gate with the given signal name.
func (c *Circuit) GateByName(name string) (*Gate, bool) {
	id, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.Gates[id], true
}

// AddInput declares a primary input signal and returns its gate ID.
func (c *Circuit) AddInput(name string) (int, error) {
	return c.add(name, Input, nil)
}

// AddGate declares a gate computing the given function of the named fanin
// signals and returns its gate ID. Fanin signals may be declared later; the
// references are resolved by Finalize.
func (c *Circuit) AddGate(name string, t GateType, fanin ...string) (int, error) {
	if t == Input {
		return 0, fmt.Errorf("netlist: use AddInput for input %q", name)
	}
	return c.add(name, t, fanin)
}

// pendingRef is a placeholder fanin ID for a signal not yet declared.
type pendingRef struct {
	gate int // gate whose fanin slot needs patching
	slot int
	name string
}

var errRedeclared = fmt.Errorf("netlist: signal redeclared")

func (c *Circuit) add(name string, t GateType, fanin []string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("netlist: empty signal name")
	}
	if prev, ok := c.byName[name]; ok {
		if c.Gates[prev].Type != unresolved {
			return 0, fmt.Errorf("%w: %q", errRedeclared, name)
		}
		// The signal was referenced before declaration; fill it in.
		g := c.Gates[prev]
		g.Type = t
		g.Fanin = c.resolveFanin(fanin)
		c.registerKind(prev, t)
		c.finalized = false
		return prev, nil
	}
	// Resolve fanins first: resolveFanin may append placeholder gates, and
	// this gate's ID must come after them.
	fanins := c.resolveFanin(fanin)
	id := len(c.Gates)
	g := &Gate{ID: id, Name: name, Type: t, Fanin: fanins}
	c.Gates = append(c.Gates, g)
	c.byName[name] = id
	c.registerKind(id, t)
	c.finalized = false
	return id, nil
}

// registerKind records an input or DFF gate in the circuit-level index.
func (c *Circuit) registerKind(id int, t GateType) {
	switch t {
	case Input:
		c.Inputs = append(c.Inputs, id)
	case DFF:
		c.DFFs = append(c.DFFs, id)
	}
}

// unresolved marks a gate created as a forward reference; Finalize rejects
// circuits that still contain any.
const unresolved GateType = -1

func (c *Circuit) resolveFanin(names []string) []int {
	ids := make([]int, len(names))
	for i, n := range names {
		if id, ok := c.byName[n]; ok {
			ids[i] = id
			continue
		}
		id := len(c.Gates)
		c.Gates = append(c.Gates, &Gate{ID: id, Name: n, Type: unresolved})
		c.byName[n] = id
		ids[i] = id
	}
	return ids
}

// MarkOutput declares the named signal as a primary output.
func (c *Circuit) MarkOutput(name string) error {
	if id, ok := c.byName[name]; ok {
		c.Outputs = append(c.Outputs, id)
		return nil
	}
	// Forward reference: the driver will be declared later.
	id := len(c.Gates)
	c.Gates = append(c.Gates, &Gate{ID: id, Name: name, Type: unresolved})
	c.byName[name] = id
	c.Outputs = append(c.Outputs, id)
	c.finalized = false
	return nil
}

// Finalize validates the structure, computes fanouts, levels and the
// topological evaluation order. It must be called after construction and
// before any analysis or simulation.
func (c *Circuit) Finalize() error {
	for _, g := range c.Gates {
		if g.Type == unresolved {
			return fmt.Errorf("netlist: %s: signal %q referenced but never declared", c.Name, g.Name)
		}
		if n := len(g.Fanin); n < g.Type.MinFanin() || (g.Type.MaxFanin() >= 0 && n > g.Type.MaxFanin()) {
			return fmt.Errorf("netlist: %s: gate %q (%s) has %d fanins", c.Name, g.Name, g.Type, n)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("netlist: %s: gate %q has invalid fanin id %d", c.Name, g.Name, f)
			}
		}
		g.Fanout = g.Fanout[:0]
	}
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			c.Gates[f].Fanout = append(c.Gates[f].Fanout, g.ID)
		}
	}

	// Kahn levelization over the combinational graph. Inputs, constants and
	// DFF outputs are sources at level 0; DFF data inputs are sinks (the DFF
	// gate itself never appears "inside" combinational logic).
	indeg := make([]int, len(c.Gates))
	for _, g := range c.Gates {
		if g.Type == Input || g.Type == DFF || g.Type == Const0 || g.Type == Const1 {
			indeg[g.ID] = 0
			continue
		}
		indeg[g.ID] = len(g.Fanin)
	}
	queue := make([]int, 0, len(c.Gates))
	for _, g := range c.Gates {
		if indeg[g.ID] == 0 {
			g.Level = 0
			queue = append(queue, g.ID)
		}
	}
	c.order = c.order[:0]
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		c.order = append(c.order, id)
		g := c.Gates[id]
		if g.Level > c.maxLevel {
			c.maxLevel = g.Level
		}
		for _, fo := range g.Fanout {
			og := c.Gates[fo]
			if og.Type == DFF {
				continue // sequential edge; not part of combinational order
			}
			if l := g.Level + 1; l > og.Level {
				og.Level = l
			}
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	// DFFs were sources for ordering, but their D input must be computed, so
	// they sit after all combinational gates in evaluation semantics. Check
	// that everything combinational was ordered (i.e. no combinational loop).
	ordered := 0
	for _, g := range c.Gates {
		if g.Type != DFF {
			ordered++
		}
	}
	count := 0
	for _, id := range c.order {
		if c.Gates[id].Type != DFF {
			count++
		}
	}
	if count != ordered {
		return fmt.Errorf("netlist: %s: combinational loop detected (%d of %d gates levelized)", c.Name, count, ordered)
	}
	c.finalized = true
	return nil
}

// Finalized reports whether Finalize has run successfully since the last
// structural change.
func (c *Circuit) Finalized() bool { return c.finalized }

// TopoOrder returns gate IDs in combinational evaluation order: all sources
// first, then each gate after its fanins. DFF gates appear in the order as
// sources (their Q output is available at time 0).
func (c *Circuit) TopoOrder() []int {
	c.mustFinal("TopoOrder")
	out := make([]int, len(c.order))
	copy(out, c.order)
	return out
}

// MaxLevel returns the deepest combinational level.
func (c *Circuit) MaxLevel() int {
	c.mustFinal("MaxLevel")
	return c.maxLevel
}

func (c *Circuit) mustFinal(op string) {
	if !c.finalized {
		panic(fmt.Sprintf("netlist: %s called before Finalize on %q", op, c.Name))
	}
}

// IsCombinational reports whether the circuit contains no DFFs.
func (c *Circuit) IsCombinational() bool { return len(c.DFFs) == 0 }

// FanoutCone returns the set of gate IDs reachable from the given gate
// through combinational edges (not crossing into DFFs), including the gate
// itself. It is the region a fault effect at that gate can reach.
func (c *Circuit) FanoutCone(id int) []int {
	c.mustFinal("FanoutCone")
	seen := make(map[int]bool)
	stack := []int{id}
	var cone []int
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[g] {
			continue
		}
		seen[g] = true
		cone = append(cone, g)
		for _, fo := range c.Gates[g].Fanout {
			if c.Gates[fo].Type == DFF {
				continue
			}
			if !seen[fo] {
				stack = append(stack, fo)
			}
		}
	}
	sort.Ints(cone)
	return cone
}

// Stats summarizes circuit structure.
type Stats struct {
	Name       string
	Inputs     int
	Outputs    int
	DFFs       int
	LogicGates int
	MaxLevel   int
	ByType     map[GateType]int
}

// Stats computes structural statistics. The circuit must be finalized.
func (c *Circuit) Stats() Stats {
	c.mustFinal("Stats")
	s := Stats{
		Name:    c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		DFFs:    len(c.DFFs),
		ByType:  make(map[GateType]int),
	}
	for _, g := range c.Gates {
		s.ByType[g.Type]++
	}
	s.LogicGates = c.NumLogicGates()
	s.MaxLevel = c.maxLevel
	return s
}

// FullScan returns the combinational test view of a sequential circuit:
// every DFF is removed, its Q output becomes a pseudo primary input and its
// D input a pseudo primary output. Pseudo inputs/outputs are appended after
// the real ones, in DFF declaration order, so pattern bit positions are
// stable. For a combinational circuit it returns a finalized copy.
func (c *Circuit) FullScan() (*Circuit, error) {
	out := New(c.Name + "_scan")
	// Real primary inputs first, preserving order.
	for _, id := range c.Inputs {
		if _, err := out.AddInput(c.Gates[id].Name); err != nil {
			return nil, err
		}
	}
	// Pseudo primary inputs: one per DFF, carrying the DFF's signal name so
	// that fanin references resolve to the scan input.
	for _, id := range c.DFFs {
		if _, err := out.AddInput(c.Gates[id].Name); err != nil {
			return nil, err
		}
	}
	for _, g := range c.Gates {
		switch g.Type {
		case Input, DFF:
			continue
		}
		fanin := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = c.Gates[f].Name
		}
		if _, err := out.AddGate(g.Name, g.Type, fanin...); err != nil {
			return nil, err
		}
	}
	for _, id := range c.Outputs {
		if err := out.MarkOutput(c.Gates[id].Name); err != nil {
			return nil, err
		}
	}
	// Pseudo primary outputs: the D input signals of each DFF.
	for _, id := range c.DFFs {
		d := c.Gates[c.Gates[id].Fanin[0]].Name
		if err := out.MarkOutput(d); err != nil {
			return nil, err
		}
	}
	if err := out.Finalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy of the circuit in the same finalization state.
func (c *Circuit) Clone() *Circuit {
	out := New(c.Name)
	out.Gates = make([]*Gate, len(c.Gates))
	for i, g := range c.Gates {
		ng := *g
		ng.Fanin = append([]int(nil), g.Fanin...)
		ng.Fanout = append([]int(nil), g.Fanout...)
		out.Gates[i] = &ng
		out.byName[g.Name] = i
	}
	out.Inputs = append([]int(nil), c.Inputs...)
	out.Outputs = append([]int(nil), c.Outputs...)
	out.DFFs = append([]int(nil), c.DFFs...)
	out.order = append([]int(nil), c.order...)
	out.maxLevel = c.maxLevel
	out.finalized = c.finalized
	return out
}

// Eval computes the boolean function of a gate type over fanin values. It is
// the single source of truth for gate semantics, shared by the logic and
// fault simulators (which apply it bitwise over 64-pattern words).
func Eval(t GateType, in []uint64) uint64 {
	switch t {
	case And, Nand:
		v := ^uint64(0)
		for _, x := range in {
			v &= x
		}
		if t == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, x := range in {
			v |= x
		}
		if t == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, x := range in {
			v ^= x
		}
		if t == Xnor {
			v = ^v
		}
		return v
	case Not:
		return ^in[0]
	case Buf, DFF:
		return in[0]
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	default:
		panic(fmt.Sprintf("netlist: Eval on %v", t))
	}
}
