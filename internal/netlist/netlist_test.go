package netlist

import (
	"strings"
	"testing"
)

// c17, the smallest ISCAS'85 circuit, is public knowledge and small enough
// to embed; it exercises NAND-only logic with reconvergent fanout.
const c17Bench = `
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func parseC17(t *testing.T) *Circuit {
	t.Helper()
	c, err := ParseString("c17", c17Bench)
	if err != nil {
		t.Fatalf("parse c17: %v", err)
	}
	return c
}

func TestParseC17(t *testing.T) {
	c := parseC17(t)
	if got := len(c.Inputs); got != 5 {
		t.Errorf("inputs = %d, want 5", got)
	}
	if got := len(c.Outputs); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if got := c.NumLogicGates(); got != 6 {
		t.Errorf("logic gates = %d, want 6", got)
	}
	g, ok := c.GateByName("G16")
	if !ok {
		t.Fatal("G16 not found")
	}
	if g.Type != Nand || len(g.Fanin) != 2 {
		t.Errorf("G16 = %v with %d fanins", g.Type, len(g.Fanin))
	}
	if len(g.Fanout) != 2 {
		t.Errorf("G16 fanout = %d, want 2 (G22, G23)", len(g.Fanout))
	}
}

func TestLevels(t *testing.T) {
	c := parseC17(t)
	wantLevels := map[string]int{
		"G1": 0, "G3": 0, "G10": 1, "G11": 1, "G16": 2, "G22": 3, "G23": 3,
	}
	for name, want := range wantLevels {
		g, _ := c.GateByName(name)
		if g.Level != want {
			t.Errorf("level(%s) = %d, want %d", name, g.Level, want)
		}
	}
	if c.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d, want 3", c.MaxLevel())
	}
}

func TestTopoOrderRespectsFanin(t *testing.T) {
	c := parseC17(t)
	pos := make(map[int]int)
	for i, id := range c.TopoOrder() {
		pos[id] = i
	}
	if len(pos) != c.NumGates() {
		t.Fatalf("topo order covers %d of %d gates", len(pos), c.NumGates())
	}
	for _, g := range c.Gates {
		if g.Type == DFF {
			continue
		}
		for _, f := range g.Fanin {
			if pos[f] >= pos[g.ID] {
				t.Errorf("gate %s before its fanin %s", g.Name, c.Gates[f].Name)
			}
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := parseC17(t)
	text := Format(c)
	c2, err := ParseString("c17rt", text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if c2.NumLogicGates() != c.NumLogicGates() ||
		len(c2.Inputs) != len(c.Inputs) ||
		len(c2.Outputs) != len(c.Outputs) {
		t.Errorf("round trip changed structure:\n%s", text)
	}
}

func TestForwardReferences(t *testing.T) {
	// Output and fanin named before declaration.
	src := `
OUTPUT(z)
z = AND(a, b)
INPUT(a)
INPUT(b)
`
	c, err := ParseString("fwd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.NumLogicGates() != 1 || len(c.Inputs) != 2 {
		t.Error("forward references mishandled")
	}
}

func TestUndeclaredSignal(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
z = AND(a, ghost)
`
	if _, err := ParseString("bad", src); err == nil {
		t.Fatal("expected error for undeclared signal")
	} else if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error should name the missing signal: %v", err)
	}
}

func TestRedeclaredSignal(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
z = AND(a, b)
z = OR(a, b)
`
	if _, err := ParseString("bad", src); err == nil {
		t.Fatal("expected error for redeclared signal")
	}
}

func TestBadFaninCount(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
z = NOT(a, a)
`
	if _, err := ParseString("bad", src); err == nil {
		t.Fatal("expected error for NOT with 2 fanins")
	}
	src2 := `
INPUT(a)
OUTPUT(z)
z = AND(a)
`
	if _, err := ParseString("bad2", src2); err == nil {
		t.Fatal("expected error for AND with 1 fanin")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = OR(a, x)
`
	if _, err := ParseString("loop", src); err == nil {
		t.Fatal("expected combinational loop error")
	} else if !strings.Contains(err.Error(), "loop") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDFFBreaksLoop(t *testing.T) {
	// The same loop through a DFF is legal sequential logic.
	src := `
INPUT(a)
OUTPUT(x)
x = AND(a, q)
q = DFF(x)
`
	c, err := ParseString("seqloop", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(c.DFFs) != 1 {
		t.Errorf("DFFs = %d, want 1", len(c.DFFs))
	}
	if c.IsCombinational() {
		t.Error("circuit with DFF reported combinational")
	}
}

func TestFullScan(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n1 = AND(a, q1)
n2 = XOR(n1, b)
z  = OR(n2, q2)
q1 = DFF(n2)
q2 = DFF(z)
`
	c, err := ParseString("seq", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := c.FullScan()
	if err != nil {
		t.Fatalf("FullScan: %v", err)
	}
	if !s.IsCombinational() {
		t.Fatal("scan view still has DFFs")
	}
	// inputs: a, b + pseudo q1, q2
	if got := len(s.Inputs); got != 4 {
		t.Errorf("scan inputs = %d, want 4", got)
	}
	// outputs: z + pseudo (n2, z)
	if got := len(s.Outputs); got != 3 {
		t.Errorf("scan outputs = %d, want 3", got)
	}
	// q1 must now be an Input gate.
	g, ok := s.GateByName("q1")
	if !ok || g.Type != Input {
		t.Errorf("q1 in scan view = %v", g)
	}
	// Pseudo input order must follow DFF declaration order (q1 then q2).
	if s.Gates[s.Inputs[2]].Name != "q1" || s.Gates[s.Inputs[3]].Name != "q2" {
		t.Error("pseudo input order not stable")
	}
}

func TestFullScanOfCombinationalIsCopy(t *testing.T) {
	c := parseC17(t)
	s, err := c.FullScan()
	if err != nil {
		t.Fatalf("FullScan: %v", err)
	}
	if s.NumLogicGates() != c.NumLogicGates() || len(s.Inputs) != len(c.Inputs) {
		t.Error("scan view of combinational circuit should match original")
	}
}

func TestFanoutCone(t *testing.T) {
	c := parseC17(t)
	g11, _ := c.GateByName("G11")
	cone := c.FanoutCone(g11.ID)
	want := map[string]bool{"G11": true, "G16": true, "G19": true, "G22": true, "G23": true}
	if len(cone) != len(want) {
		t.Fatalf("cone size = %d, want %d", len(cone), len(want))
	}
	for _, id := range cone {
		if !want[c.Gates[id].Name] {
			t.Errorf("unexpected cone member %s", c.Gates[id].Name)
		}
	}
}

func TestStats(t *testing.T) {
	c := parseC17(t)
	s := c.Stats()
	if s.Inputs != 5 || s.Outputs != 2 || s.LogicGates != 6 || s.DFFs != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Nand] != 6 {
		t.Errorf("NAND count = %d, want 6", s.ByType[Nand])
	}
}

func TestClone(t *testing.T) {
	c := parseC17(t)
	cl := c.Clone()
	cl.Gates[5].Name = "mutated"
	if c.Gates[5].Name == "mutated" {
		t.Error("Clone shares gate storage")
	}
	if !cl.Finalized() {
		t.Error("clone should preserve finalization")
	}
}

func TestEvalTruthTables(t *testing.T) {
	// Exhaustive 2-input truth tables packed into the low 4 bits:
	// input a = 0101, input b = 0011 (bit i = pattern i).
	a, b := uint64(0b0101), uint64(0b0011)
	mask := uint64(0xf)
	cases := []struct {
		t    GateType
		want uint64
	}{
		{And, 0b0001},
		{Or, 0b0111},
		{Nand, 0b1110},
		{Nor, 0b1000},
		{Xor, 0b0110},
		{Xnor, 0b1001},
	}
	for _, cse := range cases {
		got := Eval(cse.t, []uint64{a, b}) & mask
		if got != cse.want {
			t.Errorf("Eval(%v) = %04b, want %04b", cse.t, got, cse.want)
		}
	}
	if Eval(Not, []uint64{a})&mask != 0b1010 {
		t.Error("NOT truth table wrong")
	}
	if Eval(Buf, []uint64{a}) != a {
		t.Error("BUF should pass through")
	}
	if Eval(Const0, nil) != 0 || Eval(Const1, nil) != ^uint64(0) {
		t.Error("constants wrong")
	}
}

func TestEvalWideGates(t *testing.T) {
	in := []uint64{0b1111, 0b1110, 0b1100}
	if got := Eval(And, in) & 0xf; got != 0b1100&0b1110&0b1111 {
		t.Errorf("3-input AND = %04b", got)
	}
	if got := Eval(Xor, in) & 0xf; got != 0b1111^0b1110^0b1100 {
		t.Errorf("3-input XOR = %04b", got)
	}
}
