package netlist

import (
	"strings"
	"testing"
)

// FuzzParseBench drives the .bench reader with arbitrary text. The
// properties under test:
//
//  1. Parse never panics and never returns a non-finalized circuit
//     without an error — whatever the input;
//  2. accepted circuits round-trip: Format is itself parseable and
//     preserves the structural counts, and a second round trip is a
//     fixed point (Format ∘ Parse is idempotent).
func FuzzParseBench(f *testing.F) {
	f.Add("INPUT(G0)\nOUTPUT(G1)\nG1 = NOT(G0)\n")
	f.Add("# c17-ish\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nn1 = NAND(a, b)\nz = NAND(n1, b)\n")
	f.Add("INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n")
	f.Add("INPUT(x)\nOUTPUT(y)\ny = BUF(x)\n# trailing comment")
	f.Add("G0 = AND(G0)\n")        // self-loop
	f.Add("OUTPUT(missing)\n")     // undeclared signal
	f.Add("G1 = NAND(G2\n")        // unbalanced parens
	f.Add("INPUT(a)\nINPUT(a)\n")  // duplicate declaration
	f.Add(strings.Repeat("#", 64)) // comment-only

	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString("fuzz", src)
		if err != nil {
			return // rejected input; only the absence of panics is asserted
		}
		if !c.Finalized() {
			t.Fatal("Parse returned a non-finalized circuit without error")
		}
		text := Format(c)
		// Same name on the re-parse: Format embeds it in the header comment.
		c2, err := ParseString("fuzz", text)
		if err != nil {
			t.Fatalf("Format produced unparseable output: %v\n%s", err, text)
		}
		if c2.NumGates() != c.NumGates() || len(c2.Inputs) != len(c.Inputs) ||
			len(c2.Outputs) != len(c.Outputs) || len(c2.DFFs) != len(c.DFFs) {
			t.Fatalf("round trip changed structure: gates %d→%d inputs %d→%d outputs %d→%d dffs %d→%d",
				c.NumGates(), c2.NumGates(), len(c.Inputs), len(c2.Inputs),
				len(c.Outputs), len(c2.Outputs), len(c.DFFs), len(c2.DFFs))
		}
		if again := Format(c2); again != text {
			t.Fatalf("Format not a fixed point after one round trip:\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}
