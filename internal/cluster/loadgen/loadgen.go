// Package loadgen drives a reseedd replica or reseedgw gateway with a
// deterministic solve workload and reports latency percentiles — the
// measurement half of BENCH_cluster.json. It lives outside the cluster
// package proper because measuring wall-clock latency is inherently
// non-deterministic: the workload (circuits, seeds, request order) is
// reproducible, the recorded milliseconds are environment.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

// Schema identifies the BENCH_cluster.json format.
const Schema = "reseedcluster-bench/v1"

// Options configures one load run. Zero values get the defaults that
// produce the committed BENCH_cluster.json.
type Options struct {
	// Target is the base URL requests go to (a gateway or a single
	// replica). Required.
	Target string
	// Circuits are the built-in circuits cycled through (default: a small
	// trio sized for CI).
	Circuits []string
	// SeedsPerCircuit varies the Detection Matrix seed per circuit, so
	// the key space is Circuits × Seeds (default 2).
	SeedsPerCircuit int
	// WarmRepeats is how many times the warm phase replays the full key
	// set (default 3).
	WarmRepeats int
	// Concurrency is the client worker count (default 4).
	Concurrency int
	// Cycles is the per-request evolution length (default 32, sized for
	// CI).
	Cycles int
	// SLOWarmP99Ms is the warm-phase p99 threshold the report's pass flag
	// checks (default 5000 — generous on purpose: the committed file
	// tracks the trajectory, CI only asserts the run completed clean).
	SLOWarmP99Ms float64
	// Client overrides the HTTP client (nil: 60s timeout).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if len(o.Circuits) == 0 {
		o.Circuits = []string{"c432", "s420", "s820"}
	}
	if o.SeedsPerCircuit <= 0 {
		o.SeedsPerCircuit = 2
	}
	if o.WarmRepeats <= 0 {
		o.WarmRepeats = 3
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Cycles <= 0 {
		o.Cycles = 32
	}
	if o.SLOWarmP99Ms <= 0 {
		o.SLOWarmP99Ms = 5000
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 60 * time.Second}
	}
	return o
}

// Phase is one measured request wave. The count fields are deterministic
// given the workload; the *_ms fields are environment and are stripped
// before CI comparison.
type Phase struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Report is the BENCH_cluster.json document.
type Report struct {
	Schema          string   `json:"schema"`
	GeneratedAt     string   `json:"generated_at"`
	Circuits        []string `json:"circuits"`
	SeedsPerCircuit int      `json:"seeds_per_circuit"`
	WarmRepeats     int      `json:"warm_repeats"`
	Concurrency     int      `json:"concurrency"`
	Cycles          int      `json:"cycles"`
	SLOWarmP99Ms    float64  `json:"slo_warm_p99_ms"`
	SLOPass         bool     `json:"slo_pass"`
	Phases          []Phase  `json:"phases"`
}

// requests builds the deterministic key set: Circuits × Seeds, in order.
func (o Options) requests() []engine.Request {
	var out []engine.Request
	for _, c := range o.Circuits {
		for s := 1; s <= o.SeedsPerCircuit; s++ {
			out = append(out, engine.Request{
				Circuit:     c,
				TPG:         "adder",
				Cycles:      o.Cycles,
				Seed:        int64(s),
				Parallelism: 1,
			})
		}
	}
	return out
}

// Run drives the workload: one cold wave (every key once — the ATPG
// builds) and WarmRepeats warm waves (the same keys again — cache and
// store hits). The error is non-nil only for an unusable target; request
// failures are counted per phase instead.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	keys := opts.requests()
	rep := &Report{
		Schema:          Schema,
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		Circuits:        opts.Circuits,
		SeedsPerCircuit: opts.SeedsPerCircuit,
		WarmRepeats:     opts.WarmRepeats,
		Concurrency:     opts.Concurrency,
		Cycles:          opts.Cycles,
		SLOWarmP99Ms:    opts.SLOWarmP99Ms,
	}

	cold, err := wave(ctx, opts, "cold", keys)
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, cold)

	var warmKeys []engine.Request
	for i := 0; i < opts.WarmRepeats; i++ {
		warmKeys = append(warmKeys, keys...)
	}
	warm, err := wave(ctx, opts, "warm", warmKeys)
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, warm)

	rep.SLOPass = warm.Errors == 0 && cold.Errors == 0 && warm.P99Ms <= opts.SLOWarmP99Ms
	return rep, nil
}

// wave issues the requests over a worker pool and aggregates latencies.
func wave(ctx context.Context, opts Options, name string, reqs []engine.Request) (Phase, error) {
	type sample struct {
		ms  float64
		err bool
	}
	samples := make([]sample, len(reqs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				err := solveOnce(ctx, opts, reqs[i])
				samples[i] = sample{ms: float64(time.Since(start)) / float64(time.Millisecond), err: err != nil}
			}
		}()
	}
	for i := range reqs {
		select {
		case next <- i:
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return Phase{}, ctx.Err()
		}
	}
	close(next)
	wg.Wait()

	ph := Phase{Name: name, Requests: len(reqs)}
	var lat []float64
	for _, s := range samples {
		if s.err {
			ph.Errors++
			continue
		}
		lat = append(lat, s.ms)
	}
	sort.Float64s(lat)
	ph.P50Ms = percentile(lat, 0.50)
	ph.P90Ms = percentile(lat, 0.90)
	ph.P99Ms = percentile(lat, 0.99)
	if len(lat) > 0 {
		ph.MaxMs = lat[len(lat)-1]
	}
	return ph, nil
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// solveOnce posts one request and drains the response; any non-200 is a
// counted failure.
func solveOnce(ctx context.Context, opts Options, req engine.Request) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.Target+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := opts.Client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: %s: %s", req.Circuit, resp.Status)
	}
	return nil
}
