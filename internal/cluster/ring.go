// Package cluster turns N reseedd replicas into one service: a
// consistent-hash ring and request gateway that keep each replica warm
// for its shard of the circuit universe (internal/engine.RouteKey), and a
// distributed branch-and-bound fabric that leases the exact solver's
// top-level subtrees (internal/setcover.ExactPlan) across replicas with
// periodic incumbent exchange.
//
// Everything here is deterministic given its inputs: ring placement is a
// pure hash, subtree leases replay bit-identically, and the coordinator's
// merge replicates the in-process incumbent rule — so a distributed solve
// that completes returns exactly the single-process answer, and a solve
// that loses peers degrades to the anytime best-so-far, never to a wrong
// answer.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodesPerReplica is the number of ring points each replica owns. 128
// keeps the key distribution within a few percent of uniform for small
// clusters while the ring stays tiny (N×128 points).
const vnodesPerReplica = 128

// Ring is a consistent-hash ring over replica names (base URLs). Create
// it with NewRing; a Ring is immutable and safe for concurrent use —
// membership changes build a new Ring, and because placement is
// per-point, adding or removing one replica moves only ~1/N of the keys.
type Ring struct {
	replicas []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256,
// platform independent and stable across releases (placement is part of
// the cluster's warm-cache behavior, not an implementation detail).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given replicas. Order does not matter
// and duplicates are dropped: two gateways configured with the same set
// in any order agree on every placement.
func NewRing(replicas []string) *Ring {
	seen := make(map[string]bool, len(replicas))
	var uniq []string
	for _, rep := range replicas {
		if rep != "" && !seen[rep] {
			seen[rep] = true
			uniq = append(uniq, rep)
		}
	}
	sort.Strings(uniq)
	r := &Ring{replicas: uniq}
	for i, rep := range uniq {
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", rep, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Replicas returns the ring members, sorted.
func (r *Ring) Replicas() []string {
	return append([]string(nil), r.replicas...)
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.replicas) }

// Lookup returns the replica owning key — the primary the gateway sends
// the request to, and the shard whose artifact caches stay warm for it.
// It is "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	pref := r.Preference(key, 1)
	if len(pref) == 0 {
		return ""
	}
	return pref[0]
}

// Preference returns up to n distinct replicas for key in failover
// order: the primary first, then the next distinct owners clockwise
// around the ring. A gateway retries a failed request down this list, so
// a key's fallback targets are as stable as its primary.
func (r *Ring) Preference(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make([]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.replica] {
			taken[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}
