package cluster_test

// Cross-process trace stitching over real HTTP: the gateway, the routed
// replica and the distributed subtree workers record spans under one
// W3C trace ID, and the gateway's GET /v1/traces/{id} assembles them
// into a single cross-process view.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/setcover"
	"repro/internal/setcover/corpus"
)

// newGatewayOver fronts the given replica URLs with a traced gateway.
func newGatewayOver(t *testing.T, replicas ...string) *httptest.Server {
	t.Helper()
	gw := cluster.NewGateway(cluster.NewRing(replicas), nil, nil)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// processes collects the distinct span process labels of a trace.
func processes(td obs.TraceData) map[string]bool {
	out := make(map[string]bool)
	for _, sp := range td.Spans {
		if sp.Process != "" {
			out[sp.Process] = true
		}
	}
	return out
}

// fetchTrace pulls one merged trace from a gateway (or replica) by ID.
func fetchTrace(t *testing.T, base, id string) obs.TraceData {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s: %s", id, resp.Status)
	}
	var td obs.TraceData
	mustDecode(t, resp, &td)
	return td
}

// A gateway-routed solve yields one stitched trace spanning both
// processes: the gateway's hop spans and the replica's request + solve
// spans share the trace ID minted at the gateway, and the gateway's
// trace endpoint serves the merged view. Pinned by the observability
// acceptance criteria.
func TestGatewayStitchedTraceTwoProcesses(t *testing.T) {
	repTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Advertise: self, ProcessName: "replica-a"}
	})
	gwTS := newGatewayOver(t, repTS.URL)

	body := mustJSON(t, engine.Request{Circuit: "s420", TPG: "adder", Cycles: 48, Seed: 2})
	resp := mustPost(t, gwTS.URL+"/v1/solve", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve via gateway: %s", resp.Status)
	}
	tid, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("gateway response Traceparent %q does not parse", resp.Header.Get("Traceparent"))
	}
	var er engine.Response
	mustDecode(t, resp, &er)
	if er.Timing == nil || er.Timing.TraceID != tid {
		t.Fatalf("replica Timing trace %v != gateway trace %s", er.Timing, tid)
	}

	td := fetchTrace(t, gwTS.URL, tid)
	procs := processes(td)
	if !procs["reseedgw"] || !procs["replica-a"] {
		t.Fatalf("stitched trace processes %v, want reseedgw and replica-a", procs)
	}

	// The replica's request span must parent to the gateway's proxy span,
	// so the tree is connected across the process boundary.
	byID := make(map[string]obs.SpanData, len(td.Spans))
	var proxy, request obs.SpanData
	for _, sp := range td.Spans {
		byID[sp.SpanID] = sp
		switch sp.Name {
		case "proxy":
			proxy = sp
		case "/v1/solve":
			request = sp
		}
	}
	if proxy.SpanID == "" || request.SpanID == "" {
		t.Fatalf("missing proxy/request spans in stitched trace: %v", td.Spans)
	}
	if request.Parent != proxy.SpanID {
		t.Errorf("replica request span parents to %q, want the gateway proxy span %q",
			request.Parent, proxy.SpanID)
	}
	if parent, ok := byID[proxy.Parent]; !ok || parent.Process != "reseedgw" {
		t.Errorf("proxy span does not hang off the gateway root (parent %q)", proxy.Parent)
	}
}

// A leased subtree ships its spans back on the wire: a direct
// /v1/dist/subtree call with a traceparent returns worker spans stamped
// with the worker's process name and parented to the coordinator's
// lease position. This pins the wire half of the three-process stitch
// deterministically (no lease race).
func TestSubtreeLeaseShipsSpans(t *testing.T) {
	repTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Advertise: self, ProcessName: "replica-b"}
	})
	inst, err := corpus.Load("medium-1")
	if err != nil {
		t.Fatal(err)
	}
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	body := mustJSON(t, cluster.SubtreeRequest{
		SolveID:     "trace-test",
		Problem:     cluster.EncodeProblem(inst.Problem, inst.Weights()),
		Opts:        cluster.EncodeOptions(setcover.ExactOptions{Parallelism: 1}),
		Branch:      0,
		Traceparent: parent,
	})
	resp := mustPost(t, repTS.URL+"/v1/dist/subtree", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subtree lease: %s", resp.Status)
	}
	var sr cluster.SubtreeResponse
	mustDecode(t, resp, &sr)
	if len(sr.Spans) == 0 {
		t.Fatal("lease response shipped no spans")
	}
	var subtree obs.SpanData
	for _, sp := range sr.Spans {
		if sp.Name == "subtree" {
			subtree = sp
		}
	}
	if subtree.SpanID == "" {
		t.Fatalf("no subtree span in shipped spans: %v", sr.Spans)
	}
	if subtree.Process != "replica-b" {
		t.Errorf("shipped span process %q, want replica-b", subtree.Process)
	}
	if subtree.Parent != "b7ad6b7169203331" {
		t.Errorf("shipped span parents to %q, want the lease position b7ad6b7169203331", subtree.Parent)
	}

	// A malformed lease traceparent degrades to an untraced lease — the
	// result is still served, just without spans.
	body = mustJSON(t, cluster.SubtreeRequest{
		SolveID:     "trace-test-2",
		Problem:     cluster.EncodeProblem(inst.Problem, inst.Weights()),
		Opts:        cluster.EncodeOptions(setcover.ExactOptions{Parallelism: 1}),
		Branch:      0,
		Traceparent: "not-a-traceparent",
	})
	resp2 := mustPost(t, repTS.URL+"/v1/dist/subtree", body)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("subtree lease with bad traceparent: %s", resp2.Status)
	}
	var sr2 cluster.SubtreeResponse
	mustDecode(t, resp2, &sr2)
	if !sr2.Result.Found && !sr2.Result.Truncated {
		t.Error("lease with malformed traceparent did not solve its branch")
	}
}

// End to end across three processes: gateway → coordinating replica →
// leased worker replica, one trace. The coordinator's local workers and
// the peer race for branches, so the solve retries until the worker
// held at least one lease (DistParallelism 1 makes that the common
// case on the first attempt).
func TestDistributedSolveStitchesThreeProcesses(t *testing.T) {
	workerTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Advertise: self, ProcessName: "replica-b"}
	})
	coordTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{
			Advertise: self, ProcessName: "replica-a",
			Peers: []string{workerTS.URL}, DistParallelism: 1,
		}
	})
	gwTS := newGatewayOver(t, coordTS.URL)

	inst, err := corpus.Load("medium-3")
	if err != nil {
		t.Fatal(err)
	}
	body := mustJSON(t, cluster.DistSolveRequest{
		Problem: cluster.EncodeProblem(inst.Problem, inst.Weights()),
		Opts:    cluster.EncodeOptions(setcover.ExactOptions{Parallelism: 1}),
	})

	var procs map[string]bool
	for attempt := 0; attempt < 5; attempt++ {
		resp := mustPost(t, gwTS.URL+"/v1/dist/solve", body)
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("dist solve via gateway: %s", resp.Status)
		}
		tid, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
		var sol cluster.SolutionWire
		mustDecode(t, resp, &sol)
		resp.Body.Close()
		if !ok {
			t.Fatal("dist solve response has no Traceparent header")
		}
		if sol.Cost == 0 {
			t.Fatal("dist solve returned no solution")
		}
		procs = processes(fetchTrace(t, gwTS.URL, tid))
		if procs["replica-b"] {
			break
		}
		t.Logf("attempt %d: worker held no lease (processes %v), retrying", attempt, procs)
	}
	for _, want := range []string{"reseedgw", "replica-a", "replica-b"} {
		if !procs[want] {
			t.Fatalf("three-process trace missing %s: have %v", want, procs)
		}
	}
}

// The gateway's trace endpoints themselves are exempt from tracing (a
// trace read must not evict the trace being read), and an unknown ID is
// a clean 404 even with live replicas to consult.
func TestGatewayTraceEndpointHygiene(t *testing.T) {
	repTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Advertise: self}
	})
	gwTS := newGatewayOver(t, repTS.URL)

	resp, err := http.Get(gwTS.URL + "/v1/traces/deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace via gateway: %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("Traceparent") != "" {
		t.Error("trace read minted a trace of its own")
	}

	var list struct {
		Traces []json.RawMessage `json:"traces"`
	}
	lresp, err := http.Get(gwTS.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/traces via gateway: %d", lresp.StatusCode)
	}
	mustDecode(t, lresp, &list)
	if len(list.Traces) != 0 {
		t.Errorf("fresh gateway lists %d traces, want 0", len(list.Traces))
	}
}
