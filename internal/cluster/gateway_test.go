package cluster_test

// Gateway behavior tests against scripted backends: key-affine routing,
// failover down the preference list on transport failure, 429
// passthrough (a live replica shedding load is an answer, not a
// failure), and job fan-out.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustPost(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustDecode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }
func jsonEncode(w io.Writer, v any) error { return json.NewEncoder(w).Encode(v) }

// echoBackend answers every solve with its own name, counting hits.
type echoBackend struct {
	name string
	hits atomic.Int64
	code atomic.Int64 // response status (default 200)
}

func (b *echoBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		fmt.Fprintln(w, `{"status":"ok"}`)
		return
	}
	b.hits.Add(1)
	if c := b.code.Load(); c != 0 {
		w.WriteHeader(int(c))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"served_by":%q}`, b.name)
}

func servedBy(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var body struct {
		ServedBy string `json:"served_by"`
	}
	mustDecode(t, resp, &body)
	return body.ServedBy
}

func newCluster(t *testing.T, n int) ([]*echoBackend, []*httptest.Server, *cluster.Gateway, *cluster.Health) {
	t.Helper()
	backends := make([]*echoBackend, n)
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = &echoBackend{}
		servers[i] = httptest.NewServer(backends[i])
		t.Cleanup(servers[i].Close)
		backends[i].name = servers[i].URL
		urls[i] = servers[i].URL
	}
	ring := cluster.NewRing(urls)
	health := cluster.NewHealth(urls, nil, 0) // never Started: probes only on demand
	gw := cluster.NewGateway(ring, health, nil)
	return backends, servers, gw, health
}

// The same circuit always lands on the same replica; different circuits
// spread out.
func TestGatewayKeyAffinity(t *testing.T) {
	_, _, gw, _ := newCluster(t, 3)
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	body := mustJSON(t, map[string]any{"circuit": "s1238", "tpg": "adder"})
	first := servedBy(t, mustPost(t, front.URL+"/v1/solve", body))
	for i := 0; i < 5; i++ {
		if got := servedBy(t, mustPost(t, front.URL+"/v1/solve", body)); got != first {
			t.Fatalf("request %d for the same circuit landed on %s, first went to %s", i, got, first)
		}
	}

	// The route debug endpoint agrees with where traffic actually went.
	resp, err := http.Get(front.URL + "/v1/route?circuit=s1238")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var route struct {
		Primary    string   `json:"primary"`
		Preference []string `json:"preference"`
	}
	mustDecode(t, resp, &route)
	if route.Primary != first {
		t.Fatalf("route endpoint says %s, traffic went to %s", route.Primary, first)
	}
	if len(route.Preference) != 3 {
		t.Fatalf("preference list has %d entries, want 3", len(route.Preference))
	}
}

// Killing the primary moves its keys to the next preference without a
// client-visible failure; the dead replica is marked down.
func TestGatewayFailover(t *testing.T) {
	backends, servers, gw, health := newCluster(t, 3)
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	body := mustJSON(t, map[string]any{"circuit": "s420", "tpg": "adder"})
	primary := servedBy(t, mustPost(t, front.URL+"/v1/solve", body))

	for i, s := range servers {
		if s.URL == primary {
			s.CloseClientConnections()
			s.Close()
			backends[i] = nil
		}
	}

	// The very next request must still succeed — one transport failure,
	// one failover, no 5xx to the client.
	resp := mustPost(t, front.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after primary death: %s", resp.Status)
	}
	fallback := servedBy(t, resp)
	if fallback == primary {
		t.Fatal("request served by the dead primary")
	}
	if health.Up(primary) {
		t.Fatal("dead primary still marked up")
	}
	// Stickiness after failover: the key keeps landing on the fallback.
	if got := servedBy(t, mustPost(t, front.URL+"/v1/solve", body)); got != fallback {
		t.Fatalf("key moved again after failover: %s then %s", fallback, got)
	}
}

// 429 is an answer, not a failure: a saturated replica's shed is relayed
// to the client rather than retried into a thundering herd.
func TestGatewayRelays429(t *testing.T) {
	backends, _, gw, _ := newCluster(t, 2)
	front := httptest.NewServer(gw.Handler())
	defer front.Close()
	for _, b := range backends {
		b.code.Store(http.StatusTooManyRequests)
	}
	resp := mustPost(t, front.URL+"/v1/solve", mustJSON(t, map[string]any{"circuit": "s420", "tpg": "adder"}))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed relayed as %s, want 429", resp.Status)
	}
	total := backends[0].hits.Load() + backends[1].hits.Load()
	if total != 1 {
		t.Fatalf("429 hit %d replicas, want exactly the primary", total)
	}
}

// 503 (a draining or proxy-dead replica) fails over; only when every
// replica is gone does the client see 502.
func TestGatewayExhaustion(t *testing.T) {
	backends, _, gw, _ := newCluster(t, 2)
	front := httptest.NewServer(gw.Handler())
	defer front.Close()
	for _, b := range backends {
		b.code.Store(http.StatusServiceUnavailable)
	}
	resp := mustPost(t, front.URL+"/v1/solve", mustJSON(t, map[string]any{"circuit": "s420", "tpg": "adder"}))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("exhausted cluster answered %s, want 502", resp.Status)
	}
	if total := backends[0].hits.Load() + backends[1].hits.Load(); total != 2 {
		t.Fatalf("503s tried %d replicas, want both", total)
	}
}

// The gateway's health and metrics surfaces reflect the replica set.
func TestGatewayHealthAndMetrics(t *testing.T) {
	_, _, gw, _ := newCluster(t, 2)
	front := httptest.NewServer(gw.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status     string `json:"status"`
		Replicas   int    `json:"replicas"`
		ReplicasUp int    `json:"replicas_up"`
	}
	mustDecode(t, resp, &hz)
	if hz.Status != "ok" || hz.Replicas != 2 || hz.ReplicasUp != 2 {
		t.Fatalf("healthz: %+v", hz)
	}

	m, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	text, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reseedgw_requests_total", "reseedgw_failovers_total", "reseedgw_replica_up"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
