package cluster

// Gateway fronts N reseedd replicas as one service. Solve-shaped
// requests are routed by their circuit cache key (engine.RouteKey) over
// the consistent-hash ring, so each replica stays warm for its shard of
// the circuit universe; a failed replica is retried down the key's
// preference list, so retryable work never surfaces a transport failure
// to the client. Job reads fan out, because a job lives on whichever
// replica accepted it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// maxGatewayBody bounds a buffered request body. It matches the order of
// magnitude reseedd itself accepts; the gateway must buffer because a
// body may be replayed against a fallback replica.
const maxGatewayBody = 64 << 20

// Gateway is the HTTP front end. Build with NewGateway, serve its
// Handler.
type Gateway struct {
	ring     *Ring
	health   *Health
	client   *http.Client
	mux      *http.ServeMux
	recorder *obs.Recorder // flight recorder behind the gateway's GET /v1/traces

	requests  atomic.Int64 // proxied requests
	failovers atomic.Int64 // retries on a fallback replica
	exhausted atomic.Int64 // requests that ran out of live replicas
}

// gatewayProcess labels the gateway's trace spans.
const gatewayProcess = "reseedgw"

// NewGateway builds a gateway over the replica set. health may be nil
// for a gateway that never marks replicas down (tests); client nil gets
// http.DefaultClient semantics with no overall timeout (solve requests
// carry their own budgets).
func NewGateway(ring *Ring, health *Health, client *http.Client) *Gateway {
	if client == nil {
		client = &http.Client{}
	}
	g := &Gateway{ring: ring, health: health, client: client, mux: http.NewServeMux(),
		recorder: obs.NewRecorder(0)}
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("POST /v1/solve", g.keyRouted)
	g.mux.HandleFunc("POST /v1/batch", g.keyRouted)
	g.mux.HandleFunc("POST /v1/jobs", g.keyRouted)
	g.mux.HandleFunc("POST /v1/dist/solve", g.keyRouted)
	g.mux.HandleFunc("GET /v1/jobs", g.handleJobList)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.fanFirst)
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.fanFirst)
	g.mux.HandleFunc("GET /v1/route", g.handleRoute)
	g.mux.HandleFunc("GET /v1/traces", g.handleTraceList)
	g.mux.HandleFunc("GET /v1/traces/{id}", g.handleTraceGet)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g
}

// Handler returns the gateway's HTTP handler: the API wrapped in the
// tracing middleware. Every proxied request gets a gateway-side trace
// (continuing an incoming W3C traceparent when one parses; a malformed
// header degrades to a fresh root, never an error), and the hop's
// position travels to the replica on the outbound traceparent header —
// so gateway and replica spans share one trace ID and stitch.
func (g *Gateway) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !gatewayTraced(r.URL.Path) {
			g.mux.ServeHTTP(w, r)
			return
		}
		var tr *obs.Trace
		if tid, pid, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
			tr = obs.NewTraceWithParent(tid, pid, gatewayProcess)
		} else {
			tr = obs.NewTrace(gatewayProcess)
		}
		ctx := obs.ContextWithTrace(r.Context(), tr)
		ctx, sp := obs.StartSpan(ctx, "gateway "+r.URL.Path)
		w.Header().Set("Traceparent", obs.FormatTraceparent(tr.ID(), sp.ID()))
		g.mux.ServeHTTP(w, r.WithContext(ctx))
		sp.End()
		g.recorder.Record(tr.Data())
	})
}

// gatewayTraced excludes read-side plumbing from tracing, mirroring the
// replica's policy: scrapes and probes would evict real solve traces
// from the bounded recorder.
func gatewayTraced(p string) bool {
	return p != "/metrics" && p != "/healthz" && p != "/v1/route" &&
		!strings.HasPrefix(p, "/v1/traces")
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err // headers are gone; nothing useful remains to do
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := g.ring.Len()
	if g.health != nil {
		up = g.health.UpCount()
	}
	status := "ok"
	if up == 0 {
		status = "isolated" // still 200: the gateway itself is alive
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"replicas":    g.ring.Len(),
		"replicas_up": up,
	})
}

// routeKeyOf extracts the routing key from a buffered solve-shaped body.
// Batch requests route by their first request's key, so a homogeneous
// batch lands on its warm shard. Unroutable bodies ("" key) still
// proxy — to the key-less preference order — and the replica reports the
// validation error with full detail.
func routeKeyOf(path string, body []byte) string {
	if path == "/v1/batch" {
		var batch struct {
			Requests []engine.Request `json:"requests"`
		}
		if err := json.Unmarshal(body, &batch); err != nil || len(batch.Requests) == 0 {
			return ""
		}
		return engine.RouteKey(batch.Requests[0])
	}
	var req engine.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	return engine.RouteKey(req)
}

// preference is the failover order for a key: the ring's preference list
// with down replicas moved to the back (not dropped — when everything is
// marked down, optimism beats refusing service).
func (g *Gateway) preference(key string) []string {
	pref := g.ring.Preference(key, g.ring.Len())
	if g.health == nil {
		return pref
	}
	live := make([]string, 0, len(pref))
	var down []string
	for _, rep := range pref {
		if g.health.Up(rep) {
			live = append(live, rep)
		} else {
			down = append(down, rep)
		}
	}
	return append(live, down...)
}

// keyRouted proxies one buffered request down its key's preference list.
func (g *Gateway) keyRouted(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGatewayBody))
	if err != nil {
		g.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("reading request: %v", err)})
		return
	}
	key := routeKeyOf(r.URL.Path, body)
	g.proxy(w, r, g.preference(key), body)
}

// proxy attempts the request against each target in order. A transport
// error or a 502/503 moves to the next target (and marks the replica
// down); every other status — including 429, which means the replica is
// alive and sheds load by contract — is the answer.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, targets []string, body []byte) {
	for i, target := range targets {
		if i > 0 {
			g.failovers.Add(1)
		}
		pctx, psp := obs.StartSpan(r.Context(), "proxy")
		psp.SetStr("target", target)
		out, err := http.NewRequestWithContext(pctx, r.Method, target+r.URL.Path+querySuffix(r), bytes.NewReader(body))
		if err != nil {
			psp.End()
			continue
		}
		copyHeader(out.Header, r.Header)
		// The proxy span's position replaces any client traceparent: the
		// replica's request span must parent to this hop, not skip it.
		if tp := obs.Traceparent(pctx); tp != "" {
			out.Header.Set("Traceparent", tp)
		}
		resp, err := g.client.Do(out)
		if err != nil {
			psp.SetStr("error", "transport")
			psp.End()
			if g.health != nil {
				g.health.MarkDown(target)
			}
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			psp.SetInt("code", int64(resp.StatusCode))
			psp.End()
			if g.health != nil {
				g.health.MarkDown(target)
			}
			continue
		}
		psp.SetInt("code", int64(resp.StatusCode))
		psp.End()
		relay(w, resp)
		return
	}
	g.exhausted.Add(1)
	g.writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no live replica"})
}

func querySuffix(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Content-Type", "Accept", "Authorization", "Traceparent":
			dst[k] = vs
		}
	}
}

// relay copies an upstream response through, preserving status, JSON
// body and the Location header (job creation returns one).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if loc := resp.Header.Get("Location"); loc != "" {
		w.Header().Set("Location", loc)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		_ = err // client went away mid-body; the status is already sent
	}
}

// fanFirst proxies a job read/cancel to every replica and relays the
// first non-404 answer: the job lives on exactly one replica, and the
// gateway does not know which.
func (g *Gateway) fanFirst(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	for _, target := range g.preference("jobs:" + r.PathValue("id")) {
		out, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, nil)
		if err != nil {
			continue
		}
		resp, err := g.client.Do(out)
		if err != nil {
			if g.health != nil {
				g.health.MarkDown(target)
			}
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		relay(w, resp)
		return
	}
	g.writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + r.PathValue("id")})
}

// handleJobList merges every live replica's job list, tagging each entry
// with its replica so a client can tell shards apart.
func (g *Gateway) handleJobList(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	type replicaJobs struct {
		Replica string            `json:"replica"`
		Jobs    []json.RawMessage `json:"jobs"`
	}
	replicas := g.ring.Replicas()
	out := make([]replicaJobs, len(replicas))
	var wg sync.WaitGroup
	for i, target := range replicas {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target+"/v1/jobs", nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var body struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				return
			}
			out[i] = replicaJobs{Replica: target, Jobs: body.Jobs}
		}(i, target)
	}
	wg.Wait()
	merged := make([]replicaJobs, 0, len(out))
	for _, rj := range out {
		if rj.Replica != "" {
			merged = append(merged, rj)
		}
	}
	g.writeJSON(w, http.StatusOK, map[string]any{"replicas": merged})
}

// handleRoute answers placement questions without proxying anything:
// GET /v1/route?circuit=NAME returns the key's preference list. The CI
// smoke uses it to find (and kill) the replica that owns a circuit.
func (g *Gateway) handleRoute(w http.ResponseWriter, r *http.Request) {
	circuit := r.URL.Query().Get("circuit")
	if circuit == "" {
		g.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing circuit parameter"})
		return
	}
	key := engine.RouteKey(engine.Request{Circuit: circuit})
	pref := g.preference(key)
	primary := ""
	if len(pref) > 0 {
		primary = pref[0]
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"key":        key,
		"primary":    primary,
		"preference": pref,
	})
}

// handleTraceList serves the gateway-side flight recorder as summaries
// (trace id, span count, process). The full cross-process view is
// GET /v1/traces/{id}, which merges the replica sides in.
func (g *Gateway) handleTraceList(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		TraceID string `json:"trace_id"`
		Process string `json:"process,omitempty"`
		Spans   int    `json:"spans"`
		Dropped int    `json:"dropped_spans,omitempty"`
	}
	traces := g.recorder.List()
	out := make([]summary, 0, len(traces))
	for _, td := range traces {
		out = append(out, summary{TraceID: td.TraceID, Process: td.Process, Spans: len(td.Spans), Dropped: td.Dropped})
	}
	g.writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTraceGet assembles the cross-process view of one trace: the
// gateway's own spans merged with every replica's (same trace ID, fetched
// from each replica's /v1/traces — best-effort, a dead replica just
// contributes nothing). 404 only when no process holds the trace.
func (g *Gateway) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	merged, ok := g.recorder.Get(id)
	for _, target := range g.ring.Replicas() {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target+"/v1/traces/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		var td obs.TraceData
		err = json.NewDecoder(resp.Body).Decode(&td)
		resp.Body.Close()
		if err != nil || td.TraceID != id {
			continue
		}
		if merged == nil {
			merged, ok = &td, true
			continue
		}
		merged.Spans = append(merged.Spans, td.Spans...)
		merged.Dropped += td.Dropped
	}
	if !ok {
		g.writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown trace " + id})
		return
	}
	g.writeJSON(w, http.StatusOK, merged)
}

// handleMetrics exposes gateway counters in Prometheus text format,
// hand-rolled like reseedd's.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP reseedgw_requests_total Proxied requests.\n# TYPE reseedgw_requests_total counter\nreseedgw_requests_total %d\n", g.requests.Load())
	fmt.Fprintf(&b, "# HELP reseedgw_failovers_total Retries against a fallback replica.\n# TYPE reseedgw_failovers_total counter\nreseedgw_failovers_total %d\n", g.failovers.Load())
	fmt.Fprintf(&b, "# HELP reseedgw_exhausted_total Requests that ran out of live replicas.\n# TYPE reseedgw_exhausted_total counter\nreseedgw_exhausted_total %d\n", g.exhausted.Load())
	fmt.Fprintf(&b, "# HELP reseedgw_replica_up Replica liveness as seen by this gateway.\n# TYPE reseedgw_replica_up gauge\n")
	marks := map[string]bool{}
	if g.health != nil {
		marks = g.health.Snapshot()
	}
	replicas := g.ring.Replicas()
	sort.Strings(replicas)
	for _, rep := range replicas {
		up := 1
		if g.health != nil && !marks[rep] {
			up = 0
		}
		fmt.Fprintf(&b, "reseedgw_replica_up{replica=%q} %d\n", rep, up)
	}
	if _, err := w.Write(b.Bytes()); err != nil {
		_ = err // scrape client went away
	}
}
