package cluster

// The coordinator half of the distributed solve: plan once, lease the
// top-level subtrees to local workers and remote peers, merge.
//
// Fault model: a peer that fails a lease (transport error, 5xx) gets its
// branch requeued and is retired from the solve; local workers always
// participate, so every branch eventually runs somewhere as long as this
// process lives. Context cancellation stops dispatch and merges whatever
// completed — the anytime answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/setcover"
)

// subtreeRequestTimeout bounds one remote lease round trip. Subtrees can
// legitimately run for a while on hard instances, so this is generous;
// the per-solve context still cuts it short on cancellation.
const subtreeRequestTimeout = 10 * time.Minute

// Coordinator fans one exact solve out across replicas. The zero value
// with Board set solves locally only; Peers adds remote lease targets.
type Coordinator struct {
	// Peers are base URLs of replicas accepting POST /v1/dist/subtree.
	// The coordinator's own URL must not be listed (it participates via
	// in-process workers).
	Peers []string
	// Self, when non-empty, is this process's advertised base URL; it is
	// handed to workers as the incumbent-exchange address.
	Self string
	// Board receives incumbent exchanges for in-flight solves. Required.
	Board *Board
	// Client performs peer requests; nil gets a private client.
	Client *http.Client
	// Parallelism caps in-process lease workers (0 = GOMAXPROCS).
	Parallelism int
	// SubtreeMaxNodes bounds each lease's search (0 = unbounded). It is a
	// liveness guard for remote leases, not a tuning knob: a truncated
	// lease downgrades the solve to anytime.
	SubtreeMaxNodes int64

	seq atomic.Uint64 // distinguishes concurrent solves of equal problems
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: subtreeRequestTimeout}
}

// Solve runs one exact solve across the cluster and returns exactly what
// the single-process solver would: bit-identical Rows/Cost/Optimal when
// every subtree completes, the anytime best-so-far (Optimal=false) when
// the context expires or budgets truncate. The error is non-nil only for
// invalid input — peer failures degrade, they don't fail.
func (c *Coordinator) Solve(ctx context.Context, p *setcover.Problem, weights []int, opts setcover.ExactOptions) (setcover.Solution, error) {
	if c.Board == nil {
		return setcover.Solution{}, fmt.Errorf("cluster: coordinator has no board")
	}
	pw := EncodeProblem(p, weights)
	ow := EncodeOptions(opts)
	pl, err := p.PlanExact(weights, opts)
	if err != nil {
		return setcover.Solution{}, err
	}
	if term := pl.Terminal(); term != nil {
		return *term, nil
	}

	solveID := fmt.Sprintf("%s:%s:%d", pw.Fingerprint(), c.Self, c.seq.Add(1))
	closeEntry := c.Board.Open(solveID, pl.Greedy().Cost)
	defer closeEntry()

	n := pl.NumBranches()
	dctx, dsp := obs.StartSpan(ctx, "dist")
	dsp.SetInt("branches", int64(n))
	dsp.SetInt("peers", int64(len(c.Peers)))
	defer dsp.End()
	queue := make(chan int, n)
	for b := 0; b < n; b++ {
		queue <- b
	}
	var pending atomic.Int64
	pending.Store(int64(n))
	done := make(chan struct{})
	finish := func() {
		if pending.Add(-1) == 0 {
			close(done)
		}
	}

	results := make(chan setcover.SubtreeResult, n)
	var wg sync.WaitGroup

	// Local workers: mandatory participation. Even with every peer dead,
	// these drain the queue, so a completed solve never depends on the
	// network.
	for i := 0; i < parallel.Degree(c.Parallelism); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case b := <-queue:
					_, ssp := obs.StartSpan(dctx, "subtree")
					ssp.SetInt("branch", int64(b))
					res, err := pl.SolveSubtree(b, setcover.SubtreeOptions{
						MaxNodes: c.SubtreeMaxNodes,
						Context:  ctx,
						Bound:    func() int { return c.Board.Best(solveID) },
						OnImprove: func(inc setcover.Incumbent) {
							c.Board.Exchange(solveID, inc.Cost)
						},
					})
					if err != nil {
						// Only invalid branches error, and the queue holds
						// valid ones; treat as a lost lease.
						ssp.End()
						finish()
						continue
					}
					ssp.SetInt("nodes", res.Nodes)
					ssp.End()
					results <- res
					finish()
				}
			}
		}()
	}

	// One runner per peer: leases stream to the peer until it fails,
	// then its in-flight branch is requeued and the peer is retired for
	// this solve. The queue's capacity is n, so a requeue never blocks.
	for _, peer := range c.Peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case b := <-queue:
					// The lease span's position travels with the lease; the
					// worker's subtree span parents to it, so the spans it
					// ships back (folded in by leaseToPeer) stitch under it.
					lctx, lsp := obs.StartSpan(dctx, "lease")
					lsp.SetInt("branch", int64(b))
					lsp.SetStr("peer", peer)
					res, ok := c.leaseToPeer(lctx, peer, SubtreeRequest{
						SolveID:     solveID,
						Problem:     pw,
						Opts:        ow,
						Branch:      b,
						MaxNodes:    c.SubtreeMaxNodes,
						Incumbent:   c.Board.Best(solveID),
						Coordinator: c.Self,
						Traceparent: obs.Traceparent(lctx),
					})
					if !ok {
						lsp.SetInt("requeued", 1)
						lsp.End()
						queue <- b // hand the branch back for someone alive
						return
					}
					lsp.End()
					results <- res
					finish()
				}
			}
		}(peer)
	}

	select {
	case <-done:
	case <-ctx.Done():
	}
	go func() { wg.Wait(); close(results) }()

	var collected []setcover.SubtreeResult
	for res := range results {
		collected = append(collected, res)
	}
	return pl.Merge(collected), nil
}

// leaseToPeer executes one lease remotely. ok=false means the peer is
// unusable for this solve (transport error or a non-retryable status) and
// the branch must be requeued.
func (c *Coordinator) leaseToPeer(ctx context.Context, peer string, lease SubtreeRequest) (setcover.SubtreeResult, bool) {
	body, err := json.Marshal(lease)
	if err != nil {
		return setcover.SubtreeResult{}, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/dist/subtree", bytes.NewReader(body))
	if err != nil {
		return setcover.SubtreeResult{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return setcover.SubtreeResult{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return setcover.SubtreeResult{}, false
	}
	var sr SubtreeResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return setcover.SubtreeResult{}, false
	}
	if sr.SolveID != lease.SolveID || sr.Result.Branch != lease.Branch {
		return setcover.SubtreeResult{}, false
	}
	// Fold the worker-side spans into our trace: they share our trace ID
	// (built from the lease's traceparent) and parent to the lease span.
	if tr := obs.FromContext(ctx); tr != nil {
		tr.AddSpans(sr.Spans)
	}
	c.Board.Exchange(lease.SolveID, func() int {
		if sr.Result.Found {
			return sr.Result.Cost
		}
		return 0
	}())
	return sr.Result, true
}
