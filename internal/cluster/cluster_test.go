package cluster_test

// End-to-end tests of the distributed solve fabric over real HTTP: two
// reseedd-shaped servers (internal/server over internal/cluster's dist
// endpoints), a coordinator fanning subtrees across them, and the
// bit-identity guarantee — a completed distributed solve returns exactly
// the single-process answer, and losing a peer degrades to requeue-and-
// continue, never to a wrong answer or a client-visible failure.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/setcover"
	"repro/internal/setcover/corpus"
)

// lateBound lets an httptest server start (assigning its URL) before the
// handler that needs that URL exists.
type lateBound struct{ h atomic.Value }

func (l *lateBound) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// newReplica boots one server whose base URL is known to itself
// (Advertise) — the chicken-and-egg a real deployment resolves with
// -advertise. configure receives the URL and returns the Config.
func newReplica(t *testing.T, configure func(self string) server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	lb := &lateBound{}
	ts := httptest.NewServer(lb)
	t.Cleanup(ts.Close)
	srv := server.New(engine.New(engine.Options{Parallelism: 1}), configure(ts.URL))
	lb.h.Store(http.Handler(srv))
	return ts, srv
}

// distSolve posts one distributed solve to a coordinator replica.
func distSolve(t *testing.T, url string, p *setcover.Problem, weights []int, opts setcover.ExactOptions) cluster.SolutionWire {
	t.Helper()
	body := mustJSON(t, cluster.DistSolveRequest{
		Problem: cluster.EncodeProblem(p, weights),
		Opts:    cluster.EncodeOptions(opts),
	})
	resp := mustPost(t, url+"/v1/dist/solve", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist solve: %s", resp.Status)
	}
	var sol cluster.SolutionWire
	mustDecode(t, resp, &sol)
	return sol
}

// Two replicas, hard corpus tier included: the distributed answer is
// bit-identical to the single-process solver's in Rows, Cost, Optimal
// and RootLB. This is the fabric's acceptance criterion.
func TestDistributedSolveMatchesLocalCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	// Worker replica first (it needs no peers), then the coordinator
	// pointing at it.
	workerTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Advertise: self}
	})
	coordTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Peers: []string{workerTS.URL}, Advertise: self}
	})

	for _, spec := range corpus.Specs() {
		if spec.Tier == corpus.TierOpen {
			continue // open-tier solves are budget-truncated by design
		}
		inst, err := corpus.Load(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		w := inst.Weights()
		opts := setcover.ExactOptions{Parallelism: 1}
		var want setcover.Solution
		if w != nil {
			want, err = inst.Problem.SolveExactWeighted(w, opts)
		} else {
			want, err = inst.Problem.SolveExact(opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := distSolve(t, coordTS.URL, inst.Problem, w, opts)
		if got.Cost != want.Cost || got.Optimal != want.Optimal || !slices.Equal(got.Rows, want.Rows) {
			t.Errorf("%s: distributed (cost %d, opt %v, rows %v) != local (cost %d, opt %v, rows %v)",
				spec.Name, got.Cost, got.Optimal, got.Rows, want.Cost, want.Optimal, want.Rows)
		}
		if got.RootLB != want.RootLB {
			t.Errorf("%s: distributed RootLB %d != local %d", spec.Name, got.RootLB, want.RootLB)
		}
	}
}

// A dead peer never breaks a solve: every lease it would have taken is
// requeued onto the coordinator's local workers, and the answer is still
// bit-identical and optimal.
func TestDistributedSolveSurvivesDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first lease on
	coordTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Peers: []string{dead.URL}, Advertise: self}
	})

	inst, err := corpus.Load("medium-1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.Problem.SolveExact(setcover.ExactOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := distSolve(t, coordTS.URL, inst.Problem, nil, setcover.ExactOptions{Parallelism: 1})
	if got.Cost != want.Cost || !got.Optimal || !slices.Equal(got.Rows, want.Rows) {
		t.Fatalf("with dead peer: got cost %d opt %v, want cost %d opt true", got.Cost, got.Optimal, want.Cost)
	}
}

// A peer that dies mid-solve degrades the same way: its in-flight lease
// is requeued, the solve completes locally, the answer is unchanged.
func TestDistributedSolveSurvivesPeerLossMidSolve(t *testing.T) {
	inst, err := corpus.Load("medium-2")
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.Problem.SolveExact(setcover.ExactOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The flaky peer answers its first lease with a hang that outlives the
	// test only until we close it; closing mid-solve forces the transport
	// error path.
	var leases atomic.Int64
	release := make(chan struct{})
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/dist/subtree" {
			leases.Add(1)
			<-release // hold the lease until the server is torn down
		}
		http.Error(w, "gone", http.StatusServiceUnavailable)
	}))
	coordTS, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Peers: []string{flaky.URL}, Advertise: self}
	})

	done := make(chan cluster.SolutionWire, 1)
	go func() {
		done <- distSolve(t, coordTS.URL, inst.Problem, nil, setcover.ExactOptions{Parallelism: 1})
	}()

	// Wait for the peer to hold a lease, then kill it mid-solve.
	deadline := time.Now().Add(10 * time.Second)
	for leases.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	flaky.CloseClientConnections()
	flaky.Close()

	select {
	case got := <-done:
		if got.Cost != want.Cost || !got.Optimal || !slices.Equal(got.Rows, want.Rows) {
			t.Fatalf("after peer loss: got cost %d opt %v, want cost %d opt true", got.Cost, got.Optimal, want.Cost)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("solve did not complete after peer loss")
	}
	if leases.Load() == 0 {
		t.Log("peer never held a lease; local workers outran it (failover untested this run)")
	}
}

// The subtree and incumbent endpoints compose: a lease executed over
// HTTP returns the same SubtreeResult the plan produces in-process, and
// the incumbent exchange folds by min.
func TestSubtreeAndIncumbentEndpoints(t *testing.T) {
	ts, _ := newReplica(t, func(self string) server.Config {
		return server.Config{Advertise: self}
	})
	inst, err := corpus.Load("medium-1")
	if err != nil {
		t.Fatal(err)
	}
	opts := setcover.ExactOptions{Parallelism: 1}
	pl, err := inst.Problem.PlanExact(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Terminal() != nil {
		t.Fatal("medium-1 planned terminal; the lease test needs a branching instance")
	}
	wantRes, err := pl.SolveSubtree(0, setcover.SubtreeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	lease := cluster.SubtreeRequest{
		SolveID: "test-solve",
		Problem: cluster.EncodeProblem(inst.Problem, nil),
		Opts:    cluster.EncodeOptions(opts),
		Branch:  0,
	}
	resp := mustPost(t, ts.URL+"/v1/dist/subtree", mustJSON(t, lease))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subtree lease: %s", resp.Status)
	}
	var sr cluster.SubtreeResponse
	mustDecode(t, resp, &sr)
	if sr.SolveID != "test-solve" {
		t.Fatalf("lease answered for solve %q", sr.SolveID)
	}
	if sr.Result.Found != wantRes.Found || sr.Result.Cost != wantRes.Cost || !slices.Equal(sr.Result.Rows, wantRes.Rows) {
		t.Fatalf("HTTP lease %+v != in-process lease %+v", sr.Result, wantRes)
	}

	// Incumbent exchange against an unknown solve answers 0 (no entry);
	// the board only tracks solves this replica coordinates.
	ex := mustPost(t, ts.URL+"/v1/dist/incumbent", mustJSON(t, cluster.IncumbentMsg{SolveID: "nobody", Cost: 7}))
	defer ex.Body.Close()
	var msg cluster.IncumbentMsg
	mustDecode(t, ex, &msg)
	if msg.Cost != 0 {
		t.Fatalf("unknown solve answered incumbent %d", msg.Cost)
	}
}

// ExecuteSubtree keeps exchanging incumbents with the coordinator while
// a lease runs; a coordinator-supplied bound prunes the worker's search.
func TestExecuteSubtreeExchangesIncumbents(t *testing.T) {
	board := cluster.NewBoard()
	closeEntry := board.Open("xchg", 1_000_000)
	defer closeEntry()
	var exchanges atomic.Int64
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/dist/incumbent" {
			http.NotFound(w, r)
			return
		}
		exchanges.Add(1)
		var msg cluster.IncumbentMsg
		if err := jsonDecode(r.Body, &msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		best := board.Exchange(msg.SolveID, msg.Cost)
		w.Header().Set("Content-Type", "application/json")
		if err := jsonEncode(w, cluster.IncumbentMsg{SolveID: msg.SolveID, Cost: best}); err != nil {
			t.Error(err)
		}
	}))
	defer coord.Close()

	inst, err := corpus.Load("medium-3")
	if err != nil {
		t.Fatal(err)
	}
	req := &cluster.SubtreeRequest{
		SolveID:     "xchg",
		Problem:     cluster.EncodeProblem(inst.Problem, inst.Weights()),
		Opts:        cluster.EncodeOptions(setcover.ExactOptions{}),
		Branch:      0,
		Coordinator: coord.URL,
	}
	resp, err := cluster.ExecuteSubtree(context.Background(), req, &http.Client{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SolveID != "xchg" {
		t.Fatalf("lease answered for %q", resp.SolveID)
	}
	if resp.Result.Found && exchanges.Load() == 0 {
		t.Fatal("lease found a cover but never told the coordinator")
	}
	if resp.Result.Found && board.Best("xchg") > resp.Result.Cost {
		t.Fatalf("board best %d above the lease's reported cost %d", board.Best("xchg"), resp.Result.Cost)
	}
}
