package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("bench:c%04d", i)
	}
	return out
}

// Key distribution stays near uniform: with 128 vnodes per replica, no
// replica of a small cluster owns more than ~2x its fair share of a
// large key population (in practice the skew is far smaller; the bound
// here is deliberately loose so the test pins the property, not the
// hash).
func TestRingDistributionUniformity(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		replicas := make([]string, n)
		for i := range replicas {
			replicas[i] = fmt.Sprintf("http://replica-%d:8080", i)
		}
		r := NewRing(replicas)
		counts := make(map[string]int)
		ks := keys(10000)
		for _, k := range ks {
			counts[r.Lookup(k)]++
		}
		fair := len(ks) / n
		for _, rep := range replicas {
			c := counts[rep]
			if c == 0 {
				t.Fatalf("n=%d: replica %s owns no keys", n, rep)
			}
			if c > 2*fair {
				t.Errorf("n=%d: replica %s owns %d keys, more than 2x fair share %d", n, rep, c, fair)
			}
		}
	}
}

// Membership changes move only ~1/N of the keys: adding a replica to an
// N-ring remaps at most ~2/(N+1) of the key space (consistent hashing's
// defining property — modulo hashing would remap nearly everything), and
// every remapped key moves TO the new replica. Removing a replica is the
// mirror image.
func TestRingBoundedRemapping(t *testing.T) {
	base := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	grown := append(append([]string(nil), base...), "http://e:1")
	before := NewRing(base)
	after := NewRing(grown)
	ks := keys(10000)

	moved := 0
	for _, k := range ks {
		was, is := before.Lookup(k), after.Lookup(k)
		if was != is {
			moved++
			if is != "http://e:1" {
				t.Fatalf("key %s moved %s -> %s, not to the joining replica", k, was, is)
			}
		}
	}
	// Fair share for the joiner is 1/5 = 2000 keys; allow 2x slack.
	if moved == 0 {
		t.Fatal("no keys moved to the joining replica")
	}
	if max := 2 * len(ks) / len(grown); moved > max {
		t.Errorf("join remapped %d of %d keys; want at most ~%d", moved, len(ks), max)
	}

	// Leave: keys owned by the departing replica redistribute; everyone
	// else's keys stay put.
	shrunk := NewRing(base[:3]) // d departs
	for _, k := range ks {
		was, is := before.Lookup(k), shrunk.Lookup(k)
		if was != "http://d:1" && was != is {
			t.Fatalf("key %s moved %s -> %s although its owner stayed", k, was, is)
		}
	}
}

// Placement is order- and duplicate-insensitive: two gateways configured
// with the same replica set in different orders agree on every key.
func TestRingConfigurationAgreement(t *testing.T) {
	a := NewRing([]string{"http://x:1", "http://y:1", "http://z:1"})
	b := NewRing([]string{"http://z:1", "http://y:1", "http://x:1", "http://y:1", ""})
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("dedup failed: %d vs %d members", a.Len(), b.Len())
	}
	for _, k := range keys(1000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// Preference lists are distinct, stable, and led by the primary.
func TestRingPreference(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	for _, k := range keys(200) {
		pref := r.Preference(k, 3)
		if len(pref) != 3 {
			t.Fatalf("preference(%s) has %d entries", k, len(pref))
		}
		if pref[0] != r.Lookup(k) {
			t.Fatalf("preference(%s) not led by primary: %v vs %s", k, pref, r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, rep := range pref {
			if seen[rep] {
				t.Fatalf("preference(%s) repeats %s", k, rep)
			}
			seen[rep] = true
		}
	}
	if got := r.Preference("k", 10); len(got) != 3 {
		t.Fatalf("preference capped at membership: got %d", len(got))
	}
	empty := NewRing(nil)
	if empty.Lookup("k") != "" || empty.Preference("k", 2) != nil {
		t.Fatal("empty ring must return no placement")
	}
}
