package cluster

// The distributed-solve wire protocol. A covering problem travels as hex
// row bitmaps (the repository's stable bit-vector encoding), options
// travel normalized, and a subtree lease is fully described by (problem,
// options, branch index) — any replica reconstructs the coordinator's
// exact plan from the first two and replays the lease bit-identically.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/obs"
	"repro/internal/setcover"
)

// ProblemWire is a setcover.Problem in transit: row bitmaps as
// most-significant-first hex over the column universe, plus optional
// per-row weights (nil means cardinality covering).
type ProblemWire struct {
	Cols    int      `json:"cols"`
	Rows    []string `json:"rows"`
	Weights []int    `json:"weights,omitempty"`
}

// EncodeProblem renders a problem (and optional weights) for the wire.
func EncodeProblem(p *setcover.Problem, weights []int) ProblemWire {
	w := ProblemWire{Cols: p.NumCols(), Rows: make([]string, p.NumRows())}
	for i := range w.Rows {
		w.Rows[i] = p.Row(i).Hex()
	}
	if weights != nil {
		w.Weights = append([]int(nil), weights...)
	}
	return w
}

// Decode rebuilds the problem. Weight-count mismatches and malformed
// bitmaps are errors.
func (w ProblemWire) Decode() (*setcover.Problem, []int, error) {
	if w.Cols < 0 {
		return nil, nil, fmt.Errorf("cluster: problem with %d columns", w.Cols)
	}
	if w.Weights != nil && len(w.Weights) != len(w.Rows) {
		return nil, nil, fmt.Errorf("cluster: %d weights for %d rows", len(w.Weights), len(w.Rows))
	}
	p := setcover.NewProblem(w.Cols)
	for i, h := range w.Rows {
		row, err := bitvec.SetFromHex(w.Cols, h)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: row %d: %w", i, err)
		}
		p.AddRow(row)
	}
	var weights []int
	if w.Weights != nil {
		weights = append([]int(nil), w.Weights...)
	}
	return p, weights, nil
}

// Fingerprint is a content hash of the wire problem — the deterministic
// component of a solve id.
func (w ProblemWire) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "cols=%d\n", w.Cols)
	for _, r := range w.Rows {
		fmt.Fprintln(h, r)
	}
	for _, wt := range w.Weights {
		fmt.Fprintf(h, "w%d\n", wt)
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// SolveOptionsWire is the tree-shaping subset of setcover.ExactOptions —
// the options that must agree between coordinator and workers for their
// plans to be equal. Budgets and parallelism are deliberately absent:
// they are per-lease and never change completed results.
type SolveOptionsWire struct {
	// Bound is "", "auto", "lagrangian" or "counting" ("" = auto).
	Bound string `json:"bound,omitempty"`
	// AscentIters / AscentPerNode follow setcover.ExactOptions semantics
	// (0 = default, negative = disabled).
	AscentIters   int `json:"ascent_iters,omitempty"`
	AscentPerNode int `json:"ascent_per_node,omitempty"`
}

// EncodeOptions extracts the wire subset of opts.
func EncodeOptions(opts setcover.ExactOptions) SolveOptionsWire {
	w := SolveOptionsWire{AscentIters: opts.AscentIters, AscentPerNode: opts.AscentPerNode}
	switch opts.Bound {
	case setcover.BoundCounting:
		w.Bound = "counting"
	case setcover.BoundLagrangian:
		w.Bound = "lagrangian"
	}
	return w
}

// Decode rebuilds the options.
func (w SolveOptionsWire) Decode() (setcover.ExactOptions, error) {
	opts := setcover.ExactOptions{AscentIters: w.AscentIters, AscentPerNode: w.AscentPerNode}
	switch w.Bound {
	case "", "auto":
		opts.Bound = setcover.BoundAuto
	case "lagrangian":
		opts.Bound = setcover.BoundLagrangian
	case "counting":
		opts.Bound = setcover.BoundCounting
	default:
		return opts, fmt.Errorf("cluster: unknown bound mode %q", w.Bound)
	}
	return opts, nil
}

// DistSolveRequest asks a replica to coordinate one distributed exact
// solve (POST /v1/dist/solve).
type DistSolveRequest struct {
	Problem ProblemWire      `json:"problem"`
	Opts    SolveOptionsWire `json:"opts"`
}

// SolutionWire is a setcover.Solution on the wire.
type SolutionWire struct {
	Rows    []int `json:"rows"`
	Cost    int   `json:"cost"`
	Optimal bool  `json:"optimal"`
	Nodes   int64 `json:"nodes"`
	RootLB  int   `json:"root_lb"`
}

// EncodeSolution renders a solution for the wire.
func EncodeSolution(s setcover.Solution) SolutionWire {
	return SolutionWire{Rows: s.Rows, Cost: s.Cost, Optimal: s.Optimal, Nodes: s.Nodes, RootLB: s.RootLB}
}

// Decode rebuilds the solution.
func (w SolutionWire) Decode() setcover.Solution {
	return setcover.Solution{Rows: w.Rows, Cost: w.Cost, Optimal: w.Optimal, Nodes: w.Nodes, RootLB: w.RootLB}
}

// SubtreeRequest is one subtree lease on the wire (POST /v1/dist/subtree).
type SubtreeRequest struct {
	// SolveID names the solve for incumbent exchange; the coordinator
	// generates it.
	SolveID string `json:"solve_id"`
	// Problem and Opts reconstruct the coordinator's plan.
	Problem ProblemWire      `json:"problem"`
	Opts    SolveOptionsWire `json:"opts"`
	// Branch is the top-level branch index of the lease.
	Branch int `json:"branch"`
	// MaxNodes bounds the subtree's search (0 = engine default).
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// Incumbent is the coordinator's best known cover cost at dispatch —
	// the worker's initial external bound (0 = none beyond the greedy
	// seed the worker computes itself).
	Incumbent int `json:"incumbent,omitempty"`
	// Coordinator, when non-empty, is the base URL the worker exchanges
	// incumbents with (POST {coordinator}/v1/dist/incumbent) while the
	// lease runs.
	Coordinator string `json:"coordinator,omitempty"`
	// Traceparent, when non-empty, is the coordinator's W3C trace
	// position for this lease (its per-branch lease span): the worker's
	// subtree span parents to it, so the shipped-back spans stitch into
	// the coordinator's trace. Telemetry only — it never affects the
	// search.
	Traceparent string `json:"traceparent,omitempty"`
}

// SubtreeResponse answers a lease.
type SubtreeResponse struct {
	SolveID string                 `json:"solve_id"`
	Result  setcover.SubtreeResult `json:"result"`
	// Spans are the worker-side trace spans of this lease (present only
	// when the lease carried a Traceparent); the coordinator folds them
	// into its own trace.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

// IncumbentMsg is one incumbent exchange (POST /v1/dist/incumbent): the
// sender reports its best known cover cost for the solve (0 = none) and
// the reply carries the receiver's — after folding the report in, so the
// exchange is a commutative min.
type IncumbentMsg struct {
	SolveID string `json:"solve_id"`
	Cost    int    `json:"cost"`
}

// Board is the incumbent blackboard of in-flight distributed solves: the
// coordinator opens an entry per solve, every exchange folds a reported
// cover cost in by min, and readers prune against the entry. Costs are
// real cover costs (hence never below the optimum), so sharing them can
// only accelerate — never change — completed results. Safe for
// concurrent use.
type Board struct {
	mu   sync.Mutex
	best map[string]int
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{best: make(map[string]int)}
}

// Open registers a solve with its initial incumbent (the greedy seed
// cost). The returned func closes the entry; exchanges after close are
// answered but no longer stored, so the board cannot grow without bound
// on stale traffic.
func (b *Board) Open(id string, seed int) func() {
	b.mu.Lock()
	if cur, ok := b.best[id]; !ok || (seed > 0 && seed < cur) {
		b.best[id] = seed
	}
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.best, id)
		b.mu.Unlock()
	}
}

// Exchange folds a reported cost into the solve's entry (0 reports
// nothing) and returns the best cost known after the fold — 0 when the
// solve is unknown (finished, or never opened here).
func (b *Board) Exchange(id string, cost int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.best[id]
	if !ok {
		return 0
	}
	if cost > 0 && cost < cur {
		b.best[id] = cost
		return cost
	}
	return cur
}

// Best returns the solve's current incumbent (0 when unknown).
func (b *Board) Best(id string) int {
	return b.Exchange(id, 0)
}
